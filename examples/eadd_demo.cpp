// Extend-add walkthrough (paper §IV-D, Figs 5-7) on a small synthetic
// frontal tree: prints the tree, the proportional mapping, the 2-D
// block-cyclic distribution of one parent/children triple, and runs one
// extend-add traversal with the UPC++ RPC strategy, reporting per-rank
// bytes sent.
#include <cstdio>

#include "apps/sparse/eadd.hpp"
#include "minimpi/minimpi.hpp"
#include "upcxx/upcxx.hpp"

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    sparse::TreeParams params;
    params.levels = 4;
    params.n_vertices = 30000;
    params.min_sep = 4;
    params.max_front = 64;
    auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());

    if (me == 0) {
      std::printf("synthetic elimination tree (%zu fronts):\n",
                  tree.nodes.size());
      std::printf("%5s %6s %6s %8s %8s %12s\n", "front", "depth", "sep",
                  "border", "ranks", "children");
      for (const auto& n : tree.nodes) {
        char kids[32] = "leaf";
        if (n.lchild >= 0)
          std::snprintf(kids, sizeof kids, "%d,%d", n.lchild, n.rchild);
        std::printf("%5d %6d %6d %8d %3d..%-3d %12s\n", n.id, n.depth,
                    n.ncols, n.border(), n.team_lo,
                    n.team_lo + n.team_np - 1, kids);
      }
      const auto& root = tree.root();
      const auto& lc = tree.nodes[root.lchild];
      auto lay = sparse::Layout2D::make(root.nrows(), root.team_lo,
                                        root.team_np, 8);
      std::printf(
          "\nroot front %d: %dx%d over a %dx%d process grid (block 8)\n",
          root.id, root.nrows(), root.nrows(), lay.pr, lay.pc);
      std::printf("left child %d border maps into parent positions: ",
                  lc.id);
      int shown = 0;
      for (int i = lc.ncols; i < lc.nrows() && shown < 8; ++i, ++shown) {
        auto it = std::lower_bound(root.row_indices.begin(),
                                   root.row_indices.end(),
                                   lc.row_indices[i]);
        std::printf("%d->%d ", i,
                    static_cast<int>(it - root.row_indices.begin()));
      }
      std::printf("...\n\n");
    }
    upcxx::barrier();

    minimpi::init();
    sparse::EaddBench bench(tree, /*block=*/8);
    bench.setup();
    const double dt = bench.run(sparse::EaddVariant::kUpcxxRpc);
    const auto bytes = bench.bytes_sent();
    const double total_time =
        upcxx::reduce_all(dt, upcxx::op_fast_max{}).wait();
    const auto total_bytes = upcxx::reduce_all(
                                 static_cast<double>(bytes),
                                 upcxx::op_fast_add{})
                                 .wait();
    std::printf("rank %d sent %.1f KB of packed updates\n", me,
                bytes / 1024.0);
    upcxx::barrier();
    if (me == 0)
      std::printf("\nextend-add traversal (UPC++ RPC + views): %.3f ms, "
                  "%.1f KB total on the wire\n",
                  total_time * 1e3, total_bytes / 1024.0);
    minimpi::finalize();
  });
}
