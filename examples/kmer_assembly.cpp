// De novo genome assembly motif (paper §IV-C cites HipMer [13]: "latency
// performance is a key consideration for many distributed hash table
// applications, such as genome assembly").
//
// The pipeline reproduced here is the contig-generation phase:
//   1. generate a random reference "genome" on rank 0 and broadcast it;
//   2. every rank extracts a slice of overlapping k-mers, storing each in a
//      distributed hash table as  kmer -> (left extension, right extension);
//   3. rank 0 picks seed k-mers and walks right extension by extension —
//      each step is one fine-grained remote lookup, the latency-bound
//      access pattern the paper's Fig 4 benchmark models;
//   4. the reassembled contig is checked against the reference.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/rng.hpp"
#include "upcxx/upcxx.hpp"

namespace {

constexpr int kK = 19;           // k-mer length
constexpr int kGenomeLen = 4000;  // reference length

const char kBases[] = "ACGT";

struct KmerInfo {
  char left = 0;   // base preceding this k-mer in the genome ('X' at start)
  char right = 0;  // base following it ('X' at end)
};

// kmer -> extensions, hashed across ranks.
using LocalMap = std::unordered_map<std::string, KmerInfo>;

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

int owner_of(const std::string& kmer) {
  return static_cast<int>(hash_str(kmer) %
                          static_cast<std::uint64_t>(upcxx::rank_n()));
}

}  // namespace

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();

    // (1) Reference genome, agreed on every rank via broadcast.
    std::string genome;
    if (me == 0) {
      arch::Xoshiro256 rng(20190527);  // paper's publication era
      genome.resize(kGenomeLen);
      for (auto& c : genome) c = kBases[rng.next() % 4];
    }
    genome = upcxx::broadcast(genome, 0).wait();

    // (2) Distributed k-mer table. Each rank inserts an interleaved slice of
    // the genome's k-mers — every insert is one RPC to the owning rank.
    upcxx::dist_object<LocalMap> table(LocalMap{});
    const int n_kmers = kGenomeLen - kK + 1;
    std::vector<upcxx::future<>> pending;
    for (int i = me; i < n_kmers; i += P) {
      KmerInfo info;
      info.left = i == 0 ? 'X' : genome[i - 1];
      info.right = i + kK < kGenomeLen ? genome[i + kK] : 'X';
      pending.push_back(upcxx::rpc(
          owner_of(genome.substr(i, kK)),
          [](upcxx::dist_object<LocalMap>& t, const std::string& kmer,
             KmerInfo inf) { t->insert({kmer, inf}); },
          table, genome.substr(i, kK), info));
      if (pending.size() % 64 == 0) upcxx::progress();
    }
    upcxx::when_all_range(pending).wait();
    upcxx::barrier();

    std::size_t local = table->size(), total = 0;
    total = upcxx::reduce_one(local, upcxx::op_fast_add{}, 0).wait();
    upcxx::barrier();

    // (3) Rank 0 walks the table from the genome's first k-mer, extending
    // right one base at a time — one remote lookup per base.
    if (me == 0) {
      std::printf("kmer_assembly: %d ranks, genome %d, k=%d, %zu kmers\n", P,
                  kGenomeLen, kK, total);
      std::string contig = genome.substr(0, kK);
      long lookups = 0;
      for (;;) {
        const std::string cur = contig.substr(contig.size() - kK, kK);
        KmerInfo info = upcxx::rpc(
                            owner_of(cur),
                            [](upcxx::dist_object<LocalMap>& t,
                               const std::string& kmer) {
                              auto it = t->find(kmer);
                              return it == t->end() ? KmerInfo{'?', '?'}
                                                    : it->second;
                            },
                            table, cur)
                            .wait();
        ++lookups;
        if (info.right == 'X' || info.right == '?') break;
        contig.push_back(info.right);
      }
      std::printf("  walked %ld lookups, contig length %zu\n", lookups,
                  contig.size());
      if (contig == genome) {
        std::printf("  contig matches the reference genome: OK\n");
      } else {
        std::printf("  MISMATCH: assembly diverged from reference\n");
        std::exit(1);
      }
    }
    upcxx::barrier();
  });
}
