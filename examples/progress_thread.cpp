// Persona showcase: a compute thread and a communication thread per rank.
//
// The paper (§III) explains that UPC++ has no hidden runtime threads — the
// user balances computation against attentiveness to progress. The persona
// API makes the classic resolution expressible: dedicate a thread to
// communication by migrating the *master persona* to it, while the
// primordial thread computes undisturbed and hands off communication
// requests via LPCs.
//
// upcxx::progress_thread (progress_thread.hpp) packages the pattern:
//   * constructing it liberates the master persona and spawns a thread
//     that acquires it and loops on progress(), so incoming RPCs are
//     served promptly (no attentiveness stalls);
//   * the compute thread asks for communication with pt.lpc(fn) and
//     receives results back on its own default persona;
//   * pt.stop() joins the thread and re-acquires the master persona.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "upcxx/upcxx.hpp"

namespace {

// Each rank exposes a counter that its *peers* bump via RPC. With a
// dedicated progress thread, bumps land while the owner is busy computing.
std::atomic<long>& counter() {
  static std::atomic<long> c{0};
  return c;
}

}  // namespace

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    constexpr int kBumpsPerPeer = 200;

    counter() = 0;

    // Communication thread: owns the master persona, polls progress. It
    // spins hard only while the data-motion engine has chunks to move;
    // otherwise it yields so oversubscribed hosts keep the compute thread
    // fed (the idiom bench/abl_overlap.cpp measures).
    upcxx::progress_thread pt;

    // Compute thread (this thread): crunch numbers, requesting
    // communication via LPCs to the master persona.
    double flops_sink = 0.0;
    std::vector<upcxx::future<>> sent;
    for (int i = 0; i < kBumpsPerPeer; ++i) {
      for (int peer = 0; peer < P; ++peer) {
        if (peer == me) continue;
        // Ask the comms thread to inject an rpc_ff bumping the peer.
        sent.push_back(pt.lpc([peer] {
          upcxx::rpc_ff(peer, [] { counter().fetch_add(1); });
        }));
      }
      // "Protracted computation without calls to progress" — safe now,
      // because the master persona's holder stays attentive.
      for (int k = 0; k < 1000; ++k)
        flops_sink += static_cast<double>(k % 7) * 1e-3;
    }
    // Wait for our LPC handoffs (fulfilled back on this thread's default
    // persona by its own progress calls inside wait()).
    for (auto& f : sent) f.wait();

    // Every peer bumps us (P-1)*kBumpsPerPeer times; the comms thread
    // executes those RPCs while we compute.
    const long expect = static_cast<long>(P - 1) * kBumpsPerPeer;
    while (counter().load(std::memory_order_relaxed) < expect)
      std::this_thread::yield();

    // Quiesce: all ranks done sending before tearing down the pattern.
    // (Barrier must run on the master persona — hand it to the comms
    // thread as one more LPC, and wait for the resulting future here.)
    pt.lpc([] { return upcxx::barrier_async(); }).wait();

    // Joins the comms thread and re-acquires the master persona here for
    // teardown.
    pt.stop();

    if (me == 0)
      std::printf(
          "progress_thread: %d ranks, %ld bumps each, compute sink %.1f — "
          "no attentiveness stalls\n",
          P, expect, flops_sink);
    upcxx::barrier();
  });
}
