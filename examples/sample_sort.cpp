// Distributed sample sort — the classic PGAS exercise (it appears in the
// UPC++ Programmer's Guide the paper cites as [3]) and a natural workout
// for the collective layer this library adds on top of the paper's feature
// set: allgather for splitter agreement, personalized alltoall (as an
// alltoallv of std::vector payloads) for the redistribution, and a final
// reduction to verify global order.
//
//   1. every rank generates N random keys;
//   2. each rank contributes a regular sample; allgather + sort yields
//      P-1 agreed splitters;
//   3. keys are binned by splitter and exchanged with one alltoall;
//   4. each rank sorts its received bucket — rank i's bucket is entirely
//      <= rank i+1's (checked with a boundary allgather).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/rng.hpp"
#include "arch/timer.hpp"
#include "upcxx/upcxx.hpp"

namespace {
constexpr int kKeysPerRank = 200000;
constexpr int kOversample = 8;  // samples per rank
}  // namespace

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();

    // (1) local keys.
    arch::Xoshiro256 rng(42 * (me + 1));
    std::vector<std::uint64_t> keys(kKeysPerRank);
    for (auto& k : keys) k = rng.next();

    const double t0 = arch::now_s();

    // (2) splitters: regular sample from each rank, gathered everywhere.
    std::vector<std::uint64_t> sample(kOversample);
    for (int s = 0; s < kOversample; ++s)
      sample[s] = keys[static_cast<std::size_t>(s) * kKeysPerRank /
                       kOversample];
    auto all_samples = upcxx::allgather(sample).wait();
    std::vector<std::uint64_t> pool;
    for (auto& v : all_samples) pool.insert(pool.end(), v.begin(), v.end());
    std::sort(pool.begin(), pool.end());
    std::vector<std::uint64_t> splitters(P - 1);
    for (int i = 1; i < P; ++i)
      splitters[i - 1] = pool[static_cast<std::size_t>(i) * pool.size() / P];

    // (3) bin and exchange: send[j] = my keys destined for rank j.
    std::vector<std::vector<std::uint64_t>> send(P);
    for (std::uint64_t k : keys) {
      const int dest = static_cast<int>(
          std::upper_bound(splitters.begin(), splitters.end(), k) -
          splitters.begin());
      send[dest].push_back(k);
    }
    auto recv = upcxx::alltoall(send).wait();

    // (4) local sort of the received bucket.
    std::vector<std::uint64_t> bucket;
    for (auto& v : recv) bucket.insert(bucket.end(), v.begin(), v.end());
    std::sort(bucket.begin(), bucket.end());
    const double dt = arch::now_s() - t0;

    // Verify: my smallest key >= left neighbor's largest, and the global
    // count is preserved.
    const std::uint64_t my_max = bucket.empty() ? 0 : bucket.back();
    auto maxes = upcxx::allgather(my_max).wait();
    auto total = upcxx::reduce_all(
                     static_cast<long>(bucket.size()), upcxx::op_fast_add{})
                     .wait();
    bool ok = total == static_cast<long>(P) * kKeysPerRank;
    if (me > 0 && !bucket.empty()) ok &= bucket.front() >= maxes[me - 1];

    auto all_ok =
        upcxx::reduce_all(ok ? 1 : 0, upcxx::op_fast_min{}).wait();
    if (me == 0) {
      std::printf(
          "sample_sort: %d ranks x %d keys sorted in %.1f ms (%.1f Mkeys/s "
          "aggregate) — %s\n",
          P, kKeysPerRank, dt * 1e3,
          static_cast<double>(P) * kKeysPerRank / dt / 1e6,
          all_ok ? "globally ordered" : "ORDER VIOLATION");
      if (!all_ok) std::exit(1);
    }
    upcxx::barrier();
  });
}
