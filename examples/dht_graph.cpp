// Distributed graph built on the hash-table motif (paper §IV-C).
//
// The paper motivates RPC with a distributed graph stored as a hash table
// of Vertex records: updating a remote vertex's adjacency list is one RPC,
// where pure RMA would need lock + rget + local update + rput + unlock, and
// could not handle std::vector/std::string layouts at all.
//
// This example builds a random ring-with-chords graph across all ranks,
// then runs a few rounds of label propagation (each vertex adopts the
// minimum label among itself and its neighbors) — the kind of irregular,
// fine-grained access pattern PGAS + RPC handles naturally.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/rng.hpp"
#include "upcxx/upcxx.hpp"

namespace {

struct Vertex {
  std::vector<int> nbs;  // neighbor vertex ids
  int label = 0;
};
using Graph = std::unordered_map<int, Vertex>;

int owner_of(int vertex, int ranks) { return vertex % ranks; }

}  // namespace

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    const int n_vertices = 64 * P;
    const int chords = 2 * n_vertices;

    upcxx::dist_object<Graph> graph(Graph{});

    // Create my vertices (label = own id).
    for (int v = me; v < n_vertices; v += P)
      (*graph)[v] = Vertex{{}, v};
    upcxx::barrier();

    // Add edges with RPCs to each endpoint's owner — the paper's
    // "update a vertex to add a new neighbor" idiom.
    auto add_edge = [&](int u, int v) {
      auto add_half = [](upcxx::dist_object<Graph>& g, int key, int nb) {
        g->at(key).nbs.push_back(nb);
      };
      return upcxx::when_all(
          upcxx::rpc(owner_of(u, upcxx::rank_n()), add_half, graph, u, v),
          upcxx::rpc(owner_of(v, upcxx::rank_n()), add_half, graph, v, u));
    };

    // Rank 0 seeds a ring; all ranks add random chords concurrently.
    upcxx::future<> edges = upcxx::make_future();
    if (me == 0)
      for (int v = 0; v < n_vertices; ++v)
        edges = upcxx::when_all(edges, add_edge(v, (v + 1) % n_vertices));
    arch::Xoshiro256 rng(42 + me);
    for (int c = me; c < chords; c += P) {
      int u = static_cast<int>(rng.next_below(n_vertices));
      int v = static_cast<int>(rng.next_below(n_vertices));
      if (u != v) edges = upcxx::when_all(edges, add_edge(u, v));
      if (!(c % 16)) upcxx::progress();
    }
    edges.wait();
    upcxx::barrier();

    // Label propagation: everyone pushes its labels to neighbors; a ring
    // plus chords converges to label 0 everywhere within a few rounds.
    for (int round = 0;; ++round) {
      upcxx::promise<> sent;
      int changed = 0;
      for (auto& [v, vx] : *graph) {
        for (int nb : vx.nbs) {
          sent.require_anonymous(1);
          upcxx::rpc(owner_of(nb, P),
                     [](upcxx::dist_object<Graph>& g, int key, int label) {
                       auto& tv = g->at(key);
                       if (label < tv.label) tv.label = label;
                     },
                     graph, nb, vx.label)
              .then([sent]() mutable { sent.fulfill_anonymous(1); });
        }
        upcxx::progress();
      }
      sent.finalize().wait();
      upcxx::barrier();
      // Convergence check: count vertices whose label exceeds the minimum.
      for (auto& [v, vx] : *graph) changed += (vx.label != 0);
      int remaining =
          upcxx::reduce_all(changed, upcxx::op_fast_add{}).wait();
      if (me == 0)
        std::printf("round %d: %d vertices not yet at label 0\n", round,
                    remaining);
      if (remaining == 0 || round > 2 * n_vertices) break;
    }

    // Degree statistics via collectives.
    long degree = 0;
    for (auto& [v, vx] : *graph) degree += static_cast<long>(vx.nbs.size());
    long total = upcxx::reduce_all(degree, upcxx::op_fast_add{}).wait();
    if (me == 0)
      std::printf("graph: %d vertices, %ld directed edge slots (expected "
                  "~%d)\n",
                  n_vertices, total, 2 * (n_vertices + chords));
    upcxx::barrier();
  });
}
