// Monte-Carlo pi with remote atomics and collectives — the smallest
// "lock-free distributed data structure" example (paper §II motivates
// remote atomics for exactly this kind of shared counter).
//
// Every rank throws darts; hits are accumulated with offloaded fetch-adds
// into rank 0's counters, and the final estimate is broadcast back.
#include <cstdio>

#include "arch/rng.hpp"
#include "upcxx/upcxx.hpp"

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    constexpr long kDarts = 2'000'000;

    upcxx::atomic_domain<std::int64_t> ad(
        {upcxx::atomic_op::add, upcxx::atomic_op::load});

    // Rank 0 owns the counters; everyone learns the pointer by broadcast.
    upcxx::global_ptr<std::int64_t> counters;
    if (me == 0) {
      counters = upcxx::allocate<std::int64_t>(2);
      counters.local()[0] = 0;  // hits
      counters.local()[1] = 0;  // throws
    }
    counters = upcxx::broadcast(counters, 0).wait();

    arch::Xoshiro256 rng(9000 + me);
    long hits = 0;
    for (long i = 0; i < kDarts; ++i) {
      const double x = rng.next_double(), y = rng.next_double();
      hits += (x * x + y * y <= 1.0);
    }

    // Batched atomic updates (add = pure update, no fetch needed).
    upcxx::promise<> p;
    p.require_anonymous(2);
    ad.add(counters + 0, hits).then([p]() mutable {
      p.fulfill_anonymous(1);
    });
    ad.add(counters + 1, kDarts).then([p]() mutable {
      p.fulfill_anonymous(1);
    });
    p.finalize().wait();
    upcxx::barrier();

    if (me == 0) {
      const auto h = ad.load(counters + 0).wait();
      const auto t = ad.load(counters + 1).wait();
      std::printf("pi ~= %.6f  (%lld hits / %lld throws on %d ranks)\n",
                  4.0 * static_cast<double>(h) / static_cast<double>(t),
                  static_cast<long long>(h), static_cast<long long>(t),
                  upcxx::rank_n());
      upcxx::deallocate(counters);
    }
    upcxx::barrier();
  });
}
