// Quickstart: a tour of the API surface from the paper's §II, in the order
// the paper introduces it — SPMD ranks, shared-segment allocation, global
// pointers, one-sided RMA, futures/promises, RPC, atomics, collectives.
//
// Run:   ./quickstart            (4 ranks by default)
//        UPCXX_RANKS=8 ./quickstart
//        UPCXX_BACKEND=process ./quickstart   (forked-process ranks)
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "upcxx/upcxx.hpp"

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    if (me == 0) std::printf("quickstart on %d ranks\n", P);

    // --- global memory & global pointers -------------------------------
    // Each rank allocates a slot in its shared segment and publishes the
    // pointer through a dist_object directory (no symmetric heap needed).
    upcxx::global_ptr<int> slot = upcxx::new_<int>(-1);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(slot);

    // Fetching a remote global pointer is explicit communication:
    upcxx::global_ptr<int> right = dir.fetch((me + 1) % P).wait();

    // --- one-sided RMA ---------------------------------------------------
    // Put my rank into my right neighbor's slot. Communication is
    // asynchronous by default; wait() blocks on the returned future.
    upcxx::rput(me, right).wait();
    upcxx::barrier();
    int from_left = upcxx::rget(slot).wait();
    std::printf("rank %d: left neighbor is %d\n", me, from_left);

    // --- futures: chaining and conjoining --------------------------------
    // Chain a callback onto a get, conjoin two asynchronous reads.
    auto f = upcxx::when_all(upcxx::rget(right), upcxx::rget(slot))
                 .then([](int r, int l) { return r + l; });
    std::printf("rank %d: sum of neighbors' slots = %d\n", me, f.wait());

    // --- promises as completion counters ---------------------------------
    upcxx::promise<> p;
    for (int i = 0; i < 8; ++i)
      upcxx::rput(me * 100 + i, right, upcxx::operation_cx::as_promise(p));
    p.finalize().wait();  // all eight puts complete

    // --- RPC: ship computation to the data -------------------------------
    upcxx::barrier();
    auto len = upcxx::rpc((me + 1) % P,
                          [](const std::string& s) { return s.size(); },
                          std::string("hello from rank ") +
                              std::to_string(me))
                   .wait();
    std::printf("rank %d: RPC target measured %zu chars\n", me, len);

    // --- remote atomics ---------------------------------------------------
    upcxx::atomic_domain<std::int64_t> ad(
        {upcxx::atomic_op::fetch_add, upcxx::atomic_op::load});
    static thread_local upcxx::global_ptr<std::int64_t> counter;
    if (me == 0) counter = upcxx::new_<std::int64_t>(0);
    counter = upcxx::broadcast(counter, 0).wait();
    ad.fetch_add(counter, 1).wait();
    upcxx::barrier();
    if (me == 0)
      std::printf("atomic counter after all ranks incremented: %lld\n",
                  static_cast<long long>(ad.load(counter).wait()));

    // --- collectives -------------------------------------------------------
    int total = upcxx::reduce_all(me, upcxx::op_fast_add{}).wait();
    if (me == 0)
      std::printf("reduce_all(rank ids) = %d (expected %d)\n", total,
                  P * (P - 1) / 2);

    upcxx::barrier();
    if (me == 0) {
      upcxx::delete_(counter);
      std::printf("quickstart done\n");
    }
    upcxx::delete_(slot);
  });
}
