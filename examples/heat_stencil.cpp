// 1-D heat diffusion with one-sided halo exchange — the classic PGAS
// regular-communication motif, complementing the paper's irregular ones.
//
// Each rank owns a block of the rod; every step it rputs its boundary cells
// directly into its neighbors' ghost cells (zero-copy one-sided RMA), uses
// promises to track both transfers, overlaps the interior update with the
// halo exchange, and checks global convergence with reduce_all.
#include <cmath>
#include <cstdio>
#include <vector>

#include "upcxx/upcxx.hpp"

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    const int n_local = 1 << 12;
    const double alpha = 0.25;

    // Local block with two ghost cells, allocated in the shared segment so
    // neighbors can rput into it.
    auto cur = upcxx::allocate<double>(n_local + 2);
    auto nxt = upcxx::allocate<double>(n_local + 2);
    upcxx::dist_object<upcxx::global_ptr<double>> dir(cur);

    // Initial condition: a hot spike on rank 0's left edge.
    for (int i = 0; i < n_local + 2; ++i) cur.local()[i] = 0.0;
    if (me == 0) cur.local()[1] = 1000.0;

    const int left = me > 0 ? me - 1 : -1;
    const int right = me < P - 1 ? me + 1 : -1;
    auto left_ghost =
        left >= 0 ? dir.fetch(left).wait() : upcxx::global_ptr<double>{};
    auto right_ghost =
        right >= 0 ? dir.fetch(right).wait() : upcxx::global_ptr<double>{};
    upcxx::barrier();

    int step = 0;
    for (; step < 2000; ++step) {
      double* u = cur.local();
      // Push my boundary cells into the neighbors' ghost slots; a promise
      // conjoins both transfers (paper §II completion idiom).
      upcxx::promise<> halos;
      if (left >= 0)
        upcxx::rput(u[1], left_ghost + (n_local + 1),
                    upcxx::operation_cx::as_promise(halos));
      if (right >= 0)
        upcxx::rput(u[n_local], right_ghost + 0,
                    upcxx::operation_cx::as_promise(halos));

      // Overlap: update the interior while the halo is in flight.
      double* v = nxt.local();
      for (int i = 2; i <= n_local - 1; ++i)
        v[i] = u[i] + alpha * (u[i - 1] - 2 * u[i] + u[i + 1]);

      halos.finalize().wait();
      upcxx::barrier();  // ghosts now contain neighbors' boundary values

      // Edge cells use the freshly-received ghosts (reflecting ends).
      const double gl = left >= 0 ? u[0] : u[1];
      const double gr = right >= 0 ? u[n_local + 1] : u[n_local];
      v[1] = u[1] + alpha * (gl - 2 * u[1] + u[2]);
      v[n_local] = u[n_local] + alpha * (u[n_local - 1] - 2 * u[n_local] + gr);

      std::swap(cur, nxt);
      // Re-publish: neighbors must write into the *current* buffer next
      // step. Cheap trick: exchange the new pointer each step.
      upcxx::dist_object<upcxx::global_ptr<double>> dnew(cur);
      left_ghost = left >= 0 ? dnew.fetch(left).wait()
                             : upcxx::global_ptr<double>{};
      right_ghost = right >= 0 ? dnew.fetch(right).wait()
                               : upcxx::global_ptr<double>{};
      upcxx::barrier();

      if (step % 200 == 0) {
        double local_heat = 0;
        for (int i = 1; i <= n_local; ++i) local_heat += cur.local()[i];
        double total =
            upcxx::reduce_all(local_heat, upcxx::op_fast_add{}).wait();
        double peak_local = 0;
        for (int i = 1; i <= n_local; ++i)
          peak_local = std::max(peak_local, cur.local()[i]);
        double peak =
            upcxx::reduce_all(peak_local, upcxx::op_fast_max{}).wait();
        if (me == 0)
          std::printf("step %4d: total heat %.3f, peak %.6f\n", step, total,
                      peak);
        if (peak < 1.0) break;  // diffused flat enough
      }
    }
    if (me == 0) std::printf("converged after ~%d steps\n", step);
    upcxx::barrier();
    upcxx::deallocate(cur);
    upcxx::deallocate(nxt);
  });
}
