// 1-D heat diffusion with one-sided overlapped halo exchange — the classic
// PGAS regular-communication motif, complementing the paper's irregular
// ones, written against the async completion machinery:
//
//   * both parity buffers are allocated and published ONCE (a
//     dist_object per buffer pair, fetched before the loop) instead of
//     re-publishing pointers every step;
//   * each step pushes boundary cells straight into the neighbors' ghost
//     slots (zero-copy one-sided RMA) with a promise conjoining the
//     transfers AND a remote_cx::as_rpc arrival notification — the data
//     is guaranteed visible at the target when the notification runs;
//   * the interior update overlaps the in-flight halos;
//   * per-neighbor arrival counters replace the per-step barrier: the
//     steady-state loop is barrier-free (parity double-buffering bounds
//     neighbor skew to one step, and per-source FIFO delivery makes the
//     per-side counters exact).
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "upcxx/upcxx.hpp"

namespace {

// Halo-arrival counters, bumped by the *neighbors'* remote_cx
// notifications. Per side: arrivals from one source are FIFO, so counter
// value k means "this neighbor's halos for steps 0..k-1 have landed".
// thread_local = per rank on both the thread and process backends.
thread_local long g_arrived[2] = {0, 0};  // [0]=from left, [1]=from right

}  // namespace

int main() {
  return upcxx::run_env([] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    const int n_local = 1 << 12;
    const double alpha = 0.25;

    // Two local blocks (parity double-buffer) with ghost cells, in the
    // shared segment so neighbors can rput into them; published once.
    auto buf_a = upcxx::allocate<double>(n_local + 2);
    auto buf_b = upcxx::allocate<double>(n_local + 2);
    using GpPair =
        std::pair<upcxx::global_ptr<double>, upcxx::global_ptr<double>>;
    upcxx::dist_object<GpPair> dir(GpPair{buf_a, buf_b});

    for (int i = 0; i < n_local + 2; ++i) {
      buf_a.local()[i] = 0.0;
      buf_b.local()[i] = 0.0;
    }
    if (me == 0) buf_a.local()[1] = 1000.0;  // hot spike on the left edge

    const int left = me > 0 ? me - 1 : -1;
    const int right = me < P - 1 ? me + 1 : -1;
    GpPair lbufs = left >= 0 ? dir.fetch(left).wait() : GpPair{};
    GpPair rbufs = right >= 0 ? dir.fetch(right).wait() : GpPair{};
    upcxx::barrier();  // everyone published and fetched; steady state begins
    // (No counter reset here: a neighbor past the barrier may issue its
    // step-0 halo immediately, and its notification can run inside THIS
    // rank's barrier-wait progress loop. The thread_locals start at zero
    // for each SPMD region, which is exactly the step-0 baseline.)

    auto cur = buf_a, nxt = buf_b;
    int step = 0;
    for (; step < 2000; ++step) {
      double* u = cur.local();
      // Neighbors' buffers of *this* step's parity.
      const bool even = (step % 2) == 0;
      auto left_cur = even ? lbufs.first : lbufs.second;
      auto right_cur = even ? rbufs.first : rbufs.second;

      // Push my boundary cells into the neighbors' ghost slots. The
      // promise conjoins the transfers (paper §II completion idiom); the
      // remote_cx notification bumps the neighbor's arrival counter only
      // after the value is visible there. I am my left neighbor's *right*
      // neighbor, hence the side index in the notification.
      upcxx::promise<> halos;
      if (left >= 0)
        upcxx::rput(u[1], left_cur + (n_local + 1),
                    upcxx::operation_cx::as_promise(halos) |
                        upcxx::remote_cx::as_rpc(
                            [](int side) { ++g_arrived[side]; }, 1));
      if (right >= 0)
        upcxx::rput(u[n_local], right_cur + 0,
                    upcxx::operation_cx::as_promise(halos) |
                        upcxx::remote_cx::as_rpc(
                            [](int side) { ++g_arrived[side]; }, 0));

      // Overlap: update the interior while the halos are in flight.
      double* v = nxt.local();
      for (int i = 2; i <= n_local - 1; ++i)
        v[i] = u[i] + alpha * (u[i - 1] - 2 * u[i] + u[i + 1]);

      halos.finalize().wait();
      // Wait for this step's ghosts from each existing neighbor — no
      // barrier: per-side counters and parity buffering are enough.
      while ((left >= 0 && g_arrived[0] < step + 1) ||
             (right >= 0 && g_arrived[1] < step + 1))
        upcxx::progress();

      // Edge cells use the freshly-received ghosts (reflecting ends).
      const double gl = left >= 0 ? u[0] : u[1];
      const double gr = right >= 0 ? u[n_local + 1] : u[n_local];
      v[1] = u[1] + alpha * (gl - 2 * u[1] + u[2]);
      v[n_local] = u[n_local] + alpha * (u[n_local - 1] - 2 * u[n_local] + gr);

      std::swap(cur, nxt);

      if (step % 200 == 0) {
        double local_heat = 0;
        for (int i = 1; i <= n_local; ++i) local_heat += cur.local()[i];
        double total =
            upcxx::reduce_all(local_heat, upcxx::op_fast_add{}).wait();
        double peak_local = 0;
        for (int i = 1; i <= n_local; ++i)
          peak_local = std::max(peak_local, cur.local()[i]);
        double peak =
            upcxx::reduce_all(peak_local, upcxx::op_fast_max{}).wait();
        if (me == 0)
          std::printf("step %4d: total heat %.3f, peak %.6f\n", step, total,
                      peak);
        if (peak < 1.0) break;  // diffused flat enough
      }
    }
    if (me == 0) std::printf("converged after ~%d steps\n", step);
    upcxx::barrier();
    upcxx::deallocate(buf_a);
    upcxx::deallocate(buf_b);
  });
}
