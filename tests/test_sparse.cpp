// Sparse substrate tests: synthetic tree invariants, 2-D block-cyclic
// layout properties, and extend-add correctness (all three variants agree
// with a serial oracle).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/sparse/eadd.hpp"
#include "apps/sparse/frontal.hpp"
#include "minimpi/minimpi.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

sparse::TreeParams small_tree() {
  sparse::TreeParams p;
  p.levels = 4;
  p.n_vertices = 4000;
  p.min_sep = 4;
  p.max_front = 96;
  p.seed = 7;
  return p;
}

// ------------------------------------------------------------------- tree

class TreeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeSweep, InvariantsHold) {
  auto [levels, nranks] = GetParam();
  sparse::TreeParams p = small_tree();
  p.levels = levels;
  auto t = sparse::FrontalTree::synthetic(p, nranks);
  EXPECT_EQ(t.nodes.size(), (1u << levels) - 1);
  EXPECT_TRUE(t.check_invariants());
  // Root covers all ranks.
  EXPECT_EQ(t.root().team_lo, 0);
  EXPECT_EQ(t.root().team_np, nranks);
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndRanks, TreeSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 6),
                       ::testing::Values(1, 3, 4, 8)));

TEST(FrontalTree, PostorderAndLevels) {
  auto t = sparse::FrontalTree::synthetic(small_tree(), 4);
  // Children precede parents in storage order.
  for (const auto& n : t.nodes) {
    if (n.lchild >= 0) {
      EXPECT_LT(n.lchild, n.id);
      EXPECT_LT(n.rchild, n.id);
      EXPECT_EQ(t.nodes[n.lchild].parent, n.id);
    }
  }
  auto lvls = t.levels_bottom_up();
  ASSERT_EQ(lvls.size(), 4u);
  EXPECT_EQ(lvls.back().size(), 1u);            // root level last
  EXPECT_EQ(lvls.front().size(), 8u);           // leaves first
  EXPECT_EQ(t.nodes[lvls.back()[0]].parent, -1);
}

TEST(FrontalTree, SeparatorSizesFollowNdLaw) {
  sparse::TreeParams p = small_tree();
  p.levels = 5;
  p.n_vertices = 1e6;
  p.max_front = 100000;
  p.min_sep = 2;
  auto t = sparse::FrontalTree::synthetic(p, 1);
  // Root separator ~ c * N^(2/3); children roughly (1/2)^(2/3) of that.
  const double root_sep = t.root().ncols;
  EXPECT_NEAR(root_sep, std::pow(1e6, 2.0 / 3.0), root_sep * 0.05);
  const auto& l = t.nodes[t.root().lchild];
  EXPECT_LT(l.ncols, root_sep);
  EXPECT_GT(l.ncols, root_sep * 0.4);
}

TEST(FrontalTree, ProportionalMappingSplitsByCost) {
  sparse::TreeParams p = small_tree();
  p.levels = 6;
  auto t = sparse::FrontalTree::synthetic(p, 16);
  const auto& root = t.root();
  const auto& l = t.nodes[root.lchild];
  const auto& r = t.nodes[root.rchild];
  // Balanced synthetic tree: close to an even split, covering all ranks.
  EXPECT_EQ(l.team_np + r.team_np, 16);
  EXPECT_GE(l.team_np, 4);
  EXPECT_GE(r.team_np, 4);
  EXPECT_EQ(l.team_lo, 0);
  EXPECT_EQ(r.team_lo, l.team_np);
}

// ----------------------------------------------------------------- layout

class LayoutSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayoutSweep, OwnershipPartitionsMatrix) {
  auto [n, np, block] = GetParam();
  auto l = sparse::Layout2D::make(n, /*team_lo=*/3, np, block);
  EXPECT_EQ(l.nprocs(), np);
  // Every entry has exactly one owner in range, and local extents add up.
  std::map<int, std::size_t> counted;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int o = l.owner(i, j);
      EXPECT_GE(o, 3);
      EXPECT_LT(o, 3 + np);
      ++counted[o];
    }
  }
  std::size_t total = 0;
  for (int r = 3; r < 3 + np; ++r) {
    auto [ml, nl] = l.local_extent(r);
    EXPECT_EQ(counted[r], static_cast<std::size_t>(ml) * nl)
        << "rank " << r;
    total += counted[r];
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n) * n);
}

TEST_P(LayoutSweep, LocalOffsetsAreBijective) {
  auto [n, np, block] = GetParam();
  auto l = sparse::Layout2D::make(n, 0, np, block);
  for (int r = 0; r < np; ++r) {
    auto [ml, nl] = l.local_extent(r);
    std::vector<char> seen(static_cast<std::size_t>(ml) * nl, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        if (l.owner(i, j) != r) continue;
        auto off = l.local_offset(i, j, r);
        ASSERT_LT(off, seen.size());
        EXPECT_EQ(seen[off], 0) << "offset collision at (" << i << "," << j
                                << ")";
        seen[off] = 1;
      }
    for (char s : seen) EXPECT_EQ(s, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutSweep,
    ::testing::Combine(::testing::Values(1, 7, 64, 130),
                       ::testing::Values(1, 2, 4, 6),
                       ::testing::Values(8, 32)));

// ------------------------------------------------------------- extend-add

// Serial oracle: dense per-front maps, direct accumulation.
std::map<std::pair<int, std::pair<int, int>>, double> eadd_oracle(
    const sparse::FrontalTree& t) {
  // front -> dense matrix (row-major over front coords).
  std::vector<std::vector<double>> mats(t.nodes.size());
  for (const auto& n : t.nodes) {
    mats[n.id].assign(static_cast<std::size_t>(n.nrows()) * n.nrows(), 0.0);
    if (n.parent < 0) continue;
    for (int j = n.ncols; j < n.nrows(); ++j)
      for (int i = n.ncols; i < n.nrows(); ++i)
        mats[n.id][static_cast<std::size_t>(i) * n.nrows() + j] =
            sparse::synth_value(n.id, n.row_indices[i], n.row_indices[j]);
  }
  for (const auto& lvl : t.levels_bottom_up()) {
    for (int fid : lvl) {
      const auto& par = t.nodes[fid];
      if (par.lchild < 0) continue;
      for (int child : {par.lchild, par.rchild}) {
        const auto& ch = t.nodes[child];
        std::vector<int> pos(ch.nrows(), -1);
        for (int i = ch.ncols; i < ch.nrows(); ++i) {
          auto it = std::lower_bound(par.row_indices.begin(),
                                     par.row_indices.end(),
                                     ch.row_indices[i]);
          pos[i] = static_cast<int>(it - par.row_indices.begin());
        }
        for (int j = ch.ncols; j < ch.nrows(); ++j)
          for (int i = ch.ncols; i < ch.nrows(); ++i)
            mats[fid][static_cast<std::size_t>(pos[i]) * par.nrows() +
                      pos[j]] +=
                mats[child][static_cast<std::size_t>(i) * ch.nrows() + j];
      }
    }
  }
  std::map<std::pair<int, std::pair<int, int>>, double> out;
  for (const auto& n : t.nodes)
    for (int i = 0; i < n.nrows(); ++i)
      for (int j = 0; j < n.nrows(); ++j) {
        double v = mats[n.id][static_cast<std::size_t>(i) * n.nrows() + j];
        if (v != 0.0) out[{n.id, {i, j}}] = v;
      }
  return out;
}

class EaddVariants : public ::testing::TestWithParam<sparse::EaddVariant> {};

TEST_P(EaddVariants, MatchesSerialOracle) {
  const auto variant = GetParam();
  const auto params = small_tree();
  // Oracle computed once outside the SPMD region.
  auto tree1 = sparse::FrontalTree::synthetic(params, 4);
  auto oracle = eadd_oracle(tree1);

  spmd(4, [&] {
    minimpi::init();
    auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());
    sparse::EaddBench bench(tree, /*block=*/8);
    bench.setup();
    bench.run(variant);
    // Every front entry this rank owns must match the oracle.
    for (const auto& n : tree.nodes) {
      const auto& l = bench.layout(n.id);
      if (!l.is_member(upcxx::rank_me())) continue;
      auto& buf = bench.storage(n.id);
      for (int i = 0; i < n.nrows(); ++i)
        for (int j = 0; j < n.nrows(); ++j) {
          if (l.owner(i, j) != upcxx::rank_me()) continue;
          auto it = oracle.find({n.id, {i, j}});
          const double expect = (it == oracle.end()) ? 0.0 : it->second;
          ASSERT_NEAR(buf[l.local_offset(i, j, upcxx::rank_me())], expect,
                      1e-12)
              << "front " << n.id << " (" << i << "," << j << ")";
        }
    }
    minimpi::finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(AllVariants, EaddVariants,
                         ::testing::Values(sparse::EaddVariant::kUpcxxRpc,
                                           sparse::EaddVariant::kMpiAlltoallv,
                                           sparse::EaddVariant::kMpiP2p),
                         [](const auto& info) {
                           switch (info.param) {
                             case sparse::EaddVariant::kUpcxxRpc:
                               return "UpcxxRpc";
                             case sparse::EaddVariant::kMpiAlltoallv:
                               return "MpiAlltoallv";
                             default:
                               return "MpiP2p";
                           }
                         });

TEST(Eadd, AllVariantsProduceIdenticalChecksums) {
  spmd(6, [] {
    minimpi::init();
    auto tree = sparse::FrontalTree::synthetic(small_tree(), upcxx::rank_n());
    sparse::EaddBench bench(tree, 8);
    bench.setup();
    std::vector<double> sums;
    for (auto v :
         {sparse::EaddVariant::kUpcxxRpc, sparse::EaddVariant::kMpiAlltoallv,
          sparse::EaddVariant::kMpiP2p}) {
      bench.reset_values();
      bench.run(v);
      double local = bench.local_checksum();
      sums.push_back(
          upcxx::reduce_all(local, upcxx::op_fast_add{}).wait());
    }
    EXPECT_NEAR(sums[0], sums[1], std::abs(sums[0]) * 1e-12 + 1e-12);
    EXPECT_NEAR(sums[0], sums[2], std::abs(sums[0]) * 1e-12 + 1e-12);
    minimpi::finalize();
  });
}

TEST(Eadd, RepeatedRunsDeterministic) {
  spmd(4, [] {
    minimpi::init();
    auto tree = sparse::FrontalTree::synthetic(small_tree(), upcxx::rank_n());
    sparse::EaddBench bench(tree, 8);
    bench.setup();
    bench.run(sparse::EaddVariant::kUpcxxRpc);
    double first =
        upcxx::reduce_all(bench.local_checksum(), upcxx::op_fast_add{}).wait();
    bench.reset_values();
    bench.run(sparse::EaddVariant::kUpcxxRpc);
    double second =
        upcxx::reduce_all(bench.local_checksum(), upcxx::op_fast_add{}).wait();
    EXPECT_DOUBLE_EQ(first, second);
    minimpi::finalize();
  });
}

TEST(Eadd, SingleRankDegenerate) {
  spmd(1, [] {
    minimpi::init();
    auto tree = sparse::FrontalTree::synthetic(small_tree(), 1);
    sparse::EaddBench bench(tree, 8);
    bench.setup();
    bench.run(sparse::EaddVariant::kUpcxxRpc);
    EXPECT_NE(bench.local_checksum(), 0.0);
    minimpi::finalize();
  });
}

}  // namespace
