// Helpers for running SPMD test bodies under gtest.
//
// Thread-backend ranks run inside the test process, so gtest EXPECT/ASSERT
// macros work directly in rank code (googletest failure recording is
// thread-safe on pthread platforms).
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "upcxx/upcxx.hpp"

namespace testutil {

// Default substrate config for tests: small arena, fast to create.
inline gex::Config test_cfg(int ranks) {
  gex::Config c;
  c.ranks = ranks;
  c.segment_bytes = 8 << 20;
  c.ring_bytes = 256 << 10;
  c.eager_max = 8 << 10;
  c.heap_bytes = 32 << 20;
  return c;
}

// Runs fn on `ranks` ranks; fails the test if any rank fails.
inline void spmd(int ranks, const std::function<void()>& fn) {
  int fails = upcxx::run(test_cfg(ranks), fn);
  EXPECT_EQ(fails, 0) << "SPMD body failed on " << fails << " rank(s)";
}

// Single-rank convenience (futures, serialization, local semantics).
inline void solo(const std::function<void()>& fn) { spmd(1, fn); }

}  // namespace testutil
