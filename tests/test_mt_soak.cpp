// Seeded multi-thread soak: N injector threads per rank hammer a random
// mix of rput/rget/rpc/copy at their own disjoint slice of the peer's
// segment, with a local shadow to verify every byte that comes back and
// conservation asserts on the rpc counters afterwards. Barriers and
// atomic fetch_adds ride along at deterministic op indices — the same
// schedule on every rank, so collective entry counts match — proving the
// full op surface is injectable mid-stream, not just point-to-point RMA.
// Runs over the AM wire (so every op crosses the transport) on BOTH
// transports — the mmap shared-arena ring and the per-pair shmfile rings
// — and routes the large ops through the XferEngine (rma_async_min) so
// the chunked path soaks too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "spmd_helpers.hpp"

namespace {

constexpr int kThreads = 3;
constexpr int kOpsPerThread = 120;
constexpr std::size_t kSlice = 4096;  // u32 elements per thread slice

// Thread backend: one process, so these are shared across ranks — index
// by rank. Senders bump sent_to[target] before injecting; the rpc body
// bumps executed[rank_me()] on the target. Conservation: after both ranks
// drain, executed[me] == sent_to[me].
std::atomic<long> g_executed[2];
std::atomic<long> g_sent_to[2];

void soak_body() {
  const int me = upcxx::rank_me();
  const int peer = 1 - me;
  if (me == 0) {
    g_executed[0] = g_executed[1] = 0;
    g_sent_to[0] = g_sent_to[1] = 0;
  }
  upcxx::barrier();

  auto mine = upcxx::allocate<std::uint32_t>(kThreads * kSlice);
  std::fill_n(mine.local(), kThreads * kSlice, 0u);
  upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
  auto remote = dir.fetch(peer).wait();

  // Collectively constructed before any injector exists; the ops inside
  // the threads are point-to-point. Thread t is the sole writer of the
  // peer's slot t, so fetched values form a strict 0..n-1 sequence.
  upcxx::atomic_domain<std::int64_t> ad(
      {upcxx::atomic_op::fetch_add, upcxx::atomic_op::load}, upcxx::world());
  auto aslots = upcxx::allocate<std::int64_t>(kThreads);
  std::fill_n(aslots.local(), kThreads, 0);
  upcxx::dist_object<upcxx::global_ptr<std::int64_t>> adir(aslots);
  auto apeer = adir.fetch(peer).wait();
  upcxx::barrier();

  const auto rpcs_before = upcxx::experimental::stats().rpcs_sent;
  std::atomic<long> my_rpcs{0};

  upcxx::injector inj;
  std::atomic<int> alive{kThreads};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      upcxx::injection_scope scope(inj);
      std::mt19937_64 rng(0x50AC5EEDull + me * 16 + t);
      auto slice = remote + static_cast<std::ptrdiff_t>(t * kSlice);
      // Shadow of the peer-side slice this thread exclusively owns.
      std::vector<std::uint32_t> shadow(kSlice, 0u);
      std::vector<std::uint32_t> buf(kSlice);
      std::int64_t amo_count = 0;

      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::size_t len = 1 + rng() % 2048;
        const std::size_t off = rng() % (kSlice - len + 1);
        switch (rng() % 7) {
          case 0: {  // bulk put
            for (std::size_t i = 0; i < len; ++i)
              shadow[off + i] = static_cast<std::uint32_t>(rng());
            upcxx::rput(shadow.data() + off,
                        slice + static_cast<std::ptrdiff_t>(off), len)
                .wait();
            break;
          }
          case 1: {  // bulk get + shadow verify
            upcxx::rget(slice + static_cast<std::ptrdiff_t>(off),
                        buf.data(), len)
                .wait();
            for (std::size_t i = 0; i < len; ++i)
              ASSERT_EQ(buf[i], shadow[off + i]) << "off=" << off + i;
            break;
          }
          case 2: {  // scalar put
            shadow[off] = static_cast<std::uint32_t>(rng());
            upcxx::rput(shadow[off], slice + static_cast<std::ptrdiff_t>(off))
                .wait();
            break;
          }
          case 3: {  // scalar get + verify
            const auto v =
                upcxx::rget(slice + static_cast<std::ptrdiff_t>(off)).wait();
            ASSERT_EQ(v, shadow[off]);
            break;
          }
          case 4: {  // rpc round trip
            g_sent_to[peer].fetch_add(1);
            my_rpcs.fetch_add(1);
            const auto x = static_cast<int>(rng() % 1000);
            const int r = upcxx::rpc(
                              peer,
                              [](int a) {
                                g_executed[upcxx::rank_me()].fetch_add(1);
                                return a + 1;
                              },
                              x)
                              .wait();
            ASSERT_EQ(r, x + 1);
            break;
          }
          case 5: {  // copy write
            for (std::size_t i = 0; i < len; ++i)
              shadow[off + i] = static_cast<std::uint32_t>(rng());
            upcxx::copy(shadow.data() + off,
                        slice + static_cast<std::ptrdiff_t>(off), len)
                .wait();
            break;
          }
          default: {  // copy read + verify
            upcxx::copy(slice + static_cast<std::ptrdiff_t>(off),
                        buf.data(), len)
                .wait();
            for (std::size_t i = 0; i < len; ++i)
              ASSERT_EQ(buf[i], shadow[off + i]);
            break;
          }
        }
        // Deterministic mix-ins, independent of the rng stream so every
        // rank runs the same schedule. The fetch_add's shadow is the local
        // count: a dropped or duplicated op skews prev immediately.
        if (op % 24 == 11) {
          const auto prev = ad.fetch_add(apeer + t, 1).wait();
          ASSERT_EQ(prev, amo_count);
          ++amo_count;
        }
        // Rank-level barrier from inside the injection scope, concurrent
        // with the other threads' RMA. Anonymous barriers match by count,
        // and every rank's thread t reaches this at the same op index.
        if (op % 40 == 23) upcxx::barrier();
      }
      // Full-slice final check before leaving the injection scope.
      upcxx::rget(slice, buf.data(), kSlice).wait();
      for (std::size_t i = 0; i < kSlice; ++i) ASSERT_EQ(buf[i], shadow[i]);
      ASSERT_EQ(ad.load(apeer + t).wait(), amo_count);
      alive.fetch_sub(1, std::memory_order_release);
    });

  while (alive.load(std::memory_order_acquire) != 0) upcxx::progress();
  for (auto& th : ts) th.join();

  // Drain any rpc replies still crossing, then settle both ranks.
  while (g_executed[me].load() < g_sent_to[me].load()) upcxx::progress();
  upcxx::barrier();

  // Conservation: every rpc aimed at me executed exactly once, and the
  // relaxed-atomic stats counted every injector-thread send.
  EXPECT_EQ(g_executed[me].load(), g_sent_to[me].load());
  EXPECT_EQ(upcxx::experimental::stats().rpcs_sent - rpcs_before,
            static_cast<std::uint64_t>(my_rpcs.load()));

  // The peer's thread t was the sole writer of local slot t: the landed
  // counts must equal the deterministic fetch_add schedule (5 per thread
  // at kOpsPerThread=120, op % 24 == 11).
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(aslots.local()[t], (kOpsPerThread + 12) / 24);

  upcxx::barrier();
  upcxx::deallocate(aslots);
  upcxx::deallocate(mine);
}

gex::Config soak_cfg(gex::AmTransport transport) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = transport;
  cfg.rma_wire = gex::RmaWire::kAm;   // every RMA crosses the transport
  cfg.rma_async_min = 4096;           // ops above 4KB chunk via XferEngine
  cfg.xfer_chunk_bytes = 2048;
  return cfg;
}

TEST(MtSoak, MmapTransport) {
  EXPECT_EQ(upcxx::run(soak_cfg(gex::AmTransport::kMmap), soak_body), 0);
}

TEST(MtSoak, ShmFileTransport) {
  EXPECT_EQ(upcxx::run(soak_cfg(gex::AmTransport::kShmFile), soak_body), 0);
}

}  // namespace
