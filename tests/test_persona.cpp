// Personas: default/master identity, persona_scope stacking, cross-thread
// LPCs, master-persona migration, and the SEQ-mode communication discipline
// (see persona.hpp header comment; paper §II ties futures to "within a
// thread", personas are the spec's multithreading mechanism around that).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/spinlock.hpp"
#include "spmd_helpers.hpp"

using testutil::solo;
using testutil::spmd;

namespace {

// ---------------------------------------------------------------- identity

TEST(Persona, MasterIsCurrentAtInit) {
  solo([] {
    EXPECT_TRUE(upcxx::master_persona().active_with_caller());
    EXPECT_EQ(&upcxx::current_persona(), &upcxx::master_persona());
    EXPECT_NE(&upcxx::default_persona(), &upcxx::master_persona());
    EXPECT_TRUE(upcxx::default_persona().active_with_caller());
  });
}

TEST(Persona, EachRankHasDistinctMaster) {
  static std::atomic<upcxx::persona*> masters[2];
  spmd(2, [] {
    masters[upcxx::rank_me()].store(&upcxx::master_persona());
    upcxx::barrier();
    EXPECT_NE(masters[0].load(), masters[1].load());
    upcxx::barrier();
  });
}

TEST(Persona, ScopeStacksAndRestores) {
  solo([] {
    upcxx::persona extra;
    EXPECT_FALSE(extra.active_with_caller());
    {
      upcxx::persona_scope sc(extra);
      EXPECT_TRUE(extra.active_with_caller());
      EXPECT_EQ(&upcxx::current_persona(), &extra);
      {
        // Nested re-acquisition by the same thread is allowed.
        upcxx::persona_scope sc2(extra);
        EXPECT_EQ(&upcxx::current_persona(), &extra);
      }
      EXPECT_TRUE(extra.active_with_caller());
    }
    EXPECT_FALSE(extra.active_with_caller());
    EXPECT_EQ(&upcxx::current_persona(), &upcxx::master_persona());
  });
}

// ------------------------------------------------------------- LPC basics

TEST(Persona, SelfLpcRunsAtUserProgress) {
  solo([] {
    bool ran = false;
    upcxx::current_persona().lpc_ff([&] { ran = true; });
    EXPECT_FALSE(ran);  // enqueue only
    upcxx::progress();
    EXPECT_TRUE(ran);
  });
}

TEST(Persona, LpcReturnsValueToCallingPersona) {
  solo([] {
    auto f = upcxx::current_persona().lpc([] { return 42; });
    EXPECT_FALSE(f.is_ready());
    // Two hops through the same inbox: run fn, then deliver the value.
    EXPECT_EQ(f.wait(), 42);
  });
}

TEST(Persona, LpcFutureReturningBodyIsUnwrapped) {
  solo([] {
    auto f = upcxx::current_persona().lpc(
        [] { return upcxx::make_future(std::string("pgas")); });
    EXPECT_EQ(f.wait(), "pgas");
  });
}

// ------------------------------------------------- cross-thread LPC tests

TEST(Persona, WorkerPostsToMasterInbox) {
  solo([] {
    std::atomic<int> hits{0};
    upcxx::persona& master = upcxx::master_persona();
    std::thread worker([&] {
      for (int i = 0; i < 100; ++i)
        master.lpc_ff([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    });
    worker.join();
    while (hits.load(std::memory_order_relaxed) < 100) upcxx::progress();
    EXPECT_EQ(hits.load(), 100);
  });
}

TEST(Persona, LpcResultDeliveredOnWorkerThread) {
  solo([] {
    upcxx::persona& master = upcxx::master_persona();
    std::atomic<bool> worker_done{false};
    std::thread worker([&] {
      // The worker's future is fulfilled on the worker's own thread when it
      // calls progress() — persona affinity of futures is preserved.
      auto f = master.lpc([] { return upcxx::rank_me() + 7; });
      std::thread::id fulfilled_on;
      f.then([&fulfilled_on](int) { fulfilled_on = std::this_thread::get_id(); });
      int v = f.wait();
      EXPECT_EQ(v, 7);
      EXPECT_EQ(fulfilled_on, std::this_thread::get_id());
      worker_done.store(true);
    });
    while (!worker_done.load()) upcxx::progress();
    worker.join();
  });
}

TEST(Persona, WorkerRequestsCommunicationViaMaster) {
  // The SEQ-mode pattern: a worker thread that needs an RPC posts an LPC to
  // the master persona, which injects the RPC; the reply value is shipped
  // back to the worker persona.
  static std::atomic<int> remote_hits{0};
  remote_hits = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::persona& master = upcxx::master_persona();
      std::atomic<bool> worker_done{false};
      std::thread worker([&] {
        auto f = master.lpc([] {
          return upcxx::rpc(1, [](int x) {
            remote_hits.fetch_add(1);
            return 2 * x;
          }, 21);
        });
        EXPECT_EQ(f.wait(), 42);
        worker_done.store(true);
      });
      while (!worker_done.load()) upcxx::progress();
      worker.join();
      EXPECT_EQ(remote_hits.load(), 1);
    } else {
      while (remote_hits.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
  });
}

// --------------------------------------------- master persona migration

TEST(Persona, MasterMigratesToWorkerThread) {
  static std::atomic<int> rpcs_run{0};
  rpcs_run = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::persona& master = upcxx::master_persona();
      upcxx::liberate_master_persona();
      EXPECT_FALSE(master.active_with_caller());
      std::thread worker([&master] {
        upcxx::persona_scope sc(master);
        EXPECT_TRUE(master.active_with_caller());
        // Holding the master persona carries the communication right: the
        // worker injects an RPC and waits for it, polling the wire itself.
        auto f = upcxx::rpc(1, [] { return upcxx::rank_me(); });
        EXPECT_EQ(f.wait(), 1);
      });
      worker.join();
      // Re-acquire for the rest of the SPMD region. The scope must outlive
      // the SPMD body (teardown needs the master held), so it is leaked
      // deliberately — the real UPC++ idiom is a persona_scope in main()
      // outliving finalize().
      new upcxx::persona_scope(master);
      upcxx::barrier();
    } else {
      upcxx::rpc_ff(0, [] { rpcs_run.fetch_add(1); });
      upcxx::barrier();
    }
  });
}

TEST(Persona, MigratedMasterCanRunCollectives) {
  // Regression: world() and the collective engine must follow the rank
  // context to the thread holding the master persona (the world team lives
  // in the rank state, not a thread_local).
  spmd(4, [] {
    upcxx::persona& master = upcxx::master_persona();
    upcxx::liberate_master_persona();
    std::thread worker([&master] {
      upcxx::persona_scope sc(master);
      EXPECT_EQ(upcxx::world().rank_n(), 4);
      upcxx::barrier();
      const int sum =
          upcxx::reduce_all(upcxx::rank_me() + 1, upcxx::op_fast_add{})
              .wait();
      EXPECT_EQ(sum, 10);
      upcxx::barrier();
    });
    worker.join();
    new upcxx::persona_scope(master);  // reacquired through teardown
    upcxx::barrier();
  });
}

TEST(Persona, MutexScopeSerializesContendingThreads) {
  solo([] {
    upcxx::persona shared;
    std::mutex mu;
    std::atomic<int> inside{0};
    std::atomic<bool> overlap{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          upcxx::persona_scope sc(mu, shared);
          if (inside.fetch_add(1) != 0) overlap.store(true);
          shared.lpc_ff([] {});
          upcxx::progress();  // drains `shared` while held
          inside.fetch_sub(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_FALSE(overlap.load()) << "mutex persona_scope failed to serialize";
    // All 200 lpcs ran on whichever thread held the persona.
    EXPECT_EQ(shared.lpcs_executed(), 200u);
  });
}

// -------------------------------------------------------- progress rules

TEST(Persona, WorkerProgressDrainsOnlyOwnPersonas) {
  solo([] {
    std::atomic<bool> worker_lpc_ran{false};
    std::atomic<bool> master_lpc_ran{false};
    std::atomic<bool> stop{false};
    upcxx::master_persona().lpc_ff([&] { master_lpc_ran = true; });
    std::thread worker([&] {
      upcxx::default_persona().lpc_ff([&] { worker_lpc_ran = true; });
      upcxx::progress();  // no rank context: drains the worker default only
      EXPECT_TRUE(worker_lpc_ran.load());
      while (!stop.load()) arch::cpu_relax();
    });
    while (!worker_lpc_ran.load()) arch::cpu_relax();
    // Worker progress must not have executed the master-persona LPC.
    EXPECT_FALSE(master_lpc_ran.load());
    stop = true;
    worker.join();
    upcxx::progress();
    EXPECT_TRUE(master_lpc_ran.load());
  });
}

TEST(Persona, ManyWorkersFloodOneInbox) {
  // Property: every LPC posted by any of W workers is executed exactly once.
  solo([] {
    static constexpr int kWorkers = 8, kPer = 500;
    std::atomic<long> sum{0};
    std::vector<std::thread> workers;
    upcxx::persona& master = upcxx::master_persona();
    std::atomic<int> posted{0};
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < kPer; ++i) {
          master.lpc_ff([&sum, w, i] {
            sum.fetch_add(static_cast<long>(w) * kPer + i,
                          std::memory_order_relaxed);
          });
          posted.fetch_add(1);
        }
      });
    }
    const long expect =
        static_cast<long>(kWorkers) * kPer * (static_cast<long>(kWorkers) * kPer - 1) / 2;
    const std::uint64_t before = master.lpcs_executed();
    while (master.lpcs_executed() - before <
           static_cast<std::uint64_t>(kWorkers) * kPer)
      upcxx::progress();
    for (auto& t : workers) t.join();
    EXPECT_EQ(sum.load(), expect);
  });
}

TEST(Persona, LpcChainPingPongBetweenThreads) {
  // A value bounces between the master persona and a worker persona through
  // result-bearing LPCs; checks persona-affine fulfillment both ways.
  solo([] {
    upcxx::persona& master = upcxx::master_persona();
    std::atomic<bool> done{false};
    std::thread worker([&] {
      int v = 0;
      for (int round = 0; round < 25; ++round)
        v = master.lpc([v] { return v + 1; }).wait();
      EXPECT_EQ(v, 25);
      done = true;
    });
    while (!done.load()) upcxx::progress();
    worker.join();
  });
}

}  // namespace
