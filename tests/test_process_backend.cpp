// Process-backend (fork) coverage: the smp-conduit-like mode where ranks
// are forked processes sharing the mmap'd arena. Thread-backend tests can
// use process-global statics to cross-check; here every exchange must go
// through the arena, which is exactly what these tests verify.
//
// gtest macros cannot report from child processes, so rank bodies signal
// failure by throwing (upcxx::run counts failed ranks; the parent asserts
// zero).
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/dht/dht.hpp"
#include "spmd_helpers.hpp"

namespace {

// Throwing check for use inside forked rank bodies.
void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("check failed: ") + what);
}

int run_forked(int ranks, const std::function<void()>& fn) {
  gex::Config cfg = testutil::test_cfg(ranks);
  cfg.backend = gex::Backend::kProcess;
  return upcxx::run(cfg, fn);
}

TEST(ProcessBackend, RmaPutGetAcrossProcesses) {
  const int fails = run_forked(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    auto mine = upcxx::new_array<long>(64);
    for (int i = 0; i < 64; ++i) mine.local()[i] = -1;
    // Publish my segment pointer via an RPC mailbox on rank 0... but statics
    // don't cross fork boundaries usably, so exchange through allgather.
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    // Put my rank id pattern into my right neighbor's buffer slice.
    const int nb = (me + 1) % P;
    std::vector<long> pat(16, me * 1000);
    upcxx::rput(pat.data(), ptrs[nb] + 16 * 0, 16).wait();
    upcxx::barrier();
    // My left neighbor wrote into my slice: check through local memory.
    const int left = (me + P - 1) % P;
    for (int i = 0; i < 16; ++i)
      require(mine.local()[i] == left * 1000, "neighbor put visible");
    // rget it back from the neighbor's buffer as well.
    std::vector<long> back(16, 0);
    upcxx::rget(ptrs[nb], back.data(), 16).wait();
    for (int i = 0; i < 16; ++i)
      require(back[i] == me * 1000, "rget returns what I put");
    upcxx::barrier();
    upcxx::delete_array(mine, 64);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, RmaOnAmWireAcrossProcesses) {
  // The AM put/get protocol across forked processes: cookies and pending
  // maps are per-process, only wire records (ring/heap) cross the fork,
  // and the engine path chunks large transfers into request/ack rounds.
  gex::Config cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.rma_async_min = 4 << 10;
  cfg.xfer_chunk_bytes = 4 << 10;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    constexpr std::size_t kN = 4096;  // 32 KB of longs: rides the engine
    auto mine = upcxx::new_array<long>(kN);
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    const int nb = (me + 1) % P;
    std::vector<long> pat(kN);
    for (std::size_t i = 0; i < kN; ++i)
      pat[i] = me * 100000 + static_cast<long>(i);
    upcxx::rput(pat.data(), ptrs[nb], kN).wait();
    // Scalar put under the engine threshold: the single-request path.
    upcxx::rput(static_cast<long>(me), ptrs[nb]).wait();
    upcxx::barrier();
    const int left = (me + P - 1) % P;
    require(mine.local()[0] == left, "small am put landed");
    for (std::size_t i = 1; i < kN; ++i)
      require(mine.local()[i] == left * 100000 + static_cast<long>(i),
              "chunked am put landed");
    std::vector<long> back(kN, 0);
    upcxx::rget(ptrs[nb], back.data(), kN).wait();
    require(back[0] == me, "am rget sees my small put");
    for (std::size_t i = 1; i < kN; ++i)
      require(back[i] == me * 100000 + static_cast<long>(i),
              "am rget returns what I put");
    upcxx::barrier();
    upcxx::delete_array(mine, kN);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, RpcWithNontrivialArgsAcrossProcesses) {
  const int fails = run_forked(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    upcxx::dist_object<std::vector<std::string>> box(
        std::vector<std::string>{});
    upcxx::barrier();
    // Everyone appends a greeting into rank (me+1)%P's box.
    upcxx::rpc((me + 1) % P,
               [](upcxx::dist_object<std::vector<std::string>>& b,
                  const std::string& s) { b->push_back(s); },
               box, "hello from " + std::to_string(me))
        .wait();
    upcxx::barrier();
    require(box->size() == 1, "exactly one greeting landed");
    const std::string expect =
        "hello from " + std::to_string((me + P - 1) % P);
    require((*box)[0] == expect, "greeting came from the left neighbor");
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, CollectivesAgreeAcrossProcesses) {
  const int fails = run_forked(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    const long sum =
        upcxx::reduce_all(static_cast<long>(me + 1), upcxx::op_fast_add{})
            .wait();
    require(sum == static_cast<long>(P) * (P + 1) / 2, "reduce_all sum");
    const int bc = upcxx::broadcast(me == 2 ? 777 : 0, 2).wait();
    require(bc == 777, "broadcast from rank 2");
    auto all = upcxx::allgather(me * 7).wait();
    for (int i = 0; i < P; ++i) require(all[i] == i * 7, "allgather slot");
    auto a2a_in = std::vector<int>(P);
    for (int j = 0; j < P; ++j) a2a_in[j] = me * 100 + j;
    auto a2a = upcxx::alltoall(a2a_in).wait();
    for (int i = 0; i < P; ++i)
      require(a2a[i] == i * 100 + me, "alltoall slot");
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, AtomicsBothBackendsAcrossProcesses) {
  const int fails = run_forked(4, [] {
    for (auto be : {upcxx::atomic_backend::kDirect,
                    upcxx::atomic_backend::kAm}) {
      upcxx::atomic_domain<std::int64_t> ad(
          {upcxx::atomic_op::load, upcxx::atomic_op::fetch_add,
           upcxx::atomic_op::bit_or},
          upcxx::world(), be);
      auto ctrs = upcxx::allgather(upcxx::new_<std::int64_t>(0)).wait();
      upcxx::barrier();
      // Everyone bumps rank 0's counter 100 times and ORs a bit.
      std::vector<upcxx::future<>> fs;
      for (int i = 0; i < 100; ++i)
        fs.push_back(ad.fetch_add(ctrs[0], 1).then([](std::int64_t) {}));
      upcxx::when_all_range(fs).wait();
      upcxx::barrier();
      if (upcxx::rank_me() == 0)
        require(ad.load(ctrs[0]).wait() == 400, "no lost fetch_adds");
      upcxx::barrier();
      upcxx::delete_(ctrs[upcxx::rank_me()]);
      upcxx::barrier();
    }
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, DhtVariantsAcrossProcesses) {
  const int fails = run_forked(4, [] {
    dht::RpcOnlyMap m1;
    dht::RpcRmaMap m2;
    upcxx::barrier();
    const std::string key = "k" + std::to_string(upcxx::rank_me());
    const std::string val(1024, static_cast<char>('a' + upcxx::rank_me()));
    m1.insert(key, val).wait();
    m2.insert(key, val).wait();
    upcxx::barrier();
    // Everyone reads everyone's entry.
    for (int r = 0; r < upcxx::rank_n(); ++r) {
      const std::string k = "k" + std::to_string(r);
      const std::string expect(1024, static_cast<char>('a' + r));
      auto v1 = m1.find(k).wait();
      require(v1.has_value() && *v1 == expect, "RpcOnly cross-process find");
      auto v2 = m2.find(k).wait();
      require(v2.has_value() && *v2 == expect, "RpcRma cross-process find");
    }
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, DeviceCopyAcrossProcesses) {
  const int fails = run_forked(2, [] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto mine = dev.allocate<double>(128);
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<double> v(128, 6.5);
      upcxx::copy(v.data(), ptrs[1], 128).wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      std::vector<double> got(128, 0.0);
      upcxx::copy(mine, got.data(), 128).wait();
      for (double x : got) require(x == 6.5, "device data crossed fork");
    }
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(ProcessBackend, FailedPeerReleasesAmWireCredits) {
  // Regression: teardown's drain gives up when a peer fails, but the
  // survivor's credits held by that peer (window slots consumed by
  // unacknowledged requests) were never returned, and requests parked
  // behind them sat in the sender-side queue forever. fail_all_peers()
  // must cancel both so survivors tear down instead of waiting for acks
  // from a dead rank. The flood below exceeds the window, so without the
  // release this hangs (and trips the 600 s ctest timeout).
  gex::Config cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 1;  // every request beyond the first parks in the queue
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    static upcxx::global_ptr<long> victim;
    if (me == 3) victim = upcxx::new_array<long>(64);
    auto ptrs = upcxx::allgather(victim).wait();
    upcxx::barrier();
    if (me == 3) throw std::runtime_error("injected fault");
    if (me == 0) {
      // Flood the failing rank: one request takes the only credit, the
      // rest queue behind it. Do NOT wait on completion — rank 3 may die
      // before acking anything.
      std::vector<long> pat(64, 7);
      for (int i = 0; i < 6; ++i)
        upcxx::rput(pat.data(), ptrs[3], 64,
                    upcxx::operation_cx::as_lpc([] {}));
      require(gex::rma_am().stats().requests_queued >= 1,
              "window=1 flood parked requests in the sender-side queue");
    }
    // Survivors make bounded progress; no barrier (rank 3 never arrives).
    for (int i = 0; i < 200; ++i) upcxx::progress();
  });
  // Exactly the injected fault: survivors must tear down cleanly (a
  // survivor counted failed means the require() above fired or teardown
  // broke; a hang means the credits were never released).
  EXPECT_EQ(fails, 1);
}

TEST(ProcessBackend, WaitThrowsRankFailedWhenPeerDies) {
  // Error-aware wait (ROADMAP): a user-level future::wait() whose
  // completion depends on a dead rank used to spin forever — only the
  // teardown paths honored the arena error flag. It must now throw
  // upcxx::rank_failed once the flag is up. The survivor catches it and
  // finishes cleanly, so exactly the injected fault is reported; pre-fix
  // this test hangs in the first wait below and trips the ctest timeout.
  gex::Config cfg = testutil::test_cfg(3);
  cfg.backend = gex::Backend::kProcess;
  cfg.rma_wire = gex::RmaWire::kAm;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    static upcxx::global_ptr<long> victim;
    if (me == 2) victim = upcxx::new_array<long>(8);
    auto ptrs = upcxx::allgather(victim).wait();
    upcxx::barrier();
    if (me == 2) throw std::runtime_error("injected fault");
    if (me == 0) {
      // A future nothing will ever fulfill stands in for any completion
      // that depended on the dead rank: deterministic, because readiness
      // can never race the error flag.
      bool threw = false;
      try {
        upcxx::promise<long> never;
        never.get_future().wait();
      } catch (const upcxx::rank_failed&) {
        threw = true;
      }
      require(threw, "wait() threw rank_failed instead of hanging");
      // A real blocking operation against the dead rank must terminate
      // too. Rank 2's bounded teardown polls may still ack it (making the
      // wait return normally) or may not (rank_failed); both are clean —
      // what is forbidden is the pre-fix infinite spin.
      std::vector<long> pat(8, 1);
      try {
        upcxx::rput(pat.data(), ptrs[2], 8).wait();
      } catch (const upcxx::rank_failed&) {
      }
    }
    for (int i = 0; i < 100; ++i) upcxx::progress();
  });
  EXPECT_EQ(fails, 1);
}

TEST(ProcessBackend, FailingRankIsReported) {
  // Failure injection: one rank throws; the parent must see exactly one
  // failed rank and the others must shut down cleanly (no hang).
  const int fails = run_forked(4, [] {
    upcxx::barrier();
    if (upcxx::rank_me() == 3) throw std::runtime_error("injected fault");
    // Peers do bounded work; no barrier after the throw (rank 3 never
    // arrives).
    for (int i = 0; i < 100; ++i) upcxx::progress();
  });
  EXPECT_GE(fails, 1);
}

}  // namespace
