// Futures/promises unit tests: readiness, chaining, unwrapping, conjoining,
// promise dependency counting — the §II semantics of the paper.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::solo;

namespace {

TEST(Future, MakeFutureIsReady) {
  solo([] {
    auto f = upcxx::make_future(42);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 42);
  });
}

TEST(Future, MakeFutureEmpty) {
  solo([] {
    auto f = upcxx::make_future();
    ASSERT_TRUE(f.is_ready());
    f.wait();  // trivially returns
  });
}

TEST(Future, MakeFutureMultiValue) {
  solo([] {
    auto f = upcxx::make_future(1, std::string("two"), 3.0);
    ASSERT_TRUE(f.is_ready());
    auto [a, b, c] = f.result();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, "two");
    EXPECT_DOUBLE_EQ(c, 3.0);
  });
}

TEST(Future, PromiseFulfillResult) {
  solo([] {
    upcxx::promise<int> pr;
    auto f = pr.get_future();
    EXPECT_FALSE(f.is_ready());
    pr.fulfill_result(7);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 7);
  });
}

TEST(Future, PromiseAnonymousCounting) {
  solo([] {
    upcxx::promise<> pr;
    pr.require_anonymous(3);
    auto f = pr.finalize();  // retires the initial dependency
    EXPECT_FALSE(f.is_ready());
    pr.fulfill_anonymous(1);
    EXPECT_FALSE(f.is_ready());
    pr.fulfill_anonymous(1);
    EXPECT_FALSE(f.is_ready());
    pr.fulfill_anonymous(1);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(Future, PromiseBatchFulfill) {
  solo([] {
    upcxx::promise<> pr;
    pr.require_anonymous(10);
    auto f = pr.finalize();
    pr.fulfill_anonymous(10);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(Future, MultipleFuturesShareOnePromise) {
  solo([] {
    upcxx::promise<int> pr;
    auto f1 = pr.get_future();
    auto f2 = pr.get_future();
    pr.fulfill_result(5);
    EXPECT_TRUE(f1.is_ready());
    EXPECT_TRUE(f2.is_ready());
    EXPECT_EQ(f1.result() + f2.result(), 10);
  });
}

TEST(Future, ThenOnReadyRunsImmediately) {
  solo([] {
    int ran = 0;
    auto f = upcxx::make_future(3).then([&](int v) {
      ran = v;
      return v * 2;
    });
    EXPECT_EQ(ran, 3);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 6);
  });
}

TEST(Future, ThenDeferredRunsOnFulfill) {
  solo([] {
    upcxx::promise<int> pr;
    int seen = -1;
    auto f = pr.get_future().then([&](int v) { seen = v; });
    EXPECT_EQ(seen, -1);
    pr.fulfill_result(9);
    EXPECT_EQ(seen, 9);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(Future, ThenChainPropagatesValues) {
  solo([] {
    upcxx::promise<int> pr;
    auto f = pr.get_future()
                 .then([](int v) { return v + 1; })
                 .then([](int v) { return v * 10; })
                 .then([](int v) { return std::to_string(v); });
    pr.fulfill_result(4);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), "50");
  });
}

TEST(Future, ThenUnwrapsFutureResult) {
  solo([] {
    upcxx::promise<int> outer, inner;
    auto inner_f = inner.get_future();
    auto f = outer.get_future().then(
        [inner_f](int) { return inner_f; });  // callback returns a future
    outer.fulfill_result(1);
    EXPECT_FALSE(f.is_ready()) << "must wait for the inner future";
    inner.fulfill_result(99);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 99);
  });
}

TEST(Future, ThenVoidCallbackYieldsEmptyFuture) {
  solo([] {
    auto f = upcxx::make_future(1).then([](int) {});
    static_assert(std::is_same_v<decltype(f), upcxx::future<>>);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(Future, MultipleCallbacksOnOneFuture) {
  solo([] {
    upcxx::promise<int> pr;
    auto f = pr.get_future();
    int a = 0, b = 0;
    f.then([&](int v) { a = v; });
    f.then([&](int v) { b = v * 2; });
    pr.fulfill_result(21);
    EXPECT_EQ(a, 21);
    EXPECT_EQ(b, 42);
  });
}

TEST(Future, WhenAllConcatenatesValues) {
  solo([] {
    auto f = upcxx::when_all(upcxx::make_future(1),
                             upcxx::make_future(std::string("x")),
                             upcxx::make_future(2.5));
    ASSERT_TRUE(f.is_ready());
    auto [i, s, d] = f.result();
    EXPECT_EQ(i, 1);
    EXPECT_EQ(s, "x");
    EXPECT_DOUBLE_EQ(d, 2.5);
  });
}

TEST(Future, WhenAllWaitsForAll) {
  solo([] {
    upcxx::promise<int> p1, p2;
    auto f = upcxx::when_all(p1.get_future(), p2.get_future());
    EXPECT_FALSE(f.is_ready());
    p1.fulfill_result(1);
    EXPECT_FALSE(f.is_ready());
    p2.fulfill_result(2);
    ASSERT_TRUE(f.is_ready());
    auto [a, b] = f.result();
    EXPECT_EQ(a + b, 3);
  });
}

TEST(Future, WhenAllOfEmptyFutures) {
  solo([] {
    upcxx::promise<> p1, p2;
    auto f = upcxx::when_all(p1.finalize(), p2.finalize());
    static_assert(std::is_same_v<decltype(f), upcxx::future<>>);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(Future, WhenAllMixedEmptyAndValued) {
  solo([] {
    upcxx::promise<> pe;
    upcxx::promise<int> pv;
    auto f = upcxx::when_all(pe.get_future(), pv.get_future());
    static_assert(std::is_same_v<decltype(f), upcxx::future<int>>);
    pv.fulfill_result(5);
    EXPECT_FALSE(f.is_ready());
    pe.fulfill_anonymous(1);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 5);
  });
}

TEST(Future, WhenAllIncrementalConjoin) {
  // The extend-add pattern (paper Fig 7): start from an empty future and
  // conjoin a dynamic number of futures in a loop.
  solo([] {
    upcxx::future<> f_conj = upcxx::make_future();
    std::vector<upcxx::promise<>> prs(8);
    for (auto& p : prs) f_conj = upcxx::when_all(f_conj, p.get_future());
    EXPECT_FALSE(f_conj.is_ready());
    for (std::size_t i = 0; i < prs.size(); ++i) {
      EXPECT_FALSE(f_conj.is_ready());
      prs[i].fulfill_anonymous(1);
    }
    EXPECT_TRUE(f_conj.is_ready());
  });
}

TEST(Future, WaitSpinsProgressUntilReady) {
  solo([] {
    upcxx::promise<int> pr;
    // Fulfill through the progress engine (as a communication op would).
    upcxx::detail::push_compq([pr]() mutable { pr.fulfill_result(17); });
    EXPECT_FALSE(pr.get_future().is_ready());
    EXPECT_EQ(pr.get_future().wait(), 17);
  });
}

TEST(Future, MoveOnlyValueThroughThen) {
  solo([] {
    upcxx::promise<std::unique_ptr<int>> pr;
    auto f = pr.get_future().then(
        [](std::unique_ptr<int>& p) { return *p + 1; });
    pr.fulfill_result(std::make_unique<int>(41));
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), 42);
  });
}

TEST(Future, ToFutureWrapsValuesAndPassesFutures) {
  solo([] {
    auto f1 = upcxx::to_future(5);
    static_assert(std::is_same_v<decltype(f1), upcxx::future<int>>);
    EXPECT_EQ(f1.result(), 5);
    auto f2 = upcxx::to_future(upcxx::make_future(std::string("y")));
    EXPECT_EQ(f2.result(), "y");
  });
}

TEST(Future, DeepThenChainStress) {
  solo([] {
    upcxx::promise<int> pr;
    upcxx::future<int> f = pr.get_future();
    constexpr int kDepth = 1000;
    for (int i = 0; i < kDepth; ++i) f = f.then([](int v) { return v + 1; });
    pr.fulfill_result(0);
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.result(), kDepth);
  });
}

TEST(Future, WideWhenAllStress) {
  solo([] {
    std::vector<upcxx::promise<>> prs(256);
    upcxx::future<> f = upcxx::make_future();
    for (auto& p : prs) f = upcxx::when_all(f, p.get_future());
    for (auto& p : prs) p.fulfill_anonymous(1);
    EXPECT_TRUE(f.is_ready());
  });
}

}  // namespace
