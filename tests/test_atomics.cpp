// atomic_domain tests: every operation, both backends (direct = NIC-offload
// analog, AM = software path), and cross-rank contention correctness.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

using upcxx::atomic_backend;
using upcxx::atomic_op;

class AtomicsBothBackends
    : public ::testing::TestWithParam<atomic_backend> {};

TEST_P(AtomicsBothBackends, FetchAddSingleOwner) {
  const auto backend = GetParam();
  spmd(2, [backend] {
    upcxx::atomic_domain<std::int64_t> ad(
        {atomic_op::load, atomic_op::fetch_add, atomic_op::store},
        upcxx::world(), backend);
    auto slot = upcxx::allocate<std::int64_t>(1);
    *slot.local() = 0;
    upcxx::dist_object<upcxx::global_ptr<std::int64_t>> dir(slot);
    auto target = dir.fetch(0).wait();  // everyone hits rank 0's slot
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      EXPECT_EQ(ad.fetch_add(target, 5).wait(), 0);
      EXPECT_EQ(ad.fetch_add(target, 7).wait(), 5);
      EXPECT_EQ(ad.load(target).wait(), 12);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 0) { EXPECT_EQ(*slot.local(), 12); }
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

TEST_P(AtomicsBothBackends, ConcurrentFetchAddIsLinearizable) {
  const auto backend = GetParam();
  spmd(8, [backend] {
    constexpr int kPer = 500;
    upcxx::atomic_domain<std::uint64_t> ad(
        {atomic_op::load, atomic_op::fetch_add}, upcxx::world(), backend);
    auto slot = upcxx::allocate<std::uint64_t>(1);
    *slot.local() = 0;
    upcxx::dist_object<upcxx::global_ptr<std::uint64_t>> dir(slot);
    auto target = dir.fetch(0).wait();
    upcxx::barrier();
    // Every rank increments; fetched values must all be distinct.
    std::vector<std::uint64_t> seen;
    seen.reserve(kPer);
    upcxx::promise<> done;
    for (int i = 0; i < kPer; ++i) {
      done.require_anonymous(1);
      ad.fetch_add(target, 1).then([&seen, done](std::uint64_t prev) mutable {
        seen.push_back(prev);
        done.fulfill_anonymous(1);
      });
      if (i % 16 == 0) upcxx::progress();
    }
    done.finalize().wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      EXPECT_EQ(*slot.local(), 8ull * kPer);
    }
    // Local monotonicity of my own observed values is not guaranteed, but
    // uniqueness across ranks is; check local uniqueness cheaply.
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

TEST_P(AtomicsBothBackends, MinMax) {
  const auto backend = GetParam();
  spmd(4, [backend] {
    upcxx::atomic_domain<std::int64_t> ad(
        {atomic_op::load, atomic_op::min, atomic_op::max,
         atomic_op::fetch_min, atomic_op::fetch_max},
        upcxx::world(), backend);
    auto slot = upcxx::allocate<std::int64_t>(2);
    slot.local()[0] = 1000;   // min target
    slot.local()[1] = -1000;  // max target
    upcxx::dist_object<upcxx::global_ptr<std::int64_t>> dir(slot);
    auto t = dir.fetch(0).wait();
    upcxx::barrier();
    ad.min(t, upcxx::rank_me() * 10 + 1).wait();
    ad.max(t + 1, upcxx::rank_me() * 10 + 1).wait();
    upcxx::barrier();
    EXPECT_EQ(ad.load(t).wait(), 1);     // rank 0's 1 is smallest
    EXPECT_EQ(ad.load(t + 1).wait(), 31);  // rank 3's 31 is largest
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

TEST_P(AtomicsBothBackends, CompareExchange) {
  const auto backend = GetParam();
  spmd(4, [backend] {
    upcxx::atomic_domain<std::uint64_t> ad(
        {atomic_op::load, atomic_op::compare_exchange}, upcxx::world(),
        backend);
    auto slot = upcxx::allocate<std::uint64_t>(1);
    *slot.local() = 0;
    upcxx::dist_object<upcxx::global_ptr<std::uint64_t>> dir(slot);
    auto t = dir.fetch(0).wait();
    upcxx::barrier();
    // Exactly one rank wins the CAS from 0 to its id+1.
    auto prev =
        ad.compare_exchange(t, 0, upcxx::rank_me() + 1).wait();
    const bool won = (prev == 0);
    auto winners = upcxx::reduce_all(won ? 1 : 0, upcxx::op_fast_add{}).wait();
    EXPECT_EQ(winners, 1);
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

TEST_P(AtomicsBothBackends, IncDecSubStore) {
  const auto backend = GetParam();
  spmd(2, [backend] {
    upcxx::atomic_domain<std::int32_t> ad(
        {atomic_op::load, atomic_op::store, atomic_op::inc, atomic_op::dec,
         atomic_op::sub, atomic_op::fetch_sub, atomic_op::fetch_inc,
         atomic_op::fetch_dec},
        upcxx::world(), backend);
    auto slot = upcxx::allocate<std::int32_t>(1);
    upcxx::dist_object<upcxx::global_ptr<std::int32_t>> dir(slot);
    auto t = dir.fetch(1 - upcxx::rank_me()).wait();
    ad.store(t, 100).wait();
    upcxx::barrier();
    // Both ranks mutate each other's slot symmetric ops; net effect known.
    ad.inc(t).wait();
    ad.inc(t).wait();
    ad.dec(t).wait();
    ad.sub(t, 10).wait();
    upcxx::barrier();
    EXPECT_EQ(ad.load(upcxx::to_global_ptr(slot.local())).wait(), 91);
    upcxx::barrier();  // my-slot check done before the peer mutates it again
    EXPECT_EQ(ad.fetch_inc(t).wait(), 91);
    EXPECT_EQ(ad.fetch_dec(t).wait(), 92);
    EXPECT_EQ(ad.fetch_sub(t, 41).wait(), 91);
    upcxx::barrier();
    EXPECT_EQ(ad.load(t).wait(), 50);
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

TEST_P(AtomicsBothBackends, DoubleType) {
  const auto backend = GetParam();
  spmd(4, [backend] {
    upcxx::atomic_domain<double> ad({atomic_op::load, atomic_op::add},
                                    upcxx::world(), backend);
    auto slot = upcxx::allocate<double>(1);
    *slot.local() = 0.0;
    upcxx::dist_object<upcxx::global_ptr<double>> dir(slot);
    auto t = dir.fetch(0).wait();
    upcxx::barrier();
    ad.add(t, 0.25 * (upcxx::rank_me() + 1)).wait();
    upcxx::barrier();
    EXPECT_DOUBLE_EQ(ad.load(t).wait(), 0.25 * 10);
    upcxx::barrier();
    upcxx::deallocate(slot);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, AtomicsBothBackends,
                         ::testing::Values(atomic_backend::kDirect,
                                           atomic_backend::kAm),
                         [](const auto& info) {
                           return info.param == atomic_backend::kDirect
                                      ? "Direct"
                                      : "Am";
                         });

TEST(Atomics, BackendSelectionReported) {
  spmd(1, [] {
    upcxx::atomic_domain<std::int64_t> d({atomic_op::load}, upcxx::world(),
                                         atomic_backend::kDirect);
    upcxx::atomic_domain<std::int64_t> a({atomic_op::load}, upcxx::world(),
                                         atomic_backend::kAm);
    EXPECT_TRUE(d.uses_direct_backend());
    EXPECT_FALSE(a.uses_direct_backend());
  });
}

}  // namespace
