// Randomized RMA soak: interleaved rput/rget/copy/strided/irregular traffic
// of random sizes across all ranks, on both RMA wires, under the transport
// performance layer's worst settings (tiny chunks so everything pipelines
// through the engine, a small credit window so requests queue and credits
// churn). Verifies payload integrity against a sender-side shadow and full
// quiescence (idle() engines, every handled put acked) — the adversarial
// lock on the flow-control/ack-aggregation/budget machinery, run under
// ASan/UBSan in CI like the rest of the test tree.
//
// Write-ownership discipline: rank r only ever writes slice r of any
// peer's buffer, and each round partitions that slice into disjoint
// segments with at most one operation per segment — so within a round no
// two in-flight operations overlap, and the slice's post-round state is
// exactly the sender's shadow regardless of completion order (UPC++ leaves
// overlapping unordered RMAs unspecified, so the test never issues them).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "arch/rng.hpp"
#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "spmd_helpers.hpp"

namespace {

constexpr std::size_t kSlice = 4096;  // longs per (writer, owner) slice
constexpr int kRounds = 10;

long stamp(int writer, int round, std::size_t idx) {
  return (static_cast<long>(writer) << 40) ^
         (static_cast<long>(round) << 28) ^ static_cast<long>(idx);
}

// One rank's soak body. Every rank is simultaneously a writer (to its
// slice in every peer) and an owner (serving peers' traffic). `adaptive`
// marks the auto-window cells: the moving window makes sender-side
// queueing load-dependent, so only the invariants that hold at any window
// are asserted there.
void soak_body(std::uint64_t seed, bool am_wire, bool adaptive = false) {
  const int me = upcxx::rank_me(), P = upcxx::rank_n();
  const std::size_t total = kSlice * static_cast<std::size_t>(P);
  auto mine = upcxx::new_array<long>(total);
  std::fill_n(mine.local(), total, -1L);
  auto dir = upcxx::allgather(mine).wait();
  upcxx::barrier();

  arch::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (me + 1)));
  // shadow[p] mirrors what my slice of peer p's buffer must hold once all
  // my issued operations complete.
  std::vector<std::vector<long>> shadow(
      P, std::vector<long>(kSlice, -1L));
  // My slice inside owner p's buffer.
  auto slice_of = [&](int p) {
    return dir[p] + static_cast<std::size_t>(me) * kSlice;
  };

  for (int round = 0; round < kRounds; ++round) {
    upcxx::promise<> pr;
    // Keep every source/sink buffer alive until the round's operations
    // complete.
    std::vector<std::unique_ptr<std::vector<long>>> bufs;
    // Deferred get checks: (sink, expected values).
    std::vector<std::pair<const std::vector<long>*, std::vector<long>>>
        get_checks;
    for (int p = 0; p < P; ++p) {
      if (p == me) continue;
      // Partition my slice of peer p into random disjoint segments.
      std::size_t off = 0;
      while (off < kSlice) {
        const std::size_t len =
            std::min(kSlice - off, 1 + rng.next_below(1024));
        const auto op = rng.next_below(6);
        auto dst = slice_of(p) + off;
        switch (op) {
          case 0: {  // contiguous rput
            auto src = std::make_unique<std::vector<long>>(len);
            for (std::size_t i = 0; i < len; ++i)
              (*src)[i] = stamp(me, round, off + i);
            std::copy(src->begin(), src->end(),
                      shadow[p].begin() + static_cast<long>(off));
            upcxx::rput(src->data(), dst, len,
                        upcxx::operation_cx::as_promise(pr));
            bufs.push_back(std::move(src));
            break;
          }
          case 1: {  // contiguous rget, verified after the round
            auto sink = std::make_unique<std::vector<long>>(len, 7777L);
            std::vector<long> expect(
                shadow[p].begin() + static_cast<long>(off),
                shadow[p].begin() + static_cast<long>(off + len));
            upcxx::rget(dst, sink->data(), len,
                        upcxx::operation_cx::as_promise(pr));
            get_checks.emplace_back(sink.get(), std::move(expect));
            bufs.push_back(std::move(sink));
            break;
          }
          case 2: {  // irregular put: two local fragments, reversed
            auto src = std::make_unique<std::vector<long>>(len);
            for (std::size_t i = 0; i < len; ++i)
              (*src)[i] = stamp(me, round, off + i) ^ 0x5a5aL;
            const std::size_t cut = len / 2;
            // Local order [cut..len) then [0..cut) lands remotely in
            // fragment order: remote gets src[cut..] first.
            std::vector<upcxx::src_fragment<long>> s{
                {src->data() + cut, len - cut}, {src->data(), cut}};
            std::vector<upcxx::dst_fragment<long>> d{{dst, len - cut},
                                                     {dst + (len - cut),
                                                      cut}};
            for (std::size_t i = cut; i < len; ++i)
              shadow[p][off + (i - cut)] = (*src)[i];
            for (std::size_t i = 0; i < cut; ++i)
              shadow[p][off + (len - cut) + i] = (*src)[i];
            upcxx::rput_irregular(s, d,
                                  upcxx::operation_cx::as_promise(pr));
            bufs.push_back(std::move(src));
            break;
          }
          case 3: {  // strided 2D put over the segment's front block
            const std::size_t rows = std::min<std::size_t>(4, len / 4);
            if (rows == 0) break;  // segment too small; leave it alone
            const std::size_t cols = 4;
            auto src =
                std::make_unique<std::vector<long>>(rows * cols);
            for (std::size_t i = 0; i < rows * cols; ++i)
              (*src)[i] = stamp(me, round, off + i) ^ 0x1717L;
            for (std::size_t i = 0; i < rows * cols; ++i)
              shadow[p][off + i] = (*src)[i];
            const auto strides = std::array<std::ptrdiff_t, 2>{
                static_cast<std::ptrdiff_t>(cols * sizeof(long)),
                static_cast<std::ptrdiff_t>(sizeof(long))};
            upcxx::rput_strided<2>(src->data(), strides, dst, strides,
                                   {rows, cols},
                                   upcxx::operation_cx::as_promise(pr));
            bufs.push_back(std::move(src));
            break;
          }
          case 4: {  // local -> global copy
            auto src = std::make_unique<std::vector<long>>(len);
            for (std::size_t i = 0; i < len; ++i)
              (*src)[i] = stamp(me, round, off + i) ^ 0x2c2cL;
            std::copy(src->begin(), src->end(),
                      shadow[p].begin() + static_cast<long>(off));
            upcxx::copy(src->data(), dst, len,
                        upcxx::operation_cx::as_promise(pr));
            bufs.push_back(std::move(src));
            break;
          }
          default:
            break;  // leave the segment untouched this round
        }
        off += len;
      }
    }
    pr.finalize().wait();
    for (const auto& [sink, expect] : get_checks) {
      ASSERT_EQ(sink->size(), expect.size());
      for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ((*sink)[i], expect[i]) << "rget payload, round " << round;
    }
    // Every third round: full read-back verification of my slices.
    if (round % 3 == 2) {
      upcxx::barrier();
      for (int p = 0; p < P; ++p) {
        if (p == me) continue;
        std::vector<long> back(kSlice, 9999L);
        upcxx::rget(slice_of(p), back.data(), kSlice).wait();
        for (std::size_t i = 0; i < kSlice; ++i)
          ASSERT_EQ(back[i], shadow[p][i])
              << "slice of rank " << p << " at " << i << ", round "
              << round;
      }
      upcxx::barrier();
    }
  }

  // Quiescence: after the final barrier nothing may remain in flight,
  // queued, or unacknowledged anywhere in the transfer stack.
  upcxx::barrier();
  while (!gex::xfer().idle() || !gex::rma_am().idle()) upcxx::progress();
  EXPECT_TRUE(gex::xfer().idle());
  EXPECT_TRUE(gex::rma_am().idle());
  EXPECT_EQ(gex::rma_am().queued(), 0u);
  const auto& st = gex::rma_am().stats();
  if (am_wire) {
    // The soak actually exercised the protocol on every rank, in both
    // roles.
    EXPECT_GT(st.puts_sent + st.gets_sent + st.frag_puts_sent +
                  st.frag_gets_sent,
              0u);
    EXPECT_GT(st.puts_handled + st.gets_handled, 0u);
    // A fixed tiny window provably forces window-blocked requests through
    // the queue; an adaptive window may grow past the load instead.
    if (!adaptive) EXPECT_GT(st.requests_queued, 0u);
    EXPECT_EQ(gex::rma_am().adaptive_window(), adaptive);
  }
  // The credit window held: never more in flight to one target than the
  // window ceiling (the pinned value, or kMaxAmWindow under the adaptive
  // controller).
  EXPECT_LE(st.max_outstanding, gex::rma_am().window());
  // Ack conservation: every put this rank handled was acknowledged through
  // exactly one channel (a standalone multi-ack record or a piggyback).
  EXPECT_EQ(st.ack_cookies_sent + st.acks_piggybacked, st.puts_handled);
  // Rack conservation: every staged reply this rank consumed was
  // acknowledged through exactly one channel too (trivially 0 == 0 on the
  // direct wire and when every reply fit eager).
  EXPECT_EQ(st.reply_ack_cookies_sent + st.reply_acks_piggybacked,
            st.staged_replies_handled);
  EXPECT_EQ(st.cancelled, 0u);
  EXPECT_EQ(st.stale_completions, 0u);
  upcxx::barrier();
  upcxx::delete_array(mine, kSlice * static_cast<std::size_t>(P));
  upcxx::barrier();
}

gex::Config stress_cfg(gex::RmaWire wire) {
  gex::Config cfg = testutil::test_cfg(3);
  cfg.rma_wire = wire;
  cfg.rma_async_min = 4 << 10;    // big ops pipeline through the engine
  cfg.xfer_chunk_bytes = 2 << 10;  // many chunks per op
  cfg.am_xfer_chunk_bytes = 2 << 10;
  cfg.am_window = 4;               // credits churn; requests queue
  return cfg;
}

TEST(RmaStress, RandomizedSoakAmWire) {
  const int fails = upcxx::run(stress_cfg(gex::RmaWire::kAm),
                               [] { soak_body(0xC0FFEE, true); });
  EXPECT_EQ(fails, 0);
}

TEST(RmaStress, RandomizedSoakDirectWire) {
  const int fails = upcxx::run(stress_cfg(gex::RmaWire::kDirect),
                               [] { soak_body(0xBEEF, false); });
  EXPECT_EQ(fails, 0);
}

// The adaptive-window soak: same traffic, `UPCXX_AM_WINDOW=auto` semantics
// forced (kAmWindowForceAuto beats any CI window pin), and chunks sized so
// GET replies exceed eager_max and exercise the staged-reply pool under
// racing multi-rank traffic — on both AM transports. The conservation
// asserts inside soak_body (ack and rack channels, window ceiling) are the
// point: the moving window must never break the flow-control invariants.
gex::Config adaptive_cfg(gex::AmTransport t) {
  gex::Config cfg = testutil::test_cfg(3);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_transport = t;
  cfg.am_window = gex::kAmWindowForceAuto;
  cfg.rma_async_min = 4 << 10;
  cfg.xfer_chunk_bytes = 16 << 10;  // reply payloads exceed 8K eager_max
  cfg.am_xfer_chunk_bytes = 16 << 10;
  return cfg;
}

TEST(RmaStress, AdaptiveWindowSoakMmap) {
  const int fails = upcxx::run(adaptive_cfg(gex::AmTransport::kMmap),
                               [] { soak_body(0xAD0BE, true, true); });
  EXPECT_EQ(fails, 0);
}

TEST(RmaStress, AdaptiveWindowSoakShmFile) {
  const int fails = upcxx::run(adaptive_cfg(gex::AmTransport::kShmFile),
                               [] { soak_body(0xF11E, true, true); });
  EXPECT_EQ(fails, 0);
}

// The ISSUE's flood acceptance: 10k eager puts to one target complete with
// bounded state everywhere — the window caps the target's ring and staging
// exposure, the bounded sender-side queue caps initiator memory, and
// everything drains to idle.
TEST(RmaStress, EagerPutFloodToOneTarget) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 8;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 10000;
    constexpr std::size_t kN = 64;  // 512 B: the eager path
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::new_array<long>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<long> src(kN);
      upcxx::promise<> pr;
      for (int i = 0; i < kPuts; ++i) {
        for (std::size_t j = 0; j < kN; ++j)
          src[j] = static_cast<long>(i) * 1000 + static_cast<long>(j);
        upcxx::rput(src.data(), remote, kN,
                    upcxx::operation_cx::as_promise(pr));
        if (!(i % 64)) upcxx::progress();
      }
      pr.finalize().wait();
      const auto& st = gex::rma_am().stats();
      EXPECT_LE(st.max_outstanding, gex::rma_am().window());
      // The sender-side queue stayed within its bound: window + slack.
      EXPECT_LE(st.queued_peak,
                gex::rma_am().window() + gex::RmaAmProtocol::kQueueSlack);
      EXPECT_EQ(gex::rma_am().queued(), 0u);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      // The last completed put's payload is intact.
      EXPECT_EQ(remote.local()[0], (kPuts - 1) * 1000L);
      EXPECT_EQ(remote.local()[kN - 1],
                (kPuts - 1) * 1000L + static_cast<long>(kN) - 1);
      upcxx::delete_array(remote, kN);
    }
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
