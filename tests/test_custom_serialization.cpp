// Custom class serialization: UPCXX_SERIALIZED_FIELDS, member
// upcxx_serialization, nesting inside containers/views, and trait
// precedence. Exercises the serialization surface the paper's applications
// rely on for RPC argument shipping (§II, §IV-D).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/rng.hpp"
#include "spmd_helpers.hpp"

using testutil::solo;
using testutil::spmd;

namespace {

// Round-trips any serializable value through a private byte buffer, without
// involving the wire — the codec-level property check.
template <typename T>
upcxx::deserialized_type_t<T> roundtrip(const T& v) {
  upcxx::detail::SizeArchive sa;
  upcxx::serialization<std::decay_t<T>>::serialize(sa, v);
  std::vector<std::byte> buf(sa.size());
  upcxx::detail::WriteArchive wa(buf.data());
  upcxx::serialization<std::decay_t<T>>::serialize(wa, v);
  EXPECT_EQ(wa.written(), sa.size());
  upcxx::detail::Reader r(buf.data(), buf.size());
  return upcxx::serialization<std::decay_t<T>>::deserialize(r);
}

// ------------------------------------------------------------ field macro

struct Particle {
  std::string tag;
  std::vector<double> pos;
  int charge = 0;

  bool operator==(const Particle& o) const {
    return tag == o.tag && pos == o.pos && charge == o.charge;
  }

  UPCXX_SERIALIZED_FIELDS(tag, pos, charge)
};

// Nested custom types: a cell owns particles.
struct Cell {
  std::vector<Particle> parts;
  std::map<std::string, Particle> by_tag;

  bool operator==(const Cell& o) const {
    return parts == o.parts && by_tag == o.by_tag;
  }

  UPCXX_SERIALIZED_FIELDS(parts, by_tag)
};

// ------------------------------------------- member upcxx_serialization

// A type with an invariant-restoring deserialize: `norm2` is a cache derived
// from `xs` and is recomputed, not shipped.
struct NormedVector {
  std::vector<double> xs;
  double norm2 = 0.0;  // derived cache

  void recompute() {
    norm2 = 0.0;
    for (double x : xs) norm2 += x * x;
  }

  struct upcxx_serialization {
    template <typename Ar>
    static void serialize(Ar& ar, const NormedVector& v) {
      upcxx::serialize_one(ar, v.xs);  // the cache is *not* shipped
    }
    static NormedVector deserialize(upcxx::detail::Reader& r) {
      NormedVector out;
      out.xs = upcxx::deserialize_one<std::vector<double>>(r);
      out.recompute();
      return out;
    }
  };
};

// A versioned record: member-struct form writes a version byte and can
// evolve its layout.
struct VersionedRecord {
  std::string name;
  std::uint32_t flags = 0;

  struct upcxx_serialization {
    template <typename Ar>
    static void serialize(Ar& ar, const VersionedRecord& v) {
      upcxx::serialize_one(ar, std::uint8_t{2});
      upcxx::serialize_one(ar, v.name);
      upcxx::serialize_one(ar, v.flags);
    }
    static VersionedRecord deserialize(upcxx::detail::Reader& r) {
      const auto ver = upcxx::deserialize_one<std::uint8_t>(r);
      EXPECT_EQ(ver, 2);
      VersionedRecord out;
      out.name = upcxx::deserialize_one<std::string>(r);
      out.flags = upcxx::deserialize_one<std::uint32_t>(r);
      return out;
    }
  };
};

// Trait precedence: trivially copyable type with a fields macro — the macro
// must win only when the type is *not* trivially copyable; here it is
// trivially copyable without the macro and stays on the byte-copy path.
struct PlainPod {
  int a;
  double b;
};
static_assert(std::is_trivially_copyable_v<PlainPod>);

// -------------------------------------------------------------- the tests

TEST(CustomSerialization, FieldsMacroRoundTrip) {
  Particle p{"electron", {1.0, 2.5, -3.0}, -1};
  EXPECT_EQ(roundtrip(p), p);
}

TEST(CustomSerialization, EmptyFieldsRoundTrip) {
  Particle p;  // default: empty tag, empty pos, charge 0
  EXPECT_EQ(roundtrip(p), p);
}

TEST(CustomSerialization, NestedCustomTypesInContainers) {
  Cell c;
  c.parts = {{"e", {0.1}, -1}, {"p", {0.2, 0.3}, +1}};
  c.by_tag.emplace("e", c.parts[0]);
  c.by_tag.emplace("p", c.parts[1]);
  EXPECT_EQ(roundtrip(c), c);
}

TEST(CustomSerialization, OptionalAndVectorOfCustom) {
  std::optional<Particle> some{Particle{"mu", {9.0}, -1}};
  std::optional<Particle> none;
  auto rt_some = roundtrip(some);
  ASSERT_TRUE(rt_some.has_value());
  EXPECT_EQ(*rt_some, *some);
  EXPECT_FALSE(roundtrip(none).has_value());

  std::vector<Particle> many(17, Particle{"x", {1, 2}, 3});
  EXPECT_EQ(roundtrip(many), many);
}

TEST(CustomSerialization, MemberStructRestoresInvariant) {
  NormedVector nv;
  nv.xs = {3.0, 4.0};
  nv.norm2 = -1.0;  // deliberately stale: must be recomputed, not copied
  auto rt = roundtrip(nv);
  EXPECT_EQ(rt.xs, nv.xs);
  EXPECT_DOUBLE_EQ(rt.norm2, 25.0);
}

TEST(CustomSerialization, MemberStructVersionTag) {
  VersionedRecord v{"alpha", 0xF00Du};
  auto rt = roundtrip(v);
  EXPECT_EQ(rt.name, "alpha");
  EXPECT_EQ(rt.flags, 0xF00Du);
}

TEST(CustomSerialization, TriviallyCopyableStaysBytewise) {
  // The byte-copy path reports deserialized_type == T and needs no macro.
  static_assert(
      std::is_same_v<upcxx::deserialized_type_t<PlainPod>, PlainPod>);
  PlainPod p{7, 2.5};
  auto rt = roundtrip(p);
  EXPECT_EQ(rt.a, 7);
  EXPECT_DOUBLE_EQ(rt.b, 2.5);
}

TEST(CustomSerialization, RpcCarriesCustomType) {
  static Particle received;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      Particle p{"proton", {0.5, 0.25}, +1};
      upcxx::rpc(1, [](const Particle& q) { received = q; }, p).wait();
      upcxx::barrier();
    } else {
      upcxx::barrier();
      EXPECT_EQ(received.tag, "proton");
      ASSERT_EQ(received.pos.size(), 2u);
      EXPECT_EQ(received.charge, +1);
    }
    upcxx::barrier();
  });
}

TEST(CustomSerialization, RpcReturnsCustomType) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [] {
        return VersionedRecord{"from-rank-1", 42};
      });
      auto v = f.wait();
      EXPECT_EQ(v.name, "from-rank-1");
      EXPECT_EQ(v.flags, 42u);
    }
    upcxx::barrier();
  });
}

TEST(CustomSerialization, ViewOfCustomTypesOwnsElements) {
  static long total_charge = 0;
  total_charge = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<Particle> ps(100, Particle{"q", {1.0}, 2});
      upcxx::rpc(1, [](upcxx::view<Particle> v) {
        long sum = 0;
        for (const auto& p : v) sum += p.charge;
        total_charge = sum;
      }, upcxx::make_view(ps)).wait();
      upcxx::barrier();
    } else {
      upcxx::barrier();
      EXPECT_EQ(total_charge, 200);
    }
    upcxx::barrier();
  });
}

// Property sweep: random particles of parameterized sizes round-trip.
class CustomSerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(CustomSerializationSweep, RandomRoundTrip) {
  const int n = GetParam();
  arch::Xoshiro256 rng(12345 + n);
  Cell c;
  for (int i = 0; i < n; ++i) {
    Particle p;
    p.tag = std::string(1 + rng.next() % 16, 'a' + rng.next() % 26);
    const int m = static_cast<int>(rng.next() % 8);
    for (int j = 0; j < m; ++j)
      p.pos.push_back(static_cast<double>(rng.next() % 1000) / 7.0);
    p.charge = static_cast<int>(rng.next() % 5) - 2;
    c.parts.push_back(p);
    if (i % 3 == 0) c.by_tag.emplace(p.tag + std::to_string(i), p);
  }
  EXPECT_EQ(roundtrip(c), c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CustomSerializationSweep,
                         ::testing::Values(0, 1, 2, 7, 33, 256, 1024));

}  // namespace

// ---------------------------------------------- UPCXX_SERIALIZED_VALUES

namespace values_ns {

// Stored cartesian, shipped as (radius, angle): the wire form differs from
// the member layout and the constructor re-derives the state.
class Polar {
 public:
  Polar() = default;
  Polar(double r, double theta)
      : x_(r * std::cos(theta)), y_(r * std::sin(theta)) {}
  double x() const { return x_; }
  double y() const { return y_; }
  double radius() const { return std::hypot(x_, y_); }
  double angle() const { return std::atan2(y_, x_); }

  UPCXX_SERIALIZED_VALUES(radius(), angle())

 private:
  double x_ = 0, y_ = 0;
};

// Values form with mixed types including a container.
class Tagged {
 public:
  Tagged() = default;
  Tagged(std::string tag, std::vector<int> xs)
      : tag_(std::move(tag)), xs_(std::move(xs)), sum_(0) {
    for (int x : xs_) sum_ += x;
  }
  const std::string& tag() const { return tag_; }
  long sum() const { return sum_; }

  UPCXX_SERIALIZED_VALUES(tag_, xs_)

 private:
  std::string tag_;
  std::vector<int> xs_;
  long sum_ = 0;  // derived in the constructor, not shipped
};

}  // namespace values_ns

TEST(CustomSerialization, SerializedValuesReconstructsViaConstructor) {
  values_ns::Polar p(2.0, 0.75);
  auto rt = roundtrip(p);
  EXPECT_NEAR(rt.x(), p.x(), 1e-12);
  EXPECT_NEAR(rt.y(), p.y(), 1e-12);
}

TEST(CustomSerialization, SerializedValuesDerivedStateRebuilt) {
  values_ns::Tagged t("alpha", {1, 2, 3, 4});
  auto rt = roundtrip(t);
  EXPECT_EQ(rt.tag(), "alpha");
  EXPECT_EQ(rt.sum(), 10);
}

TEST(CustomSerialization, SerializedValuesInsideContainers) {
  std::vector<values_ns::Tagged> v;
  v.emplace_back("a", std::vector<int>{1});
  v.emplace_back("b", std::vector<int>{2, 3});
  auto rt = roundtrip(v);
  ASSERT_EQ(rt.size(), 2u);
  EXPECT_EQ(rt[0].sum(), 1);
  EXPECT_EQ(rt[1].sum(), 5);
}

TEST(CustomSerialization, SerializedValuesOverRpc) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      values_ns::Polar p(1.0, 1.0);
      const double r = upcxx::rpc(1, [](const values_ns::Polar& q) {
                         return q.radius();
                       }, p).wait();
      EXPECT_NEAR(r, 1.0, 1e-12);
    }
    upcxx::barrier();
  });
}
