// RMA tests: global_ptr semantics, allocation, rput/rget with every
// completion variant, non-contiguous transfers.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::solo;
using testutil::spmd;

namespace {

// ------------------------------------------------------------- global_ptr

TEST(GlobalPtr, NullAndComparison) {
  solo([] {
    upcxx::global_ptr<int> gp;
    EXPECT_TRUE(gp.is_null());
    EXPECT_FALSE(static_cast<bool>(gp));
    auto a = upcxx::allocate<int>(4);
    ASSERT_FALSE(a.is_null());
    EXPECT_NE(a, gp);
    EXPECT_EQ(a, a);
    upcxx::deallocate(a);
  });
}

TEST(GlobalPtr, Arithmetic) {
  solo([] {
    auto a = upcxx::allocate<int>(10);
    auto b = a + 3;
    EXPECT_EQ(b - a, 3);
    EXPECT_EQ((b - 3), a);
    auto c = a;
    ++c;
    EXPECT_EQ(c - a, 1);
    c += 4;
    EXPECT_EQ(c - a, 5);
    EXPECT_TRUE(a < b);
    upcxx::deallocate(a);
  });
}

TEST(GlobalPtr, LocalRoundTrip) {
  solo([] {
    auto g = upcxx::allocate<double>(1);
    *g.local() = 6.5;
    auto g2 = upcxx::to_global_ptr(g.local());
    EXPECT_EQ(g, g2);
    EXPECT_DOUBLE_EQ(*g2.local(), 6.5);
    upcxx::deallocate(g);
  });
}

TEST(GlobalPtr, TryGlobalPtrOutsideSegment) {
  solo([] {
    int stack_var = 0;
    EXPECT_TRUE(upcxx::try_global_ptr(&stack_var).is_null());
  });
}

TEST(GlobalPtr, NewAndDelete) {
  solo([] {
    auto g = upcxx::new_<std::pair<int, int>>(3, 4);
    EXPECT_EQ(g.local()->first, 3);
    EXPECT_EQ(g.local()->second, 4);
    upcxx::delete_(g);
    auto arr = upcxx::new_array<int>(100);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(arr.local()[i], 0);
    upcxx::delete_array(arr, 100);
  });
}

TEST(GlobalPtr, ReinterpretCast) {
  solo([] {
    auto g = upcxx::allocate<std::uint64_t>(1);
    *g.local() = 0x0102030405060708ull;
    auto b = g.reinterpret<std::uint8_t>();
    EXPECT_EQ(*b.local(), 0x08);  // little-endian
    upcxx::deallocate(g);
  });
}

TEST(GlobalPtr, SegmentExhaustionReturnsNull) {
  solo([] {
    auto big = upcxx::allocate<char>(testutil::test_cfg(1).segment_bytes * 2);
    EXPECT_TRUE(big.is_null());
  });
}

// ------------------------------------------------------------- rput/rget

TEST(Rma, ScalarPutGet) {
  spmd(4, [] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    auto mine = upcxx::allocate<int>(1);
    *mine.local() = -1;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto right = dir.fetch((me + 1) % P).wait();
    upcxx::rput(me * 10, right).wait();
    upcxx::barrier();
    // Our slot was written by the left neighbor.
    auto got = upcxx::rget(mine).wait();
    EXPECT_EQ(got, ((me + P - 1) % P) * 10);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, BulkPutGetRoundTrip) {
  spmd(2, [] {
    constexpr std::size_t kN = 4096;
    auto mine = upcxx::allocate<std::uint32_t>(kN);
    std::fill_n(mine.local(), kN, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    std::vector<std::uint32_t> src(kN);
    for (std::size_t i = 0; i < kN; ++i)
      src[i] = static_cast<std::uint32_t>(i * 3 + upcxx::rank_me());
    upcxx::rput(src.data(), peer, kN).wait();
    upcxx::barrier();
    std::vector<std::uint32_t> back(kN);
    upcxx::rget(mine, back.data(), kN).wait();
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(back[i], i * 3 + (1 - upcxx::rank_me()));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, PromiseCompletionTracksMultipleOps) {
  // The flood-bandwidth pattern from §IV-B: many rputs, one promise.
  spmd(2, [] {
    constexpr int kOps = 64;
    auto mine = upcxx::allocate<int>(kOps);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::promise<> p;
    for (int i = 0; i < kOps; ++i) {
      upcxx::rput(i + 1, peer + i, upcxx::operation_cx::as_promise(p));
      if (i % 10 == 0) upcxx::progress();
    }
    p.finalize().wait();
    upcxx::barrier();
    for (int i = 0; i < kOps; ++i) EXPECT_EQ(mine.local()[i], i + 1);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, LpcCompletionRunsOnInitiator) {
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    bool fired = false;
    upcxx::rput(7, peer, upcxx::operation_cx::as_lpc([&] { fired = true; }));
    while (!fired) upcxx::progress();
    upcxx::barrier();
    EXPECT_EQ(*mine.local(), 7);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

std::atomic<int> g_remote_cx_hits{0};

TEST(Rma, RemoteCompletionRpcFiresAtTarget) {
  g_remote_cx_hits = 0;
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    *mine.local() = 0;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    if (upcxx::rank_me() == 0) {
      upcxx::rput(123, peer,
                  upcxx::operation_cx::as_future() |
                      upcxx::remote_cx::as_rpc(
                          [](upcxx::global_ptr<int> where) {
                            // Runs on rank 1 after the value landed.
                            EXPECT_EQ(*where.local(), 123);
                            g_remote_cx_hits.fetch_add(1);
                          },
                          peer))
          .wait();
    } else {
      while (g_remote_cx_hits.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(g_remote_cx_hits.load(), 1);
}

TEST(Rma, SourceCompletionPromise) {
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::promise<> src_done;
    upcxx::rput(5, peer,
                upcxx::operation_cx::as_future() |
                    upcxx::source_cx::as_promise(src_done))
        .wait();
    // Source completion is synchronous on the shared-memory wire.
    EXPECT_TRUE(src_done.finalize().is_ready());
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, IrregularPutGathersAndScatters) {
  spmd(2, [] {
    constexpr std::size_t kN = 12;
    auto mine = upcxx::allocate<int>(kN);
    std::fill_n(mine.local(), kN, 0);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    // Two local fragments -> three remote fragments.
    std::vector<int> a{1, 2, 3, 4, 5, 6};
    std::vector<int> b{7, 8, 9, 10, 11, 12};
    std::vector<upcxx::src_fragment<int>> srcs{{a.data(), a.size()},
                                               {b.data(), b.size()}};
    std::vector<upcxx::dst_fragment<int>> dsts{
        {peer, 4}, {peer + 4, 4}, {peer + 8, 4}};
    upcxx::rput_irregular(srcs, dsts).wait();
    upcxx::barrier();
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(mine.local()[i], static_cast<int>(i + 1));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

std::atomic<int> g_frag_cx_hits{0};

TEST(Rma, IrregularPutNotifiesEveryTargetRank) {
  // Regression: completion targeting used to be taken from the *last*
  // fragment, so a fragment list spanning several target ranks
  // misattributed operation/remote completions. Now each distinct target
  // rank receives the remote_cx notification exactly once, after its
  // fragments landed.
  g_frag_cx_hits = 0;
  spmd(3, [] {
    constexpr std::size_t kPer = 8;
    auto mine = upcxx::allocate<int>(kPer);
    std::fill_n(mine.local(), kPer, 0);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto on1 = dir.fetch(1).wait();
    auto on2 = dir.fetch(2).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<int> src(2 * kPer);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<int>(100 + i);
      std::vector<upcxx::src_fragment<int>> s{{src.data(), src.size()}};
      // Fragments interleave the two targets; each must be notified once.
      std::vector<upcxx::dst_fragment<int>> d{
          {on1, kPer / 2}, {on2, kPer / 2},
          {on1 + kPer / 2, kPer / 2}, {on2 + kPer / 2, kPer / 2}};
      upcxx::promise<> pr;
      upcxx::rput_irregular(
          s, d,
          upcxx::operation_cx::as_promise(pr) |
              upcxx::remote_cx::as_rpc([] { g_frag_cx_hits.fetch_add(1); }));
      pr.finalize().wait();
      while (g_frag_cx_hits.load() < 2) upcxx::progress();
    } else {
      while (g_frag_cx_hits.load() < 2) upcxx::progress();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      EXPECT_EQ(mine.local()[0], 100);
      EXPECT_EQ(mine.local()[kPer - 1], 100 + 2 * static_cast<int>(kPer) - 5);
    }
    if (upcxx::rank_me() == 2) {
      EXPECT_EQ(mine.local()[0], 100 + static_cast<int>(kPer) / 2);
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  // Exactly one notification per distinct target rank — not per fragment
  // (4), not just the last fragment's rank (1).
  EXPECT_EQ(g_frag_cx_hits.load(), 2);
}

TEST(Rma, IrregularGetFromMultipleRanks) {
  // rget_irregular with writable local_fragment destinations (no
  // const_cast aliasing of src_fragment), gathering from two source ranks.
  spmd(3, [] {
    constexpr std::size_t kPer = 6;
    auto mine = upcxx::allocate<int>(kPer);
    for (std::size_t i = 0; i < kPer; ++i)
      mine.local()[i] = upcxx::rank_me() * 100 + static_cast<int>(i);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto on1 = dir.fetch(1).wait();
    auto on2 = dir.fetch(2).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<int> out(2 * kPer, -1);
      std::vector<upcxx::dst_fragment<int>> srcs{{on1, kPer}, {on2, kPer}};
      std::vector<upcxx::local_fragment<int>> dsts{
          {out.data(), kPer / 2},
          {out.data() + kPer / 2, 3 * kPer / 2}};
      upcxx::rget_irregular(srcs, dsts).wait();
      for (std::size_t i = 0; i < kPer; ++i) {
        EXPECT_EQ(out[i], 100 + static_cast<int>(i));
        EXPECT_EQ(out[kPer + i], 200 + static_cast<int>(i));
      }
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, StridedPutSubmatrix) {
  // Put a 3x4 tile of a row-major 8x8 local matrix into a remote 16x16.
  spmd(2, [] {
    constexpr std::size_t kRemote = 16, kLocal = 8;
    auto mine = upcxx::allocate<double>(kRemote * kRemote);
    std::fill_n(mine.local(), kRemote * kRemote, 0.0);
    upcxx::dist_object<upcxx::global_ptr<double>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    std::vector<double> local(kLocal * kLocal);
    for (std::size_t i = 0; i < local.size(); ++i)
      local[i] = static_cast<double>(i);
    // Source tile at (1,2); destination tile at (5,3).
    upcxx::rput_strided<2>(
        local.data() + 1 * kLocal + 2,
        {static_cast<std::ptrdiff_t>(kLocal * sizeof(double)),
         static_cast<std::ptrdiff_t>(sizeof(double))},
        peer + 5 * kRemote + 3,
        {static_cast<std::ptrdiff_t>(kRemote * sizeof(double)),
         static_cast<std::ptrdiff_t>(sizeof(double))},
        {std::size_t{3}, std::size_t{4}})
        .wait();
    upcxx::barrier();
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(mine.local()[(5 + r) * kRemote + 3 + c],
                         static_cast<double>((1 + r) * kLocal + 2 + c));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, StridedGetMirrorsPut) {
  spmd(2, [] {
    constexpr std::size_t kN = 8;
    auto mine = upcxx::allocate<int>(kN * kN);
    for (std::size_t i = 0; i < kN * kN; ++i)
      mine.local()[i] = static_cast<int>(i + 100 * upcxx::rank_me());
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::barrier();
    std::array<int, 4> out{};
    upcxx::rget_strided<2>(
        peer + 9,
        {static_cast<std::ptrdiff_t>(kN * sizeof(int)),
         static_cast<std::ptrdiff_t>(sizeof(int))},
        out.data(),
        {static_cast<std::ptrdiff_t>(2 * sizeof(int)),
         static_cast<std::ptrdiff_t>(sizeof(int))},
        {std::size_t{2}, std::size_t{2}})
        .wait();
    const int base = 100 * (1 - upcxx::rank_me());
    EXPECT_EQ(out[0], base + 9);
    EXPECT_EQ(out[1], base + 10);
    EXPECT_EQ(out[2], base + 17);
    EXPECT_EQ(out[3], base + 18);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rma, ManyOutstandingGets) {
  spmd(4, [] {
    constexpr int kOps = 200;
    auto mine = upcxx::allocate<int>(kOps);
    for (int i = 0; i < kOps; ++i) mine.local()[i] = upcxx::rank_me() * 1000 + i;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    const int peer_rank = (upcxx::rank_me() + 1) % upcxx::rank_n();
    auto peer = dir.fetch(peer_rank).wait();
    upcxx::barrier();
    std::vector<upcxx::future<int>> futs;
    futs.reserve(kOps);
    for (int i = 0; i < kOps; ++i) futs.push_back(upcxx::rget(peer + i));
    for (int i = 0; i < kOps; ++i)
      EXPECT_EQ(futs[i].wait(), peer_rank * 1000 + i);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

}  // namespace
