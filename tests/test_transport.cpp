// Tentpole coverage for segment-offset wire addressing (gex/segment.hpp)
// and the pluggable AM transport (gex/transport.hpp):
//   * SegmentMap round trips for heap, bounce-pool (heap-carved), ring,
//     and rank-segment addresses; raw virtual addresses are rejected in
//     both directions.
//   * The shm-file transport carries the full AM + RMA traffic mix on the
//     thread and process backends, with per-pair ring files that appear
//     lazily and are unlinked at teardown.
//   * Live am-wire traffic resolves every decoded record through the
//     registry (decode_count) — the "no raw virtual address on the wire"
//     acceptance hook.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arch/rng.hpp"
#include "gex/am.hpp"
#include "gex/arena.hpp"
#include "gex/segment.hpp"
#include "gex/transport.hpp"
#include "spmd_helpers.hpp"

namespace {

// Throwing check for use inside forked rank bodies.
void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("check failed: ") + what);
}

// Count of this job's shm-transport ring files currently on disk (the
// names embed the launcher pid, which is this process for both backends).
int shm_file_count() {
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "upcxx-am-%u-",
                static_cast<unsigned>(::getpid()));
  int n = 0;
  if (DIR* d = ::opendir(gex::shm_transport_dir())) {
    while (struct dirent* e = ::readdir(d))
      if (std::strncmp(e->d_name, prefix, std::strlen(prefix)) == 0) ++n;
    ::closedir(d);
  }
  return n;
}

// ------------------------------------------------------------- SegmentMap

TEST(SegmentMap, RoundTripsHeapPoolRingAndSegments) {
  gex::Config cfg = testutil::test_cfg(3);
  gex::Arena* a = gex::Arena::create(cfg);
  const gex::SegmentMap& sm = a->segmap();
  // heap + 3 segments + ring arena.
  EXPECT_EQ(sm.segment_count(), 5u);

  // Heap addresses (rendezvous buffers and the bounce pools both carve
  // from here).
  void* rdzv = a->heap().allocate(4096);
  void* pool = a->heap().allocate(64 << 10);
  ASSERT_NE(rdzv, nullptr);
  ASSERT_NE(pool, nullptr);
  for (void* p : {rdzv, pool}) {
    const gex::WireAddr wa = sm.encode(p);
    EXPECT_NE(wa, 0u);
    EXPECT_EQ(sm.decode(wa), p);
  }

  // Rank-segment addresses, including interior offsets (device segments
  // are carved from these, so they are covered by the same ids).
  for (int r = 0; r < 3; ++r) {
    void* seg = a->segment_heap(r).allocate(512);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(sm.decode(sm.encode(seg)), seg);
    std::byte* interior = static_cast<std::byte*>(seg) + 17;
    EXPECT_EQ(sm.decode(sm.encode(interior)), interior);
  }

  // Ring addresses: nothing should ever put one on the wire, but the
  // registry covers the whole arena so no region a record could name is
  // unmapped.
  void* ring = &a->inbox(1);
  EXPECT_EQ(sm.decode(sm.encode(ring)), ring);

  gex::Arena::destroy(a);
}

TEST(SegmentMap, RejectsRawVirtualAddresses) {
  gex::Config cfg = testutil::test_cfg(2);
  gex::Arena* a = gex::Arena::create(cfg);
  const gex::SegmentMap& sm = a->segmap();

  // Process-private addresses (stack, malloc) have no segment: encoding
  // reports failure instead of leaking them onto the wire.
  int on_stack = 0;
  auto heap_private = std::make_unique<long>(7);
  EXPECT_EQ(sm.try_encode(&on_stack), 0u);
  EXPECT_EQ(sm.try_encode(heap_private.get()), 0u);
  EXPECT_FALSE(sm.contains(&on_stack));

  // A raw x86-64 pointer value smuggled into a record decodes to the
  // reserved id 0 (its top 16 bits are zero) — rejected, never
  // dereferenced. Out-of-range ids and offsets are rejected too.
  const auto raw = static_cast<gex::WireAddr>(
      reinterpret_cast<std::uintptr_t>(&on_stack));
  EXPECT_EQ(sm.try_decode(raw), nullptr);
  EXPECT_EQ(sm.try_decode(0), nullptr);
  const gex::WireAddr bad_id = gex::WireAddr{999}
                               << gex::kWireAddrOffsetBits;
  EXPECT_EQ(sm.try_decode(bad_id), nullptr);
  const gex::WireAddr heap_id = sm.encode(a->heap().allocate(64)) &
                                ~gex::kWireAddrOffsetMask;
  EXPECT_EQ(sm.try_decode(heap_id | (cfg.heap_bytes + 1)), nullptr);

  gex::Arena::destroy(a);
}

// ------------------------------------------------- live-traffic acceptance

// The "no raw virtual address on the wire" hook: every decoded record
// resolves through the segment registry, so a burst of am-wire RMA in
// every shape must grow decode_count (and land the right bytes, proving
// the decoded addresses were correct).
TEST(WireAddressing, EveryAmRecordResolvesThroughRegistry) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.rma_async_min = 4 << 10;
  cfg.xfer_chunk_bytes = 4 << 10;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    static upcxx::global_ptr<long> remote;
    if (me == 1) remote = upcxx::new_array<long>(4096);
    upcxx::barrier();
    if (me == 0) {
      const std::uint64_t before = gex::arena().segmap().decode_count();
      std::vector<long> src(4096), sink(4096, 0);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<long>(i);
      upcxx::rput(src.data(), remote, 64).wait();      // eager put
      upcxx::rput(src.data(), remote, 4096).wait();    // chunked/staged put
      upcxx::rget(remote, sink.data(), 4096).wait();   // get + reply
      std::vector<upcxx::src_fragment<long>> s{{src.data(), 32}};
      std::vector<upcxx::dst_fragment<long>> d{{remote, 16}, {remote + 16, 16}};
      upcxx::rput_irregular(s, d).wait();              // scatter record
      EXPECT_EQ(sink, src);
      // put, staged put + its bounce buffer, get, frag descriptors: well
      // over one decode per operation.
      EXPECT_GE(gex::arena().segmap().decode_count() - before, 5u);
    }
    upcxx::barrier();
    if (me == 1) upcxx::delete_array(remote, 4096);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// ---------------------------------------------------- shm-file transport

TEST(ShmFileTransport, AmAndRmaTrafficThreadBackend) {
  gex::Config cfg = testutil::test_cfg(4);
  cfg.am_transport = gex::AmTransport::kShmFile;
  cfg.rma_wire = gex::RmaWire::kAm;  // everything through the new wire
  const int fails = upcxx::run(cfg, [] {
    EXPECT_STREQ(gex::am().transport().name(), "shmfile");
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    auto mine = upcxx::new_array<long>(256);
    for (int i = 0; i < 256; ++i) mine.local()[i] = -1;
    auto ptrs = upcxx::allgather(mine).wait();  // rpc traffic (frames)
    upcxx::barrier();
    // RMA in several shapes: eager put, rendezvous-sized put, get back.
    const int nb = (me + 1) % P;
    std::vector<long> pat(256);
    for (int i = 0; i < 256; ++i) pat[i] = me * 1000 + i;
    upcxx::rput(pat.data(), ptrs[nb], 256).wait();
    upcxx::barrier();
    const int left = (me + P - 1) % P;
    for (int i = 0; i < 256; ++i)
      EXPECT_EQ(mine.local()[i], left * 1000 + i);
    std::vector<long> back(256, 0);
    upcxx::rget(ptrs[nb], back.data(), 256).wait();
    EXPECT_EQ(back, pat);
    // The per-pair ring files exist while the job runs.
    if (me == 0) EXPECT_GT(shm_file_count(), 0);
    upcxx::barrier();
    upcxx::delete_array(mine, 256);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
  // ...and are unlinked at teardown.
  EXPECT_EQ(shm_file_count(), 0);
}

TEST(ShmFileTransport, RmaAcrossForkedProcesses) {
  // Forked ranks map each pair file independently (no pre-fork shared ring
  // mapping is involved in the message plane): the round trip only works
  // because the records carry segment-offset addresses.
  gex::Config cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  cfg.am_transport = gex::AmTransport::kShmFile;
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.rma_async_min = 4 << 10;
  cfg.xfer_chunk_bytes = 4 << 10;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    require(std::strcmp(gex::am().transport().name(), "shmfile") == 0,
            "transport resolved to shmfile");
    constexpr std::size_t kN = 4096;  // 32 KB of longs: rides the engine
    auto mine = upcxx::new_array<long>(kN);
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    const int nb = (me + 1) % P;
    std::vector<long> pat(kN);
    for (std::size_t i = 0; i < kN; ++i)
      pat[i] = me * 100000 + static_cast<long>(i);
    upcxx::rput(pat.data(), ptrs[nb], kN).wait();
    upcxx::rput(static_cast<long>(me), ptrs[nb]).wait();
    upcxx::barrier();
    const int left = (me + P - 1) % P;
    require(mine.local()[0] == left, "small put landed over shmfile");
    for (std::size_t i = 1; i < kN; ++i)
      require(mine.local()[i] == left * 100000 + static_cast<long>(i),
              "chunked put landed over shmfile");
    std::vector<long> back(kN, 0);
    upcxx::rget(ptrs[nb], back.data(), kN).wait();
    require(back[0] == me, "rget over shmfile");
    upcxx::barrier();
    upcxx::delete_array(mine, kN);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(shm_file_count(), 0);
}

TEST(ShmFileTransport, RandomizedMixedSoak) {
  // A compact cousin of test_rma_stress pinned to the shmfile transport:
  // randomized sizes crossing the eager / rendezvous / staged-put splits,
  // verified against a local shadow. (The full stress suite runs under
  // UPCXX_AM_TRANSPORT=shmfile in the CI matrix.)
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = gex::AmTransport::kShmFile;
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 4;
  cfg.rma_async_min = 8 << 10;
  cfg.xfer_chunk_bytes = 8 << 10;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kWords = 16 << 10;
    auto mine = upcxx::new_array<long>(kWords);
    std::memset(mine.local(), 0, kWords * sizeof(long));
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    if (me == 0) {
      arch::Xoshiro256 rng(42);
      std::vector<long> shadow(kWords, 0), buf(kWords), back(kWords);
      for (int iter = 0; iter < 60; ++iter) {
        const std::size_t n = 1 + rng.next_below(kWords - 1);
        const std::size_t at = rng.next_below(kWords - n);
        for (std::size_t i = 0; i < n; ++i)
          buf[i] = static_cast<long>(rng.next());
        upcxx::rput(buf.data(), ptrs[1] + at, n).wait();
        std::copy(buf.begin(), buf.begin() + static_cast<long>(n),
                  shadow.begin() + static_cast<long>(at));
        if (iter % 7 == 0) {
          upcxx::rget(ptrs[1], back.data(), kWords).wait();
          EXPECT_EQ(back, shadow) << "iter " << iter;
        }
      }
      upcxx::rget(ptrs[1], back.data(), kWords).wait();
      EXPECT_EQ(back, shadow);
    }
    upcxx::barrier();
    upcxx::delete_array(mine, kWords);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(shm_file_count(), 0);
}

// ---------------------------------------------------- transport resolution

TEST(Transport, ConfigParsingAndResolution) {
  const char* saved = getenv("UPCXX_AM_TRANSPORT");
  const std::string saved_val = saved ? saved : "";

  unsetenv("UPCXX_AM_TRANSPORT");
  gex::Config c;
  EXPECT_EQ(c.am_transport, gex::AmTransport::kAuto);
  EXPECT_EQ(gex::resolve_am_transport(c), gex::AmTransport::kMmap);

  setenv("UPCXX_AM_TRANSPORT", "shmfile", 1);
  EXPECT_EQ(gex::Config::from_env().am_transport,
            gex::AmTransport::kShmFile);
  // Hand-built Configs left at kAuto honor the env override (the CI
  // matrix contract)...
  EXPECT_EQ(gex::resolve_am_transport(c), gex::AmTransport::kShmFile);
  // ...but an explicit transport beats the environment.
  c.am_transport = gex::AmTransport::kMmap;
  EXPECT_EQ(gex::resolve_am_transport(c), gex::AmTransport::kMmap);

  // Typos degrade to auto (with a warning), never abort.
  setenv("UPCXX_AM_TRANSPORT", "infiniband", 1);
  EXPECT_EQ(gex::Config::from_env().am_transport, gex::AmTransport::kAuto);

  if (saved)
    setenv("UPCXX_AM_TRANSPORT", saved_val.c_str(), 1);
  else
    unsetenv("UPCXX_AM_TRANSPORT");
}

}  // namespace
