// mini-symPACK tests: multifrontal Cholesky vs dense reference, v0.1 == v1.0
// numerics, SPD integrity of the synthetic problem.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/sympack/sympack.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

sparse::TreeParams tiny_tree() {
  sparse::TreeParams p;
  p.levels = 3;
  p.n_vertices = 600;
  p.min_sep = 3;
  p.max_front = 40;
  p.seed = 3;
  return p;
}

// Dense reference Cholesky (lower), in place.
bool dense_cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    double d = a[k * n + k];
    if (d <= 0) return false;
    const double pivot = std::sqrt(d);
    a[k * n + k] = pivot;
    for (std::size_t i = k + 1; i < n; ++i) a[k * n + i] /= pivot;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double ljk = a[k * n + j];
      for (std::size_t i = j; i < n; ++i) a[j * n + i] -= a[k * n + i] * ljk;
    }
  }
  return true;
}

class SympackApis : public ::testing::TestWithParam<sympack::Api> {};

TEST_P(SympackApis, MatchesDenseReference) {
  const auto api = GetParam();
  const auto params = tiny_tree();
  spmd(4, [&] {
    auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());
    sympack::Solver solver(tree);
    solver.setup();

    // Dense reference, computed redundantly on every rank.
    auto a = solver.assemble_dense();
    const auto n = static_cast<std::size_t>(tree.total_indices());
    ASSERT_TRUE(dense_cholesky(a, n)) << "synthetic matrix not SPD";

    solver.factorize(api);

    // Every owned front's factor columns must equal the reference L.
    for (const auto& f : tree.nodes) {
      if (solver.owner(f.id) != upcxx::rank_me()) continue;
      for (int j = 0; j < f.ncols; ++j) {
        const auto gj = static_cast<std::size_t>(f.row_indices[j]);
        for (int i = j; i < f.nrows(); ++i) {
          const auto gi = static_cast<std::size_t>(f.row_indices[i]);
          ASSERT_NEAR(solver.factor_entry(f.id, i, j), a[gj * n + gi],
                      1e-9 * (1.0 + std::abs(a[gj * n + gi])))
              << "front " << f.id << " L(" << gi << "," << gj << ")";
        }
      }
    }
    upcxx::barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Apis, SympackApis,
                         ::testing::Values(sympack::Api::kV10,
                                           sympack::Api::kV01),
                         [](const auto& info) {
                           return info.param == sympack::Api::kV10 ? "V10"
                                                                   : "V01";
                         });

TEST(Sympack, BothApisProduceIdenticalFactors) {
  const auto params = tiny_tree();
  spmd(4, [&] {
    auto tree = sparse::FrontalTree::synthetic(params, upcxx::rank_n());
    double sums[2];
    int k = 0;
    for (auto api : {sympack::Api::kV10, sympack::Api::kV01}) {
      sympack::Solver solver(tree);
      solver.setup();
      solver.factorize(api);
      sums[k++] =
          upcxx::reduce_all(solver.local_checksum(), upcxx::op_fast_add{})
              .wait();
    }
    EXPECT_DOUBLE_EQ(sums[0], sums[1]);
    upcxx::barrier();
  });
}

TEST(Sympack, SingleRankWholeTree) {
  const auto params = tiny_tree();
  spmd(1, [&] {
    auto tree = sparse::FrontalTree::synthetic(params, 1);
    sympack::Solver solver(tree);
    solver.setup();
    solver.factorize(sympack::Api::kV10);
    EXPECT_NE(solver.local_checksum(), 0.0);
  });
}

TEST(Sympack, DeeperTreeStillSpd) {
  sparse::TreeParams p = tiny_tree();
  p.levels = 5;
  p.n_vertices = 3000;
  spmd(2, [&] {
    auto tree = sparse::FrontalTree::synthetic(p, upcxx::rank_n());
    sympack::Solver solver(tree);
    solver.setup();
    // partial_factor asserts positive pivots throughout.
    solver.factorize(sympack::Api::kV10);
    upcxx::barrier();
  });
}

TEST(Sympack, OwnerMapFollowsProportionalMapping) {
  auto tree = sparse::FrontalTree::synthetic(tiny_tree(), 4);
  // Root owned by rank 0 (leader of the full range); leaves spread out.
  EXPECT_EQ(tree.root().team_lo, 0);
  std::vector<int> owners;
  for (const auto& f : tree.nodes)
    if (f.lchild < 0) owners.push_back(f.team_lo);
  // With 4 ranks and a balanced tree, at least 3 distinct leaf owners.
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  EXPECT_GE(owners.size(), 3u);
}

}  // namespace
