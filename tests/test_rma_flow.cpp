// AM-wire transport performance layer: credit-based flow control (the
// UPCXX_AM_WINDOW per-target request window with sender-side queueing) and
// ack aggregation (multi-ack records batched per poll, ack piggybacking on
// reverse traffic). These tests drive gex::RmaAmProtocol directly — raw
// polls, no upcxx progress in the measured phases — so record-level
// behavior (exactly one ack record per poll, acks riding a reverse put) is
// observable instead of averaged away.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gex/rma_am.hpp"
#include "gex/runtime.hpp"
#include "gex/xfer.hpp"
#include "spmd_helpers.hpp"

namespace {

// Raw progress for one rank: inbox + protocol pumps, no upcxx layers.
void pump() {
  gex::am().poll();
  gex::rma_am().poll();
}

std::atomic<int> g_phase{0};
std::atomic<int> g_done{0};

TEST(AmFlowControl, WindowCapsOutstandingPerTarget) {
  g_done = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 4;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 64;
    constexpr std::size_t kBytes = 1024;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kBytes);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      auto& proto = gex::rma_am();
      EXPECT_EQ(proto.window(), 4u);
      std::vector<char> src(kBytes, 'w');
      for (int i = 0; i < kPuts; ++i)
        proto.put(1, remote.local(), src.data(), kBytes,
                  [] { g_done.fetch_add(1); });
      // The flood exceeded the window: most requests parked sender-side.
      EXPECT_GT(proto.stats().requests_queued, 0u);
      while (g_done.load() < kPuts) pump();
      const auto& st = proto.stats();
      // At no point were more than W requests unacknowledged on the wire.
      EXPECT_LE(st.max_outstanding, 4u);
      EXPECT_EQ(st.puts_sent, static_cast<std::uint64_t>(kPuts));
      EXPECT_EQ(proto.queued(), 0u);
      EXPECT_TRUE(proto.idle());
    } else {
      while (gex::rma_am().stats().puts_handled <
             static_cast<std::uint64_t>(kPuts))
        pump();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(AmFlowControl, WindowOneSerializesAndCompletes) {
  g_done = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 1;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 100;
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::new_array<long>(1);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      for (long i = 0; i < kPuts; ++i)
        gex::rma_am().put(1, remote.local(), &i, sizeof i,
                          [] { g_done.fetch_add(1); });
      while (g_done.load() < kPuts) pump();
      EXPECT_EQ(gex::rma_am().stats().max_outstanding, 1u);
      EXPECT_TRUE(gex::rma_am().idle());
    } else {
      while (gex::rma_am().stats().puts_handled <
             static_cast<std::uint64_t>(kPuts))
        pump();
      // Worst-case serialization still lands every payload in order: the
      // window forces request i+1 behind request i's ack, so the final
      // value is the last put.
      EXPECT_EQ(*remote.local(), static_cast<long>(kPuts - 1));
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote, 1);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Both ranks flood each other through a deliberately tiny ring with a tiny
// window: rings fill, windows exhaust, sender queues overflow into the
// bounded-queue stall path — and everything must still drain, because every
// stalled sender keeps polling its own inbox (retiring the peer's credits).
TEST(AmFlowControl, MutualFloodMakesProgress) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 2;
  cfg.ring_bytes = 8 << 10;  // the minimum: eager records are scarce
  cfg.rma_async_min = 0;     // every rput is one protocol request
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 2000;
    constexpr std::size_t kN = 128;  // 1 KB payloads
    const int me = upcxx::rank_me();
    auto mine = upcxx::new_array<long>(kN);
    std::fill_n(mine.local(), kN, -1L);
    upcxx::dist_object<upcxx::global_ptr<long>> dir(mine);
    auto peer = dir.fetch(1 - me).wait();
    upcxx::barrier();
    std::vector<long> src(kN);
    upcxx::promise<> pr;
    for (int i = 0; i < kPuts; ++i) {
      for (std::size_t j = 0; j < kN; ++j)
        src[j] = static_cast<long>(i) * 1000 + static_cast<long>(j);
      upcxx::rput(src.data(), peer, kN,
                  upcxx::operation_cx::as_promise(pr));
      if (!(i % 16)) upcxx::progress();
    }
    pr.finalize().wait();
    const auto& st = gex::rma_am().stats();
    EXPECT_LE(st.max_outstanding, 2u);
    EXPECT_LE(st.queued_peak,
              gex::rma_am().window() + gex::RmaAmProtocol::kQueueSlack);
    upcxx::barrier();
    // Peer's last put landed whole.
    EXPECT_EQ(mine.local()[0], (kPuts - 1) * 1000L);
    EXPECT_EQ(mine.local()[kN - 1],
              (kPuts - 1) * 1000L + static_cast<long>(kN) - 1);
    upcxx::barrier();
    upcxx::delete_array(mine, kN);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Ack batching, observed at record granularity: the target handles a burst
// of puts in one inbox poll, then its next protocol poll must emit exactly
// ONE standalone multi-ack record carrying every cookie.
TEST(AmAckAggregation, OneAckRecordPerTargetPerPoll) {
  g_phase = 0;
  g_done = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 64;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 50;
    static upcxx::global_ptr<long> remote;
    static std::atomic<int> s_parked{0};
    if (upcxx::rank_me() == 1) {
      remote = upcxx::new_array<long>(1);
      s_parked = 0;
    }
    upcxx::barrier();
    // The target must be provably outside any polling loop before the
    // burst goes out, or its barrier-exit progress consumes part of it.
    if (upcxx::rank_me() == 1) s_parked.store(1, std::memory_order_release);
    if (upcxx::rank_me() == 0) {
      while (s_parked.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      // Burst of eager puts; the window (64) admits all of them at once.
      for (long i = 0; i < kPuts; ++i)
        gex::rma_am().put(1, remote.local(), &i, sizeof i,
                          [] { g_done.fetch_add(1); });
      EXPECT_EQ(gex::rma_am().stats().requests_queued, 0u);
      g_phase.store(1, std::memory_order_release);
      while (g_done.load() < kPuts) pump();
      EXPECT_TRUE(gex::rma_am().idle());
      g_phase.store(2, std::memory_order_release);
    } else {
      // Hold all polling until the full burst is in our ring, so one poll
      // observes it whole (thread backend: statics are shared).
      while (g_phase.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      const auto before = gex::rma_am().stats();
      gex::am().poll(/*max_msgs=*/64);  // handles the whole burst
      const auto mid = gex::rma_am().stats();
      EXPECT_EQ(mid.puts_handled - before.puts_handled,
                static_cast<std::uint64_t>(kPuts));
      EXPECT_EQ(mid.acks_sent, before.acks_sent) << "handler injected";
      gex::rma_am().poll();  // one poll -> one multi-ack record
      const auto after = gex::rma_am().stats();
      EXPECT_EQ(after.acks_sent - before.acks_sent, 1u);
      EXPECT_EQ(after.ack_cookies_sent - before.ack_cookies_sent,
                static_cast<std::uint64_t>(kPuts));
      while (g_phase.load(std::memory_order_acquire) < 2) pump();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote, 1);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Ack piggybacking: a target that owes acks and then sends its own request
// in the reverse direction carries those acks on the request record — no
// standalone ack record at all.
TEST(AmAckAggregation, AcksRideReverseTraffic) {
  g_phase = 0;
  g_done = 0;
  static std::atomic<int> s_reverse_done{0};
  s_reverse_done = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 64;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 20;
    static upcxx::global_ptr<long> remote0, remote1;
    static std::atomic<int> s_parked{0};
    if (upcxx::rank_me() == 0) remote0 = upcxx::new_array<long>(1);
    if (upcxx::rank_me() == 1) {
      remote1 = upcxx::new_array<long>(1);
      s_parked = 0;
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) s_parked.store(1, std::memory_order_release);
    if (upcxx::rank_me() == 0) {
      while (s_parked.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      for (long i = 0; i < kPuts; ++i)
        gex::rma_am().put(1, remote1.local(), &i, sizeof i,
                          [] { g_done.fetch_add(1); });
      g_phase.store(1, std::memory_order_release);
      // Serve rank 1's reverse put and collect our piggybacked acks; our
      // completions must all fire even though no ack record was sent.
      while (g_done.load() < kPuts) pump();
      EXPECT_TRUE(gex::rma_am().idle());
      g_phase.store(2, std::memory_order_release);
    } else {
      while (g_phase.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      gex::am().poll(64);  // handle the burst: now we owe 20 acks
      const auto before = gex::rma_am().stats();
      // Reverse-direction request: the owed acks ride along.
      long v = 4242;
      gex::rma_am().put(0, remote0.local(), &v, sizeof v,
                        [] { s_reverse_done.fetch_add(1); });
      const auto after = gex::rma_am().stats();
      EXPECT_EQ(after.acks_piggybacked - before.acks_piggybacked,
                static_cast<std::uint64_t>(kPuts));
      EXPECT_EQ(after.acks_sent, before.acks_sent)
          << "standalone ack record sent despite reverse traffic";
      while (s_reverse_done.load() == 0) pump();
      while (g_phase.load(std::memory_order_acquire) < 2) pump();
      EXPECT_EQ(*remote1.local(), static_cast<long>(kPuts - 1));
    }
    upcxx::barrier();
    EXPECT_EQ(*remote0.local(), 4242L);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) upcxx::delete_array(remote0, 1);
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote1, 1);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// The staged-put bounce pool recycles: a long stream of large puts to one
// target allocates at most `window` staging buffers total.
TEST(AmStagingPool, PoolBuffersRecycleAcrossAStream) {
  g_done = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 4;
  // The bounce pool under test only engages on shared-memory transports
  // (socket ships puts inline), so pin mmap against the CI matrix.
  cfg.am_transport = gex::AmTransport::kMmap;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kPuts = 64;
    constexpr std::size_t kBytes = 32 << 10;  // far beyond eager_max
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kBytes);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<char> src(kBytes, 's');
      for (int i = 0; i < kPuts; ++i)
        gex::rma_am().put(1, remote.local(), src.data(), kBytes,
                          [] { g_done.fetch_add(1); });
      while (g_done.load() < kPuts) pump();
      const auto& st = gex::rma_am().stats();
      EXPECT_EQ(st.puts_staged, static_cast<std::uint64_t>(kPuts));
      // Every put beyond the first window reused a recycled buffer.
      EXPECT_LE(st.stage_allocs, 8u);
    } else {
      while (gex::rma_am().stats().puts_handled <
             static_cast<std::uint64_t>(kPuts))
        pump();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// The staged-reply pool mirrors the put pool: a long stream of large gets
// from one target stages every reply, recycles the target's reply buffers
// (bounded allocations), and conserves racks on the initiator.
TEST(AmReplyStaging, ReplyPoolRecyclesAcrossAStream) {
  g_done = 0;
  g_phase = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 4;
  // Reply staging requires shared memory; pin mmap against the CI matrix.
  cfg.am_transport = gex::AmTransport::kMmap;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kGets = 64;
    constexpr std::size_t kBytes = 32 << 10;  // far beyond eager_max
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) {
      remote = upcxx::allocate<char>(kBytes);
      std::fill_n(remote.local(), kBytes, 'r');
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<std::vector<char>> sinks(
          kGets, std::vector<char>(kBytes, 'x'));
      for (int i = 0; i < kGets; ++i)
        gex::rma_am().get(1, sinks[i].data(), remote.local(), kBytes,
                          [] { g_done.fetch_add(1); });
      while (g_done.load() < kGets) pump();
      const auto& st = gex::rma_am().stats();
      // Every reply arrived through the staged path and was consumed here.
      EXPECT_EQ(st.staged_replies_handled,
                static_cast<std::uint64_t>(kGets));
      for (const auto& s : sinks)
        ASSERT_EQ(s[0], 'r');
      // Rack conservation: each consumed staged reply was acknowledged
      // through exactly one channel.
      while (!gex::rma_am().idle()) pump();
      EXPECT_EQ(st.reply_ack_cookies_sent + st.reply_acks_piggybacked,
                st.staged_replies_handled);
      g_phase.store(1, std::memory_order_release);
    } else {
      while (g_phase.load(std::memory_order_acquire) < 1) pump();
      while (!gex::rma_am().idle()) pump();  // last racks may be in flight
      const auto& st = gex::rma_am().stats();
      EXPECT_EQ(st.replies_staged, static_cast<std::uint64_t>(kGets));
      EXPECT_EQ(st.reply_fallbacks, 0u);
      // Every reply beyond the first window reused a recycled buffer.
      EXPECT_LE(st.reply_stage_allocs, 8u);
      EXPECT_GT(st.reply_pool_hits, 0u);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Reply-pool exhaustion falls back to the rendezvous REPLY path: the
// replier runs a private protocol instance whose window (2) is smaller
// than the initiator's (8), so a burst of 8 large gets finds the staged
// bound exhausted after two replies — the rest must still complete through
// the old path, with intact payloads.
TEST(AmReplyStaging, ExhaustedPoolFallsBackToRendezvous) {
  g_done = 0;
  g_phase = 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.am_window = 8;
  // Staged replies and the rendezvous fallback both assume shared
  // memory; pin mmap against the CI matrix.
  cfg.am_transport = gex::AmTransport::kMmap;
  const int fails = upcxx::run(cfg, [] {
    constexpr int kGets = 8;
    constexpr std::size_t kBytes = 32 << 10;
    const int me = upcxx::rank_me();
    static upcxx::global_ptr<char> remote;
    static std::atomic<int> s_parked{0};
    if (me == 1) {
      remote = upcxx::allocate<char>(kBytes);
      std::fill_n(remote.local(), kBytes, 'f');
      s_parked = 0;
    }
    upcxx::barrier();
    // Swap in per-rank protocol instances with mismatched pinned windows;
    // the handlers route through gex::self()->rma_am, so both sides see
    // their own instance.
    gex::RmaAmProtocol proto(
        gex::self()->am,
        gex::AmWindowSetting{false, me == 1 ? 2u : 8u});
    auto* saved = gex::self()->rma_am;
    gex::self()->rma_am = &proto;
    if (me == 1) s_parked.store(1, std::memory_order_release);
    if (me == 0) {
      while (s_parked.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      std::vector<std::vector<char>> sinks(
          kGets, std::vector<char>(kBytes, 'x'));
      for (int i = 0; i < kGets; ++i)
        proto.get(1, sinks[i].data(), remote.local(), kBytes,
                  [] { g_done.fetch_add(1); });
      g_phase.store(1, std::memory_order_release);
      while (g_done.load() < kGets) pump();
      const auto& st = proto.stats();
      // A mix: the replier staged up to its window, the rest fell back.
      EXPECT_EQ(st.staged_replies_handled, 2u);
      for (const auto& s : sinks)
        ASSERT_EQ(s[kBytes - 1], 'f');
      while (!proto.idle()) pump();
      g_phase.store(2, std::memory_order_release);
    } else {
      // Hold all polling until the full burst is in our ring, then serve
      // it in one poll: 2 staged replies (the bound), 6 fallbacks.
      while (g_phase.load(std::memory_order_acquire) < 1)
        std::this_thread::yield();
      gex::am().poll(/*max_msgs=*/64);
      proto.poll();
      const auto& st = proto.stats();
      EXPECT_EQ(st.gets_handled, static_cast<std::uint64_t>(kGets));
      EXPECT_EQ(st.replies_sent, static_cast<std::uint64_t>(kGets));
      EXPECT_EQ(st.replies_staged, 2u);
      EXPECT_EQ(st.reply_fallbacks, 6u);
      while (g_phase.load(std::memory_order_acquire) < 2) pump();
      while (!proto.idle()) pump();
    }
    upcxx::barrier();
    gex::self()->rma_am = saved;
    upcxx::barrier();
    if (me == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// The adaptive controller is a pure state machine; drive it with synthetic
// RTTs and check the control law: additive growth on timely windowfuls,
// multiplicative backoff (at most once per windowful) on late acks, window
// always within [1, max].
TEST(AmWindowAdaptive, ControllerGrowsShrinksAndStaysBounded) {
  gex::AmWindowController c(4, 16, 2.0);
  EXPECT_EQ(c.window(), 4u);
  EXPECT_EQ(c.max_window(), 16u);
  // Timely acks (at the floor) grow the window one credit per windowful:
  // 4+5+...+15 = 114 acks to reach the ceiling.
  int acks_to_max = 0;
  while (c.window() < 16 && acks_to_max < 1000) {
    c.on_ack(1000);
    ++acks_to_max;
  }
  EXPECT_EQ(c.window(), 16u);
  EXPECT_EQ(acks_to_max, 114);
  // The ceiling holds under continued timely acks.
  for (int i = 0; i < 200; ++i) c.on_ack(1000);
  EXPECT_EQ(c.window(), 16u);
  // One late ack does not shrink twice within a windowful; a sustained
  // late regime halves per windowful down to 1, never below.
  std::uint32_t prev = c.window();
  for (int i = 0; i < 400 && c.window() > 1; ++i) {
    const int d = c.on_ack(50'000'000);
    if (d < 0) {
      EXPECT_EQ(c.window(), prev / 2);
      prev = c.window();
    }
  }
  EXPECT_EQ(c.window(), 1u);
  for (int i = 0; i < 100; ++i) c.on_ack(100'000'000);
  EXPECT_GE(c.window(), 1u);
  EXPECT_LE(c.window(), 16u);
  // Recovery: back in the timely regime, the window climbs again.
  gex::AmWindowController r(2, 8, 2.0);
  for (int i = 0; i < 16; ++i) r.on_ack(60'000'000);  // establish high floor
  const std::uint32_t before = r.window();
  for (int i = 0; i < 200; ++i) r.on_ack(1000);  // fast acks lower the floor
  EXPECT_GT(r.window(), before);
  // Degenerate parameters clamp instead of misbehaving.
  gex::AmWindowController z(0, 0, 0.5);
  EXPECT_EQ(z.window(), 1u);
  z.on_ack(0);
  EXPECT_EQ(z.window(), 1u);
}

}  // namespace
