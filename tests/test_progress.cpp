// Progress-engine semantics (paper §III): attentiveness, internal vs user
// progress, compQ draining, simulated-latency ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "arch/timer.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

TEST(Progress, UnattentiveTargetStallsRpcs) {
  // Paper §III: "if the target enters intensive, protracted computation
  // without calls to progress, incoming RPCs will stall."
  static std::atomic<int> executed{0};
  static std::atomic<bool> target_computing{true};
  executed = 0;
  target_computing = true;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [] { executed.fetch_add(1); });
      // While rank 1 computes without progress, the RPC must not run.
      for (int i = 0; i < 50; ++i) {
        upcxx::progress();
        EXPECT_EQ(executed.load(), 0);
      }
      target_computing.store(false);
      f.wait();
      EXPECT_EQ(executed.load(), 1);
    } else {
      // "Protracted computation": spin without library calls.
      while (target_computing.load()) arch::cpu_relax();
      while (executed.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
  });
}

TEST(Progress, InternalLevelDoesNotExecuteRpcs) {
  static std::atomic<int> executed{0};
  static std::atomic<bool> sent{false};
  executed = 0;
  sent = false;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::rpc_ff(1, [] { executed.fetch_add(1); });
      sent.store(true);
      while (executed.load() == 0) upcxx::progress();
    } else {
      while (!sent.load()) arch::cpu_relax();
      // Give the message ample time to arrive, then poll at *internal*
      // level only: it stages the RPC into compQ but must not run it.
      for (int i = 0; i < 100; ++i)
        upcxx::progress(upcxx::progress_level::internal);
      EXPECT_EQ(executed.load(), 0)
          << "internal progress executed a user RPC";
      // User progress finally runs it.
      while (executed.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
  });
}

TEST(Progress, CompqBudgetIsBounded) {
  // A progress call drains only what was queued at entry; RPCs that enqueue
  // further LPCs don't extend the same call (prevents starvation).
  spmd(1, [] {
    int order = 0, first = -1, second = -1;
    upcxx::detail::push_compq([&] {
      first = order++;
      upcxx::detail::push_compq([&] { second = order++; });
    });
    upcxx::progress();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, -1) << "nested LPC ran in the same progress call";
    upcxx::progress();
    EXPECT_EQ(second, 1);
  });
}

TEST(Progress, WaitDrivesNestedCompletion) {
  spmd(1, [] {
    upcxx::promise<int> pr;
    upcxx::detail::push_compq([pr]() mutable {
      upcxx::detail::push_compq([pr]() mutable { pr.fulfill_result(3); });
    });
    EXPECT_EQ(pr.get_future().wait(), 3);
  });
}

TEST(Progress, StatsCountRpcsAndRma) {
  spmd(2, [] {
    auto& st = upcxx::detail::persona().stats;
    const auto rpcs0 = st.rpcs_sent;
    const auto rputs0 = st.rputs;
    auto g = upcxx::allocate<int>(1);
    upcxx::rput(1, g).wait();
    upcxx::rpc((upcxx::rank_me() + 1) % 2, [] {}).wait();
    EXPECT_EQ(st.rputs, rputs0 + 1);
    EXPECT_GE(st.rpcs_sent, rpcs0 + 1);
    upcxx::barrier();
    upcxx::deallocate(g);
  });
}

// --------------------------- simulated wire latency ------------------------

TEST(SimLatency, BlockingPutCostsRoundTrip) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.sim_latency_ns = 200000;  // 200 us per hop
  int fails = upcxx::run(cfg, [] {
    auto mine = upcxx::allocate<int>(1);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::barrier();
    const auto t0 = arch::now_ns();
    upcxx::rput(7, peer).wait();
    const auto dt = arch::now_ns() - t0;
    // Operation completion models a full round trip: >= 2 hops.
    EXPECT_GE(dt, 2 * 200000ull);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

TEST(SimLatency, OverlapHidesLatency) {
  // The paper's core pitch: asynchrony by default lets communication overlap
  // computation. With N independent puts issued before waiting, total time
  // should be ~1 RTT, not N RTTs.
  gex::Config cfg = testutil::test_cfg(2);
  // 1 ms per hop: the far-less-than-serialized bound (16 ms vs >= 32 ms
  // serialized) then leaves >10 ms of absolute slack, which covers
  // scheduler/sanitizer noise — on the am wire completion also rides the
  // peer's progress, so the slack must absorb a descheduled peer, not
  // just local jitter.
  cfg.sim_latency_ns = 1000000;
  // Pin a pipelined window: this test asserts the *overlap* property, and
  // under the am-window-1 CI matrix (UPCXX_AM_WINDOW=1, am wire) the
  // transport is deliberately serialized — one request per ack round trip
  // can never finish 16 puts in under 16 RTTs. Window policy has its own
  // suites (test_rma_flow / test_rma_stress).
  cfg.am_window = gex::kDefaultAmWindow;
  int fails = upcxx::run(cfg, [] {
    constexpr int kOps = 16;
    auto mine = upcxx::allocate<int>(kOps);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    // Best of a fixed 3 attempts (fixed so both ranks stay in lockstep —
    // a data-dependent retry would skew the barrier count): the bound is
    // wall-clock, and one attempt can be stretched arbitrarily when a
    // parallel ctest schedules a soak suite on every core. Overlap only
    // has to be demonstrated once; the minimum still costs >= 1 RTT.
    std::uint64_t best = ~0ull;
    for (int attempt = 0; attempt < 3; ++attempt) {
      upcxx::barrier();
      upcxx::promise<> p;
      const auto t0 = arch::now_ns();
      for (int i = 0; i < kOps; ++i)
        upcxx::rput(i, peer + i, upcxx::operation_cx::as_promise(p));
      p.finalize().wait();
      best = std::min(best, arch::now_ns() - t0);
    }
    EXPECT_GE(best, 2 * 1000000ull);     // at least one RTT
    EXPECT_LT(best, kOps * 1000000ull);  // far less than serialized RTTs
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

TEST(SimLatency, MessageDeliveryRespectsDelay) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.sim_latency_ns = 300000;
  static std::atomic<std::uint64_t> exec_time{0};
  exec_time = 0;
  int fails = upcxx::run(cfg, [] {
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      const auto t0 = arch::now_ns();
      upcxx::rpc_ff(1, [] { exec_time.store(arch::now_ns()); });
      while (exec_time.load() == 0) upcxx::progress();
      EXPECT_GE(exec_time.load() - t0, 300000ull);
    } else {
      while (exec_time.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(Progress, ProcessBackendFullStack) {
  // End-to-end smoke of the whole upcxx stack over forked processes.
  gex::Config cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  int fails = upcxx::run(cfg, [] {
    auto mine = upcxx::allocate<int>(1);
    *mine.local() = -1;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    const int P = upcxx::rank_n();
    auto right = dir.fetch((upcxx::rank_me() + 1) % P).wait();
    upcxx::rput(upcxx::rank_me(), right).wait();
    upcxx::barrier();
    if (*mine.local() != (upcxx::rank_me() + P - 1) % P)
      throw std::runtime_error("rma value wrong in process backend");
    auto sum = upcxx::reduce_all(upcxx::rank_me(), upcxx::op_fast_add{}).wait();
    if (sum != P * (P - 1) / 2)
      throw std::runtime_error("reduce wrong in process backend");
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
