// Substrate tests: shared heap, arena layout, AM engine (eager + rendezvous
// + backpressure), launcher (thread and process backends).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/rng.hpp"
#include "arch/timer.hpp"
#include "gex/am.hpp"
#include "gex/arena.hpp"
#include "gex/config.hpp"
#include "gex/runtime.hpp"
#include "gex/shared_heap.hpp"

namespace {

gex::Config small_cfg(int ranks) {
  gex::Config c;
  c.ranks = ranks;
  c.segment_bytes = 4 << 20;
  c.ring_bytes = 64 << 10;
  c.eager_max = 4 << 10;
  c.heap_bytes = 16 << 20;
  return c;
}

// ---------------------------------------------------------------- SharedHeap

class HeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    region_.resize(1 << 20);
    heap_ = gex::SharedHeap::create(region_.data(), region_.size());
  }
  std::vector<std::byte> region_;
  gex::SharedHeap* heap_ = nullptr;
};

TEST_F(HeapTest, AllocateAndFree) {
  void* a = heap_->allocate(100);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(heap_->contains(a));
  std::memset(a, 0xCD, 100);
  heap_->deallocate(a);
}

TEST_F(HeapTest, DistinctNonOverlapping) {
  void* a = heap_->allocate(256);
  void* b = heap_->allocate(256);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto ua = reinterpret_cast<std::uintptr_t>(a);
  auto ub = reinterpret_cast<std::uintptr_t>(b);
  EXPECT_TRUE(ua + 256 <= ub || ub + 256 <= ua);
}

TEST_F(HeapTest, ExhaustionReturnsNull) {
  std::vector<void*> blocks;
  for (;;) {
    void* p = heap_->allocate(64 << 10);
    if (!p) break;
    blocks.push_back(p);
  }
  EXPECT_GT(blocks.size(), 4u);
  EXPECT_EQ(heap_->allocate(64 << 10), nullptr);
  for (void* p : blocks) heap_->deallocate(p);
  EXPECT_NE(heap_->allocate(64 << 10), nullptr);
}

TEST_F(HeapTest, CoalescingRestoresLargeBlock) {
  const std::size_t big = heap_->largest_free_block();
  void* a = heap_->allocate(1000);
  void* b = heap_->allocate(1000);
  void* c = heap_->allocate(1000);
  heap_->deallocate(b);
  heap_->deallocate(a);
  heap_->deallocate(c);
  EXPECT_EQ(heap_->largest_free_block(), big);
}

TEST_F(HeapTest, FreeSpaceAccounting) {
  const std::size_t before = heap_->bytes_free();
  void* a = heap_->allocate(4096);
  EXPECT_LT(heap_->bytes_free(), before);
  heap_->deallocate(a);
  EXPECT_EQ(heap_->bytes_free(), before);
}

TEST_F(HeapTest, OverAlignedAllocation) {
  for (std::size_t align : {32u, 64u, 128u, 4096u}) {
    void* p = heap_->allocate(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    std::memset(p, 1, 100);
    heap_->deallocate(p);
  }
}

TEST_F(HeapTest, StressRandomAllocFree) {
  arch::Xoshiro256 rng(5);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.empty() || rng.next_below(2) == 0) {
      std::size_t n = 16 + rng.next_below(2048);
      void* p = heap_->allocate(n);
      if (p) {
        std::memset(p, static_cast<int>(n & 0xFF), n);
        live.emplace_back(p, n);
      }
    } else {
      std::size_t idx = rng.next_below(live.size());
      heap_->deallocate(live[idx].first);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (auto& [p, n] : live) heap_->deallocate(p);
}

// -------------------------------------------------------------------- Arena

TEST(Arena, LayoutAndOwnership) {
  auto cfg = small_cfg(4);
  gex::Arena* a = gex::Arena::create(cfg);
  EXPECT_EQ(a->nranks(), 4);
  for (int r = 0; r < 4; ++r) {
    std::byte* base = a->segment_base(r);
    EXPECT_TRUE(a->in_segments(base));
    EXPECT_EQ(a->rank_of(base), r);
    EXPECT_EQ(a->rank_of(base + cfg.segment_bytes - 1), r);
  }
  int x = 0;
  EXPECT_FALSE(a->in_segments(&x));
  EXPECT_EQ(a->rank_of(&x), -1);
  gex::Arena::destroy(a);
}

TEST(Arena, SegmentHeapsIndependent) {
  auto cfg = small_cfg(2);
  gex::Arena* a = gex::Arena::create(cfg);
  void* p0 = a->segment_heap(0).allocate(128);
  void* p1 = a->segment_heap(1).allocate(128);
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(a->rank_of(p0), 0);
  EXPECT_EQ(a->rank_of(p1), 1);
  gex::Arena::destroy(a);
}

// ---------------------------------------------------------------- AM engine

std::atomic<long> g_am_sum{0};
std::atomic<int> g_am_count{0};

void sum_handler(gex::AmContext& cx) {
  long v = 0;
  std::memcpy(&v, cx.data, sizeof v);
  g_am_sum.fetch_add(v, std::memory_order_relaxed);
  g_am_count.fetch_add(1, std::memory_order_relaxed);
}

TEST(AmEngine, EagerRoundTrip) {
  g_am_sum = 0;
  g_am_count = 0;
  auto cfg = small_cfg(2);
  int fails = gex::launch(cfg, [] {
    if (gex::rank_me() == 0) {
      for (long i = 1; i <= 100; ++i)
        gex::am().send(1, gex::am_handler<&sum_handler>(), &i, sizeof i);
    } else {
      while (g_am_count.load() < 100) gex::am().poll();
    }
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_am_sum.load(), 5050);
}

std::atomic<int> g_rdzv_ok{0};

void rdzv_handler(gex::AmContext& cx) {
  // Rendezvous only exists on shared-memory transports; the socket
  // transport ships the same payload inline in one record.
  EXPECT_EQ(cx.is_rendezvous, gex::am().transport().shared_memory());
  auto* p = static_cast<std::uint8_t*>(cx.data);
  bool ok = true;
  for (std::size_t i = 0; i < cx.size; ++i)
    ok &= (p[i] == static_cast<std::uint8_t>(i * 7));
  if (ok) g_rdzv_ok.fetch_add(1);
}

TEST(AmEngine, RendezvousLargePayload) {
  g_rdzv_ok = 0;
  auto cfg = small_cfg(2);
  const std::size_t big = cfg.eager_max * 8;
  int fails = gex::launch(cfg, [big] {
    if (gex::rank_me() == 0) {
      std::vector<std::uint8_t> buf(big);
      for (std::size_t i = 0; i < big; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 7);
      for (int k = 0; k < 5; ++k)
        gex::am().send(1, gex::am_handler<&rdzv_handler>(), buf.data(),
                       buf.size());
    } else {
      while (g_rdzv_ok.load() < 5) gex::am().poll();
    }
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_rdzv_ok.load(), 5);
}

std::atomic<long> g_flood_recv{0};

void flood_handler(gex::AmContext& cx) {
  g_flood_recv.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<bool> g_flood_receiver_go{false};

TEST(AmEngine, BackpressureFloodDoesNotDeadlock) {
  g_flood_recv = 0;
  g_flood_receiver_go = false;
  auto cfg = small_cfg(2);
  cfg.ring_bytes = 16 << 10;  // tiny ring: force send stalls
  constexpr long kMsgs = 20000;
  int fails = gex::launch(cfg, [] {
    if (gex::rank_me() == 0) {
      char payload[128] = {};
      g_flood_receiver_go.store(true, std::memory_order_release);
      for (long i = 0; i < kMsgs; ++i)
        gex::am().send(1, gex::am_handler<&flood_handler>(), payload,
                       sizeof payload);
      // The ring holds ~120 of these records and the receiver held off for
      // 2 ms while we flooded, so backpressure must have been exercised.
      // Only on ring transports, though: the socket transport queues sends
      // kernel-side with a multi-MB cap this flood never reaches.
      if (gex::am().transport().shared_memory())
        EXPECT_GT(gex::am().stats().send_stalls, 0u);
    } else {
      // Deliberately unattentive start: let the sender slam into a full
      // ring before the first poll, then drain everything.
      while (!g_flood_receiver_go.load(std::memory_order_acquire))
        arch::cpu_relax();
      const auto t0 = arch::now_ns();
      while (arch::now_ns() - t0 < 2'000'000) arch::cpu_relax();
      while (g_flood_recv.load() < kMsgs) gex::am().poll();
    }
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_flood_recv.load(), kMsgs);
}

std::atomic<long> g_a2a_sum{0};
std::atomic<int> g_a2a_count{0};

void a2a_handler(gex::AmContext& cx) {
  long v;
  std::memcpy(&v, cx.data, sizeof v);
  g_a2a_sum.fetch_add(v);
  g_a2a_count.fetch_add(1);
}

TEST(AmEngine, AllToAllConcurrent) {
  g_a2a_sum = 0;
  g_a2a_count = 0;
  const int P = 8;
  constexpr int kPer = 500;
  int fails = gex::launch(small_cfg(P), [] {
    const int p = gex::rank_n();
    for (int i = 0; i < kPer; ++i) {
      for (int t = 0; t < p; ++t) {
        long v = gex::rank_me() + 1;
        gex::am().send(t, gex::am_handler<&a2a_handler>(), &v, sizeof v);
      }
      gex::am().poll();
    }
    while (g_a2a_count.load() < kPer * p * p) gex::am().poll();
  });
  EXPECT_EQ(fails, 0);
  // Each rank r sends (r+1) kPer times to each of P targets.
  long expect = 0;
  for (int r = 0; r < P; ++r) expect += static_cast<long>(r + 1) * kPer * P;
  EXPECT_EQ(g_a2a_sum.load(), expect);
}

void self_handler(gex::AmContext& cx) { g_am_count.fetch_add(1); }

TEST(AmEngine, SelfSendLoopback) {
  g_am_count = 0;
  int fails = gex::launch(small_cfg(1), [] {
    gex::am().send(0, gex::am_handler<&self_handler>(), nullptr, 0);
    while (g_am_count.load() < 1) gex::am().poll();
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_am_count.load(), 1);
}

// ----------------------------------------------------------------- Launcher

TEST(Launch, RanksSeeDistinctIdsThreadBackend) {
  std::atomic<std::uint32_t> mask{0};
  int fails = gex::launch(small_cfg(6), [&] {
    mask.fetch_or(1u << gex::rank_me());
    EXPECT_EQ(gex::rank_n(), 6);
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(mask.load(), 0x3Fu);
}

TEST(Launch, FailurePropagates) {
  int fails = gex::launch(small_cfg(3), [] {
    if (gex::rank_me() == 1) throw std::runtime_error("injected failure");
  });
  EXPECT_GE(fails, 1);
}

TEST(Launch, ProcessBackendSmoke) {
  auto cfg = small_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  // Each child writes its rank into its segment; children cross-check via
  // shared memory that all peers wrote before exiting.
  int fails = gex::launch(cfg, [] {
    auto& a = gex::arena();
    auto* slot = reinterpret_cast<std::atomic<int>*>(
        a.segment_base(gex::rank_me()) + a.config().segment_bytes - 64);
    slot->store(gex::rank_me() + 100, std::memory_order_release);
    a.world_barrier();
    for (int r = 0; r < gex::rank_n(); ++r) {
      auto* s = reinterpret_cast<std::atomic<int>*>(
          a.segment_base(r) + a.config().segment_bytes - 64);
      if (s->load(std::memory_order_acquire) != r + 100)
        throw std::runtime_error("peer segment not visible");
    }
  });
  EXPECT_EQ(fails, 0);
}

TEST(Launch, ProcessBackendAm) {
  auto cfg = small_cfg(2);
  cfg.backend = gex::Backend::kProcess;
  // g_am_* globals are per-process after fork; rank 1 checks its own copy
  // and signals failure via exception if the sum is wrong.
  int fails = gex::launch(cfg, [] {
    g_am_sum = 0;
    g_am_count = 0;
    if (gex::rank_me() == 0) {
      for (long i = 1; i <= 50; ++i)
        gex::am().send(1, gex::am_handler<&sum_handler>(), &i, sizeof i);
    } else {
      while (g_am_count.load() < 50) gex::am().poll();
      if (g_am_sum.load() != 1275) throw std::runtime_error("bad sum");
    }
  });
  EXPECT_EQ(fails, 0);
}

TEST(Config, EnvRoundTrip) {
  auto c = gex::Config::from_env();
  EXPECT_GE(c.ranks, 1);
  EXPECT_TRUE(arch::is_pow2(c.ring_bytes));
  EXPECT_LE(c.eager_max, c.ring_bytes / 4);
}

TEST(Config, XferKnobsNormalize) {
  gex::Config c;
  // Defaults: async above 64 KiB, 256 KiB chunks, no bandwidth model.
  EXPECT_EQ(c.rma_async_min, std::size_t{64} << 10);
  EXPECT_EQ(c.xfer_chunk_bytes, std::size_t{256} << 10);
  EXPECT_EQ(c.sim_bw_gbps, 0.0);
  // normalize() rejects nonsense: negative bandwidth means "no model",
  // sub-256-byte chunks would drown in bookkeeping.
  c.sim_bw_gbps = -3.5;
  c.xfer_chunk_bytes = 1;
  c.normalize();
  EXPECT_EQ(c.sim_bw_gbps, 0.0);
  EXPECT_EQ(c.xfer_chunk_bytes, std::size_t{256});
  // rma_async_min = 0 is meaningful (async path disabled) and survives.
  c.rma_async_min = 0;
  c.normalize();
  EXPECT_EQ(c.rma_async_min, 0u);
}

TEST(Config, XferEnvParsing) {
  setenv("UPCXX_SIM_BW_GBPS", "2.5", 1);
  setenv("UPCXX_XFER_CHUNK_KB", "64", 1);
  setenv("UPCXX_RMA_ASYNC_MIN", "0", 1);
  auto c = gex::Config::from_env();
  EXPECT_DOUBLE_EQ(c.sim_bw_gbps, 2.5);
  EXPECT_EQ(c.xfer_chunk_bytes, std::size_t{64} << 10);
  EXPECT_EQ(c.rma_async_min, 0u);
  // Malformed bandwidth falls back to the default, not garbage.
  setenv("UPCXX_SIM_BW_GBPS", "fast", 1);
  EXPECT_EQ(gex::Config::from_env().sim_bw_gbps, 0.0);
  unsetenv("UPCXX_SIM_BW_GBPS");
  unsetenv("UPCXX_XFER_CHUNK_KB");
  unsetenv("UPCXX_RMA_ASYNC_MIN");
}

// Numeric knobs must reject garbage loudly and keep their defaults — a
// typo'd knob used to be silently indistinguishable from the default.
TEST(Config, NumericKnobsRejectGarbage) {
  const gex::Config d;  // defaults
  // Save and clear every knob this test touches: the surrounding test run
  // may pin some of them (the CI am-window-1 job exports UPCXX_AM_WINDOW).
  const char* knobs[] = {
      "UPCXX_AM_WINDOW",      "UPCXX_AM_CHUNK_KB", "UPCXX_SIM_LATENCY_NS",
      "UPCXX_SIM_BW_GBPS",    "UPCXX_EAGER_MAX",   "UPCXX_RANKS",
      "UPCXX_XFER_CHUNK_KB",  "UPCXX_RING_KB",     "UPCXX_RMA_ASYNC_MIN",
      "UPCXX_PROGRESS_THREADS", "UPCXX_INJECT_SHARDS", "UPCXX_SUBMIT_SHARDS",
  };
  std::vector<std::pair<const char*, std::string>> saved;
  for (const char* k : knobs) {
    if (const char* v = getenv(k)) saved.emplace_back(k, v);
    unsetenv(k);
  }
  struct Case {
    const char* name;
    const char* value;
  };
  const Case cases[] = {
      {"UPCXX_AM_WINDOW", "banana"},     {"UPCXX_AM_WINDOW", "-3"},
      {"UPCXX_AM_CHUNK_KB", "12abc"},    {"UPCXX_AM_CHUNK_KB", "-64"},
      {"UPCXX_SIM_LATENCY_NS", "-5"},    {"UPCXX_SIM_LATENCY_NS", "x"},
      {"UPCXX_SIM_BW_GBPS", "inf"},      {"UPCXX_SIM_BW_GBPS", "-2"},
      {"UPCXX_EAGER_MAX", "-1"},         {"UPCXX_RANKS", "0"},
      {"UPCXX_RANKS", "four"},           {"UPCXX_XFER_CHUNK_KB", "256k"},
      {"UPCXX_RING_KB", "99999999999999999999"},  // ERANGE
      {"UPCXX_RMA_ASYNC_MIN", "-1"},
      {"UPCXX_PROGRESS_THREADS", "many"},
      {"UPCXX_PROGRESS_THREADS", "0"},
      {"UPCXX_PROGRESS_THREADS", "-2"},
      {"UPCXX_INJECT_SHARDS", "8cores"},
      {"UPCXX_INJECT_SHARDS", "0"},
      {"UPCXX_SUBMIT_SHARDS", "lots"},
      {"UPCXX_SUBMIT_SHARDS", "-16"},
  };
  for (const auto& c : cases) {
    setenv(c.name, c.value, 1);
    gex::Config got = gex::Config::from_env();
    EXPECT_EQ(got.am_window, d.am_window) << c.name << "=" << c.value;
    EXPECT_EQ(got.am_xfer_chunk_bytes, d.am_xfer_chunk_bytes)
        << c.name << "=" << c.value;
    EXPECT_EQ(got.sim_latency_ns, 0u) << c.name << "=" << c.value;
    EXPECT_EQ(got.sim_bw_gbps, 0.0) << c.name << "=" << c.value;
    EXPECT_EQ(got.eager_max, d.eager_max) << c.name << "=" << c.value;
    EXPECT_EQ(got.ranks, d.ranks) << c.name << "=" << c.value;
    EXPECT_EQ(got.xfer_chunk_bytes, d.xfer_chunk_bytes)
        << c.name << "=" << c.value;
    EXPECT_EQ(got.ring_bytes, d.ring_bytes) << c.name << "=" << c.value;
    EXPECT_EQ(got.rma_async_min, d.rma_async_min)
        << c.name << "=" << c.value;
    EXPECT_EQ(got.progress_threads, d.progress_threads)
        << c.name << "=" << c.value;
    EXPECT_EQ(got.inject_shards, d.inject_shards)
        << c.name << "=" << c.value;
    EXPECT_EQ(got.submit_shards, d.submit_shards)
        << c.name << "=" << c.value;
    unsetenv(c.name);
  }
  // normalize() clamps the threading knobs: a pool wider than the machine
  // is pulled back to hardware_concurrency (when it reports nonzero), and
  // shard counts land in [1, 64].
  {
    gex::Config t;
    t.progress_threads = 100000;
    t.inject_shards = 1000;
    t.submit_shards = 0;
    t.normalize();
    if (const unsigned hw = std::thread::hardware_concurrency(); hw > 0)
      EXPECT_LE(t.progress_threads, static_cast<int>(hw));
    EXPECT_EQ(t.inject_shards, 64u);
    EXPECT_EQ(t.submit_shards, 1u);
  }

  // Valid values still parse (the strictness did not break the knobs).
  setenv("UPCXX_AM_WINDOW", "16", 1);
  setenv("UPCXX_SIM_LATENCY_NS", "250", 1);
  const gex::Config ok = gex::Config::from_env();
  EXPECT_EQ(ok.am_window, 16u);
  EXPECT_EQ(ok.sim_latency_ns, 250u);
  unsetenv("UPCXX_AM_WINDOW");
  unsetenv("UPCXX_SIM_LATENCY_NS");
  // resolve_am_window falls back to adaptive-at-default on a garbage
  // environment, `auto` spells the default explicitly, an integer pins,
  // and kAmWindowForceAuto overrides even a pinned environment.
  setenv("UPCXX_AM_WINDOW", "zero", 1);
  gex::Config c;
  {
    const auto w = gex::resolve_am_window(c);
    EXPECT_TRUE(w.adaptive);
    EXPECT_EQ(w.window, gex::kDefaultAmWindow);
  }
  setenv("UPCXX_AM_WINDOW", "auto", 1);
  {
    const auto w = gex::resolve_am_window(c);
    EXPECT_TRUE(w.adaptive);
    EXPECT_EQ(w.window, gex::kDefaultAmWindow);
  }
  setenv("UPCXX_AM_WINDOW", "16", 1);
  {
    const auto w = gex::resolve_am_window(c);
    EXPECT_FALSE(w.adaptive);
    EXPECT_EQ(w.window, 16u);
  }
  {
    gex::Config forced;
    forced.am_window = gex::kAmWindowForceAuto;
    const auto w = gex::resolve_am_window(forced);
    EXPECT_TRUE(w.adaptive);
  }
  unsetenv("UPCXX_AM_WINDOW");
  // Non-finite bandwidth is scrubbed by normalize() for hand-built
  // configs too.
  c.sim_bw_gbps = std::numeric_limits<double>::infinity();
  c.normalize();
  EXPECT_EQ(c.sim_bw_gbps, 0.0);
  for (const auto& [k, v] : saved) setenv(k, v.c_str(), 1);
}

TEST(Config, RmaWireParsingAndResolution) {
  // Preserve any wire the surrounding test run pinned (the CI am-wire
  // matrix job exports UPCXX_RMA_WIRE=am), and any transport pin (the
  // socket-transport job's UPCXX_AM_TRANSPORT=socket makes auto resolve
  // to am, not direct — that rule is covered in test_socket).
  const char* saved = getenv("UPCXX_RMA_WIRE");
  const std::string saved_val = saved ? saved : "";
  const char* saved_tr = getenv("UPCXX_AM_TRANSPORT");
  const std::string saved_tr_val = saved_tr ? saved_tr : "";
  unsetenv("UPCXX_AM_TRANSPORT");

  unsetenv("UPCXX_RMA_WIRE");
  gex::Config c;
  EXPECT_EQ(c.rma_wire, gex::RmaWire::kAuto);
  // Auto resolves to direct on the cross-mapped arena.
  EXPECT_EQ(gex::resolve_rma_wire(c), gex::RmaWire::kDirect);

  setenv("UPCXX_RMA_WIRE", "am", 1);
  EXPECT_EQ(gex::Config::from_env().rma_wire, gex::RmaWire::kAm);
  // Hand-built Configs left at kAuto still honor the env override...
  EXPECT_EQ(gex::resolve_rma_wire(c), gex::RmaWire::kAm);
  // ...but an explicit wire beats the environment.
  c.rma_wire = gex::RmaWire::kDirect;
  EXPECT_EQ(gex::resolve_rma_wire(c), gex::RmaWire::kDirect);

  setenv("UPCXX_RMA_WIRE", "direct", 1);
  EXPECT_EQ(gex::Config::from_env().rma_wire, gex::RmaWire::kDirect);
  // Typos degrade to auto (with a warning), never abort.
  setenv("UPCXX_RMA_WIRE", "smp", 1);
  EXPECT_EQ(gex::Config::from_env().rma_wire, gex::RmaWire::kAuto);

  if (saved)
    setenv("UPCXX_RMA_WIRE", saved_val.c_str(), 1);
  else
    unsetenv("UPCXX_RMA_WIRE");
  if (saved_tr) setenv("UPCXX_AM_TRANSPORT", saved_tr_val.c_str(), 1);
}

}  // namespace
