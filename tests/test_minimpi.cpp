// minimpi baseline tests: matching semantics (tags, wildcards,
// non-overtaking), rendezvous sizes, collectives vs oracle, windows.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "spmd_helpers.hpp"

namespace {

// Runs fn with minimpi initialized on every rank.
void mpi_spmd(int ranks, const std::function<void()>& fn) {
  testutil::spmd(ranks, [&fn] {
    minimpi::init();
    fn();
    minimpi::finalize();
  });
}

TEST(MiniMpi, RankAndSize) {
  mpi_spmd(5, [] {
    EXPECT_EQ(minimpi::size(), 5);
    EXPECT_EQ(minimpi::rank(), upcxx::rank_me());
  });
}

TEST(MiniMpi, BlockingSendRecv) {
  mpi_spmd(2, [] {
    if (minimpi::rank() == 0) {
      const char msg[] = "ping";
      minimpi::send(msg, sizeof msg, 1, 7);
    } else {
      char buf[16] = {};
      auto st = minimpi::recv(buf, sizeof buf, 0, 7);
      EXPECT_STREQ(buf, "ping");
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, 5u);
    }
  });
}

TEST(MiniMpi, TagSelectivity) {
  mpi_spmd(2, [] {
    if (minimpi::rank() == 0) {
      int a = 111, b = 222;
      minimpi::send(&a, sizeof a, 1, /*tag=*/1);
      minimpi::send(&b, sizeof b, 1, /*tag=*/2);
    } else {
      int got = 0;
      // Receive tag 2 first even though tag 1 arrived first.
      minimpi::recv(&got, sizeof got, 0, 2);
      EXPECT_EQ(got, 222);
      minimpi::recv(&got, sizeof got, 0, 1);
      EXPECT_EQ(got, 111);
    }
  });
}

TEST(MiniMpi, AnySourceAnyTag) {
  mpi_spmd(4, [] {
    if (minimpi::rank() == 0) {
      int seen_mask = 0;
      for (int i = 0; i < 3; ++i) {
        int v = -1;
        auto st = minimpi::recv(&v, sizeof v, minimpi::kAnySource,
                                minimpi::kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen_mask |= 1 << st.source;
      }
      EXPECT_EQ(seen_mask, 0b1110);
    } else {
      int v = minimpi::rank() * 100;
      minimpi::send(&v, sizeof v, 0, minimpi::rank());
    }
  });
}

TEST(MiniMpi, NonOvertakingSamePairSameTag) {
  mpi_spmd(2, [] {
    constexpr int kN = 200;
    if (minimpi::rank() == 0) {
      for (int i = 0; i < kN; ++i) minimpi::send(&i, sizeof i, 1, 3);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        minimpi::recv(&v, sizeof v, 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(MiniMpi, PostedBeforeArrival) {
  mpi_spmd(2, [] {
    if (minimpi::rank() == 1) {
      int v = -1;
      auto r = minimpi::irecv(&v, sizeof v, 0, 9);
      EXPECT_FALSE(r.done());
      minimpi::barrier();  // rank 0 sends after the barrier
      minimpi::wait(r);
      EXPECT_EQ(v, 42);
    } else {
      minimpi::barrier();
      int v = 42;
      minimpi::send(&v, sizeof v, 1, 9);
    }
  });
}

TEST(MiniMpi, LargeRendezvousMessage) {
  mpi_spmd(2, [] {
    const std::size_t big = testutil::test_cfg(2).eager_max * 12;
    if (minimpi::rank() == 0) {
      std::vector<std::uint8_t> buf(big);
      for (std::size_t i = 0; i < big; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 13);
      minimpi::send(buf.data(), buf.size(), 1, 0);
    } else {
      std::vector<std::uint8_t> buf(big, 0);
      minimpi::recv(buf.data(), buf.size(), 0, 0);
      for (std::size_t i = 0; i < big; ++i)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 13));
    }
  });
}

TEST(MiniMpi, WaitallManyRequests) {
  mpi_spmd(4, [] {
    const int P = minimpi::size(), me = minimpi::rank();
    std::vector<int> out(P), in(P, -1);
    std::vector<minimpi::Request> reqs;
    for (int r = 0; r < P; ++r) {
      if (r == me) continue;
      reqs.push_back(minimpi::irecv(&in[r], sizeof(int), r, 5));
    }
    for (int r = 0; r < P; ++r) {
      if (r == me) continue;
      out[r] = me * 10 + r;
      reqs.push_back(minimpi::isend(&out[r], sizeof(int), r, 5));
    }
    minimpi::waitall(reqs.data(), reqs.size());
    for (int r = 0; r < P; ++r)
      if (r != me) { EXPECT_EQ(in[r], r * 10 + me); }
  });
}

TEST(MiniMpi, BarrierSynchronizes) {
  static std::atomic<int> counter{0};
  counter = 0;
  mpi_spmd(8, [] {
    counter.fetch_add(1);
    minimpi::barrier();
    EXPECT_EQ(counter.load(), 8);
    minimpi::barrier();
  });
}

TEST(MiniMpi, AlltoallvMatchesOracle) {
  mpi_spmd(6, [] {
    const int P = minimpi::size(), me = minimpi::rank();
    // Rank r sends (r+1) ints of value r*P+dest to each dest.
    std::vector<std::size_t> scounts(P), sdispls(P), rcounts(P), rdispls(P);
    std::vector<int> sbuf;
    for (int d = 0; d < P; ++d) {
      sdispls[d] = sbuf.size() * sizeof(int);
      for (int k = 0; k < me + 1; ++k) sbuf.push_back(me * P + d);
      scounts[d] = (me + 1) * sizeof(int);
    }
    std::size_t roff = 0;
    for (int srcr = 0; srcr < P; ++srcr) {
      rdispls[srcr] = roff;
      rcounts[srcr] = (srcr + 1) * sizeof(int);
      roff += rcounts[srcr];
    }
    std::vector<int> rbuf(roff / sizeof(int), -1);
    minimpi::alltoallv(sbuf.data(), scounts.data(), sdispls.data(),
                       rbuf.data(), rcounts.data(), rdispls.data());
    for (int srcr = 0; srcr < P; ++srcr) {
      for (int k = 0; k < srcr + 1; ++k) {
        EXPECT_EQ(rbuf[rdispls[srcr] / sizeof(int) + k], srcr * P + me);
      }
    }
  });
}

TEST(MiniMpi, AlltoallvZeroCounts) {
  mpi_spmd(4, [] {
    const int P = minimpi::size();
    std::vector<std::size_t> zero(P, 0), displs(P, 0);
    // Empty exchange must terminate.
    minimpi::alltoallv(nullptr, zero.data(), displs.data(), nullptr,
                       zero.data(), displs.data());
  });
}

TEST(MiniMpi, WindowPutFlush) {
  mpi_spmd(2, [] {
    std::vector<std::uint64_t> exposure(64, 0);
    auto win = minimpi::Win::create(exposure.data(),
                                    exposure.size() * sizeof(std::uint64_t));
    if (minimpi::rank() == 0) {
      std::uint64_t v = 0xDEADBEEF;
      win.put(&v, sizeof v, 1, 8 * sizeof(std::uint64_t));
      win.flush(1);
    }
    minimpi::barrier();
    if (minimpi::rank() == 1) { EXPECT_EQ(exposure[8], 0xDEADBEEFull); }
    minimpi::barrier();
    win.free();
  });
}

TEST(MiniMpi, WindowGet) {
  mpi_spmd(2, [] {
    std::vector<int> exposure(16);
    for (int i = 0; i < 16; ++i) exposure[i] = minimpi::rank() * 100 + i;
    auto win = minimpi::Win::create(exposure.data(), sizeof(int) * 16);
    minimpi::barrier();
    int got = -1;
    const int peer = 1 - minimpi::rank();
    win.get(&got, sizeof got, peer, 5 * sizeof(int));
    win.flush(peer);
    EXPECT_EQ(got, peer * 100 + 5);
    minimpi::barrier();
    win.free();
  });
}

TEST(MiniMpi, WindowFloodManyPuts) {
  mpi_spmd(2, [] {
    constexpr int kOps = 1000;
    std::vector<std::uint32_t> exposure(kOps, 0);
    auto win = minimpi::Win::create(exposure.data(),
                                    exposure.size() * sizeof(std::uint32_t));
    if (minimpi::rank() == 0) {
      for (int i = 0; i < kOps; ++i) {
        std::uint32_t v = i + 1;
        win.put(&v, sizeof v, 1, i * sizeof(std::uint32_t));
      }
      win.flush(1);
    }
    minimpi::barrier();
    if (minimpi::rank() == 1) {
      for (int i = 0; i < kOps; ++i)
        EXPECT_EQ(exposure[i], static_cast<std::uint32_t>(i + 1));
    }
    minimpi::barrier();
    win.free();
  });
}

TEST(MiniMpi, MultipleWindows) {
  mpi_spmd(2, [] {
    std::vector<int> e1(4, 0), e2(4, 0);
    auto w1 = minimpi::Win::create(e1.data(), sizeof(int) * 4);
    auto w2 = minimpi::Win::create(e2.data(), sizeof(int) * 4);
    if (minimpi::rank() == 0) {
      int a = 1, b = 2;
      w1.put(&a, sizeof a, 1, 0);
      w2.put(&b, sizeof b, 1, 0);
      w1.flush_all();
      w2.flush_all();
    }
    minimpi::barrier();
    if (minimpi::rank() == 1) {
      EXPECT_EQ(e1[0], 1);
      EXPECT_EQ(e2[0], 2);
    }
    minimpi::barrier();
    w1.free();
    w2.free();
  });
}

TEST(MiniMpi, CoexistsWithUpcxx) {
  // The Fig 8 benches run upcxx and minimpi variants in one binary.
  mpi_spmd(4, [] {
    auto g = upcxx::allocate<int>(1);
    upcxx::rput(41, g).wait();
    int v = -1;
    const int right = (minimpi::rank() + 1) % minimpi::size();
    const int left = (minimpi::rank() + minimpi::size() - 1) % minimpi::size();
    int mine = minimpi::rank();
    minimpi::sendrecv(&mine, sizeof mine, right, 1, &v, sizeof v, left, 1);
    EXPECT_EQ(v, left);
    EXPECT_EQ(*g.local(), 41);
    upcxx::barrier();
    upcxx::deallocate(g);
  });
}

}  // namespace
