// Thread-safe op injection (upcxx/inject.hpp): app threads bound to an
// injection_scope initiate rput/rget/rpc/copy directly, with completions
// routed back to the initiating thread's persona. Covers the caller-side
// sync fast path (direct wire, small), the MPSC hand-off paths (XferEngine
// and the AM wire via the submit queue, rpc via the wire shards), and the
// relaxed stats counters. The randomized cross-path soak lives in
// test_mt_soak.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

// Runs `body` on `nthreads` injector threads while the calling (master)
// thread keeps progress flowing; returns when every injector joined.
// `body` gets the thread index.
void with_injectors(int nthreads, const std::function<void(int)>& body) {
  upcxx::injector inj;
  std::atomic<int> alive{nthreads};
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t)
    ts.emplace_back([&, t] {
      upcxx::injection_scope scope(inj);
      body(t);
      alive.fetch_sub(1, std::memory_order_release);
    });
  while (alive.load(std::memory_order_acquire) != 0) upcxx::progress();
  for (auto& th : ts) th.join();
}

TEST(Inject, SyncFastPathFromThreads) {
  // Direct wire, below rma_async_min: every op completes caller-side on
  // the injector thread (the scaling fast path). Two threads per rank
  // write disjoint slices of the peer's segment.
  spmd(2, [] {
    constexpr int kThreads = 2;
    constexpr std::size_t kPer = 1024;  // u32 elements per thread slice
    auto mine = upcxx::allocate<std::uint32_t>(kThreads * kPer);
    std::fill_n(mine.local(), kThreads * kPer, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    const auto me = static_cast<std::uint32_t>(upcxx::rank_me());

    with_injectors(kThreads, [&](int t) {
      std::vector<std::uint32_t> src(kPer);
      for (std::size_t i = 0; i < kPer; ++i)
        src[i] = (me << 24) | (static_cast<std::uint32_t>(t) << 16) |
                 static_cast<std::uint32_t>(i);
      auto slice = peer + static_cast<std::ptrdiff_t>(t * kPer);
      upcxx::rput(src.data(), slice, kPer).wait();
      // Read-back through the scalar and bulk get paths on this thread.
      std::vector<std::uint32_t> back(kPer);
      upcxx::rget(slice, back.data(), kPer).wait();
      EXPECT_EQ(back, src);
      EXPECT_EQ(upcxx::rget(slice + 7).wait(), src[7]);
    });

    upcxx::barrier();
    const auto them = 1u - me;
    for (int t = 0; t < kThreads; ++t)
      for (std::size_t i = 0; i < kPer; ++i)
        ASSERT_EQ(mine.local()[t * kPer + i],
                  (them << 24) | (static_cast<std::uint32_t>(t) << 16) |
                      static_cast<std::uint32_t>(i));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Inject, RpcRoundTripFromThreads) {
  spmd(2, [] {
    constexpr int kThreads = 2;
    constexpr int kOps = 32;
    static std::atomic<int> ff_hits{0};
    ff_hits = 0;
    upcxx::barrier();
    const int peer = 1 - upcxx::rank_me();

    with_injectors(kThreads, [&](int t) {
      for (int i = 0; i < kOps; ++i) {
        // Round trip: the reply is deserialized on the master and shipped
        // home to this thread's persona, where wait() picks it up.
        auto v = upcxx::rpc(
                     peer, [](int a, int b) { return a * 100 + b; }, t, i)
                     .wait();
        ASSERT_EQ(v, t * 100 + i);
      }
      upcxx::rpc_ff(peer, [] { ff_hits.fetch_add(1); });
    });

    // rpc_ff has no completion to wait on: spin until the peer's sends
    // landed here (thread backend: ff_hits is process-shared).
    while (ff_hits.load() < 2 * kThreads) upcxx::progress();
    upcxx::barrier();
    EXPECT_EQ(ff_hits.load(), 2 * kThreads);
  });
}

TEST(Inject, XferEnginePathFromThread) {
  // rma_async_min=1 forces every bulk RMA through the XferEngine: the
  // injector thread's ops ride the submit queue, the engine runs on the
  // master, and completions ship back to the injector's persona.
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_async_min = 1;
  cfg.xfer_chunk_bytes = 1024;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kN = 16 << 10;
    auto mine = upcxx::allocate<std::uint32_t>(kN);
    std::fill_n(mine.local(), kN, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    const auto me = static_cast<std::uint32_t>(upcxx::rank_me());

    with_injectors(1, [&](int) {
      std::vector<std::uint32_t> src(kN);
      for (std::size_t i = 0; i < kN; ++i)
        src[i] = static_cast<std::uint32_t>(i) ^ (me << 20);
      const auto my_id = std::this_thread::get_id();
      std::atomic<bool> src_done{false};
      auto op = upcxx::rput(src.data(), peer, kN,
                            upcxx::operation_cx::as_future() |
                                upcxx::source_cx::as_lpc([&src_done, my_id] {
                                  // Shipped home: runs on the injecting
                                  // thread's persona, not the master.
                                  EXPECT_EQ(std::this_thread::get_id(), my_id);
                                  src_done.store(true);
                                }));
      op.wait();
      // The LPC is queued on this persona; it may trail the op future by
      // one progress call but never migrates threads.
      while (!src_done.load()) upcxx::progress();
      std::vector<std::uint32_t> back(kN);
      upcxx::rget(peer, back.data(), kN).wait();
      EXPECT_EQ(back, src);
    });

    upcxx::barrier();
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(mine.local()[i],
                static_cast<std::uint32_t>(i) ^ ((1u - me) << 20));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

TEST(Inject, AmWirePathFromThread) {
  // UPCXX_RMA_WIRE=am: below-threshold ops become protocol put/get
  // requests, dispatched for the injector by the master via the submit
  // queue; the scalar rget ships its fetched value home the same way.
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kN = 512;
    auto mine = upcxx::allocate<std::uint64_t>(kN);
    std::fill_n(mine.local(), kN, 0ull);
    upcxx::dist_object<upcxx::global_ptr<std::uint64_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    const auto me = static_cast<std::uint64_t>(upcxx::rank_me());

    with_injectors(2, [&](int t) {
      const std::size_t half = kN / 2;
      auto slice = peer + static_cast<std::ptrdiff_t>(t) *
                              static_cast<std::ptrdiff_t>(half);
      std::vector<std::uint64_t> src(half);
      for (std::size_t i = 0; i < half; ++i)
        src[i] = (me << 32) | (static_cast<std::uint64_t>(t) << 16) | i;
      upcxx::rput(src.data(), slice, half).wait();
      // Scalar put (value staged in a holder until the master sends it).
      upcxx::rput(src[3], slice + 3).wait();
      EXPECT_EQ(upcxx::rget(slice + 3).wait(), src[3]);
      std::vector<std::uint64_t> back(half);
      upcxx::rget(slice, back.data(), half).wait();
      EXPECT_EQ(back, src);
    });

    upcxx::barrier();
    const auto them = 1ull - me;
    for (std::size_t i = 0; i < kN / 2; ++i) {
      ASSERT_EQ(mine.local()[i], (them << 32) | i);
      ASSERT_EQ(mine.local()[kN / 2 + i],
                (them << 32) | (1ull << 16) | i);
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

TEST(Inject, CopyFromThread) {
  // copy() from an injector thread, host global -> local and back.
  spmd(2, [] {
    constexpr std::size_t kN = 256;
    auto mine = upcxx::allocate<int>(kN);
    std::fill_n(mine.local(), kN, 0);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    const int me = upcxx::rank_me();

    with_injectors(1, [&](int) {
      std::vector<int> src(kN);
      for (std::size_t i = 0; i < kN; ++i)
        src[i] = me * 1000 + static_cast<int>(i);
      upcxx::copy(src.data(), peer, kN).wait();
      std::vector<int> back(kN);
      upcxx::copy(peer, back.data(), kN).wait();
      EXPECT_EQ(back, src);
    });

    upcxx::barrier();
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(mine.local()[i], (1 - me) * 1000 + static_cast<int>(i));
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

// Collectives initiated from an injection_scope thread: the op_context
// dispatch routes the rank-level protocol to the master while the
// injector's persona waits on the future. One injector per rank — the
// collective-entry order must match across ranks, and that is the
// caller's contract, not the runtime's.
void collectives_from_injector_body() {
  const int me = upcxx::rank_me();
  const int P = upcxx::rank_n();
  const auto before = upcxx::experimental::stats();

  with_injectors(1, [&](int) {
    upcxx::barrier();
    EXPECT_EQ(upcxx::broadcast(me == 0 ? 41 : -1, 0).wait(), 41);
    EXPECT_EQ(upcxx::reduce_all(me + 1, std::plus<int>()).wait(),
              P * (P + 1) / 2);
    const int sum = upcxx::reduce_one(2, std::plus<int>(), 0).wait();
    if (me == 0) EXPECT_EQ(sum, 2 * P);
    const auto all = upcxx::allgather(me * 10).wait();
    ASSERT_EQ(all.size(), static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) EXPECT_EQ(all[r], r * 10);
    upcxx::barrier();
  });

  const auto after = upcxx::experimental::stats();
  EXPECT_GE(after.colls_run - before.colls_run, std::uint64_t{6});
  upcxx::barrier();
}

TEST(Inject, CollectivesFromInjectorMmap) {
  spmd(2, collectives_from_injector_body);
}

TEST(Inject, CollectivesFromInjectorSocket) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = gex::AmTransport::kSocket;
  EXPECT_EQ(upcxx::run(cfg, collectives_from_injector_body), 0);
}

// atomic_domain ops from injector threads. The domain is constructed
// collectively on the master before any injector exists; the ops
// themselves are point-to-point and ride the op_context dispatch like any
// other injected request. Each thread owns one slot on the peer, so the
// fetched values are a strict 0..kOps-1 sequence — any drop or reorder
// shows up as a wrong prev.
void atomics_from_injector_body() {
  constexpr int kThreads = 2;
  constexpr int kOps = 64;
  const int me = upcxx::rank_me();
  upcxx::atomic_domain<std::int64_t> ad(
      {upcxx::atomic_op::load, upcxx::atomic_op::fetch_add}, upcxx::world());
  auto slots = upcxx::allocate<std::int64_t>(kThreads);
  std::fill_n(slots.local(), kThreads, 0);
  upcxx::dist_object<upcxx::global_ptr<std::int64_t>> dir(slots);
  auto peer = dir.fetch(1 - me).wait();
  const auto before = upcxx::experimental::stats();
  upcxx::barrier();

  with_injectors(kThreads, [&](int t) {
    for (int i = 0; i < kOps; ++i) {
      const auto prev = ad.fetch_add(peer + t, 1).wait();
      EXPECT_EQ(prev, i);  // sole writer of this slot
    }
    EXPECT_EQ(ad.load(peer + t).wait(), kOps);
  });

  upcxx::barrier();
  for (int t = 0; t < kThreads; ++t)
    ASSERT_EQ(slots.local()[t], kOps);
  const auto after = upcxx::experimental::stats();
  EXPECT_GE(after.amos_run - before.amos_run,
            static_cast<std::uint64_t>(kThreads) * (kOps + 1));
  upcxx::barrier();
  upcxx::deallocate(slots);
}

TEST(Inject, AtomicsFromInjectorMmap) {
  spmd(2, atomics_from_injector_body);
}

TEST(Inject, AtomicsFromInjectorSocket) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = gex::AmTransport::kSocket;
  EXPECT_EQ(upcxx::run(cfg, atomics_from_injector_body), 0);
}

TEST(Inject, StatsCountThreadedOps) {
  // Satellite: the op counters are relaxed atomics — concurrent injector
  // increments must not tear or drop.
  spmd(1, [] {
    constexpr int kThreads = 4;
    constexpr int kOps = 500;
    auto buf = upcxx::allocate<std::uint64_t>(kThreads);
    const auto before = upcxx::experimental::stats();

    with_injectors(kThreads, [&](int t) {
      for (int i = 0; i < kOps; ++i)
        upcxx::rput(static_cast<std::uint64_t>(i), buf + t).wait();
    });

    const auto after = upcxx::experimental::stats();
    EXPECT_EQ(after.rputs - before.rputs,
              static_cast<std::uint64_t>(kThreads) * kOps);
    upcxx::deallocate(buf);
  });
}

TEST(Inject, CompletionLpcRunsOnInjectingThread) {
  // Completion-shard routing: an as_lpc completion fires during the
  // injecting thread's own progress, never on the master.
  spmd(1, [] {
    auto buf = upcxx::allocate<int>(1);

    with_injectors(1, [&](int) {
      const auto my_id = std::this_thread::get_id();
      std::atomic<bool> fired{false};
      upcxx::rput(7, buf,
                  upcxx::operation_cx::as_lpc([&fired, my_id] {
                    EXPECT_EQ(std::this_thread::get_id(), my_id);
                    fired.store(true, std::memory_order_release);
                  }));
      while (!fired.load(std::memory_order_acquire)) upcxx::progress();
    });

    EXPECT_EQ(*buf.local(), 7);
    upcxx::deallocate(buf);
  });
}

TEST(Inject, ProgressPoolDrainsInjection) {
  // The pool replaces the master thread's explicit progress loop: worker 0
  // holds the migrated master persona; helpers drain the wire shards. The
  // primordial thread just joins the injectors.
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;  // every op goes through the hand-off
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kN = 256;
    auto mine = upcxx::allocate<std::uint32_t>(kN);
    std::fill_n(mine.local(), kN, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    const auto me = static_cast<std::uint32_t>(upcxx::rank_me());

    {
      upcxx::injector inj;
      upcxx::progress_pool pool(/*width=*/2);
      std::vector<std::thread> ts;
      for (int t = 0; t < 2; ++t)
        ts.emplace_back([&, t] {
          upcxx::injection_scope scope(inj);
          const std::size_t half = kN / 2;
          auto slice = peer + static_cast<std::ptrdiff_t>(t) *
                                  static_cast<std::ptrdiff_t>(half);
          std::vector<std::uint32_t> src(half);
          for (std::size_t i = 0; i < half; ++i)
            src[i] = (me << 20) | (static_cast<std::uint32_t>(t) << 16) |
                     static_cast<std::uint32_t>(i);
          upcxx::rput(src.data(), slice, half).wait();
          std::vector<std::uint32_t> back(half);
          upcxx::rget(slice, back.data(), half).wait();
          EXPECT_EQ(back, src);
        });
      for (auto& th : ts) th.join();
      pool.stop();
    }

    upcxx::barrier();
    const auto them = 1u - me;
    for (std::size_t i = 0; i < kN / 2; ++i) {
      ASSERT_EQ(mine.local()[i], (them << 20) | i);
      ASSERT_EQ(mine.local()[kN / 2 + i],
                (them << 20) | (1u << 16) | static_cast<std::uint32_t>(i));
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
