// Memory kinds: simulated device segments, kind-carrying global_ptr, and
// upcxx::copy across host/device/rank boundaries (the paper's §VI
// future-work direction; see device_allocator.hpp for the substitution).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "arch/timer.hpp"
#include "spmd_helpers.hpp"

using testutil::solo;
using testutil::spmd;

namespace {

using dev_ptr = upcxx::global_ptr<double, upcxx::memory_kind::sim_device>;

TEST(MemoryKinds, KindIsPartOfTheType) {
  static_assert(upcxx::global_ptr<int>::kind == upcxx::memory_kind::host);
  static_assert(dev_ptr::kind == upcxx::memory_kind::sim_device);
  static_assert(!std::is_same_v<upcxx::global_ptr<double>, dev_ptr>);
  // Device pointers remain trivially copyable (serializable RPC arguments).
  static_assert(std::is_trivially_copyable_v<dev_ptr>);
}

TEST(MemoryKinds, AllocateAndFreeDeviceMemory) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto a = dev.allocate<double>(128);
    ASSERT_FALSE(a.is_null());
    EXPECT_EQ(a.where(), upcxx::rank_me());
    const std::size_t free_after = dev.bytes_free();
    EXPECT_LT(free_after, dev.segment_bytes());
    dev.deallocate(a);
    EXPECT_GT(dev.bytes_free(), free_after);
  });
}

TEST(MemoryKinds, SegmentExhaustionReturnsNull) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(64 << 10);
    auto big = dev.allocate<double>((64 << 10) / sizeof(double));
    EXPECT_TRUE(big.is_null()) << "allocation exceeding segment must fail";
    // A reasonable allocation still succeeds afterwards.
    auto ok = dev.allocate<double>(512);
    EXPECT_FALSE(ok.is_null());
  });
}

TEST(MemoryKinds, HostDeviceRoundTripPreservesData) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto d = dev.allocate<double>(256);
    std::vector<double> src(256), back(256, 0.0);
    std::iota(src.begin(), src.end(), 1.0);
    upcxx::copy(src.data(), d, 256).wait();
    upcxx::copy(d, back.data(), 256).wait();
    EXPECT_EQ(src, back);
    dev.deallocate(d);
  });
}

TEST(MemoryKinds, DeviceToDeviceSameRank) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto a = dev.allocate<double>(64);
    auto b = dev.allocate<double>(64);
    std::vector<double> v(64, 3.25);
    upcxx::copy(v.data(), a, 64).wait();
    upcxx::copy(a, b, 64).wait();
    std::vector<double> out(64, 0.0);
    upcxx::copy(b, out.data(), 64).wait();
    EXPECT_EQ(out, v);
  });
}

TEST(MemoryKinds, RemoteDeviceCopyAcrossRanks) {
  // Rank 0 pushes into rank 1's device segment; rank 1 pulls it out of its
  // own device and checks. Device pointers travel by RPC like any
  // trivially-copyable value.
  spmd(2, [] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    static dev_ptr shared_dst;
    if (upcxx::rank_me() == 1) {
      auto mine = dev.allocate<double>(32);
      upcxx::rpc(0, [](dev_ptr p) { shared_dst = p; }, mine).wait();
      upcxx::barrier();  // rank 0 copies here
      upcxx::barrier();
      std::vector<double> got(32, 0.0);
      upcxx::copy(mine, got.data(), 32).wait();
      for (double x : got) EXPECT_DOUBLE_EQ(x, 42.5);
    } else {
      upcxx::barrier();
      std::vector<double> v(32, 42.5);
      upcxx::copy(v.data(), shared_dst, 32).wait();
      upcxx::barrier();
    }
    upcxx::barrier();
  });
}

TEST(MemoryKinds, HostGlobalToDeviceCopy) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto h = upcxx::new_array<double>(100);
    auto d = dev.allocate<double>(100);
    for (int i = 0; i < 100; ++i) h.local()[i] = i * 0.5;
    upcxx::copy(h, d, 100).wait();
    std::vector<double> out(100);
    upcxx::copy(d, out.data(), 100).wait();
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(out[i], i * 0.5);
    upcxx::delete_array(h, 100);
  });
}

TEST(MemoryKinds, CopyHonorsPromiseCompletion) {
  solo([] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto d = dev.allocate<double>(16);
    std::vector<double> v(16, 1.0);
    upcxx::promise<> pr;
    upcxx::copy(v.data(), d, 16, upcxx::operation_cx::as_promise(pr));
    pr.finalize().wait();
    std::vector<double> out(16, 0.0);
    upcxx::copy(d, out.data(), 16).wait();
    EXPECT_EQ(out, v);
  });
}

TEST(MemoryKinds, SimulatedTransferCostDelaysCompletion) {
  solo([] {
    // 10 µs per device end, no bandwidth term.
    upcxx::experimental::set_sim_device_params(10'000, 0.0);
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto d = dev.allocate<double>(1024);
    std::vector<double> v(1024, 2.0);
    const std::uint64_t t0 = arch::now_ns();
    auto f = upcxx::copy(v.data(), d, 1024);
    EXPECT_FALSE(f.is_ready()) << "costed device copy must not complete "
                                  "synchronously";
    f.wait();
    const std::uint64_t dt = arch::now_ns() - t0;
    EXPECT_GE(dt, 10'000u);
    // Device->device is one DMA: same per-transfer toll.
    auto d2 = dev.allocate<double>(1024);
    const std::uint64_t t1 = arch::now_ns();
    upcxx::copy(d, d2, 1024).wait();
    EXPECT_GE(arch::now_ns() - t1, 10'000u);
    upcxx::experimental::set_sim_device_params(0, 0.0);
  });
}

TEST(MemoryKinds, BandwidthTermScalesWithSize) {
  solo([] {
    // 1 GB/s == 1 ns/byte: 64 KiB ≈ 65.5 µs, measurable; 64 B ≈ 64 ns.
    upcxx::experimental::set_sim_device_params(0, 1.0);
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto d = dev.allocate<double>(8192);
    std::vector<double> v(8192, 1.0);
    const std::uint64_t t0 = arch::now_ns();
    upcxx::copy(v.data(), d, 8192).wait();
    const std::uint64_t dt = arch::now_ns() - t0;
    EXPECT_GE(dt, 65'000u);
    upcxx::experimental::set_sim_device_params(0, 0.0);
  });
}

TEST(MemoryKinds, ZeroCostDeviceCopyCompletesAtInjection) {
  solo([] {
    upcxx::experimental::set_sim_device_params(0, 0.0);
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    auto d = dev.allocate<double>(8);
    std::vector<double> v(8, 9.0);
    auto f = upcxx::copy(v.data(), d, 8);
    EXPECT_TRUE(f.is_ready()) << "zero-cost local copy uses the "
                                 "synchronous fast path";
  });
}

TEST(MemoryKinds, RemoteCxFiresOnDeviceCopy) {
  static std::atomic<int> landed{0};
  landed = 0;
  spmd(2, [] {
    upcxx::device_allocator<upcxx::sim_device> dev(1 << 20);
    static dev_ptr target_buf;
    if (upcxx::rank_me() == 1) {
      auto mine = dev.allocate<double>(4);
      upcxx::rpc(0, [](dev_ptr p) { target_buf = p; }, mine).wait();
      upcxx::barrier();
      while (landed.load() == 0) upcxx::progress();
    } else {
      upcxx::barrier();
      std::vector<double> v(4, 5.0);
      upcxx::copy(v.data(), target_buf, 4,
                  upcxx::operation_cx::as_future() |
                      upcxx::remote_cx::as_rpc([] { landed.fetch_add(1); }))
          .wait();
      while (landed.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
  });
}

}  // namespace
