// Distributed hash table tests: all three variants vs a std::unordered_map
// oracle, value-size sweeps across the eager/rendezvous boundary, and the
// paper's asynchronous-chaining idioms.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "apps/dht/dht.hpp"
#include "arch/rng.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

std::string make_key(arch::Xoshiro256& rng) {
  // 8-byte random keys rendered as hex, as in the paper's benchmark setup.
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(rng.next()));
  return std::string(buf, 16);
}

std::string make_value(arch::Xoshiro256& rng, std::size_t len) {
  std::string v(len, '\0');
  for (auto& c : v) c = static_cast<char>('A' + rng.next_below(26));
  return v;
}

TEST(DhtRpcOnly, InsertFindRoundTrip) {
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    // The paper's example.
    upcxx::future<> f = map.insert("Germany", "Bonn");
    f.wait();
    upcxx::barrier();
    auto found = map.find("Germany").wait();
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, "Bonn");
    EXPECT_FALSE(map.find("France").wait().has_value());
    upcxx::barrier();
  });
}

TEST(DhtRpcOnly, MatchesOracle) {
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    arch::Xoshiro256 rng(100 + upcxx::rank_me());
    std::unordered_map<std::string, std::string> oracle;
    for (int i = 0; i < 200; ++i) {
      auto k = make_key(rng);
      auto v = make_value(rng, 8 + rng.next_below(64));
      oracle[k] = v;
      map.insert(k, v).wait();
    }
    upcxx::barrier();
    for (const auto& [k, v] : oracle) {
      auto got = map.find(k).wait();
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(*got, v);
    }
    upcxx::barrier();
  });
}

TEST(DhtRpcOnly, OverwriteKey) {
  spmd(2, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      map.insert("k", "v1").wait();
      map.insert("k", "v2").wait();
      EXPECT_EQ(*map.find("k").wait(), "v2");
    }
    upcxx::barrier();
  });
}

TEST(DhtRpcOnly, PipelinedInsertsWithPromise) {
  // Non-blocking insert storm tracked by conjoined futures.
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    arch::Xoshiro256 rng(7 + upcxx::rank_me());
    std::vector<std::string> keys;
    upcxx::future<> all = upcxx::make_future();
    for (int i = 0; i < 100; ++i) {
      keys.push_back(make_key(rng));
      all = upcxx::when_all(all, map.insert(keys.back(), "v"));
      if (i % 10 == 0) upcxx::progress();
    }
    all.wait();
    upcxx::barrier();
    for (const auto& k : keys) EXPECT_TRUE(map.find(k).wait().has_value());
    upcxx::barrier();
  });
}

class DhtRmaSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DhtRmaSizes, RpcRmaMatchesOracleAcrossValueSizes) {
  const std::size_t value_len = GetParam();
  spmd(4, [value_len] {
    dht::RpcRmaMap map;
    upcxx::barrier();
    arch::Xoshiro256 rng(900 + upcxx::rank_me());
    std::unordered_map<std::string, std::string> oracle;
    const int n = value_len > 4096 ? 20 : 60;
    for (int i = 0; i < n; ++i) {
      auto k = make_key(rng);
      auto v = make_value(rng, value_len);
      oracle[k] = v;
      map.insert(k, v).wait();
    }
    upcxx::barrier();
    for (const auto& [k, v] : oracle) {
      auto got = map.find(k).wait();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
    EXPECT_FALSE(map.find("absent-key-123").wait().has_value());
    upcxx::barrier();
  });
}

// Sweep across the eager/rendezvous boundary (test cfg eager_max = 8 KiB)
// AND the async data-motion threshold (default rma_async_min = 64 KiB):
// 128 KiB values ride the chunked XferEngine, which reads the insert's
// source bytes from later progress polls — a regression guard for the
// value-lifetime anchoring in RpcRmaMap::insert.
INSTANTIATE_TEST_SUITE_P(ValueSizes, DhtRmaSizes,
                         ::testing::Values(1, 64, 1024, 8192, 32768,
                                           131072));

TEST(DhtRpcRma, InsertIsFullyAsynchronous) {
  // The paper's chained insert: the returned future covers RPC + rput.
  spmd(2, [] {
    dht::RpcRmaMap map;
    upcxx::barrier();
    std::vector<upcxx::future<>> futs;
    for (int i = 0; i < 32; ++i)
      futs.push_back(map.insert("key" + std::to_string(i),
                                std::string(1024, 'x')));
    for (auto& f : futs) f.wait();
    upcxx::barrier();
    for (int i = 0; i < 32; ++i) {
      auto got = map.find("key" + std::to_string(i)).wait();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->size(), 1024u);
    }
    upcxx::barrier();
  });
}

TEST(DhtOldApi, MatchesOracle) {
  spmd(4, [] {
    dht::OldApiMap map;
    upcxx::barrier();
    arch::Xoshiro256 rng(55 + upcxx::rank_me());
    std::unordered_map<std::string, std::string> oracle;
    for (int i = 0; i < 50; ++i) {
      auto k = make_key(rng);
      auto v = make_value(rng, 256);
      oracle[k] = v;
      map.insert(k, v);  // blocking, v0.1 style
    }
    upcxx::barrier();
    for (const auto& [k, v] : oracle) {
      auto got = map.find(k);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
    EXPECT_FALSE(map.find("nope").has_value());
    upcxx::barrier();
  });
}

TEST(Dht, VariantsSeeSameDistribution) {
  // get_target must agree across variants (same hash), so the same key maps
  // to the same rank in each implementation.
  spmd(4, [] {
    dht::RpcOnlyMap a;
    dht::RpcRmaMap b;
    dht::OldApiMap c;
    upcxx::barrier();
    arch::Xoshiro256 rng(1);
    for (int i = 0; i < 100; ++i) {
      auto k = make_key(rng);
      EXPECT_EQ(a.get_target(k), b.get_target(k));
      EXPECT_EQ(a.get_target(k), c.get_target(k));
    }
    upcxx::barrier();
  });
}

TEST(Dht, LoadBalanceRoughlyUniform) {
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    arch::Xoshiro256 rng(2);
    std::vector<int> counts(upcxx::rank_n(), 0);
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) ++counts[map.get_target(make_key(rng))];
    for (int c : counts) {
      EXPECT_GT(c, kN / 4 - kN / 16);
      EXPECT_LT(c, kN / 4 + kN / 16);
    }
    upcxx::barrier();
  });
}

TEST(Dht, GraphVertexUpdateIdiom) {
  // The paper's Vertex-neighbor update example (§IV-C).
  struct Vertex {
    std::vector<std::string> nbs;
  };
  using Graph = std::unordered_map<std::string, Vertex>;
  spmd(2, [] {
    upcxx::dist_object<Graph> graph(Graph{});
    // Rank 1 owns vertex "v7".
    if (upcxx::rank_me() == 1) (*graph)["v7"] = Vertex{};
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      upcxx::rpc(1,
                 [](upcxx::dist_object<Graph>& g, const std::string& key,
                    const std::string& val) {
                   auto it = g->find(key);
                   ASSERT_NE(it, g->end());
                   it->second.nbs.push_back(val);
                 },
                 graph, std::string("v7"), std::string("v9"))
          .wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      ASSERT_EQ((*graph)["v7"].nbs.size(), 1u);
      EXPECT_EQ((*graph)["v7"].nbs[0], "v9");
    }
    upcxx::barrier();
  });
}

}  // namespace

TEST(DhtRpcOnly, EraseRemovesMapping) {
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      map.insert("k1", "v1").wait();
      map.insert("k2", "v2").wait();
      EXPECT_TRUE(map.erase("k1").wait());
      EXPECT_FALSE(map.erase("k1").wait()) << "second erase finds nothing";
      EXPECT_FALSE(map.find("k1").wait().has_value());
      EXPECT_EQ(map.find("k2").wait().value(), "v2");
    }
    upcxx::barrier();
  });
}

TEST(DhtRpcOnly, UpdateAppliesAtOwner) {
  // The paper's Vertex motif: update a complex entry in place with one RPC
  // instead of lock + rget + modify + rput + unlock.
  spmd(4, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    if (upcxx::rank_me() == 0) map.insert("vertex", "a").wait();
    upcxx::barrier();
    // Every rank appends its digit; all updates run at the owner, so none
    // are lost (the RMA alternative would race).
    map.update("vertex", [](std::string& v) { v += '+'; }).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      auto v = map.find("vertex").wait();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "a++++") << "one '+' per rank, none lost";
    }
    upcxx::barrier();
  });
}

TEST(DhtRpcOnly, UpdateDefaultInsertsMissingKey) {
  spmd(2, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      map.update("fresh", [](std::string& v) { v = "born"; }).wait();
      EXPECT_EQ(map.find("fresh").wait().value(), "born");
    }
    upcxx::barrier();
  });
}

TEST(DhtRpcRma, EraseFreesLandingZone) {
  spmd(4, [] {
    dht::RpcRmaMap map;
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      const std::string big(4096, 'z');
      map.insert("blob", big).wait();
      EXPECT_EQ(map.find("blob").wait().value(), big);
      EXPECT_TRUE(map.erase("blob").wait());
      EXPECT_FALSE(map.find("blob").wait().has_value());
      // The landing zone was deallocated at the owner: inserting again
      // reuses segment space rather than leaking it.
      for (int i = 0; i < 64; ++i) {
        map.insert("blob", big).wait();
        EXPECT_TRUE(map.erase("blob").wait());
      }
    }
    upcxx::barrier();
  });
}
