// Unit tests for the architecture-support layer: alignment helpers,
// spinlock, MPSC ring, UniqueFunction, PRNG determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "arch/cacheline.hpp"
#include "arch/ring.hpp"
#include "arch/rng.hpp"
#include "arch/small_fn.hpp"
#include "arch/spinlock.hpp"
#include "arch/timer.hpp"

namespace {

TEST(Cacheline, AlignUp) {
  EXPECT_EQ(arch::align_up(0, 8), 0u);
  EXPECT_EQ(arch::align_up(1, 8), 8u);
  EXPECT_EQ(arch::align_up(8, 8), 8u);
  EXPECT_EQ(arch::align_up(9, 8), 16u);
  EXPECT_EQ(arch::align_up(63, 64), 64u);
  EXPECT_EQ(arch::align_up(65, 64), 128u);
}

TEST(Cacheline, IsPow2) {
  EXPECT_FALSE(arch::is_pow2(0));
  EXPECT_TRUE(arch::is_pow2(1));
  EXPECT_TRUE(arch::is_pow2(2));
  EXPECT_FALSE(arch::is_pow2(3));
  EXPECT_TRUE(arch::is_pow2(1ull << 40));
}

TEST(Cacheline, PaddedPreventsFalseSharingLayout) {
  arch::Padded<int> a[2];
  auto d = reinterpret_cast<std::byte*>(&a[1]) -
           reinterpret_cast<std::byte*>(&a[0]);
  EXPECT_GE(static_cast<std::size_t>(d), arch::cacheline_size);
}

TEST(Spinlock, MutualExclusionUnderContention) {
  arch::Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        arch::SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  arch::Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

class RingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_.resize(arch::MpscByteRing::footprint(kCap));
    ring_ = arch::MpscByteRing::create(mem_.data(), kCap);
  }
  static constexpr std::size_t kCap = 4096;
  std::vector<std::byte> mem_;
  arch::MpscByteRing* ring_ = nullptr;
};

TEST_F(RingTest, EmptyInitially) {
  EXPECT_TRUE(ring_->empty());
  bool consumed = ring_->try_consume([](void*, std::size_t) { FAIL(); });
  EXPECT_FALSE(consumed);
}

TEST_F(RingTest, SingleRoundTrip) {
  const char msg[] = "hello ring";
  auto t = ring_->try_reserve(sizeof(msg));
  ASSERT_NE(t.payload, nullptr);
  std::memcpy(t.payload, msg, sizeof(msg));
  arch::MpscByteRing::commit(t);
  bool got = ring_->try_consume([&](void* p, std::size_t n) {
    EXPECT_EQ(n, sizeof(msg));
    EXPECT_EQ(0, std::memcmp(p, msg, n));
  });
  EXPECT_TRUE(got);
  EXPECT_TRUE(ring_->empty());
}

TEST_F(RingTest, UncommittedRecordBlocksConsumer) {
  auto t1 = ring_->try_reserve(16);
  ASSERT_NE(t1.payload, nullptr);
  auto t2 = ring_->try_reserve(16);
  ASSERT_NE(t2.payload, nullptr);
  std::memset(t2.payload, 0xAB, 16);
  arch::MpscByteRing::commit(t2);
  // t1 precedes t2 and is not committed: nothing may be consumed yet.
  EXPECT_FALSE(ring_->try_consume([](void*, std::size_t) { FAIL(); }));
  arch::MpscByteRing::commit(t1);
  int seen = 0;
  while (ring_->try_consume([&](void*, std::size_t) { ++seen; })) {
  }
  EXPECT_EQ(seen, 2);
}

TEST_F(RingTest, FillsAndReportsFull) {
  // Fill with fixed-size records until reservation fails.
  int count = 0;
  for (;;) {
    auto t = ring_->try_reserve(64);
    if (!t.payload) break;
    arch::MpscByteRing::commit(t);
    ++count;
  }
  EXPECT_GT(count, 10);
  // Drain everything; ring must be usable again.
  int drained = 0;
  while (ring_->try_consume([&](void*, std::size_t n) {
    EXPECT_EQ(n, 64u);
    ++drained;
  })) {
  }
  EXPECT_EQ(drained, count);
  EXPECT_NE(ring_->try_reserve(64).payload, nullptr);
}

TEST_F(RingTest, WrapAroundPreservesFifoAndContents) {
  // Pump enough variable-size records through a small ring to force many
  // wraps, verifying FIFO order and payload integrity.
  arch::Xoshiro256 rng(42);
  std::uint32_t next_send = 0, next_recv = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::size_t n = 4 + rng.next_below(200);
    auto t = ring_->try_reserve(n);
    if (t.payload) {
      auto* p = static_cast<std::uint32_t*>(t.payload);
      *p = next_send++;
      arch::MpscByteRing::commit(t);
    }
    // Randomly interleave consumption.
    if (rng.next_below(2) == 0) {
      ring_->try_consume([&](void* q, std::size_t) {
        EXPECT_EQ(*static_cast<std::uint32_t*>(q), next_recv);
        ++next_recv;
      });
    }
  }
  while (ring_->try_consume([&](void* q, std::size_t) {
    EXPECT_EQ(*static_cast<std::uint32_t*>(q), next_recv);
    ++next_recv;
  })) {
  }
  EXPECT_EQ(next_recv, next_send);
  EXPECT_GT(next_send, 1000u);
}

TEST_F(RingTest, MultiProducerStress) {
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 5000;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        for (;;) {
          auto t = ring_->try_reserve(8);
          if (t.payload) {
            auto* w = static_cast<std::uint32_t*>(t.payload);
            w[0] = static_cast<std::uint32_t>(p);
            w[1] = static_cast<std::uint32_t>(i);
            arch::MpscByteRing::commit(t);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  // Single consumer: per-producer sequences must arrive in order.
  std::vector<std::uint32_t> next(kProducers, 0);
  std::uint64_t total = 0;
  while (total < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    ring_->try_consume([&](void* q, std::size_t n) {
      ASSERT_EQ(n, 8u);
      auto* w = static_cast<std::uint32_t*>(q);
      ASSERT_LT(w[0], static_cast<std::uint32_t>(kProducers));
      EXPECT_EQ(w[1], next[w[0]]);
      ++next[w[0]];
      ++total;
    });
  }
  done.store(true);
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p)
    EXPECT_EQ(next[p], static_cast<std::uint32_t>(kPerProducer));
}

TEST(SmallFn, InlineLambda) {
  int x = 5;
  arch::UniqueFunction<int(int)> f = [x](int y) { return x + y; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(3), 8);
}

TEST(SmallFn, MoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  arch::UniqueFunction<int()> f = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
}

TEST(SmallFn, HeapFallbackForLargeCapture) {
  struct Big {
    char data[256];
  };
  Big big{};
  big.data[0] = 7;
  arch::UniqueFunction<int()> f = [big] { return static_cast<int>(big.data[0]); };
  EXPECT_EQ(f(), 7);
}

TEST(SmallFn, MoveTransfersOwnership) {
  arch::UniqueFunction<int()> f = [] { return 1; };
  arch::UniqueFunction<int()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 1);
}

TEST(SmallFn, DestructorRunsCapturedState) {
  auto flag = std::make_shared<int>(0);
  {
    arch::UniqueFunction<void()> f = [holder = flag] { (void)holder; };
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);
}

TEST(Rng, DeterministicAcrossInstances) {
  arch::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  arch::Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  arch::Xoshiro256 r(7);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++buckets[r.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kN / 10 - kN / 50);
    EXPECT_LT(b, kN / 10 + kN / 50);
  }
}

TEST(Timer, MonotonicAndMeasures) {
  auto t0 = arch::now_ns();
  arch::Stopwatch sw;
  sw.start();
  volatile long sink = 0;
  for (long i = 0; i < 1000000; ++i) sink = sink + i;
  sw.stop();
  auto t1 = arch::now_ns();
  EXPECT_GE(t1, t0);
  EXPECT_GT(sw.elapsed_ns(), 0u);
  EXPECT_LE(sw.elapsed_ns(), t1 - t0);
}

}  // namespace
