// Team and collective tests: split semantics, barriers, broadcast,
// reductions (built-in and custom ops), subset-team collectives.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

TEST(Team, WorldShape) {
  spmd(6, [] {
    auto& w = upcxx::world();
    EXPECT_EQ(w.rank_n(), 6);
    EXPECT_EQ(w.rank_me(), upcxx::rank_me());
    for (int i = 0; i < 6; ++i) EXPECT_EQ(w[i], i);
    EXPECT_EQ(w.from_world(3), 3);
  });
}

TEST(Team, SplitEvenOdd) {
  spmd(6, [] {
    const int me = upcxx::rank_me();
    upcxx::team sub = upcxx::world().split(me % 2, me);
    EXPECT_EQ(sub.rank_n(), 3);
    EXPECT_EQ(sub.rank_me(), me / 2);
    for (int i = 0; i < sub.rank_n(); ++i)
      EXPECT_EQ(sub[i], 2 * i + (me % 2));
    upcxx::barrier();
  });
}

TEST(Team, SplitKeyControlsOrder) {
  spmd(4, [] {
    const int me = upcxx::rank_me();
    // Reverse order within one color.
    upcxx::team sub = upcxx::world().split(0, -me);
    EXPECT_EQ(sub.rank_n(), 4);
    EXPECT_EQ(sub.rank_me(), 3 - me);
    EXPECT_EQ(sub[0], 3);
    EXPECT_EQ(sub[3], 0);
    upcxx::barrier();
  });
}

TEST(Team, SplitWithNegativeColorExcludes) {
  spmd(4, [] {
    const int me = upcxx::rank_me();
    upcxx::team sub = upcxx::world().split(me == 0 ? -1 : 0, me);
    if (me == 0) {
      EXPECT_EQ(sub.rank_n(), 0);
    } else {
      EXPECT_EQ(sub.rank_n(), 3);
      EXPECT_EQ(sub.rank_me(), me - 1);
    }
    upcxx::barrier();
  });
}

TEST(Team, NestedSplits) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    upcxx::team half = upcxx::world().split(me / 4, me);  // two teams of 4
    EXPECT_EQ(half.rank_n(), 4);
    upcxx::team quarter = half.split(half.rank_me() / 2, half.rank_me());
    EXPECT_EQ(quarter.rank_n(), 2);
    // Distinct ids across sibling teams.
    EXPECT_NE(half.id(), quarter.id());
    upcxx::barrier();
  });
}

TEST(Coll, WorldBarrierSynchronizes) {
  static std::atomic<int> phase{0};
  phase = 0;
  spmd(8, [] {
    phase.fetch_add(1);
    upcxx::barrier();
    EXPECT_EQ(phase.load(), 8);
    upcxx::barrier();
  });
}

TEST(Coll, BarrierAsyncIsNonBlocking) {
  spmd(4, [] {
    auto f = upcxx::barrier_async();
    // Cannot assert not-ready (tiny teams may complete fast), but wait must
    // succeed and all ranks must pass.
    f.wait();
    upcxx::barrier();
  });
}

TEST(Coll, RepeatedBarriersKeepMatching) {
  spmd(4, [] {
    for (int i = 0; i < 100; ++i) upcxx::barrier();
  });
}

TEST(Coll, BroadcastScalarFromEveryRoot) {
  spmd(5, [] {
    for (int root = 0; root < upcxx::rank_n(); ++root) {
      auto f = upcxx::broadcast(upcxx::rank_me() * 10 + root, root);
      EXPECT_EQ(f.wait(), root * 10 + root);
    }
    upcxx::barrier();
  });
}

TEST(Coll, BroadcastString) {
  spmd(4, [] {
    std::string payload =
        upcxx::rank_me() == 2 ? "from-two" : "overwritten";
    auto f = upcxx::broadcast(payload, 2);
    EXPECT_EQ(f.wait(), "from-two");
    upcxx::barrier();
  });
}

TEST(Coll, BroadcastBulkBuffer) {
  spmd(4, [] {
    std::vector<double> buf(257);
    if (upcxx::rank_me() == 1)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<double>(i) * 1.5;
    upcxx::broadcast(buf.data(), buf.size(), 1).wait();
    for (std::size_t i = 0; i < buf.size(); ++i)
      EXPECT_DOUBLE_EQ(buf[i], static_cast<double>(i) * 1.5);
    upcxx::barrier();
  });
}

TEST(Coll, ReduceAllSum) {
  spmd(7, [] {
    auto f = upcxx::reduce_all(upcxx::rank_me() + 1, upcxx::op_fast_add{});
    EXPECT_EQ(f.wait(), 7 * 8 / 2);
    upcxx::barrier();
  });
}

TEST(Coll, ReduceAllMinMax) {
  spmd(6, [] {
    const int me = upcxx::rank_me();
    EXPECT_EQ(upcxx::reduce_all(me, upcxx::op_fast_min{}).wait(), 0);
    EXPECT_EQ(upcxx::reduce_all(me, upcxx::op_fast_max{}).wait(), 5);
    EXPECT_EQ(upcxx::reduce_all(1u << me, upcxx::op_fast_bit_or{}).wait(),
              0x3Fu);
    upcxx::barrier();
  });
}

TEST(Coll, ReduceOneDeliversAtRoot) {
  spmd(5, [] {
    auto f = upcxx::reduce_one(upcxx::rank_me() + 1, upcxx::op_fast_add{}, 3);
    int v = f.wait();
    if (upcxx::rank_me() == 3) { EXPECT_EQ(v, 15); }
    upcxx::barrier();
  });
}

TEST(Coll, ReduceCustomLambdaOp) {
  spmd(4, [] {
    // Custom associative op: max by absolute value.
    auto f = upcxx::reduce_all(
        (upcxx::rank_me() == 2 ? -100 : upcxx::rank_me()),
        [](int a, int b) { return std::abs(a) > std::abs(b) ? a : b; });
    EXPECT_EQ(f.wait(), -100);
    upcxx::barrier();
  });
}

TEST(Coll, ReduceDouble) {
  spmd(4, [] {
    auto f = upcxx::reduce_all(0.5 * (upcxx::rank_me() + 1),
                               upcxx::op_fast_add{});
    EXPECT_DOUBLE_EQ(f.wait(), 0.5 * 10);
    upcxx::barrier();
  });
}

TEST(Coll, SubsetTeamCollectives) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    upcxx::team sub = upcxx::world().split(me % 2, me);
    // Sum of world ranks within my parity class.
    auto f = upcxx::reduce_all(me, upcxx::op_fast_add{}, sub);
    const int expect = (me % 2 == 0) ? (0 + 2 + 4 + 6) : (1 + 3 + 5 + 7);
    EXPECT_EQ(f.wait(), expect);
    // Broadcast within the subteam from its rank 1 (world rank 2 or 3).
    auto b = upcxx::broadcast(me, 1, sub);
    EXPECT_EQ(b.wait(), sub[1]);
    upcxx::barrier(sub);
    upcxx::barrier();
  });
}

TEST(Coll, ConcurrentCollectivesOnDifferentTeams) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    upcxx::team sub = upcxx::world().split(me % 2, me);
    // Interleave: world reduce and subteam reduce in flight simultaneously.
    auto fw = upcxx::reduce_all(1, upcxx::op_fast_add{});
    auto fs = upcxx::reduce_all(1, upcxx::op_fast_add{}, sub);
    EXPECT_EQ(fw.wait(), 8);
    EXPECT_EQ(fs.wait(), 4);
    upcxx::barrier();
  });
}

TEST(Coll, SingletonTeamCollectives) {
  spmd(3, [] {
    upcxx::team solo = upcxx::world().split(upcxx::rank_me(), 0);
    EXPECT_EQ(solo.rank_n(), 1);
    EXPECT_EQ(upcxx::reduce_all(41, upcxx::op_fast_add{}, solo).wait(), 41);
    EXPECT_EQ(upcxx::broadcast(7, 0, solo).wait(), 7);
    upcxx::barrier(solo);
    upcxx::barrier();
  });
}

TEST(Coll, ManyBackToBackReductions) {
  spmd(4, [] {
    for (int i = 0; i < 50; ++i) {
      auto f = upcxx::reduce_all(i * (upcxx::rank_me() + 1),
                                 upcxx::op_fast_add{});
      EXPECT_EQ(f.wait(), i * 10);
    }
    upcxx::barrier();
  });
}

}  // namespace
