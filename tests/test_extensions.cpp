// Tests for the extension surface: upcxx::copy, gather/allgather/scan,
// lpc, when_all_range, and the additional serializable containers.
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <set>
#include <string>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::solo;
using testutil::spmd;

namespace {

// roundtrip helper over the wire archives.
template <typename T>
T roundtrip(const T& v) {
  upcxx::detail::SizeArchive sa;
  upcxx::serialization<T>::serialize(sa, v);
  std::vector<std::byte> buf(sa.size());
  upcxx::detail::WriteArchive wa(buf.data());
  upcxx::serialization<T>::serialize(wa, v);
  EXPECT_EQ(wa.written(), buf.size());
  upcxx::detail::Reader r(buf.data(), buf.size());
  return upcxx::serialization<T>::deserialize(r);
}

TEST(SerializationExt, SetDequeList) {
  std::set<std::string> s{"a", "bb", "ccc"};
  EXPECT_EQ(roundtrip(s), s);
  std::deque<int> d{1, 2, 3};
  EXPECT_EQ(roundtrip(d), d);
  std::list<std::pair<int, std::string>> l{{1, "x"}, {2, "y"}};
  EXPECT_EQ(roundtrip(l), l);
  std::set<int> empty;
  EXPECT_EQ(roundtrip(empty), empty);
}

TEST(SerializationExt, ArrayOfStrings) {
  std::array<std::string, 3> a{"one", "", std::string(5000, 'z')};
  EXPECT_EQ(roundtrip(a), a);
}

TEST(SerializationExt, SetAsRpcArgument) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::set<int> s{5, 1, 9};
      auto f = upcxx::rpc(1, [](const std::set<int>& x) {
        return *x.rbegin();
      }, s);
      EXPECT_EQ(f.wait(), 9);
    }
    upcxx::barrier();
  });
}

TEST(Copy, GlobalToGlobalThirdParty) {
  // Rank 0 copies data from rank 1's segment into rank 2's segment.
  spmd(3, [] {
    auto mine = upcxx::allocate<int>(16);
    for (int i = 0; i < 16; ++i)
      mine.local()[i] = upcxx::rank_me() * 100 + i;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto src = dir.fetch(1).wait();
    auto dst = dir.fetch(2).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) upcxx::copy(src, dst, 16).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 2) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(mine.local()[i], 100 + i);
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Copy, LocalGlobalForwarding) {
  spmd(2, [] {
    auto mine = upcxx::allocate<double>(4);
    upcxx::dist_object<upcxx::global_ptr<double>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    double out[4] = {1.5, 2.5, 3.5, 4.5};
    upcxx::copy(out, peer, 4).wait();
    upcxx::barrier();
    double back[4] = {};
    upcxx::copy(mine, back, 4).wait();
    EXPECT_DOUBLE_EQ(back[2], 3.5);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Coll, AllgatherOrderedByTeamRank) {
  spmd(6, [] {
    auto f = upcxx::allgather(std::string(1, 'a' + upcxx::rank_me()));
    auto all = f.wait();
    ASSERT_EQ(all.size(), 6u);
    for (int i = 0; i < 6; ++i)
      EXPECT_EQ(all[i], std::string(1, 'a' + i));
    upcxx::barrier();
  });
}

TEST(Coll, AllgatherTrivialValues) {
  spmd(5, [] {
    auto all = upcxx::allgather(upcxx::rank_me() * 7).wait();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(all[i], i * 7);
    upcxx::barrier();
  });
}

TEST(Coll, GatherDeliversAtRoot) {
  spmd(4, [] {
    auto v = upcxx::gather(upcxx::rank_me() + 10, 2).wait();
    if (upcxx::rank_me() == 2) {
      ASSERT_EQ(v.size(), 4u);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i + 10);
    } else {
      EXPECT_TRUE(v.empty());
    }
    upcxx::barrier();
  });
}

TEST(Coll, AllgatherOnSubTeam) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    upcxx::team sub = upcxx::world().split(me % 2, me);
    auto all = upcxx::allgather(me, sub).wait();
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(all[i], 2 * i + (me % 2));
    upcxx::barrier();
  });
}

TEST(Coll, InclusiveScan) {
  spmd(7, [] {
    const int me = upcxx::rank_me();
    auto f = upcxx::scan_inclusive(me + 1, upcxx::op_fast_add{});
    EXPECT_EQ(f.wait(), (me + 1) * (me + 2) / 2);
    upcxx::barrier();
  });
}

TEST(Coll, ScanWithMax) {
  spmd(5, [] {
    // Values 4,0,3,1,2 by rank; running max: 4,4,4,4,4 except rank order.
    const int vals[5] = {4, 0, 3, 1, 2};
    const int me = upcxx::rank_me();
    auto got = upcxx::scan_inclusive(vals[me], upcxx::op_fast_max{}).wait();
    int expect = 0;
    for (int i = 0; i <= me; ++i) expect = std::max(expect, vals[i]);
    EXPECT_EQ(got, expect);
    upcxx::barrier();
  });
}

TEST(Lpc, RunsDeferredAndReturnsValue) {
  solo([] {
    bool ran = false;
    auto f = upcxx::lpc([&] {
      ran = true;
      return 42;
    });
    EXPECT_FALSE(ran) << "lpc must not run synchronously";
    EXPECT_EQ(f.wait(), 42);
    EXPECT_TRUE(ran);
  });
}

TEST(Lpc, VoidAndFutureReturning) {
  solo([] {
    int hits = 0;
    upcxx::lpc([&] { ++hits; }).wait();
    EXPECT_EQ(hits, 1);
    auto f = upcxx::lpc([] { return upcxx::make_future(std::string("in")); });
    EXPECT_EQ(f.wait(), "in");
  });
}

TEST(WhenAllRange, ValuesInInputOrder) {
  solo([] {
    std::vector<upcxx::promise<int>> prs(5);
    std::vector<upcxx::future<int>> fs;
    for (auto& p : prs) fs.push_back(p.get_future());
    auto f = upcxx::when_all_range(fs);
    // Fulfill out of order.
    for (int i : {3, 0, 4, 1, 2}) prs[i].fulfill_result(i * 11);
    ASSERT_TRUE(f.is_ready());
    auto vals = f.result();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(vals[i], i * 11);
  });
}

TEST(WhenAllRange, EmptyAndVoidForms) {
  solo([] {
    auto fe = upcxx::when_all_range(std::vector<upcxx::future<int>>{});
    ASSERT_TRUE(fe.is_ready());
    EXPECT_TRUE(fe.result().empty());
    std::vector<upcxx::promise<>> prs(3);
    std::vector<upcxx::future<>> fs;
    for (auto& p : prs) fs.push_back(p.get_future());
    auto f = upcxx::when_all_range(fs);
    EXPECT_FALSE(f.is_ready());
    for (auto& p : prs) p.fulfill_anonymous(1);
    EXPECT_TRUE(f.is_ready());
  });
}

TEST(WhenAllRange, WithRpcFutures) {
  spmd(4, [] {
    std::vector<upcxx::future<int>> fs;
    for (int r = 0; r < upcxx::rank_n(); ++r)
      fs.push_back(upcxx::rpc(r, [] { return upcxx::rank_me() * 2; }));
    auto vals = upcxx::when_all_range(fs).wait();
    for (int r = 0; r < upcxx::rank_n(); ++r) EXPECT_EQ(vals[r], r * 2);
    upcxx::barrier();
  });
}

}  // namespace
