// Extended remote atomics: bitwise operations, floating-point domains, and
// the per-type op-validity tables (paper §II: remote atomics enable
// lock-free data structures; [8] covers the offloaded backend).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/rng.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

using upcxx::atomic_backend;
using upcxx::atomic_op;

// ------------------------------------------------------------ op validity

TEST(AtomicsExt, OpValidityTables) {
  // Integral: everything allowed.
  EXPECT_TRUE(upcxx::atomic_op_allowed<std::int64_t>(atomic_op::fetch_bit_xor));
  EXPECT_TRUE(upcxx::atomic_op_allowed<std::uint32_t>(atomic_op::compare_exchange));
  EXPECT_TRUE(upcxx::atomic_op_allowed<int>(atomic_op::fetch_inc));
  // Floating point: arithmetic and min/max only.
  EXPECT_TRUE(upcxx::atomic_op_allowed<double>(atomic_op::fetch_add));
  EXPECT_TRUE(upcxx::atomic_op_allowed<float>(atomic_op::max));
  EXPECT_FALSE(upcxx::atomic_op_allowed<double>(atomic_op::bit_or));
  EXPECT_FALSE(upcxx::atomic_op_allowed<double>(atomic_op::fetch_inc));
  EXPECT_FALSE(upcxx::atomic_op_allowed<float>(atomic_op::compare_exchange));
}

// ------------------------------------------------------------ bitwise ops

void bitwise_roundtrip(atomic_backend be) {
  spmd(4, [be] {
    upcxx::atomic_domain<std::uint64_t> ad(
        {atomic_op::load, atomic_op::store, atomic_op::bit_or,
         atomic_op::fetch_bit_or, atomic_op::bit_and,
         atomic_op::fetch_bit_and, atomic_op::bit_xor,
         atomic_op::fetch_bit_xor},
        upcxx::world(), be);
    static upcxx::global_ptr<std::uint64_t> loc;
    if (upcxx::rank_me() == 0) {
      loc = upcxx::new_<std::uint64_t>(0);
    }
    upcxx::barrier();
    // Every rank sets its own bit.
    ad.bit_or(loc, std::uint64_t{1} << upcxx::rank_me()).wait();
    upcxx::barrier();
    std::uint64_t v = ad.load(loc).wait();
    EXPECT_EQ(v, 0b1111u) << "every rank's bit must be set";
    upcxx::barrier();
    // XOR clears own bit (each bit flipped exactly once).
    ad.bit_xor(loc, std::uint64_t{1} << upcxx::rank_me()).wait();
    upcxx::barrier();
    EXPECT_EQ(ad.load(loc).wait(), 0u);
    upcxx::barrier();
    // fetch_ variants return the previous value.
    if (upcxx::rank_me() == 1) {
      ad.store(loc, std::uint64_t{0xF0}).wait();
      EXPECT_EQ(ad.fetch_bit_and(loc, std::uint64_t{0x3C}).wait(), 0xF0u);
      EXPECT_EQ(ad.load(loc).wait(), 0x30u);
      EXPECT_EQ(ad.fetch_bit_or(loc, std::uint64_t{0x0F}).wait(), 0x30u);
      EXPECT_EQ(ad.fetch_bit_xor(loc, std::uint64_t{0xFF}).wait(), 0x3Fu);
      EXPECT_EQ(ad.load(loc).wait(), 0xC0u);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 0) upcxx::delete_(loc);
    upcxx::barrier();
  });
}

TEST(AtomicsExt, BitwiseDirectBackend) {
  bitwise_roundtrip(atomic_backend::kDirect);
}
TEST(AtomicsExt, BitwiseAmBackend) { bitwise_roundtrip(atomic_backend::kAm); }

// ----------------------------------------------------- floating point

void float_domain(atomic_backend be) {
  spmd(8, [be] {
    upcxx::atomic_domain<double> ad(
        {atomic_op::load, atomic_op::store, atomic_op::add,
         atomic_op::fetch_add, atomic_op::sub, atomic_op::min,
         atomic_op::fetch_max, atomic_op::max},
        upcxx::world(), be);
    static upcxx::global_ptr<double> sum, lo, hi;
    if (upcxx::rank_me() == 0) {
      sum = upcxx::new_<double>(0.0);
      lo = upcxx::new_<double>(1e300);
      hi = upcxx::new_<double>(-1e300);
    }
    upcxx::barrier();
    const double mine = 0.25 * (upcxx::rank_me() + 1);
    ad.add(sum, mine).wait();
    ad.min(lo, mine).wait();
    ad.max(hi, mine).wait();
    upcxx::barrier();
    const int P = upcxx::rank_n();
    EXPECT_DOUBLE_EQ(ad.load(sum).wait(), 0.25 * P * (P + 1) / 2);
    EXPECT_DOUBLE_EQ(ad.load(lo).wait(), 0.25);
    EXPECT_DOUBLE_EQ(ad.load(hi).wait(), 0.25 * P);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      upcxx::delete_(sum);
      upcxx::delete_(lo);
      upcxx::delete_(hi);
    }
    upcxx::barrier();
  });
}

TEST(AtomicsExt, FloatingPointDirectBackend) {
  float_domain(atomic_backend::kDirect);
}
TEST(AtomicsExt, FloatingPointAmBackend) {
  float_domain(atomic_backend::kAm);
}

// ---------------------------------------------------- mixed-op hammering

// Property: concurrent fetch_add on doubles from all ranks loses no update
// (the CAS loop in apply_atomic must be correct under contention).
TEST(AtomicsExt, ConcurrentDoubleFetchAddLosesNothing) {
  spmd(8, [] {
    upcxx::atomic_domain<double> ad(
        {atomic_op::load, atomic_op::fetch_add}, upcxx::world(),
        atomic_backend::kDirect);
    static upcxx::global_ptr<double> acc;
    if (upcxx::rank_me() == 0) acc = upcxx::new_<double>(0.0);
    upcxx::barrier();
    constexpr int kIters = 2000;
    for (int i = 0; i < kIters; ++i) ad.fetch_add(acc, 1.0);
    upcxx::barrier();
    EXPECT_DOUBLE_EQ(ad.load(acc).wait(),
                     static_cast<double>(kIters) * upcxx::rank_n());
    upcxx::barrier();
    if (upcxx::rank_me() == 0) upcxx::delete_(acc);
    upcxx::barrier();
  });
}

// Bit-set race: ranks set random bits; OR of everything must equal the
// union (checks fetch_or atomicity under contention, both backends).
TEST(AtomicsExt, ContendedBitOrUnion) {
  for (auto be : {atomic_backend::kDirect, atomic_backend::kAm}) {
    spmd(4, [be] {
      upcxx::atomic_domain<std::uint64_t> ad(
          {atomic_op::load, atomic_op::bit_or}, upcxx::world(), be);
      static upcxx::global_ptr<std::uint64_t> bits;
      static std::atomic<std::uint64_t> oracle{0};
      if (upcxx::rank_me() == 0) {
        bits = upcxx::new_<std::uint64_t>(0);
        oracle = 0;
      }
      upcxx::barrier();
      arch::Xoshiro256 rng(991 * (upcxx::rank_me() + 1));
      std::vector<upcxx::future<>> pending;
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t bit = std::uint64_t{1} << (rng.next() % 64);
        oracle.fetch_or(bit);
        pending.push_back(ad.bit_or(bits, bit));
        if (i % 50 == 0) upcxx::progress();
      }
      // AM-backend updates are only remotely complete once acknowledged;
      // conjoin before the barrier so the load observes every bit.
      upcxx::when_all_range(pending).wait();
      upcxx::barrier();
      EXPECT_EQ(ad.load(bits).wait(), oracle.load());
      upcxx::barrier();
      if (upcxx::rank_me() == 0) upcxx::delete_(bits);
      upcxx::barrier();
    });
  }
}

}  // namespace
