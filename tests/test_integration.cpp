// Cross-module integration and stress tests: mixed RMA+RPC+collective
// traffic, parameterized transfer-size sweeps, group alltoallv, process
// backend end-to-end, and data-volume conservation in the extend-add.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "apps/sparse/eadd.hpp"
#include "arch/rng.hpp"
#include "minimpi/minimpi.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

// ------------------------------------------------- RMA size/offset sweep

class RmaSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RmaSweep, PutGetRoundTripAtOffsets) {
  auto [size_log2, offset] = GetParam();
  const std::size_t n = std::size_t{1} << size_log2;
  spmd(2, [n, offset = offset] {
    auto mine = upcxx::allocate<std::uint8_t>(n + 128);
    std::fill_n(mine.local(), n + 128, 0);
    upcxx::dist_object<upcxx::global_ptr<std::uint8_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    std::vector<std::uint8_t> src(n);
    for (std::size_t i = 0; i < n; ++i)
      src[i] = static_cast<std::uint8_t>(i * 31 + upcxx::rank_me());
    upcxx::rput(src.data(), peer + offset, n).wait();
    upcxx::barrier();
    std::vector<std::uint8_t> back(n, 0xEE);
    upcxx::rget(mine + offset, back.data(), n).wait();
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(back[i],
                static_cast<std::uint8_t>(i * 31 + 1 - upcxx::rank_me()));
    // Guard bytes untouched.
    EXPECT_EQ(mine.local()[offset + n], 0);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

INSTANTIATE_TEST_SUITE_P(SizesOffsets, RmaSweep,
                         ::testing::Combine(::testing::Values(0, 3, 8, 12,
                                                              16, 20),
                                            ::testing::Values(0, 1, 7, 64)));

// --------------------------------------------- collectives across team sizes

class CollSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollSweep, ReduceBroadcastGatherAgree) {
  const int P = GetParam();
  spmd(P, [] {
    const int me = upcxx::rank_me();
    const int P = upcxx::rank_n();
    EXPECT_EQ(upcxx::reduce_all(me, upcxx::op_fast_add{}).wait(),
              P * (P - 1) / 2);
    EXPECT_EQ(upcxx::broadcast(me * 3, P - 1).wait(), (P - 1) * 3);
    auto all = upcxx::allgather(me * me).wait();
    for (int i = 0; i < P; ++i) EXPECT_EQ(all[i], i * i);
    upcxx::barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, CollSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

// ---------------------------------------------------- group alltoallv

TEST(MiniMpiGroup, AlltoallvOnSubgroup) {
  spmd(6, [] {
    minimpi::init();
    // Group = even world ranks only; odd ranks stay out entirely.
    if (minimpi::rank() % 2 == 0) {
      std::vector<int> members{0, 2, 4};
      const int g = minimpi::rank() / 2;
      const int G = 3;
      std::vector<std::size_t> counts(G, sizeof(int)), sdisp(G), rdisp(G);
      for (int i = 0; i < G; ++i) sdisp[i] = rdisp[i] = i * sizeof(int);
      std::vector<int> sbuf(G), rbuf(G, -1);
      for (int i = 0; i < G; ++i) sbuf[i] = g * 10 + i;
      minimpi::alltoallv_group(members, sbuf.data(), counts.data(),
                               sdisp.data(), rbuf.data(), counts.data(),
                               rdisp.data(), /*tag=*/99);
      for (int i = 0; i < G; ++i) EXPECT_EQ(rbuf[i], i * 10 + g);
    }
    minimpi::finalize();
  });
}

TEST(MiniMpiGroup, ConcurrentDisjointGroups) {
  spmd(8, [] {
    minimpi::init();
    const int me = minimpi::rank();
    std::vector<int> members;
    for (int r = me % 2; r < 8; r += 2) members.push_back(r);
    const int g = me / 2;
    const int G = 4;
    std::vector<std::size_t> counts(G, sizeof(long)), disp(G);
    for (int i = 0; i < G; ++i) disp[i] = i * sizeof(long);
    std::vector<long> sbuf(G), rbuf(G, -1);
    for (int i = 0; i < G; ++i) sbuf[i] = 100L * me + i;
    // Both parity groups run their exchange concurrently with the same tag;
    // group membership must keep them separate.
    minimpi::alltoallv_group(members, sbuf.data(), counts.data(),
                             disp.data(), rbuf.data(), counts.data(),
                             disp.data(), /*tag=*/7);
    for (int i = 0; i < G; ++i)
      EXPECT_EQ(rbuf[i], 100L * members[i] + g);
    minimpi::finalize();
  });
}

// ---------------------------------------------------- mixed-traffic stress

TEST(Stress, MixedRmaRpcCollectiveTraffic) {
  static std::atomic<long> rpc_hits{0};
  rpc_hits = 0;
  spmd(8, [] {
    const int P = upcxx::rank_n();
    const int me = upcxx::rank_me();
    constexpr int kRounds = 40;
    auto slab = upcxx::allocate<long>(64);
    std::fill_n(slab.local(), 64, 0L);
    upcxx::dist_object<upcxx::global_ptr<long>> dir(slab);
    std::vector<upcxx::global_ptr<long>> peers(P);
    for (int r = 0; r < P; ++r) peers[r] = dir.fetch(r).wait();
    upcxx::atomic_domain<long> ad({upcxx::atomic_op::fetch_add,
                                   upcxx::atomic_op::load});
    upcxx::barrier();
    arch::Xoshiro256 rng(31 * me + 1);
    upcxx::promise<> ops;
    for (int round = 0; round < kRounds; ++round) {
      const int t = static_cast<int>(rng.next_below(P));
      // RMA to slot me (each slot written only by owner-indexed writers).
      // as_promise registers its own dependency on `ops`.
      upcxx::rput(static_cast<long>(round), peers[t] + me,
                  upcxx::operation_cx::as_promise(ops));
      // RPC mutating remote state.
      ops.require_anonymous(1);
      upcxx::rpc(t, [](long v) { rpc_hits.fetch_add(v); }, 1L)
          .then([ops]() mutable { ops.fulfill_anonymous(1); });
      // Atomic hot spot on rank 0's slot 63.
      ops.require_anonymous(1);
      ad.fetch_add(peers[0] + 63, 1).then(
          [ops](long) mutable { ops.fulfill_anonymous(1); });
      // Periodic collective in the middle of the chaos.
      if (round % 10 == 9) {
        long sum = upcxx::reduce_all(1L, upcxx::op_fast_add{}).wait();
        EXPECT_EQ(sum, P);
      }
      upcxx::progress();
    }
    ops.finalize().wait();
    upcxx::barrier();
    EXPECT_EQ(rpc_hits.load(), static_cast<long>(P) * kRounds);
    EXPECT_EQ(*(peers[0] + 63).local(), static_cast<long>(P) * kRounds);
    upcxx::barrier();
    upcxx::deallocate(slab);
  });
}

TEST(Stress, RpcStormWithViewsAllPairs) {
  static std::atomic<long> total{0};
  total = 0;
  spmd(6, [] {
    const int P = upcxx::rank_n();
    constexpr int kPer = 30;
    std::vector<std::uint64_t> payload(512);
    std::iota(payload.begin(), payload.end(), 0);
    const long each = std::accumulate(payload.begin(), payload.end(), 0L);
    upcxx::promise<> acks;
    for (int i = 0; i < kPer; ++i) {
      for (int t = 0; t < P; ++t) {
        acks.require_anonymous(1);
        upcxx::rpc(t,
                   [](upcxx::view<std::uint64_t> v) {
                     long s = 0;
                     for (auto x : v) s += static_cast<long>(x);
                     total.fetch_add(s);
                   },
                   upcxx::make_view(payload.data(),
                                    payload.data() + payload.size()))
            .then([acks]() mutable { acks.fulfill_anonymous(1); });
      }
      upcxx::progress();
    }
    acks.finalize().wait();
    upcxx::barrier();
    EXPECT_EQ(total.load(), each * kPer * P * P);
    upcxx::barrier();
  });
}

// ---------------------------------------------- extend-add data conservation

TEST(EaddIntegration, BytesOnWireMatchStructure) {
  spmd(4, [] {
    minimpi::init();
    sparse::TreeParams p;
    p.levels = 4;
    p.n_vertices = 20000;
    p.min_sep = 4;
    p.max_front = 64;
    auto tree = sparse::FrontalTree::synthetic(p, upcxx::rank_n());
    sparse::EaddBench bench(tree, 8);
    bench.setup();
    bench.run(sparse::EaddVariant::kUpcxxRpc);
    const double mine = static_cast<double>(bench.bytes_sent());
    const double total =
        upcxx::reduce_all(mine, upcxx::op_fast_add{}).wait();
    // Expected: every F22 entry of every non-root front travels exactly
    // once as a 16-byte Entry.
    double expect = 0;
    for (const auto& n : tree.nodes) {
      if (n.parent < 0) continue;
      expect += 16.0 * n.border() * n.border();
    }
    EXPECT_DOUBLE_EQ(total, expect);
    // All three variants move identical volume.
    bench.reset_values();
    bench.run(sparse::EaddVariant::kMpiAlltoallv);
    const double a2a =
        upcxx::reduce_all(static_cast<double>(bench.bytes_sent()),
                          upcxx::op_fast_add{})
            .wait();
    EXPECT_DOUBLE_EQ(a2a, expect);
    minimpi::finalize();
  });
}

// ---------------------------------------------- process backend, full stack

TEST(ProcessBackend, DhtAndCollectives) {
  gex::Config cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  int fails = upcxx::run(cfg, [] {
    upcxx::dist_object<std::vector<int>> store(std::vector<int>{});
    upcxx::barrier();
    const int me = upcxx::rank_me();
    for (int i = 0; i < 20; ++i) {
      upcxx::rpc((me + i) % upcxx::rank_n(),
                 [](upcxx::dist_object<std::vector<int>>& s, int v) {
                   s->push_back(v);
                 },
                 store, me * 100 + i)
          .wait();
    }
    upcxx::barrier();
    const int held = static_cast<int>(store->size());
    const int total = upcxx::reduce_all(held, upcxx::op_fast_add{}).wait();
    if (total != 4 * 20) throw std::runtime_error("lost inserts");
    auto all = upcxx::allgather(held).wait();
    int sum = 0;
    for (int h : all) sum += h;
    if (sum != total) throw std::runtime_error("allgather mismatch");
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
