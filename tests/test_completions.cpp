// Completion-system combinations and view lifetime semantics: the corners
// of §II's completion taxonomy that the RMA/RPC suites don't isolate.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

TEST(Completions, PromisePlusRemoteRpcCombined) {
  static std::atomic<int> remote_hits{0};
  remote_hits = 0;
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    *mine.local() = 0;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    if (upcxx::rank_me() == 0) {
      upcxx::promise<> done;
      // operator| combination: promise completion on the initiator AND an
      // RPC at the target, from a single rput.
      upcxx::rput(55, peer,
                  upcxx::operation_cx::as_promise(done) |
                      upcxx::remote_cx::as_rpc(
                          [](upcxx::global_ptr<int> p) {
                            EXPECT_EQ(*p.local(), 55);
                            remote_hits.fetch_add(1);
                          },
                          peer));
      done.finalize().wait();
      while (remote_hits.load() == 0) upcxx::progress();
    } else {
      while (remote_hits.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
    EXPECT_EQ(remote_hits.load(), 1);
    upcxx::deallocate(mine);
  });
}

TEST(Completions, LpcOrderingFifo) {
  spmd(1, [] {
    auto g = upcxx::allocate<int>(4);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
      upcxx::rput(i, g + i, upcxx::operation_cx::as_lpc([&order, i] {
        order.push_back(i);
      }));
    while (order.size() < 4) upcxx::progress();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i], i);
    upcxx::deallocate(g);
  });
}

TEST(Completions, OnePromiseManyMixedOps) {
  spmd(2, [] {
    auto mine = upcxx::allocate<double>(32);
    upcxx::dist_object<upcxx::global_ptr<double>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::promise<> p;
    double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    // Mix scalar puts, bulk puts and gets on one promise.
    upcxx::rput(1.5, peer, upcxx::operation_cx::as_promise(p));
    upcxx::rput(src, peer + 8, 8, upcxx::operation_cx::as_promise(p));
    double sink[8];
    upcxx::rget(peer + 8, sink, 8, upcxx::operation_cx::as_promise(p));
    p.finalize().wait();
    upcxx::barrier();
    EXPECT_DOUBLE_EQ(*mine.local(), 1.5);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Completions, SourceFutureAloneReturnsReady) {
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    // Requesting only source completion: the buffer was copied at
    // injection, so the returned future is ready immediately.
    auto f = upcxx::rput(3, peer, upcxx::source_cx::as_future());
    EXPECT_TRUE(f.is_ready());
    upcxx::barrier();
    EXPECT_EQ(*mine.local(), 3);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Completions, RemoteRpcCarriesSerializedArgs) {
  static std::atomic<long> seen{0};
  seen = 0;
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(4);
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    if (upcxx::rank_me() == 0) {
      std::vector<long> meta{10, 20, 30};
      upcxx::rput(9, peer,
                  upcxx::operation_cx::as_future() |
                      upcxx::remote_cx::as_rpc(
                          [](const std::vector<long>& m) {
                            long s = 0;
                            for (long v : m) s += v;
                            seen.store(s);
                          },
                          meta))
          .wait();
    }
    while (seen.load() == 0) upcxx::progress();
    EXPECT_EQ(seen.load(), 60);
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

// ------------------------------------------------------ view lifetime

TEST(ViewLifetime, SenderBufferReusableAfterInjection) {
  // rpc serializes at injection, so the caller may overwrite the container
  // immediately afterwards (source completion semantics of RPC args).
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<int> buf{1, 2, 3, 4};
      auto f = upcxx::rpc(1, [](upcxx::view<int> v) {
        int s = 0;
        for (int x : v) s += x;
        return s;
      }, upcxx::make_view(buf.data(), buf.data() + buf.size()));
      std::fill(buf.begin(), buf.end(), -999);  // overwrite immediately
      EXPECT_EQ(f.wait(), 10);
    }
    upcxx::barrier();
  });
}

TEST(ViewLifetime, ViewValidForFutureReturningRpcBody) {
  // The view must remain valid while the RPC body runs, including when the
  // body returns a future computed from the view's contents synchronously.
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<double> data(1000, 0.5);
      auto f = upcxx::rpc(1, [](upcxx::view<double> v) {
        double s = 0;
        for (double d : v) s += d;
        return upcxx::make_future(s);
      }, upcxx::make_view(data.data(), data.data() + data.size()));
      EXPECT_DOUBLE_EQ(f.wait(), 500.0);
    }
    upcxx::barrier();
  });
}

TEST(ViewLifetime, NestedContainersInsideView) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<std::string> items{"aa", "bbb", "c"};
      auto f = upcxx::rpc(1, [](upcxx::view<std::string> v) {
        std::size_t total = 0;
        for (const auto& s : v) total += s.size();
        return total;
      }, upcxx::make_view(items));
      EXPECT_EQ(f.wait(), 6u);
    }
    upcxx::barrier();
  });
}

// ------------------------------------------------- RPC edge conditions

TEST(RpcEdge, ZeroArgumentAndEmptyPayload) {
  spmd(2, [] {
    auto f = upcxx::rpc((upcxx::rank_me() + 1) % 2, [] { return 0; });
    EXPECT_EQ(f.wait(), 0);
    upcxx::barrier();
  });
}

TEST(RpcEdge, LargeCaptureStillTriviallyCopyable) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      struct Big {
        double vals[32];
      } big{};
      big.vals[7] = 4.25;
      auto f = upcxx::rpc(1, [big] { return big.vals[7]; });
      EXPECT_DOUBLE_EQ(f.wait(), 4.25);
    }
    upcxx::barrier();
  });
}

TEST(RpcEdge, ReplyOrderingNotRequiredButAllArrive) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      constexpr int kN = 64;
      std::vector<upcxx::future<int>> fs;
      for (int i = 0; i < kN; ++i)
        fs.push_back(upcxx::rpc(1, [](int v) { return v * v; }, i));
      auto all = upcxx::when_all_range(fs).wait();
      for (int i = 0; i < kN; ++i) EXPECT_EQ(all[i], i * i);
    }
    upcxx::barrier();
  });
}

TEST(RpcEdge, DeeplyNestedRpcChain) {
  // rank 0 -> 1 -> 0 -> 1 chained through future-returning bodies.
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [](int x) {
        return upcxx::rpc(0, [](int y) {
          return upcxx::rpc(1, [](int z) { return z + 100; }, y + 10);
        }, x + 1);
      }, 0);
      EXPECT_EQ(f.wait(), 111);
    } else {
      // Stay attentive while the chain bounces.
      upcxx::barrier();
      return;
    }
    upcxx::barrier();
  });
}

}  // namespace

// ----------------------------------------------- rpc with completions

TEST(RpcCompletions, AsPromiseCountsRpcFlood) {
  // The SIV-B flood pattern applied to RPCs: many in flight, one promise.
  static std::atomic<int> executed{0};
  executed = 0;
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::promise<> pr;
      constexpr int kN = 64;
      for (int i = 0; i < kN; ++i)
        upcxx::rpc(1, upcxx::operation_cx::as_promise(pr),
                   [] { executed.fetch_add(1); });
      pr.finalize().wait();
      EXPECT_EQ(executed.load(), kN);
      upcxx::barrier();
    } else {
      while (executed.load() < 64) upcxx::progress();
      upcxx::barrier();
    }
    upcxx::barrier();
  });
}

TEST(RpcCompletions, AsLpcRunsOnInitiator) {
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      bool lpc_ran = false;
      upcxx::rpc(1, upcxx::operation_cx::as_lpc([&lpc_ran] { lpc_ran = true; }),
                 [] { return upcxx::rank_me(); });
      while (!lpc_ran) upcxx::progress();
      EXPECT_TRUE(lpc_ran);
    }
    upcxx::barrier();
  });
}

TEST(RpcCompletions, FutureAndPromiseCombined) {
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::promise<> pr;
      auto f = upcxx::rpc(
          1,
          upcxx::operation_cx::as_future() |
              upcxx::operation_cx::as_promise(pr),
          [](int x) { return x * 3; }, 14);
      EXPECT_EQ(f.wait(), 42);
      pr.finalize().wait();  // promise was also fulfilled
    }
    upcxx::barrier();
  });
}

TEST(RpcCompletions, PromiseWithValueReturningFn) {
  // Result values are discarded when only a promise is requested; the
  // promise still counts completion.
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::promise<> pr;
      upcxx::rpc(1, upcxx::operation_cx::as_promise(pr),
                 [] { return std::string("discarded"); });
      pr.finalize().wait();
    }
    upcxx::barrier();
  });
}
