// Plain-main SPMD smoke run under `upcxx-run -n <ranks>`: each process is
// one isolated rank (no shared memory anywhere), so every byte of this
// traffic — allgather, neighbor RMA, RPC, barriers — rides the socket
// transport and the bootstrap control plane. Exit status is the job
// verdict; upcxx-run propagates any rank's failure.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "gex/am.hpp"
#include "upcxx/upcxx.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("check failed: ") + what);
}

void body() {
  const int me = upcxx::rank_me(), P = upcxx::rank_n();
  require(std::strcmp(gex::am().transport().name(), "socket") == 0,
          "transport resolved to socket");
  require(!gex::am().transport().shared_memory(),
          "isolated ranks share no memory");
  constexpr std::size_t kN = 2048;  // 16 KB of longs: beyond eager_max
  auto mine = upcxx::new_array<long>(kN);
  for (std::size_t i = 0; i < kN; ++i) mine.local()[i] = -1;
  auto ptrs = upcxx::allgather(mine).wait();
  upcxx::barrier();
  const int nb = (me + 1) % P;
  std::vector<long> pat(kN);
  for (std::size_t i = 0; i < kN; ++i)
    pat[i] = me * 100000 + static_cast<long>(i);
  upcxx::rput(pat.data(), ptrs[nb], kN).wait();
  upcxx::barrier();
  const int left = (me + P - 1) % P;
  for (std::size_t i = 0; i < kN; ++i)
    require(mine.local()[i] == left * 100000 + static_cast<long>(i),
            "neighbor put landed");
  std::vector<long> back(kN, 0);
  upcxx::rget(ptrs[nb], back.data(), kN).wait();
  require(back == pat, "rget round trip");
  const int echoed =
      upcxx::rpc(nb, [](int x) { return x + 1; }, me).wait();
  require(echoed == me + 1, "rpc round trip");
  upcxx::barrier();
  upcxx::delete_array(mine, kN);
  upcxx::barrier();
  if (me == 0) std::printf("socket_smoke: %d ranks ok\n", P);
}

}  // namespace

int main() {
  // Ranks and transport come from the environment upcxx-run sets
  // (UPCXX_RANKS / UPCXX_SOCKET_RANK / UPCXX_SOCKET_BOOTSTRAP).
  return upcxx::run_env(body) == 0 ? 0 : 1;
}
