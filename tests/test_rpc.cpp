// RPC tests: argument kinds, return kinds (void/value/future), rpc_ff,
// views, dist_object translation — the paper's §II RPC semantics and the
// §IV-C hash-table idioms.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

TEST(Rpc, VoidReturnYieldsEmptyFuture) {
  static std::atomic<int> hits{0};
  hits = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [] { hits.fetch_add(1); });
      static_assert(std::is_same_v<decltype(f), upcxx::future<>>);
      f.wait();
      EXPECT_EQ(hits.load(), 1);
    } else {
      while (hits.load() == 0) upcxx::progress();
    }
  });
}

TEST(Rpc, ScalarArgumentsAndResult) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [](int a, double b) { return a + b; }, 2, 0.5);
      EXPECT_DOUBLE_EQ(f.wait(), 2.5);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, ExecutesOnTargetRank) {
  spmd(4, [] {
    const int me = upcxx::rank_me();
    const int target = (me + 1) % upcxx::rank_n();
    auto f = upcxx::rpc(target, [] { return upcxx::rank_me(); });
    EXPECT_EQ(f.wait(), target);
    upcxx::barrier();
  });
}

TEST(Rpc, StringRoundTrip) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::string key = "Germany", val = "Bonn";
      auto f = upcxx::rpc(1,
                          [](const std::string& k, const std::string& v) {
                            return k + ":" + v;
                          },
                          key, val);
      EXPECT_EQ(f.wait(), "Germany:Bonn");
    }
    upcxx::barrier();
  });
}

TEST(Rpc, VectorArgument) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<int> v{1, 2, 3, 4};
      auto f = upcxx::rpc(1, [](const std::vector<int>& x) {
        int s = 0;
        for (int e : x) s += e;
        return s;
      }, v);
      EXPECT_EQ(f.wait(), 10);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, FutureReturningCallbackIsUnwrapped) {
  // The paper's RMA-enabled DHT insert chains an RPC whose lambda itself
  // produces a future; the initiator sees a single flat future.
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [](int x) {
        // Remote side produces an already-ready future.
        return upcxx::make_future(x * 2);
      }, 21);
      static_assert(std::is_same_v<decltype(f), upcxx::future<int>>);
      EXPECT_EQ(f.wait(), 42);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, FutureReturningCallbackDeferred) {
  // Remote future completes later (via a progress-driven fulfillment).
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [] {
        upcxx::promise<int> pr;
        upcxx::detail::push_compq([pr]() mutable { pr.fulfill_result(77); });
        return pr.get_future();
      });
      EXPECT_EQ(f.wait(), 77);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, ChainedThenAfterRpc) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1, [] { return 10; })
                   .then([](int v) { return v + 1; })
                   .then([](int v) { return upcxx::rpc(1, [](int x) {
                                       return x * 2;
                                     }, v); });
      EXPECT_EQ(f.wait(), 22);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, FireAndForget) {
  static std::atomic<long> sum{0};
  sum = 0;
  spmd(4, [] {
    constexpr int kEach = 50;
    for (int i = 1; i <= kEach; ++i)
      upcxx::rpc_ff((upcxx::rank_me() + 1) % upcxx::rank_n(),
                    [](long v) { sum.fetch_add(v); }, (long)i);
    const long expect = static_cast<long>(upcxx::rank_n()) * kEach *
                        (kEach + 1) / 2;
    while (sum.load() < expect) upcxx::progress();
    EXPECT_EQ(sum.load(), expect);
    upcxx::barrier();
  });
}

TEST(Rpc, ViewArgumentZeroCopy) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<double> payload(1000);
      for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<double>(i) * 0.25;
      auto f = upcxx::rpc(1, [](upcxx::view<double> v) {
        double s = 0;
        for (double d : v) s += d;
        return s;
      }, upcxx::make_view(payload));
      double expect = 0;
      for (double d : payload) expect += d;
      EXPECT_DOUBLE_EQ(f.wait(), expect);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, LargeViewGoesRendezvous) {
  spmd(2, [] {
    const std::size_t big =
        testutil::test_cfg(2).eager_max / sizeof(std::uint64_t) * 16;
    if (upcxx::rank_me() == 0) {
      std::vector<std::uint64_t> payload(big);
      for (std::size_t i = 0; i < big; ++i) payload[i] = i * 7;
      auto f = upcxx::rpc(1, [](upcxx::view<std::uint64_t> v) {
        std::uint64_t bad = 0;
        std::size_t i = 0;
        for (auto x : v) bad += (x != i++ * 7);
        return bad;
      }, upcxx::make_view(payload));
      EXPECT_EQ(f.wait(), 0u);
      // Rendezvous descriptors require a peer that can read this rank's
      // heap; on a non-shared-memory transport the same view must have
      // shipped inline instead.
      if (gex::am().transport().shared_memory())
        EXPECT_GT(gex::am().stats().sent_rendezvous, 0u);
      else
        EXPECT_EQ(gex::am().stats().sent_rendezvous, 0u);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, DistObjectArgumentTranslation) {
  // The RPC receives the *target's* representative, not a copy of the
  // sender's (paper §II).
  spmd(4, [] {
    upcxx::dist_object<int> obj(100 + upcxx::rank_me());
    const int target = (upcxx::rank_me() + 1) % upcxx::rank_n();
    auto f = upcxx::rpc(target, [](upcxx::dist_object<int>& o) { return *o; },
                        obj);
    EXPECT_EQ(f.wait(), 100 + target);
    upcxx::barrier();
  });
}

TEST(Rpc, DistObjectFetch) {
  spmd(4, [] {
    upcxx::dist_object<std::string> obj("rank" +
                                        std::to_string(upcxx::rank_me()));
    for (int r = 0; r < upcxx::rank_n(); ++r) {
      EXPECT_EQ(obj.fetch(r).wait(), "rank" + std::to_string(r));
    }
    upcxx::barrier();
  });
}

TEST(Rpc, DistObjectMutationThroughRpc) {
  // The paper's graph-vertex update idiom: mutate remote state in place.
  spmd(2, [] {
    upcxx::dist_object<std::vector<std::string>> nbs(
        std::vector<std::string>{});
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      upcxx::rpc(1,
                 [](upcxx::dist_object<std::vector<std::string>>& o,
                    const std::string& nb) { o->push_back(nb); },
                 nbs, std::string("v42"))
          .wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      ASSERT_EQ(nbs->size(), 1u);
      EXPECT_EQ((*nbs)[0], "v42");
    }
    upcxx::barrier();
  });
}

TEST(Rpc, ArrivesBeforeDistObjectConstructionIsRequeued) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      upcxx::dist_object<int> obj(1);
      // Fire immediately; rank 1 constructs its representative only after a
      // deliberate delay, so the RPC must requeue on rank 1.
      auto f = upcxx::rpc(1, [](upcxx::dist_object<int>& o) { return *o; },
                          obj);
      EXPECT_EQ(f.wait(), 2);
      upcxx::barrier();
    } else {
      // Let the request arrive and sit in compQ before construction.
      for (int i = 0; i < 100; ++i) upcxx::progress();
      upcxx::dist_object<int> obj(2);
      upcxx::barrier();
    }
  });
}

TEST(Rpc, ManyConcurrentRpcsAllRanks) {
  static std::atomic<long> counter{0};
  counter = 0;
  spmd(8, [] {
    constexpr int kPer = 100;
    upcxx::promise<> done;
    for (int i = 0; i < kPer; ++i) {
      for (int t = 0; t < upcxx::rank_n(); ++t) {
        upcxx::rpc(t, [] { counter.fetch_add(1); })
            .then([done]() mutable { done.fulfill_anonymous(1); });
        done.require_anonymous(1);
      }
      upcxx::progress();
    }
    done.finalize().wait();
    upcxx::barrier();
    EXPECT_EQ(counter.load(), 8L * 8 * kPer);
    upcxx::barrier();
  });
}

TEST(Rpc, TupleAndPairArguments) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto f = upcxx::rpc(1,
                          [](const std::pair<int, std::string>& p,
                             const std::tuple<int, int>& t) {
                            return p.first + std::get<0>(t) + std::get<1>(t);
                          },
                          std::make_pair(1, std::string("x")),
                          std::make_tuple(2, 3));
      EXPECT_EQ(f.wait(), 6);
    }
    upcxx::barrier();
  });
}

TEST(Rpc, GlobalPtrArgument) {
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(1);
    *mine.local() = 5 + upcxx::rank_me();
    if (upcxx::rank_me() == 0) {
      // Ship our pointer; remote reads through it (is_local on the arena).
      auto f = upcxx::rpc(1, [](upcxx::global_ptr<int> p) {
        return *p.local() * 10;
      }, mine);
      EXPECT_EQ(f.wait(), 50);
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(Rpc, SelfRpc) {
  spmd(2, [] {
    auto f = upcxx::rpc(upcxx::rank_me(), [] { return upcxx::rank_me(); });
    EXPECT_EQ(f.wait(), upcxx::rank_me());
    upcxx::barrier();
  });
}

}  // namespace
