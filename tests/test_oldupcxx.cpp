// v0.1 compatibility layer tests: event lifetime/counting, async launch,
// blocking remote allocation, async_copy.
#include <gtest/gtest.h>

#include <atomic>

#include "oldupcxx/oldupcxx.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

TEST(OldUpcxx, EventCountsOperations) {
  spmd(1, [] {
    oldupcxx::event e;
    EXPECT_TRUE(e.isdone());
    e.incref();
    e.incref();
    EXPECT_FALSE(e.isdone());
    e.decref();
    EXPECT_FALSE(e.isdone());
    e.decref();
    EXPECT_TRUE(e.isdone());
    e.wait();  // trivially returns
  });
}

TEST(OldUpcxx, AsyncRunsOnTarget) {
  static std::atomic<int> where{-1};
  where = -1;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      oldupcxx::event e;
      oldupcxx::async(1, &e)([] { where.store(upcxx::rank_me()); });
      e.wait();
      EXPECT_EQ(where.load(), 1);
    } else {
      while (where.load() < 0) upcxx::progress();
    }
    upcxx::barrier();
  });
}

TEST(OldUpcxx, AsyncWithArguments) {
  static std::atomic<long> sum{0};
  sum = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      oldupcxx::event e;
      for (long i = 1; i <= 10; ++i)
        oldupcxx::async(1, &e)([](long v) { sum.fetch_add(v); }, i);
      e.wait();
      EXPECT_EQ(sum.load(), 55);
    } else {
      while (sum.load() < 55) upcxx::progress();
    }
    upcxx::barrier();
  });
}

TEST(OldUpcxx, ImplicitSystemEventAndAsyncWait) {
  static std::atomic<int> hits{0};
  hits = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      for (int i = 0; i < 5; ++i)
        oldupcxx::async(1)([] { hits.fetch_add(1); });
      oldupcxx::async_wait();
      EXPECT_EQ(hits.load(), 5);
    } else {
      while (hits.load() < 5) upcxx::progress();
    }
    upcxx::barrier();
  });
}

TEST(OldUpcxx, BlockingRemoteAllocate) {
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      auto g = oldupcxx::allocate<double>(1, 16);
      ASSERT_FALSE(g.is_null());
      EXPECT_EQ(g.where(), 1);
      oldupcxx::deallocate(g);
    }
    upcxx::barrier();
  });
}

TEST(OldUpcxx, AsyncCopyMovesData) {
  spmd(2, [] {
    auto mine = upcxx::allocate<int>(8);
    for (int i = 0; i < 8; ++i) mine.local()[i] = upcxx::rank_me() * 10 + i;
    upcxx::dist_object<upcxx::global_ptr<int>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      auto tmp = upcxx::allocate<int>(8);
      oldupcxx::event e;
      oldupcxx::async_copy(peer, tmp, 8, &e);
      e.wait();
      for (int i = 0; i < 8; ++i) EXPECT_EQ(tmp.local()[i], 10 + i);
      upcxx::deallocate(tmp);
    }
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
}

TEST(OldUpcxx, BlockingCopy) {
  spmd(2, [] {
    auto mine = upcxx::allocate<char>(4);
    std::memcpy(mine.local(), upcxx::rank_me() == 0 ? "aaaa" : "bbbb", 4);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    upcxx::barrier();
    auto tmp = upcxx::allocate<char>(4);
    oldupcxx::copy(peer, tmp, 4);
    EXPECT_EQ(tmp.local()[0], upcxx::rank_me() == 0 ? 'b' : 'a');
    upcxx::barrier();
    upcxx::deallocate(tmp);
    upcxx::deallocate(mine);
  });
}

TEST(OldUpcxx, EventReusedAcrossBatches) {
  static std::atomic<int> n{0};
  n = 0;
  spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      oldupcxx::event e;
      oldupcxx::async(1, &e)([] { n.fetch_add(1); });
      e.wait();
      oldupcxx::async(1, &e)([] { n.fetch_add(1); });
      e.wait();
      EXPECT_EQ(n.load(), 2);
    } else {
      while (n.load() < 2) upcxx::progress();
    }
    upcxx::barrier();
  });
}

}  // namespace
