// Socket-transport coverage (gex/socket.hpp):
//   * Transport-contract conformance shared by all three transports
//     (mmap / shmfile / socket): reserve/commit/consume FIFO per pair,
//     8-aligned payloads even after odd-sized records, self-sends,
//     rx_empty / tx_quiesced at quiescence.
//   * UPCXX_SOCKET_* config knobs parse, normalize clamps them, and
//     rma-wire auto resolution pins `am` under the socket transport.
//   * SPMD smoke at 4 and 8 ranks over loopback TCP: rput/rget/rpc,
//     allgather, team split (the keyed exchange — no scratch slots), and
//     the staged bounce/reply counters stay zero because those paths
//     assume shared memory.
//   * Deterministic fault injection: a short-read/short-write soak
//     (seed printed for replay) shadow-verified against local state, and
//     a peer that _exit()s mid-stream in isolated mode, which must raise
//     upcxx::rank_failed from future::wait on the survivor — not hang.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "arch/rng.hpp"
#include "gex/am.hpp"
#include "gex/arena.hpp"
#include "gex/rma_am.hpp"
#include "gex/socket.hpp"
#include "gex/transport.hpp"
#include "spmd_helpers.hpp"

namespace {

// Throwing check for use inside forked rank bodies.
void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("check failed: ") + what);
}

// Save/restore a set of environment variables around a test that mutates
// them (the suite may itself run under a CI matrix that sets them).
class EnvGuard {
 public:
  explicit EnvGuard(std::vector<const char*> names)
      : names_(std::move(names)) {
    for (const char* n : names_) {
      const char* v = ::getenv(n);
      saved_.emplace_back(v != nullptr, v ? v : "");
      ::unsetenv(n);
    }
  }
  ~EnvGuard() {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (saved_[i].first)
        ::setenv(names_[i], saved_[i].second.c_str(), 1);
      else
        ::unsetenv(names_[i]);
    }
  }

 private:
  std::vector<const char*> names_;
  std::vector<std::pair<bool, std::string>> saved_;
};

// --------------------------------------------- transport-contract fixture

struct Received {
  std::vector<std::vector<std::byte>> recs;
  std::size_t misaligned = 0;
};

void record_visitor(void* payload, std::size_t bytes, void* cx) {
  auto* got = static_cast<Received*>(cx);
  if (reinterpret_cast<std::uintptr_t>(payload) % 8 != 0) ++got->misaligned;
  auto* p = static_cast<std::byte*>(payload);
  got->recs.emplace_back(p, p + bytes);
}

std::vector<std::byte> pattern_record(std::size_t idx, std::size_t bytes) {
  std::vector<std::byte> r(bytes);
  for (std::size_t j = 0; j < bytes; ++j)
    r[j] = static_cast<std::byte>(idx * 31 + j);
  return r;
}

class TransportContract
    : public ::testing::TestWithParam<gex::AmTransport> {};

// One sender, one receiver, both driven from this thread: a burst of
// odd-sized records must arrive FIFO, bit-exact, and 8-aligned (the wire
// header carries a u64; a misaligned record is UB the sanitizer jobs
// would catch only by luck).
TEST_P(TransportContract, FifoOrderAlignmentAndSelfSend) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = GetParam();
  gex::Arena* a = gex::Arena::create(cfg);
  {
    std::unique_ptr<gex::Transport> t0(gex::make_transport(a, 0));
    std::unique_ptr<gex::Transport> t1(gex::make_transport(a, 1));
    ASSERT_GT(t0->max_record_payload(), std::size_t{4096});

    // Deliberately odd sizes: each record must not disturb the alignment
    // of the next.
    const std::size_t sizes[] = {1, 3, 7, 13, 64, 129, 1000, 4093};
    const std::size_t kRecs = std::size(sizes);
    for (std::size_t i = 0; i < kRecs; ++i) {
      gex::Transport::Ticket t = t0->try_reserve(1, sizes[i]);
      ASSERT_NE(t.payload, nullptr) << "record " << i;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.payload) % 8, 0u);
      const auto rec = pattern_record(i, sizes[i]);
      std::memcpy(t.payload, rec.data(), rec.size());
      t0->commit(t);
    }

    Received got;
    while (got.recs.size() < kRecs) {
      // Drive the sender too (connect completion, partial-write
      // continuation): in SPMD use every rank pumps its own transport,
      // here one thread owns both ends.
      t0->tx_quiesced();
      t1->try_consume(record_visitor, &got);
    }
    EXPECT_EQ(got.misaligned, 0u);
    for (std::size_t i = 0; i < kRecs; ++i) {
      ASSERT_EQ(got.recs[i].size(), sizes[i]) << "record " << i;
      EXPECT_EQ(got.recs[i], pattern_record(i, sizes[i])) << "record " << i;
    }

    // Self-send: target == me loops back through the same consume path.
    gex::Transport::Ticket self = t1->try_reserve(1, 24);
    ASSERT_NE(self.payload, nullptr);
    const auto selfrec = pattern_record(99, 24);
    std::memcpy(self.payload, selfrec.data(), selfrec.size());
    t1->commit(self);
    Received self_got;
    while (self_got.recs.empty()) t1->try_consume(record_visitor, &self_got);
    EXPECT_EQ(self_got.recs[0], selfrec);

    // Quiescent: everything sent reached the wire, nothing left to read.
    while (!t0->tx_quiesced()) {
    }
    EXPECT_TRUE(t1->rx_empty());
    EXPECT_FALSE(t1->try_consume(record_visitor, &got));
  }
  gex::Arena::destroy(a);
}

const char* transport_param_name(
    const ::testing::TestParamInfo<gex::AmTransport>& info) {
  switch (info.param) {
    case gex::AmTransport::kMmap:
      return "mmap";
    case gex::AmTransport::kShmFile:
      return "shmfile";
    case gex::AmTransport::kSocket:
      return "socket";
    default:
      return "auto";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportContract,
                         ::testing::Values(gex::AmTransport::kMmap,
                                           gex::AmTransport::kShmFile,
                                           gex::AmTransport::kSocket),
                         transport_param_name);

// ------------------------------------------------------- config + resolve

TEST(SocketConfig, EnvKnobsParseNormalizeAndResolve) {
  EnvGuard guard({"UPCXX_AM_TRANSPORT", "UPCXX_RMA_WIRE",
                  "UPCXX_SOCKET_MAX_RECORD_KB", "UPCXX_SOCKET_ARENA_BASE",
                  "UPCXX_SOCKET_ISOLATED", "UPCXX_SOCKET_FAULT_SEED",
                  "UPCXX_SOCKET_FAULT_SHORT_WRITE_PCT",
                  "UPCXX_SOCKET_FAULT_SHORT_READ_PCT",
                  "UPCXX_SOCKET_FAULT_DIE_RANK",
                  "UPCXX_SOCKET_FAULT_DIE_AT"});

  // Defaults.
  gex::Config d;
  EXPECT_EQ(d.socket_max_record, std::size_t{8} << 20);
  EXPECT_EQ(d.socket_fault_die_rank, -1);
  EXPECT_FALSE(d.socket_isolated);

  ::setenv("UPCXX_AM_TRANSPORT", "socket", 1);
  ::setenv("UPCXX_SOCKET_MAX_RECORD_KB", "1024", 1);
  ::setenv("UPCXX_SOCKET_ARENA_BASE", "0x300000000000", 1);
  ::setenv("UPCXX_SOCKET_ISOLATED", "1", 1);
  ::setenv("UPCXX_SOCKET_FAULT_SEED", "77", 1);
  ::setenv("UPCXX_SOCKET_FAULT_SHORT_WRITE_PCT", "30", 1);
  ::setenv("UPCXX_SOCKET_FAULT_SHORT_READ_PCT", "25", 1);
  ::setenv("UPCXX_SOCKET_FAULT_DIE_RANK", "2", 1);
  ::setenv("UPCXX_SOCKET_FAULT_DIE_AT", "40", 1);
  gex::Config c = gex::Config::from_env();
  EXPECT_EQ(c.am_transport, gex::AmTransport::kSocket);
  EXPECT_EQ(c.socket_max_record, std::size_t{1} << 20);
  EXPECT_EQ(c.socket_arena_base, 0x300000000000ull);
  EXPECT_TRUE(c.socket_isolated);
  EXPECT_EQ(c.socket_fault_seed, 77u);
  EXPECT_EQ(c.socket_fault_short_write_pct, 30u);
  EXPECT_EQ(c.socket_fault_short_read_pct, 25u);
  EXPECT_EQ(c.socket_fault_die_rank, 2);
  EXPECT_EQ(c.socket_fault_die_at, 40u);

  // Auto rma-wire resolution pins `am` under socket: peers must be
  // treated as not cross-mapped.
  gex::Config s;
  s.am_transport = gex::AmTransport::kSocket;
  EXPECT_EQ(gex::resolve_rma_wire(s), gex::RmaWire::kAm);
  // ...while an explicit wire still wins (legal only with a shared arena).
  s.rma_wire = gex::RmaWire::kDirect;
  EXPECT_EQ(gex::resolve_rma_wire(s), gex::RmaWire::kDirect);

  // normalize() clamps: a record must hold a maximal eager payload, fault
  // probabilities are percentages, the fixed base is page-aligned.
  gex::Config n;
  n.socket_max_record = 1;
  n.socket_fault_short_write_pct = 250;
  n.socket_arena_base = 0x300000000123ull;
  n.normalize();
  EXPECT_EQ(n.socket_max_record, std::size_t{64} << 10);
  EXPECT_EQ(n.socket_fault_short_write_pct, 100u);
  EXPECT_EQ(n.socket_arena_base & 4095u, 0u);
}

// ------------------------------------------------------------- SPMD smoke

// Full message-plane traffic over loopback TCP, thread backend (shared
// arena, but every record rides the stream): RMA beyond eager_max, RPC,
// allgather, and a team split through the keyed exchange. The staged
// bounce/reply counters must stay zero — those paths hand a peer a
// pointer into "shared" memory, which the socket transport forbids.
void socket_spmd_body() {
  const int me = upcxx::rank_me(), P = upcxx::rank_n();
  require(std::strcmp(gex::am().transport().name(), "socket") == 0,
          "transport resolved to socket");
  require(!gex::am().transport().shared_memory(),
          "socket transport reports no shared memory");
  constexpr std::size_t kN = 4096;  // 32 KB of longs: far beyond eager_max
  auto mine = upcxx::new_array<long>(kN);
  std::memset(mine.local(), 0, kN * sizeof(long));
  auto ptrs = upcxx::allgather(mine).wait();
  upcxx::barrier();
  const int nb = (me + 1) % P;
  std::vector<long> pat(kN);
  for (std::size_t i = 0; i < kN; ++i)
    pat[i] = me * 100000 + static_cast<long>(i);
  upcxx::rput(pat.data(), ptrs[nb], kN).wait();
  upcxx::barrier();
  const int left = (me + P - 1) % P;
  for (std::size_t i = 0; i < kN; ++i)
    require(mine.local()[i] == left * 100000 + static_cast<long>(i),
            "large put landed over the socket");
  std::vector<long> back(kN, 0);
  upcxx::rget(ptrs[nb], back.data(), kN).wait();
  require(back == pat, "rget round trip over the socket");
  const int echoed =
      upcxx::rpc(nb, [](int x) { return x + 1; }, me).wait();
  require(echoed == me + 1, "rpc over the socket");
  // Team split rides AmEngine::exchange — the scratch-slot allgather it
  // replaced assumed a cross-mapped arena.
  upcxx::team half = upcxx::world().split(me % 2, me);
  require(half.rank_n() == P / 2, "split team size");
  require(gex::rma_am().stats().puts_staged == 0,
          "no staged puts on a non-shared-memory transport");
  require(gex::rma_am().stats().replies_staged == 0,
          "no staged replies on a non-shared-memory transport");
  upcxx::barrier();
  upcxx::delete_array(mine, kN);
  upcxx::barrier();
}

TEST(SocketTransport, SpmdSmoke4Ranks) {
  gex::Config cfg = testutil::test_cfg(4);
  cfg.am_transport = gex::AmTransport::kSocket;
  EXPECT_EQ(upcxx::run(cfg, socket_spmd_body), 0);
}

TEST(SocketTransport, SpmdSmoke8Ranks) {
  gex::Config cfg = testutil::test_cfg(8);
  cfg.am_transport = gex::AmTransport::kSocket;
  EXPECT_EQ(upcxx::run(cfg, socket_spmd_body), 0);
}

// -------------------------------------------------------- fault injection

// Short writes force partial-write continuation on every queue; short
// reads force header/body reassembly from 1..64-byte gulps. The schedule
// is a pure function of the seed, which is printed so a failure replays
// bit-exactly (export UPCXX_SOCKET_FAULT_SEED and re-run).
TEST(SocketFault, ShortReadShortWriteSoakIsLossless) {
  std::uint64_t seed = 0;
  if (const char* v = ::getenv("UPCXX_SOCKET_FAULT_SEED"); v && *v)
    seed = std::strtoull(v, nullptr, 10);
  if (seed == 0)
    seed = static_cast<std::uint64_t>(::time(nullptr)) * 2654435761u + 1;
  std::printf("[ socket-fault ] seed=%llu (replay with "
              "UPCXX_SOCKET_FAULT_SEED=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  gex::Config cfg = testutil::test_cfg(2);
  cfg.am_transport = gex::AmTransport::kSocket;
  cfg.socket_fault_seed = seed;
  cfg.socket_fault_short_write_pct = 30;
  cfg.socket_fault_short_read_pct = 30;
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kWords = 8 << 10;
    auto mine = upcxx::new_array<long>(kWords);
    std::memset(mine.local(), 0, kWords * sizeof(long));
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    if (me == 0) {
      arch::Xoshiro256 rng(42);
      std::vector<long> shadow(kWords, 0), buf(kWords), back(kWords);
      for (int iter = 0; iter < 40; ++iter) {
        const std::size_t n = 1 + rng.next_below(kWords - 1);
        const std::size_t at = rng.next_below(kWords - n);
        for (std::size_t i = 0; i < n; ++i)
          buf[i] = static_cast<long>(rng.next());
        upcxx::rput(buf.data(), ptrs[1] + at, n).wait();
        std::copy(buf.begin(), buf.begin() + static_cast<long>(n),
                  shadow.begin() + static_cast<long>(at));
        if (iter % 5 == 0) {
          upcxx::rget(ptrs[1], back.data(), kWords).wait();
          require(back == shadow, "shadow diverged under fault injection");
        }
      }
      upcxx::rget(ptrs[1], back.data(), kWords).wait();
      require(back == shadow, "final shadow check under fault injection");
    }
    upcxx::barrier();
    upcxx::delete_array(mine, kWords);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0) << "replay with UPCXX_SOCKET_FAULT_SEED=" << seed;
}

// A peer that dies mid-stream (isolated mode: ranks are processes sharing
// nothing) must surface as upcxx::rank_failed from future::wait on the
// survivor — within the test timeout, never a hang — and the launcher
// must report the job failed. The dying rank leaves a torn frame on the
// wire, so this also proves a half-read frame cannot wedge the decoder.
// Forked ranks cannot report through gtest, so the survivor leaves a
// marker file that the parent asserts on.
TEST(SocketFault, KilledPeerRaisesRankFailed) {
  const std::string marker =
      "/tmp/upcxx-sockdeath-" + std::to_string(::getpid());
  ::unlink(marker.c_str());
  gex::Config cfg = testutil::test_cfg(2);
  cfg.backend = gex::Backend::kProcess;
  cfg.am_transport = gex::AmTransport::kSocket;
  cfg.socket_isolated = true;
  cfg.socket_fault_die_rank = 1;
  cfg.socket_fault_die_at = 25;  // dies while acking rank 0's puts
  const int fails = upcxx::run(cfg, [] {
    const int me = upcxx::rank_me();
    constexpr std::size_t kWords = 512;
    auto mine = upcxx::new_array<long>(kWords);
    auto ptrs = upcxx::allgather(mine).wait();
    upcxx::barrier();
    if (me == 0) {
      std::vector<long> buf(kWords, 7);
      bool saw_rank_failed = false;
      try {
        // Far more puts than the victim will live to ack.
        for (int i = 0; i < 100000; ++i)
          upcxx::rput(buf.data(), ptrs[1], kWords).wait();
      } catch (const upcxx::rank_failed&) {
        saw_rank_failed = true;
      }
      require(saw_rank_failed, "future::wait raised rank_failed");
      // PR-4 conservation contract, now over a real disconnect: requests
      // injected after the failure (no waits — the dead peer will never
      // ack) park against the closed window, and teardown's
      // fail_all_peers() must cancel them and reclaim credits + staged
      // buffers instead of waiting on acks. A leak here shows up as this
      // rank hanging in teardown (ctest timeout), not as a failed EXPECT.
      for (int i = 0; i < 8; ++i)
        upcxx::rput(buf.data(), ptrs[1], kWords,
                    upcxx::operation_cx::as_lpc([] {}));
      const std::string mark =
          "/tmp/upcxx-sockdeath-" + std::to_string(::getppid());
      if (FILE* f = std::fopen(mark.c_str(), "w")) {
        std::fputs("rank_failed\n", f);
        std::fclose(f);
      }
    } else {
      // The victim pumps until fault injection _exit()s it mid-frame. The
      // time bound keeps a broken injector from hanging the job.
      const std::time_t t0 = std::time(nullptr);
      while (std::time(nullptr) - t0 < 120) upcxx::progress();
      throw std::runtime_error("fault injection never fired");
    }
  });
  // Exactly the victim fails (died without a BYE); the survivor must tear
  // down cleanly — fail_all_peers() reclaiming its credits and staged
  // buffers — or it would be counted failed (or hang) too.
  EXPECT_EQ(fails, 1);
  // ...and the survivor must have taken the exception path, not a hang
  // (a hang would have tripped the ctest timeout instead).
  EXPECT_EQ(::access(marker.c_str(), F_OK), 0)
      << "rank 0 never caught upcxx::rank_failed";
  ::unlink(marker.c_str());
}

}  // namespace
