// Serialization round-trip tests, including parameterized property sweeps
// and the zero-copy view<T> aliasing guarantee.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "arch/rng.hpp"
#include "upcxx/serialization.hpp"

namespace {

using upcxx::detail::Reader;
using upcxx::detail::SizeArchive;
using upcxx::detail::WriteArchive;

// Round-trips a value through the wire format and returns the result.
template <typename T>
upcxx::deserialized_type_t<T> roundtrip(const T& v,
                                        std::vector<std::byte>* keep = nullptr) {
  SizeArchive sa;
  upcxx::serialization<T>::serialize(sa, v);
  static thread_local std::vector<std::byte> buf;
  std::vector<std::byte>& b = keep ? *keep : buf;
  b.assign(sa.size(), std::byte{0});
  WriteArchive wa(b.data());
  upcxx::serialization<T>::serialize(wa, v);
  EXPECT_EQ(wa.written(), sa.size()) << "measure/write disagreement";
  Reader r(b.data(), b.size());
  return upcxx::serialization<T>::deserialize(r);
}

TEST(Serialization, TrivialScalars) {
  EXPECT_EQ(roundtrip(42), 42);
  EXPECT_EQ(roundtrip(-1L), -1L);
  EXPECT_DOUBLE_EQ(roundtrip(3.25), 3.25);
  EXPECT_EQ(roundtrip('z'), 'z');
  EXPECT_EQ(roundtrip(true), true);
}

struct Pod {
  int a;
  double b;
  char c[5];
  bool operator==(const Pod& o) const {
    return a == o.a && b == o.b && std::memcmp(c, o.c, 5) == 0;
  }
};

TEST(Serialization, TrivialStruct) {
  Pod p{7, 2.5, {'h', 'e', 'l', 'l', 'o'}};
  EXPECT_EQ(roundtrip(p), p);
}

TEST(Serialization, Strings) {
  EXPECT_EQ(roundtrip(std::string()), "");
  EXPECT_EQ(roundtrip(std::string("abc")), "abc");
  std::string big(100000, 'x');
  big[12345] = 'y';
  EXPECT_EQ(roundtrip(big), big);
  std::string with_nuls("a\0b\0c", 5);
  EXPECT_EQ(roundtrip(with_nuls).size(), 5u);
}

TEST(Serialization, VectorOfTrivial) {
  std::vector<int> v{1, 2, 3, 4, 5};
  EXPECT_EQ(roundtrip(v), v);
  EXPECT_EQ(roundtrip(std::vector<int>{}), std::vector<int>{});
}

TEST(Serialization, VectorOfStrings) {
  std::vector<std::string> v{"", "a", "bb", std::string(5000, 'q')};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Serialization, NestedVectors) {
  std::vector<std::vector<double>> v{{1.0}, {}, {2.0, 3.0}};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Serialization, PairsAndTuples) {
  auto p = std::make_pair(std::string("k"), 3);
  EXPECT_EQ(roundtrip(p), p);
  auto t = std::make_tuple(1, std::string("two"), std::vector<int>{3});
  EXPECT_EQ(roundtrip(t), t);
}

TEST(Serialization, Optional) {
  std::optional<std::string> some("v"), none;
  EXPECT_EQ(roundtrip(some), some);
  EXPECT_EQ(roundtrip(none), none);
}

TEST(Serialization, Maps) {
  std::map<std::string, int> m{{"a", 1}, {"b", 2}};
  EXPECT_EQ(roundtrip(m), m);
  std::unordered_map<int, std::string> um{{1, "x"}, {2, "y"}};
  EXPECT_EQ(roundtrip(um), um);
}

TEST(Serialization, ArrayValueType) {
  // The paper's DHT benchmark uses std::array<uint64_t, N> values.
  std::array<std::uint64_t, 16> a{};
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i * i;
  EXPECT_EQ(roundtrip(a), a);
}

TEST(Serialization, ViewOfTrivialAliasesBuffer) {
  std::vector<double> data{1.5, 2.5, 3.5, 4.5};
  auto v = upcxx::make_view(data);
  std::vector<std::byte> wire;
  auto out = roundtrip(v, &wire);
  ASSERT_EQ(out.size(), data.size());
  // Zero-copy: the deserialized view must point INTO the wire buffer.
  auto* lo = wire.data();
  auto* hi = wire.data() + wire.size();
  auto* p = reinterpret_cast<const std::byte*>(out.begin());
  EXPECT_GE(p, lo);
  EXPECT_LT(p, hi);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], data[i]);
}

TEST(Serialization, ViewFromIteratorPair) {
  int raw[] = {10, 20, 30};
  auto v = upcxx::make_view(raw + 0, raw + 3);
  auto out = roundtrip(v);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[2], 30);
}

TEST(Serialization, ViewOfNonTrivialOwnsStorage) {
  std::vector<std::string> data{"alpha", "beta"};
  auto v = upcxx::make_view(data);
  auto out = roundtrip(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "alpha");
  EXPECT_EQ(out[1], "beta");
}

TEST(Serialization, ViewFromListIterators) {
  // Non-contiguous iterator source: elements serialized one by one.
  std::map<int, int> m{{1, 10}, {2, 20}};
  std::vector<std::pair<int, int>> flat(m.begin(), m.end());
  auto v = upcxx::make_view(flat);
  auto out = roundtrip(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].second, 20);
}

TEST(Serialization, EmptyView) {
  std::vector<int> none;
  auto out = roundtrip(upcxx::make_view(none));
  EXPECT_EQ(out.size(), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Serialization, MixedArgumentPack) {
  SizeArchive sa;
  upcxx::detail::serialize_args(sa, 1, std::string("two"),
                                std::vector<int>{3, 4});
  std::vector<std::byte> buf(sa.size());
  WriteArchive wa(buf.data());
  upcxx::detail::serialize_args(wa, 1, std::string("two"),
                                std::vector<int>{3, 4});
  Reader r(buf.data(), buf.size());
  auto tup =
      upcxx::detail::deserialize_tuple<int, std::string, std::vector<int>>(r);
  EXPECT_EQ(std::get<0>(tup), 1);
  EXPECT_EQ(std::get<1>(tup), "two");
  EXPECT_EQ(std::get<2>(tup).back(), 4);
}

// Property sweep: random vectors of random sizes round-trip exactly.
class SerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweep, RandomVectorRoundTrip) {
  arch::Xoshiro256 rng(GetParam());
  std::vector<std::uint64_t> v(rng.next_below(2000));
  for (auto& x : v) x = rng.next();
  EXPECT_EQ(roundtrip(v), v);
}

TEST_P(SerializationSweep, RandomStringMapRoundTrip) {
  arch::Xoshiro256 rng(GetParam() * 977);
  std::unordered_map<std::string, std::vector<int>> m;
  const int n = static_cast<int>(rng.next_below(50));
  for (int i = 0; i < n; ++i) {
    std::string key(1 + rng.next_below(30), 'a');
    for (auto& ch : key) ch = static_cast<char>('a' + rng.next_below(26));
    std::vector<int> val(rng.next_below(20));
    for (auto& x : val) x = static_cast<int>(rng.next());
    m[key] = val;
  }
  EXPECT_EQ(roundtrip(m), m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationSweep,
                         ::testing::Range(1, 17));

TEST(Serialization, AlignmentPreservedForMixedSizes) {
  // A 1-byte bool followed by a double must still produce aligned reads.
  auto t = std::make_tuple(true, 3.14159, 'c', std::uint64_t{1} << 60);
  auto out = roundtrip(t);
  EXPECT_EQ(out, t);
}

}  // namespace
