// Message-layer v2 tests: the handler registry (indices on the wire, never
// raw function pointers), multi-message frames, per-target aggregation,
// flush-on-barrier ordering, config validation, and the AM rendezvous
// adopt()/release path under the process (fork) backend.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/dht/dht.hpp"
#include "gex/agg.hpp"
#include "gex/am.hpp"
#include "gex/arena.hpp"
#include "gex/config.hpp"
#include "gex/handlers.hpp"
#include "gex/runtime.hpp"
#include "spmd_helpers.hpp"

namespace {

gex::Config small_cfg(int ranks) {
  gex::Config c;
  c.ranks = ranks;
  c.segment_bytes = 4 << 20;
  c.ring_bytes = 64 << 10;
  c.eager_max = 4 << 10;
  c.heap_bytes = 16 << 20;
  return c;
}

// ------------------------------------------------------------- registry

std::atomic<int> g_h1_count{0};
std::atomic<int> g_h2_count{0};
void reg_handler_one(gex::AmContext&) { g_h1_count.fetch_add(1); }
void reg_handler_two(gex::AmContext&) { g_h2_count.fetch_add(1); }

TEST(HandlerRegistry, StableIdempotentIndices) {
  const gex::HandlerIdx a = gex::am_handler<&reg_handler_one>();
  const gex::HandlerIdx b = gex::am_handler<&reg_handler_two>();
  EXPECT_NE(a, b);
  // Re-registration returns the existing index.
  EXPECT_EQ(gex::register_am_handler(&reg_handler_one), a);
  EXPECT_EQ(gex::register_am_handler(&reg_handler_two), b);
  // Round trip through the table.
  EXPECT_EQ(gex::am_handler_at(a), &reg_handler_one);
  EXPECT_EQ(gex::am_handler_at(b), &reg_handler_two);
  EXPECT_GE(gex::am_handler_count(), 2u);
}

// ----------------------------------------------------------- wire format

// The acceptance property of the v2 wire: handler identity is a 16-bit
// registry index, and no header field is pointer-typed.
TEST(WireFormat, HeadersCarryIndicesNotPointers) {
  static_assert(sizeof(gex::WireHeader) == 16);
  static_assert(sizeof(gex::FrameMsgHeader) == 8);
  static_assert(
      std::is_same_v<decltype(gex::WireHeader::handler), gex::HandlerIdx>);
  static_assert(std::is_same_v<decltype(gex::FrameMsgHeader::handler),
                               gex::HandlerIdx>);
  static_assert(sizeof(gex::HandlerIdx) == 2,
                "handler identity must be a small index, not a pointer");
  static_assert(!std::is_pointer_v<decltype(gex::WireHeader::handler)>);
  static_assert(!std::is_pointer_v<decltype(gex::WireHeader::flags)>);
  static_assert(!std::is_pointer_v<decltype(gex::WireHeader::src)>);
  static_assert(!std::is_pointer_v<decltype(gex::WireHeader::send_ns)>);
}

void scan_target_handler(gex::AmContext&) {}

// Sends eager, frame, and rendezvous-descriptor records into a rank's inbox
// without polling, then raw-consumes every record and scans its bytes for
// the handler's address. The v1 wire would fail this: it stored the raw
// `AmHandler` in every record header.
TEST(WireFormat, NoHandlerAddressOnTheWire) {
  auto cfg = small_cfg(2);
  // This test raw-consumes records out of the arena inbox ring, so it pins
  // the mmap transport explicitly (under UPCXX_AM_TRANSPORT=shmfile the
  // records would travel through per-pair ring files instead — covered by
  // test_transport.cpp).
  cfg.am_transport = gex::AmTransport::kMmap;
  gex::Arena* arena = gex::Arena::create(cfg);
  gex::AmEngine eng(arena, 0);
  gex::Aggregator agg(&eng);

  const std::uint8_t payload[32] = {1, 2, 3, 4};
  const gex::HandlerIdx idx = gex::am_handler<&scan_target_handler>();
  eng.send(1, idx, payload, sizeof payload);                   // eager
  std::memcpy(agg.put(1, idx, sizeof payload), payload,
              sizeof payload);                                 // frame slot
  agg.flush(1);
  std::vector<std::uint8_t> big(cfg.eager_max * 2, 7);
  eng.send(1, idx, big.data(), big.size());                    // rendezvous

  std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(&scan_target_handler);
  std::uint8_t needle[sizeof addr];
  std::memcpy(needle, &addr, sizeof addr);

  int records = 0;
  bool found = false;
  while (arena->inbox(1).try_consume([&](void* rec, std::size_t n) {
    auto* bytes = static_cast<std::uint8_t*>(rec);
    for (std::size_t i = 0; i + sizeof needle <= n; ++i)
      if (std::memcmp(bytes + i, needle, sizeof needle) == 0) found = true;
    ++records;
  })) {
  }
  EXPECT_EQ(records, 3);
  EXPECT_FALSE(found) << "raw handler pointer leaked onto the wire";
  gex::Arena::destroy(arena);
}

// ----------------------------------------------------- frames, raw gex

std::atomic<int> g_frame_count{0};
std::atomic<long> g_frame_sum{0};
void frame_sum_handler(gex::AmContext& cx) {
  EXPECT_TRUE(cx.in_frame);
  long v = 0;
  std::memcpy(&v, cx.data, sizeof v);
  g_frame_sum.fetch_add(v);
  g_frame_count.fetch_add(1);
}

TEST(Frames, PackedMessagesDeliverInOrderWithCounts) {
  g_frame_count = 0;
  g_frame_sum = 0;
  auto cfg = small_cfg(2);
  constexpr int kMsgs = 1000;
  int fails = gex::launch(cfg, [] {
    if (gex::rank_me() == 0) {
      auto& agg = gex::agg();
      for (long i = 1; i <= kMsgs; ++i)
        std::memcpy(
            agg.put(1, gex::am_handler<&frame_sum_handler>(), sizeof i), &i,
            sizeof i);
      agg.flush_all();
      EXPECT_GT(agg.stats().frames, 0u);
      EXPECT_LT(agg.stats().frames, agg.stats().msgs);
      EXPECT_EQ(agg.stats().msgs, static_cast<std::uint64_t>(kMsgs));
    } else {
      while (g_frame_count.load() < kMsgs) gex::am().poll();
      EXPECT_GT(gex::am().stats().received_frames, 0u);
    }
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_frame_sum.load(), static_cast<long>(kMsgs) * (kMsgs + 1) / 2);
}

std::atomic<int> g_adopted_frames{0};
void frame_adopt_handler(gex::AmContext& cx) {
  // Hold the frame past the handler, verify the payload later, release.
  static thread_local std::vector<std::pair<void*, void*>> held;
  void* h = cx.adopt_frame();
  held.emplace_back(h, cx.data);
  if (held.size() == 3) {
    for (auto& [handle, data] : held) {
      long v = 0;
      std::memcpy(&v, data, sizeof v);
      EXPECT_GT(v, 0);
      gex::release_frame(handle);
      g_adopted_frames.fetch_add(1);
    }
    held.clear();
  }
}

TEST(Frames, AdoptFrameKeepsBufferAlive) {
  g_adopted_frames = 0;
  int fails = gex::launch(small_cfg(2), [] {
    if (gex::rank_me() == 0) {
      auto& agg = gex::agg();
      for (long i = 1; i <= 3; ++i)
        std::memcpy(
            agg.put(1, gex::am_handler<&frame_adopt_handler>(), sizeof i),
            &i, sizeof i);
      agg.flush(1);
    } else {
      while (g_adopted_frames.load() < 3) gex::am().poll();
    }
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_adopted_frames.load(), 3);
}

// ------------------------------------------- aggregated rpc_ff ordering

// Written only by rank 1 (the only RPC target), read after the barrier.
std::atomic<int> g_seq_errors{0};
std::atomic<int> g_seq_last{-1};
std::atomic<int> g_seq_count{0};

TEST(Aggregation, RpcFfPerTargetFifoAcrossFlushes) {
  g_seq_errors = 0;
  g_seq_last = -1;
  g_seq_count = 0;
  constexpr int kMsgs = 5000;  // crosses many agg_max_msgs boundaries
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        upcxx::rpc_ff(1, [](int seq) {
          if (seq != g_seq_last.load() + 1) g_seq_errors.fetch_add(1);
          g_seq_last.store(seq);
          g_seq_count.fetch_add(1);
        }, i);
        if (!(i % 97)) upcxx::progress();  // interleave explicit flushes
      }
    } else {
      while (g_seq_count.load() < kMsgs) upcxx::progress();
    }
    upcxx::barrier();
  });
  EXPECT_EQ(g_seq_count.load(), kMsgs);
  EXPECT_EQ(g_seq_errors.load(), 0) << "frames reordered messages";
}

TEST(Aggregation, MixedSizeRpcFfKeepsFifo) {
  // Messages above the aggregation cutoff take the direct path; they must
  // not overtake smaller messages still staged for the same target
  // (send_msg flushes the target first).
  g_seq_errors = 0;
  g_seq_last = -1;
  g_seq_count = 0;
  constexpr int kMsgs = 600;
  testutil::spmd(2, [] {
    if (upcxx::rank_me() == 0) {
      std::vector<double> big(1024);  // 8KB view: well above the cutoff
      for (int i = 0; i < kMsgs; ++i) {
        auto check = [](int seq) {
          if (seq != g_seq_last.load() + 1) g_seq_errors.fetch_add(1);
          g_seq_last.store(seq);
          g_seq_count.fetch_add(1);
        };
        if (i % 3 == 2) {
          big[0] = i;
          upcxx::rpc_ff(1, [](upcxx::view<double> v) {
            const int seq = static_cast<int>(v[0]);
            if (seq != g_seq_last.load() + 1) g_seq_errors.fetch_add(1);
            g_seq_last.store(seq);
            g_seq_count.fetch_add(1);
          }, upcxx::make_view(big.data(), big.data() + big.size()));
        } else {
          upcxx::rpc_ff(1, check, i);
        }
      }
    } else {
      while (g_seq_count.load() < kMsgs) upcxx::progress();
    }
    upcxx::barrier();
  });
  EXPECT_EQ(g_seq_count.load(), kMsgs);
  EXPECT_EQ(g_seq_errors.load(), 0)
      << "direct-path messages overtook staged frames";
}

// --------------------------------------------- flush-on-barrier ordering

std::array<std::atomic<int>, 8> g_bar_counts{};

TEST(Aggregation, BarrierFlushesStagedTraffic) {
  for (auto& c : g_bar_counts) c = 0;
  constexpr int kPer = 50;
  const int P = 4;
  testutil::spmd(P, [] {
    const int me = upcxx::rank_me();
    const int n = upcxx::rank_n();
    // Stage fine-grained updates to every peer with NO intervening
    // progress: everything sits in the aggregation buffers...
    for (int i = 0; i < kPer; ++i)
      for (int t = 0; t < n; ++t)
        if (t != me)
          upcxx::rpc_ff(t, [](int target) {
            g_bar_counts[target].fetch_add(1);
          }, t);
    // ...until barrier entry flushes them. Frames reach each target's ring
    // before any barrier traffic that could complete the barrier there, and
    // compQ drains in order, so post-barrier the counts must be complete.
    upcxx::barrier();
    if (g_bar_counts[me].load() != (n - 1) * kPer)
      throw std::runtime_error("barrier overtook staged aggregated traffic");
    upcxx::barrier();
  });
  for (int r = 0; r < P; ++r)
    EXPECT_EQ(g_bar_counts[r].load(), (P - 1) * kPer);
}

// ------------------------------------------------- process (fork) backend

TEST(Aggregation, BarrierFlushOrderingProcessBackend) {
  // Same property across address spaces: each child checks its own counter
  // (globals are per-process after fork) and signals failure by throwing.
  auto cfg = testutil::test_cfg(4);
  cfg.backend = gex::Backend::kProcess;
  constexpr int kPer = 25;
  int fails = upcxx::run(cfg, [] {
    for (auto& c : g_bar_counts) c = 0;
    upcxx::barrier();
    const int me = upcxx::rank_me();
    const int n = upcxx::rank_n();
    for (int i = 0; i < kPer; ++i)
      for (int t = 0; t < n; ++t)
        if (t != me)
          upcxx::rpc_ff(t, [](int target) {
            g_bar_counts[target].fetch_add(1);
          }, t);
    upcxx::barrier();
    if (g_bar_counts[me].load() != (n - 1) * kPer)
      throw std::runtime_error("staged traffic lost across fork boundary");
  });
  EXPECT_EQ(fails, 0);
}

// Rendezvous adopt()/release_rendezvous() ownership under fork: the heap
// buffer is shared memory, allocated by the sender, adopted by the receiving
// handler in another process, and freed there; heap accounting must return
// to baseline on both sides.
std::atomic<int> g_rdzv_got{0};
void* g_rdzv_buf = nullptr;
std::size_t g_rdzv_size = 0;
void rdzv_adopt_handler(gex::AmContext& cx) {
  EXPECT_TRUE(cx.is_rendezvous);
  g_rdzv_buf = cx.adopt();
  g_rdzv_size = cx.size;
  g_rdzv_got.fetch_add(1);
}

TEST(Aggregation, RendezvousAdoptReleaseProcessBackend) {
  auto cfg = small_cfg(2);
  cfg.backend = gex::Backend::kProcess;
  // Pinned to the mmap transport: the test is *about* the rendezvous
  // adopt/release protocol, which only exists on shared-memory transports
  // (socket ships every payload inline).
  cfg.am_transport = gex::AmTransport::kMmap;
  const std::size_t big = cfg.eager_max * 4;
  int fails = gex::launch(cfg, [big] {
    g_rdzv_got = 0;
    g_rdzv_buf = nullptr;
    auto& heap = gex::arena().heap();
    gex::arena().world_barrier();
    const std::size_t free0 = heap.bytes_free();
    gex::arena().world_barrier();  // both ranks sample before any traffic
    if (gex::rank_me() == 0) {
      std::vector<std::uint8_t> buf(big);
      for (std::size_t i = 0; i < big; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 13 + 5);
      gex::am().send(1, gex::am_handler<&rdzv_adopt_handler>(), buf.data(),
                     buf.size());
    } else {
      while (g_rdzv_got.load() < 1) gex::am().poll();
      // The buffer was adopted: the engine must not have freed it, and its
      // contents (written by another process) must be intact.
      if (!g_rdzv_buf || g_rdzv_size != big)
        throw std::runtime_error("rendezvous adopt lost the buffer");
      auto* p = static_cast<std::uint8_t*>(g_rdzv_buf);
      for (std::size_t i = 0; i < big; ++i)
        if (p[i] != static_cast<std::uint8_t>(i * 13 + 5))
          throw std::runtime_error("rendezvous payload corrupted");
      gex::am().release_rendezvous(g_rdzv_buf);
    }
    gex::arena().world_barrier();
    if (heap.bytes_free() != free0)
      throw std::runtime_error("shared-heap accounting did not return to "
                               "baseline after release_rendezvous");
    gex::arena().world_barrier();
  });
  EXPECT_EQ(fails, 0);
}

// --------------------------------------------------- dht batch operations

TEST(Aggregation, DhtBatchInsertFind) {
  testutil::spmd(2, [] {
    dht::RpcOnlyMap map;
    upcxx::barrier();
    std::vector<std::pair<std::string, std::string>> kvs;
    std::vector<std::string> keys;
    for (int i = 0; i < 200; ++i) {
      std::string k = "k" + std::to_string(upcxx::rank_me()) + "_" +
                      std::to_string(i);
      kvs.emplace_back(k, "v" + std::to_string(i));
      keys.push_back(k);
    }
    map.insert_batch(kvs).wait();
    upcxx::barrier();
    auto found = map.find_batch(keys).wait();
    ASSERT_EQ(found.size(), keys.size());
    for (std::size_t i = 0; i < found.size(); ++i) {
      ASSERT_TRUE(found[i].has_value()) << keys[i];
      EXPECT_EQ(*found[i], kvs[i].second);
    }
    upcxx::barrier();
  });
}

// -------------------------------------------------- config validation

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvGuard() {
    if (saved_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, saved_.c_str(), 1);
  }
  const char* name_;
  std::string saved_;
};

TEST(ConfigValidation, ZeroAndNegativeSizesRejected) {
  EnvGuard g1("UPCXX_SEGMENT_MB"), g2("UPCXX_HEAP_MB"), g3("UPCXX_RING_KB");
  ::setenv("UPCXX_SEGMENT_MB", "0", 1);
  ::setenv("UPCXX_HEAP_MB", "0", 1);
  ::setenv("UPCXX_RING_KB", "-4", 1);
  auto c = gex::Config::from_env();
  const gex::Config d;
  EXPECT_EQ(c.segment_bytes, d.segment_bytes);  // fell back, not 0
  EXPECT_EQ(c.heap_bytes, d.heap_bytes);
  EXPECT_EQ(c.ring_bytes, d.ring_bytes);
  EXPECT_TRUE(arch::is_pow2(c.ring_bytes));
}

TEST(ConfigValidation, EagerMaxClampedToRingFrame) {
  EnvGuard g1("UPCXX_EAGER_MAX"), g2("UPCXX_RING_KB");
  ::setenv("UPCXX_RING_KB", "64", 1);
  ::setenv("UPCXX_EAGER_MAX", "1048576", 1);  // 1 MB >> 64 KB ring
  auto c = gex::Config::from_env();
  EXPECT_LE(c.eager_max, c.ring_bytes / 4 - 64);
}

TEST(ConfigValidation, AggKnobsClampedAndNormalized) {
  EnvGuard g1("UPCXX_AGG_MAX_BYTES"), g2("UPCXX_AGG_MAX_MSGS"),
      g3("UPCXX_AGG");
  ::setenv("UPCXX_AGG_MAX_BYTES", "99999999", 1);
  ::setenv("UPCXX_AGG_MAX_MSGS", "0", 1);
  auto c = gex::Config::from_env();
  EXPECT_LE(c.agg_max_bytes, c.ring_bytes / 4 - 64);
  EXPECT_GE(c.agg_max_msgs, 1u);
  ::setenv("UPCXX_AGG", "0", 1);
  EXPECT_FALSE(gex::Config::from_env().agg_enabled);
}

TEST(ConfigValidation, NormalizeCoversHandBuiltConfigs) {
  gex::Config c;
  c.segment_bytes = 0;
  c.heap_bytes = 0;
  c.ring_bytes = 100;          // not a power of two, far too small
  c.eager_max = 1 << 30;       // absurd
  c.agg_max_bytes = 1 << 30;
  c.agg_max_msgs = 0;
  c.normalize();
  const gex::Config d;
  EXPECT_EQ(c.segment_bytes, d.segment_bytes);
  EXPECT_EQ(c.heap_bytes, d.heap_bytes);
  EXPECT_TRUE(arch::is_pow2(c.ring_bytes));
  EXPECT_LE(c.eager_max, c.ring_bytes / 4 - 64);
  EXPECT_LE(c.agg_max_bytes, c.ring_bytes / 4 - 64);
  EXPECT_GE(c.agg_max_msgs, 1u);
}

// ----------------------------------------------- aggregation off still works

TEST(Aggregation, DisabledFallsBackToDirectPath) {
  auto cfg = testutil::test_cfg(2);
  cfg.agg_enabled = false;
  g_seq_count = 0;
  int fails = upcxx::run(cfg, [] {
    if (upcxx::rank_me() == 0) {
      for (int i = 0; i < 500; ++i)
        upcxx::rpc_ff(1, [] { g_seq_count.fetch_add(1); });
    } else {
      while (g_seq_count.load() < 500) upcxx::progress();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      EXPECT_EQ(gex::agg().stats().frames, 0u);
      EXPECT_GT(gex::am().stats().sent_eager, 0u);
    }
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
