// The asynchronous data-motion engine (gex::XferEngine) and its upcxx
// integration: chunked pipelined transfers, bounded work per poll, the
// simulated bandwidth model, completion ordering (source strictly before
// operation under bandwidth gating), remote_cx vs data visibility, and the
// teardown drain.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "arch/timer.hpp"
#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

// ------------------------------------------------- engine-level unit tests
// XferEngine is a plain object: these run without an SPMD region.

TEST(XferEngine, ChunkedCopySignalsSourceThenLanded) {
  gex::XferEngine eng(/*chunk_bytes=*/1024, /*bw_gbps=*/0);
  std::vector<std::byte> src(10 * 1024), dst(10 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 7);
  int order = 0, source_at = 0, landed_at = 0;
  eng.submit(1, dst.data(), src.data(), src.size(),
             [&] { source_at = ++order; }, [&] { landed_at = ++order; });
  EXPECT_FALSE(eng.idle());
  // Nothing moved at submit time.
  EXPECT_EQ(eng.stats().bytes_copied, 0u);
  while (!eng.idle()) eng.poll();
  EXPECT_EQ(source_at, 1);
  EXPECT_EQ(landed_at, 2);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(eng.stats().chunks_copied, 10u);
}

TEST(XferEngine, PollBoundsWorkPerCall) {
  gex::XferEngine eng(1024, 0);
  std::vector<std::byte> src(8 * 1024), dst(8 * 1024);
  bool source_fired = false;
  eng.submit(1, dst.data(), src.data(), src.size(),
             [&] { source_fired = true; }, {});
  eng.poll(/*chunk_budget=*/1);
  EXPECT_EQ(eng.stats().chunks_copied, 1u);
  EXPECT_EQ(eng.stats().bytes_copied, 1024u);
  EXPECT_FALSE(source_fired);
  eng.poll(3);
  EXPECT_EQ(eng.stats().chunks_copied, 4u);
  EXPECT_FALSE(eng.idle());
}

TEST(XferEngine, FifoWithinOneTarget) {
  gex::XferEngine eng(512, 0);
  std::vector<std::byte> s1(2048), d1(2048), s2(2048), d2(2048);
  std::vector<int> landed;
  eng.submit(1, d1.data(), s1.data(), s1.size(), {},
             [&] { landed.push_back(1); });
  eng.submit(1, d2.data(), s2.data(), s2.size(), {},
             [&] { landed.push_back(2); });
  EXPECT_EQ(eng.inflight(), 2u);
  EXPECT_EQ(eng.channel_count(), 1u);
  while (!eng.idle()) eng.poll(1);
  ASSERT_EQ(landed.size(), 2u);
  EXPECT_EQ(landed[0], 1);
  EXPECT_EQ(landed[1], 2);
}

TEST(XferEngine, IndependentTargetsInterleave) {
  // ROADMAP item: per-target channels. Two equal transfers to different
  // targets share each poll's chunk budget round-robin, so the second
  // target's transfer finishes long before a serialized FIFO would allow
  // (8 chunks each: interleaved, both complete by chunk 16; serialized,
  // target 2 would only start at chunk 9).
  gex::XferEngine eng(512, 0);
  std::vector<std::byte> s1(4096), d1(4096), s2(4096), d2(4096);
  bool landed1 = false, landed2 = false;
  eng.submit(1, d1.data(), s1.data(), s1.size(), {}, [&] { landed1 = true; });
  eng.submit(2, d2.data(), s2.data(), s2.size(), {}, [&] { landed2 = true; });
  EXPECT_EQ(eng.channel_count(), 2u);
  // One poll with budget 2 must advance BOTH channels by one chunk.
  eng.poll(2);
  EXPECT_EQ(eng.stats().chunks_copied, 2u);
  EXPECT_EQ(eng.stats().bytes_copied, 1024u);
  // Drive to completion with tiny budgets; both targets finish together.
  int polls = 0;
  while (!eng.idle() && polls < 64) {
    eng.poll(2);
    ++polls;
  }
  EXPECT_TRUE(landed1);
  EXPECT_TRUE(landed2);
  EXPECT_LE(polls, 8);  // 16 chunks at 2 per poll
}

TEST(XferEngine, SlowLinkDoesNotBlockFastTarget) {
  // The head-of-line regression the per-target split exists for: a
  // saturated slow link to target 1 must not delay landings on target 2's
  // uncapped link.
  gex::XferEngine eng(64 << 10, /*bw_gbps=*/0);
  eng.set_link_bw_gbps(1, 0.01);  // 1 MB -> ~100 ms of virtual wire time
  std::vector<std::byte> s1(1 << 20), d1(1 << 20), s2(1 << 20), d2(1 << 20);
  bool landed_slow = false, landed_fast = false;
  eng.submit(1, d1.data(), s1.data(), s1.size(), {},
             [&] { landed_slow = true; });
  eng.submit(2, d2.data(), s2.data(), s2.size(), {},
             [&] { landed_fast = true; });
  const std::uint64_t t0 = arch::now_ns();
  eng.drain_copies();  // all chunks issued on both links
  eng.poll(0);         // retire pass only
  const std::uint64_t drained_ns = arch::now_ns() - t0;
  EXPECT_TRUE(landed_fast) << "fast target queued behind the slow link";
  // Only assert the slow link is still gated if the drain finished well
  // inside its wire window (a preempted CI host can stall past it).
  if (drained_ns < 50'000'000ull) EXPECT_FALSE(landed_slow);
  eng.drain_all();
  EXPECT_TRUE(landed_slow);
}

TEST(XferEngine, WireAcksGateLanding) {
  // A pluggable wire whose chunk completions are withheld: the transfer's
  // source side completes when all chunks are issued, but it must not land
  // until every done callback has fired — the contract the AM wire's acks
  // rely on.
  gex::XferEngine eng(1024, 0);
  std::vector<gex::XferEngine::Callback> pending_dones;
  gex::XferEngine::WireOps ops;
  ops.put_chunk = [&](int, void* dst, const void* src, std::size_t n,
                      gex::XferEngine::Callback done) {
    std::memcpy(dst, src, n);  // a real wire moves the bytes
    pending_dones.push_back(std::move(done));
  };
  ops.get_chunk = [&](int, void* dst, const void* src, std::size_t n,
                      gex::XferEngine::Callback done) {
    std::memcpy(dst, src, n);
    pending_dones.push_back(std::move(done));
  };
  eng.set_wire(std::move(ops));
  std::vector<std::byte> src(4 * 1024, std::byte{5}), dst(4 * 1024);
  bool source_fired = false, landed = false;
  eng.submit(1, dst.data(), src.data(), src.size(),
             [&] { source_fired = true; }, [&] { landed = true; });
  while (eng.copies_pending()) eng.poll();
  EXPECT_TRUE(source_fired);
  EXPECT_EQ(pending_dones.size(), 4u);
  eng.poll();
  EXPECT_FALSE(landed) << "landed before the wire acked";
  for (auto& d : pending_dones) d();
  eng.poll();
  EXPECT_TRUE(landed);
  EXPECT_EQ(src, dst);
}

TEST(XferEngine, BudgetScalesWithLinkBandwidth) {
  // ROADMAP item "channel-aware chunk budget": one poll's budget is dealt
  // proportionally to link bandwidth, so the fast link soaks up what the
  // clock-bound capped link cannot use — instead of a flat round-robin
  // split leaving the fast link half idle.
  gex::XferEngine eng(/*chunk_bytes=*/512, /*bw_gbps=*/0);
  eng.set_link_bw_gbps(1, 100.0);  // fast
  eng.set_link_bw_gbps(2, 1.0);    // capped: 1% of the fast link
  std::vector<std::byte> s1(8 * 512), d1(8 * 512), s2(8 * 512), d2(8 * 512);
  eng.submit(1, d1.data(), s1.data(), s1.size(), {}, {});
  eng.submit(2, d2.data(), s2.data(), s2.size(), {}, {});
  EXPECT_EQ(eng.pending_chunks(1), 8u);
  EXPECT_EQ(eng.pending_chunks(2), 8u);
  eng.poll(/*chunk_budget=*/8);
  EXPECT_EQ(eng.stats().chunks_copied, 8u);
  // Fast link got ~budget * 100/101 = 7 chunks, capped link its minimum 1.
  EXPECT_EQ(eng.pending_chunks(1), 1u);
  EXPECT_EQ(eng.pending_chunks(2), 7u);
  eng.drain_all();
}

TEST(XferEngine, EqualLinksStillSplitEvenly) {
  // Two uncapped links weigh the same: the proportional split degenerates
  // to the old fair round-robin.
  gex::XferEngine eng(512, 0);
  std::vector<std::byte> s1(4 * 512), d1(4 * 512), s2(4 * 512), d2(4 * 512);
  eng.submit(1, d1.data(), s1.data(), s1.size(), {}, {});
  eng.submit(2, d2.data(), s2.data(), s2.size(), {}, {});
  eng.poll(4);
  EXPECT_EQ(eng.pending_chunks(1), 2u);
  EXPECT_EQ(eng.pending_chunks(2), 2u);
  eng.drain_all();
}

TEST(XferEngine, WireReadinessHoldsChunksInEngine) {
  // The AM wire's back-pressure contract: while ready(target) is false the
  // engine must not push chunks into the wire — they wait in the channel
  // (costing nothing) until credits free. drain_copies honors it too.
  gex::XferEngine eng(1024, 0);
  bool open = false;
  int moved = 0;
  gex::XferEngine::WireOps ops;
  ops.put_chunk = [&](int, void* dst, const void* src, std::size_t n,
                      gex::XferEngine::Callback done) {
    std::memcpy(dst, src, n);
    ++moved;
    done();
  };
  ops.get_chunk = [&](int, void* dst, const void* src, std::size_t n,
                      gex::XferEngine::Callback done) {
    std::memcpy(dst, src, n);
    ++moved;
    done();
  };
  ops.ready = [&](int) { return open; };
  eng.set_wire(std::move(ops));
  std::vector<std::byte> src(4 * 1024, std::byte{9}), dst(4 * 1024);
  bool landed = false;
  eng.submit(1, dst.data(), src.data(), src.size(), {},
             [&] { landed = true; });
  eng.poll(64);
  eng.drain_copies();
  EXPECT_EQ(moved, 0) << "chunks pushed into a wire that reported not ready";
  EXPECT_TRUE(eng.copies_pending());
  open = true;  // credits freed
  eng.drain_copies();
  eng.poll();
  EXPECT_EQ(moved, 4);
  EXPECT_TRUE(landed);
  EXPECT_EQ(src, dst);
}

TEST(XferEngine, CreditsMeterBudgetAcrossChannels) {
  // The budget dealer reads the wire's *current* credit window
  // (WireOps::credits — on the AM wire, the adaptive controller's
  // window_now minus in-flight) instead of a static ceiling. Target 1
  // offers 1 credit, target 2 offers 8: a budget-8 poll must hand target
  // 1 exactly its single credit and spend the other 7 chunks on target 2
  // rather than burning quota on the throttled channel.
  gex::XferEngine eng(512, 0);
  int moved1 = 0, moved2 = 0;
  gex::XferEngine::WireOps ops;
  auto mover = [&](int t, void* dst, const void* src, std::size_t n,
                   gex::XferEngine::Callback done) {
    std::memcpy(dst, src, n);
    (t == 1 ? moved1 : moved2)++;
    done();
  };
  ops.put_chunk = mover;
  ops.get_chunk = mover;
  ops.ready = [](int) { return true; };  // sticky: credits do the metering
  ops.credits = [](int t) -> std::uint32_t { return t == 1 ? 1u : 8u; };
  eng.set_wire(std::move(ops));
  std::vector<std::byte> s1(8 * 512), d1(8 * 512), s2(8 * 512), d2(8 * 512);
  eng.submit(1, d1.data(), s1.data(), s1.size(), {}, {});
  eng.submit(2, d2.data(), s2.data(), s2.size(), {}, {});
  eng.poll(/*chunk_budget=*/8);
  EXPECT_EQ(moved1, 1) << "throttled channel exceeded its credit window";
  EXPECT_EQ(moved2, 7) << "unused quota did not flow to the open channel";
  // Credits are re-read each poll, so the throttled channel still drains.
  int polls = 0;
  while (!eng.idle() && polls++ < 32) eng.poll(8);
  EXPECT_EQ(moved1, 8);
  EXPECT_EQ(moved2, 8);
  EXPECT_EQ(s1, d1);
  EXPECT_EQ(s2, d2);
}

TEST(XferEngine, BandwidthModelGatesLanding) {
  // 4 MB at 0.25 GB/s is ~16.8 ms of virtual wire time, far more than the
  // memcpy itself: on_source fires with the copy, on_landed only once the
  // wire clock has passed.
  constexpr std::size_t kBytes = 4 << 20;
  constexpr double kGbps = 0.25;
  gex::XferEngine eng(256 << 10, kGbps);
  std::vector<std::byte> src(kBytes), dst(kBytes);
  std::uint64_t source_ns = 0, landed_ns = 0;
  const std::uint64_t t0 = arch::now_ns();
  eng.submit(1, dst.data(), src.data(), kBytes,
             [&] { source_ns = arch::now_ns(); },
             [&] { landed_ns = arch::now_ns(); });
  eng.drain_copies();
  const std::uint64_t t_drained = arch::now_ns();
  EXPECT_NE(source_ns, 0u);
  const double expect_ns = kBytes / kGbps;  // bytes / (bytes per ns)
  // The not-yet-landed assertion is only meaningful if the drain finished
  // well inside the wire window (a loaded CI host can stall the whole
  // process past it; the ordering checks below hold regardless).
  if (t_drained - t0 < static_cast<std::uint64_t>(expect_ns * 0.5))
    EXPECT_EQ(landed_ns, 0u) << "landed before the virtual wire delivered";
  eng.drain_all();
  EXPECT_NE(landed_ns, 0u);
  EXPECT_GE(landed_ns - t0, static_cast<std::uint64_t>(expect_ns * 0.9));
  EXPECT_GT(landed_ns, source_ns);
}

TEST(XferEngine, ZeroByteTransferCompletes) {
  gex::XferEngine eng(1024, 0);
  bool source_fired = false, landed = false;
  eng.submit(1, nullptr, nullptr, 0, [&] { source_fired = true; },
             [&] { landed = true; });
  while (!eng.idle()) eng.poll();
  EXPECT_TRUE(source_fired);
  EXPECT_TRUE(landed);
}

// --------------------------------------------------- upcxx-level behavior

// Config that routes every contiguous RMA through the engine in small
// chunks — the async path under maximal stress.
gex::Config async_cfg(int ranks) {
  gex::Config c = testutil::test_cfg(ranks);
  c.rma_async_min = 1;
  c.xfer_chunk_bytes = 1024;
  return c;
}

TEST(AsyncRma, BlockingPutGetRoundTrip) {
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 64 << 10;  // 64K uint32 = 256 KB, 256 chunks
    auto mine = upcxx::allocate<std::uint32_t>(kN);
    std::fill_n(mine.local(), kN, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    std::vector<std::uint32_t> src(kN);
    for (std::size_t i = 0; i < kN; ++i)
      src[i] = static_cast<std::uint32_t>(i ^ (upcxx::rank_me() << 20));
    upcxx::rput(src.data(), peer, kN).wait();
    upcxx::barrier();
    std::vector<std::uint32_t> back(kN);
    upcxx::rget(mine, back.data(), kN).wait();
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(back[i], i ^ ((1u - upcxx::rank_me()) << 20)) << i;
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

TEST(AsyncRma, SourceFiresBeforeOperationUnderSimBandwidth) {
  gex::Config cfg = async_cfg(2);
  cfg.xfer_chunk_bytes = 64 << 10;
  cfg.sim_bw_gbps = 0.125;  // far below memcpy bandwidth: wire is the gate
  const int fails = upcxx::run(cfg, [] {
    // 4 MB (the test segment is 8 MB): ~34 ms of virtual wire time, a wide
    // margin over the copy drain even on a preempted CI host.
    constexpr std::size_t kBytes = 4 << 20;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kBytes);
    upcxx::barrier();
    ASSERT_TRUE(upcxx::rank_me() == 0 || !remote.is_null());
    if (upcxx::rank_me() == 0) {
      std::vector<char> src(kBytes, 'b');
      upcxx::promise<> src_done;
      auto op = upcxx::rput(src.data(), remote, kBytes,
                            upcxx::operation_cx::as_future() |
                                upcxx::source_cx::as_promise(src_done));
      auto src_fut = src_done.finalize();
      // Drive progress until the source drains; the copies finish at
      // memcpy speed, while the operation is gated behind ~34 ms of
      // virtual wire time — it cannot have completed yet.
      while (!src_fut.is_ready()) upcxx::progress();
      EXPECT_FALSE(op.is_ready())
          << "operation completed with the source, despite bandwidth gating";
      op.wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

std::atomic<int> g_landed_ok{0};

TEST(AsyncRma, RemoteCxSeesFullyLandedData) {
  g_landed_ok = 0;
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 128 << 10;  // 512 KB in 1 KB chunks
    static upcxx::global_ptr<std::uint32_t> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<std::uint32_t>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<std::uint32_t> src(kN);
      std::iota(src.begin(), src.end(), 1u);
      upcxx::rput(src.data(), remote, kN,
                  upcxx::operation_cx::as_future() |
                      upcxx::remote_cx::as_rpc(
                          [](upcxx::global_ptr<std::uint32_t> where,
                             std::size_t n) {
                            // Runs at the target: every chunk must have
                            // landed, first through last.
                            if (where.local()[0] == 1u &&
                                where.local()[n - 1] ==
                                    static_cast<std::uint32_t>(n))
                              g_landed_ok.fetch_add(1);
                          },
                          remote, kN))
          .wait();
    } else {
      while (g_landed_ok.load() == 0) upcxx::progress();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
  EXPECT_EQ(g_landed_ok.load(), 1);
}

TEST(AsyncRma, SourceLpcFiresOnInitiator) {
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 16 << 10;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<char> src(kN, 'z');
      bool src_fired = false;
      auto op = upcxx::rput(src.data(), remote, kN,
                            upcxx::operation_cx::as_future() |
                                upcxx::source_cx::as_lpc(
                                    [&src_fired] { src_fired = true; }));
      while (!src_fired) upcxx::progress();
      op.wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(AsyncRma, SourceAndOperationFuturesTogether) {
  // Both futures from one call: returns tuple (source first). Previously
  // rejected by a static_assert; cx_state backs both.
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 8 << 10;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<char> src(kN, 'q');
      auto [src_fut, op_fut] =
          upcxx::rput(src.data(), remote, kN,
                      upcxx::source_cx::as_future() |
                          upcxx::operation_cx::as_future());
      src_fut.wait();
      op_fut.wait();
      EXPECT_TRUE(src_fut.is_ready());
      EXPECT_TRUE(op_fut.is_ready());
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(AsyncRma, BothFuturesOnSyncPathToo) {
  spmd(2, [] {
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<long>(1);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      auto [src_fut, op_fut] =
          upcxx::rput(42L, remote,
                      upcxx::source_cx::as_future() |
                          upcxx::operation_cx::as_future());
      src_fut.wait();
      op_fut.wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) {
      EXPECT_EQ(*remote.local(), 42L);
      upcxx::deallocate(remote);
    }
    upcxx::barrier();
  });
}

TEST(AsyncRma, DataVisibleAfterBarrierWithoutWait) {
  // The pre-engine idiom: issue a put (tracked only by a promise that is
  // never waited before the barrier), then barrier, then the target reads.
  // Barrier entry drains the engine's pending copies, keeping this legal.
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 32 << 10;
    static upcxx::global_ptr<std::uint64_t> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<std::uint64_t>(kN);
    upcxx::barrier();
    static std::vector<std::uint64_t> src;  // outlives the barrier
    if (upcxx::rank_me() == 0) {
      src.assign(kN, 0xabcdefull);
      upcxx::promise<> p;
      upcxx::rput(src.data(), remote, kN,
                  upcxx::operation_cx::as_promise(p));
      // Deliberately no wait before the barrier.
      upcxx::barrier();
      p.finalize().wait();
    } else {
      upcxx::barrier();
      EXPECT_EQ(remote.local()[kN - 1], 0xabcdefull);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

TEST(AsyncRma, TeardownDrainsInFlightTransfers) {
  // Exiting the SPMD body with a transfer still in flight must not lose the
  // data or crash teardown: fini_persona lands everything.
  gex::Config cfg = async_cfg(2);
  cfg.sim_bw_gbps = 1.0;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kN = 1 << 20;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kN);
    upcxx::barrier();
    static std::vector<char> src;  // must outlive the SPMD body's return
    if (upcxx::rank_me() == 0) {
      src.assign(kN, 'd');
      upcxx::promise<> p;
      upcxx::rput(src.data(), remote, kN,
                  upcxx::operation_cx::as_promise(p));
      // Fall out of the body without waiting.
    }
  });
  EXPECT_EQ(fails, 0);
}

// End-to-end on the AM wire: the same chunked engine path, but every chunk
// is an AM put/get request and completion waits for the target's acks.
TEST(AsyncRma, AmWireBlockingPutGetRoundTrip) {
  gex::Config cfg = async_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kN = 32 << 10;  // 128 KB in 1 KB chunks
    auto mine = upcxx::allocate<std::uint32_t>(kN);
    std::fill_n(mine.local(), kN, 0u);
    upcxx::dist_object<upcxx::global_ptr<std::uint32_t>> dir(mine);
    auto peer = dir.fetch(1 - upcxx::rank_me()).wait();
    std::vector<std::uint32_t> src(kN);
    for (std::size_t i = 0; i < kN; ++i)
      src[i] = static_cast<std::uint32_t>(i ^ (upcxx::rank_me() << 20));
    const auto puts_before = gex::rma_am().stats().puts_sent;
    upcxx::rput(src.data(), peer, kN).wait();
    EXPECT_GT(gex::rma_am().stats().puts_sent, puts_before)
        << "am wire selected but no AM put requests went out";
    upcxx::barrier();
    std::vector<std::uint32_t> back(kN);
    upcxx::rget(mine, back.data(), kN).wait();
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(back[i], i ^ ((1u - upcxx::rank_me()) << 20)) << i;
    upcxx::barrier();
    upcxx::deallocate(mine);
  });
  EXPECT_EQ(fails, 0);
}

// The per-target channel regression at the upcxx level: rank 0 saturates a
// bandwidth-capped link to rank 1, then puts to rank 2 over an uncapped
// link; the second op must complete while the first is still waiting out
// its virtual wire time.
TEST(AsyncRma, SlowLinkDoesNotDelayOtherTargetsOps) {
  gex::Config cfg = testutil::test_cfg(3);
  cfg.rma_async_min = 1;
  cfg.xfer_chunk_bytes = 64 << 10;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kBytes = 1 << 20;
    static upcxx::global_ptr<char> bufs[3];
    bufs[upcxx::rank_me()] = upcxx::allocate<char>(kBytes);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      // Thread backend: the static directory is shared, read it directly.
      gex::xfer().set_link_bw_gbps(1, 0.01);  // ~100 ms for 1 MB
      std::vector<char> src(kBytes, 'x');
      const std::uint64_t t0 = arch::now_ns();
      auto slow = upcxx::rput(src.data(), bufs[1], kBytes);
      auto fast = upcxx::rput(src.data(), bufs[2], kBytes);
      fast.wait();
      const std::uint64_t fast_done = arch::now_ns() - t0;
      // The uncapped op completed; the capped one is still gated unless
      // the host stalled us past the whole wire window.
      if (fast_done < 50'000'000ull)
        EXPECT_FALSE(slow.is_ready())
            << "fast-target op waited for the slow link";
      slow.wait();
    }
    upcxx::barrier();
    upcxx::deallocate(bufs[upcxx::rank_me()]);
  });
  EXPECT_EQ(fails, 0);
}

// Engine stats surface through the rank for observability.
TEST(AsyncRma, EngineStatsAdvance) {
  const int fails = upcxx::run(async_cfg(2), [] {
    constexpr std::size_t kN = 64 << 10;
    static upcxx::global_ptr<char> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::allocate<char>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<char> src(kN, 's');
      const auto before = gex::xfer().stats();
      upcxx::rput(src.data(), remote, kN).wait();
      const auto& after = gex::xfer().stats();
      EXPECT_EQ(after.submitted - before.submitted, 1u);
      EXPECT_GE(after.chunks_copied - before.chunks_copied, kN / 1024);
      EXPECT_EQ(after.landed - before.landed, 1u);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::deallocate(remote);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

}  // namespace
