// Extended collectives: exclusive scan, bulk elementwise reductions,
// alltoall / alltoallv, and the tree-vs-flat topology knob (the "rich set of
// non-blocking collective operations" the paper's §VI lists as current
// work). All results are checked against serial oracles.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "arch/rng.hpp"
#include "spmd_helpers.hpp"

using testutil::spmd;

namespace {

// ------------------------------------------------------------------- scans

TEST(CollectivesExt, ExclusiveScanMatchesOracle) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    const int v = 3 * me + 1;
    const int got = upcxx::scan_exclusive(v, upcxx::op_fast_add{}).wait();
    int expect = 0;
    for (int i = 0; i < me; ++i) expect += 3 * i + 1;
    EXPECT_EQ(got, expect);
    upcxx::barrier();
  });
}

TEST(CollectivesExt, ExclusiveScanRankZeroIsIdentity) {
  spmd(4, [] {
    const int got = upcxx::scan_exclusive(99, upcxx::op_fast_add{}).wait();
    if (upcxx::rank_me() == 0) EXPECT_EQ(got, 0);
    upcxx::barrier();
  });
}

TEST(CollectivesExt, InclusiveVsExclusiveScanRelation) {
  spmd(8, [] {
    const int v = upcxx::rank_me() + 1;
    const int inc = upcxx::scan_inclusive(v, upcxx::op_fast_add{}).wait();
    const int exc = upcxx::scan_exclusive(v, upcxx::op_fast_add{}).wait();
    EXPECT_EQ(inc, exc + v);
    upcxx::barrier();
  });
}

TEST(CollectivesExt, ScanWithNonCommutativeOp) {
  // Matrix-like 2x2 composition (associative, non-commutative): checks scan
  // preserves rank order.
  struct M2 {
    long a, b, c, d;
  };
  auto mul = [](const M2& x, const M2& y) {
    return M2{x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
              x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
  };
  spmd(6, [mul] {
    const int me = upcxx::rank_me();
    const M2 mine{1, me + 1, 0, 1};  // shear by rank+1
    const M2 got = upcxx::scan_inclusive(mine, mul).wait();
    // Product of shears = shear by sum.
    long sum = 0;
    for (int i = 0; i <= me; ++i) sum += i + 1;
    EXPECT_EQ(got.a, 1);
    EXPECT_EQ(got.b, sum);
    EXPECT_EQ(got.d, 1);
    upcxx::barrier();
  });
}

// ------------------------------------------------------------ bulk reduce

TEST(CollectivesExt, BulkReduceOneElementwiseSum) {
  spmd(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<long> src(257), dst(257, -1);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<long>(i) * (me + 1);
    upcxx::reduce_one(src.data(), dst.data(), src.size(),
                      upcxx::op_fast_add{}, /*root=*/2)
        .wait();
    upcxx::barrier();
    if (me == 2) {
      long coef = 0;
      for (int r = 0; r < P; ++r) coef += r + 1;
      for (std::size_t i = 0; i < dst.size(); ++i)
        EXPECT_EQ(dst[i], static_cast<long>(i) * coef) << "element " << i;
    } else {
      for (long x : dst) EXPECT_EQ(x, -1) << "non-root dst must be untouched";
    }
    upcxx::barrier();
  });
}

TEST(CollectivesExt, BulkReduceAllMaxEverywhere) {
  spmd(8, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<int> src(64), dst(64);
    for (int i = 0; i < 64; ++i) src[i] = (me * 37 + i * 11) % 101;
    upcxx::reduce_all(src.data(), dst.data(), 64, upcxx::op_fast_max{})
        .wait();
    for (int i = 0; i < 64; ++i) {
      int expect = 0;
      for (int r = 0; r < P; ++r)
        expect = std::max(expect, (r * 37 + i * 11) % 101);
      EXPECT_EQ(dst[i], expect);
    }
    upcxx::barrier();
  });
}

TEST(CollectivesExt, BulkReduceInPlaceAliasing) {
  spmd(4, [] {
    std::vector<long> buf(32, upcxx::rank_me() + 1);
    upcxx::reduce_all(buf.data(), buf.data(), 32, upcxx::op_fast_add{})
        .wait();
    const long expect = 1 + 2 + 3 + 4;
    for (long x : buf) EXPECT_EQ(x, expect);
    upcxx::barrier();
  });
}

// --------------------------------------------------------------- alltoall

TEST(CollectivesExt, AlltoallScalars) {
  spmd(8, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<int> send(P);
    for (int j = 0; j < P; ++j) send[j] = me * 100 + j;
    auto recv = upcxx::alltoall(send).wait();
    ASSERT_EQ(static_cast<int>(recv.size()), P);
    for (int i = 0; i < P; ++i) EXPECT_EQ(recv[i], i * 100 + me);
    upcxx::barrier();
  });
}

TEST(CollectivesExt, AlltoallVariableSizedVectors) {
  // T = std::vector<double>: a personalized alltoallv with per-pair sizes.
  spmd(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<std::vector<double>> send(P);
    for (int j = 0; j < P; ++j) {
      send[j].resize(static_cast<std::size_t>(me * P + j));
      for (std::size_t k = 0; k < send[j].size(); ++k)
        send[j][k] = me * 1000.0 + j * 10.0 + k;
    }
    auto recv = upcxx::alltoall(send).wait();
    for (int i = 0; i < P; ++i) {
      ASSERT_EQ(recv[i].size(), static_cast<std::size_t>(i * P + me));
      for (std::size_t k = 0; k < recv[i].size(); ++k)
        EXPECT_DOUBLE_EQ(recv[i][k], i * 1000.0 + me * 10.0 + k);
    }
    upcxx::barrier();
  });
}

TEST(CollectivesExt, AlltoallStrings) {
  spmd(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<std::string> send(P);
    for (int j = 0; j < P; ++j)
      send[j] = "from" + std::to_string(me) + "to" + std::to_string(j);
    auto recv = upcxx::alltoall(send).wait();
    for (int i = 0; i < P; ++i)
      EXPECT_EQ(recv[i],
                "from" + std::to_string(i) + "to" + std::to_string(me));
    upcxx::barrier();
  });
}

TEST(CollectivesExt, AlltoallSingleRank) {
  spmd(1, [] {
    std::vector<int> send{42};
    auto recv = upcxx::alltoall(send).wait();
    ASSERT_EQ(recv.size(), 1u);
    EXPECT_EQ(recv[0], 42);
  });
}

TEST(CollectivesExt, AlltoallOnSplitTeam) {
  spmd(8, [] {
    const int me = upcxx::rank_me();
    upcxx::team half = upcxx::world().split(me % 2, me);
    const int tp = half.rank_n(), tme = half.rank_me();
    std::vector<int> send(tp);
    for (int j = 0; j < tp; ++j) send[j] = tme * 10 + j;
    auto recv = upcxx::alltoall(send, half).wait();
    for (int i = 0; i < tp; ++i) EXPECT_EQ(recv[i], i * 10 + tme);
    upcxx::barrier();
  });
}

TEST(CollectivesExt, BackToBackAlltoallsDoNotInterfere) {
  spmd(4, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    std::vector<int> s1(P), s2(P);
    for (int j = 0; j < P; ++j) {
      s1[j] = me * 10 + j;
      s2[j] = -(me * 10 + j);
    }
    auto f1 = upcxx::alltoall(s1);
    auto f2 = upcxx::alltoall(s2);  // overlapping, same team
    auto r2 = f2.wait();
    auto r1 = f1.wait();
    for (int i = 0; i < P; ++i) {
      EXPECT_EQ(r1[i], i * 10 + me);
      EXPECT_EQ(r2[i], -(i * 10 + me));
    }
    upcxx::barrier();
  });
}

// ------------------------------------------------------ topology ablation

TEST(CollectivesExt, FlatTopologyProducesSameResults) {
  spmd(8, [] {
    const int me = upcxx::rank_me(), P = upcxx::rank_n();
    upcxx::experimental::set_coll_topology(
        upcxx::detail::CollTopology::flat);
    upcxx::barrier();  // a flat barrier
    const long sum =
        upcxx::reduce_all(static_cast<long>(me + 1), upcxx::op_fast_add{})
            .wait();
    EXPECT_EQ(sum, static_cast<long>(P) * (P + 1) / 2);
    const int bcast = upcxx::broadcast(me == 3 ? 777 : 0, 3).wait();
    EXPECT_EQ(bcast, 777);
    auto gathered = upcxx::allgather(me * me).wait();
    for (int i = 0; i < P; ++i) EXPECT_EQ(gathered[i], i * i);
    upcxx::experimental::set_coll_topology(
        upcxx::detail::CollTopology::tree);
    upcxx::barrier();
  });
}

// Property sweep: reductions agree with the oracle for every rank count.
class CollectivesSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesSweep, ReduceScanGatherConsistency) {
  const int P = GetParam();
  spmd(P, [] {
    const int me = upcxx::rank_me(), n = upcxx::rank_n();
    arch::Xoshiro256 rng(77 + me);
    const long v = static_cast<long>(rng.next() % 1000);
    auto all = upcxx::allgather(v).wait();
    const long total =
        upcxx::reduce_all(v, upcxx::op_fast_add{}).wait();
    const long inc = upcxx::scan_inclusive(v, upcxx::op_fast_add{}).wait();
    const long exc = upcxx::scan_exclusive(v, upcxx::op_fast_add{}).wait();
    long oracle_total = 0, oracle_exc = 0;
    for (int i = 0; i < n; ++i) {
      if (i < me) oracle_exc += all[i];
      oracle_total += all[i];
    }
    EXPECT_EQ(total, oracle_total);
    EXPECT_EQ(inc, oracle_exc + v);
    EXPECT_EQ(exc, me == 0 ? 0 : oracle_exc);
    upcxx::barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
