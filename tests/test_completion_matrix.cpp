// Parameterized completion matrix: every RMA-ish operation kind crossed
// with every initiator-side completion kind, on the instant wire and under
// simulated latency, on both data-motion paths (synchronous injection-time
// and the asynchronous chunked XferEngine), on both RMA wires (direct
// arena memcpy and the AM put/get protocol). Verifies two invariants
// for every cell:
//   * the data actually lands (one-sided semantics);
//   * the completion fires exactly once, via the requested mechanism, and
//     never before the operation could have completed.
// This pins the paper's completion-object design (§II, §IV-B) across the
// whole surface rather than per-op spot checks.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <tuple>
#include <vector>

#include "spmd_helpers.hpp"

namespace {

enum class Op {
  rput_bulk,
  rput_scalar,
  rget_bulk,
  copy_g2g,
  rput_strided,
  rput_irregular,
  rget_strided,
  rget_irregular
};
enum class Cx { promise, lpc };

const char* op_name(Op o) {
  switch (o) {
    case Op::rput_bulk: return "rput_bulk";
    case Op::rput_scalar: return "rput_scalar";
    case Op::rget_bulk: return "rget_bulk";
    case Op::copy_g2g: return "copy_g2g";
    case Op::rput_strided: return "rput_strided";
    case Op::rput_irregular: return "rput_irregular";
    case Op::rget_strided: return "rget_strided";
    case Op::rget_irregular: return "rget_irregular";
  }
  return "?";
}
const char* cx_name(Cx c) {
  switch (c) {
    case Cx::promise: return "promise";
    case Cx::lpc: return "lpc";
  }
  return "?";
}

bool is_get(Op o) {
  return o == Op::rget_bulk || o == Op::rget_strided ||
         o == Op::rget_irregular;
}

constexpr std::size_t kN = 64;

// copy_g2g's local staging buffer: deallocated only after the cell's
// completion fired — on the asynchronous paths the copy reads it after
// issue() returns.
upcxx::global_ptr<long> g_staging;

// Issues `op` from rank 0 against rank 1's buffer with completion `cx`;
// returns when complete. Get-like ops fill `sink` from the remote buffer.
template <typename Cxs>
void issue(Op op, upcxx::global_ptr<long> remote, std::vector<long>& src,
           std::vector<long>& sink, Cxs cxs) {
  switch (op) {
    case Op::rput_bulk:
      upcxx::rput(src.data(), remote, kN, std::move(cxs));
      break;
    case Op::rput_scalar:
      upcxx::rput(src[0], remote, std::move(cxs));
      break;
    case Op::rget_bulk:
      upcxx::rget(remote, sink.data(), kN, std::move(cxs));
      break;
    case Op::copy_g2g: {
      // local global -> remote global
      g_staging = upcxx::to_global_ptr(upcxx::allocate<long>(kN).local());
      std::memcpy(g_staging.local(), src.data(), kN * sizeof(long));
      upcxx::copy(g_staging, remote, kN, std::move(cxs));
      break;
    }
    case Op::rput_strided:
      // Treat the buffer as 8x8; move all of it with matching strides.
      upcxx::rput_strided<2>(
          src.data(),
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          remote,
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          {std::size_t{8}, std::size_t{8}}, std::move(cxs));
      break;
    case Op::rput_irregular: {
      std::vector<upcxx::src_fragment<long>> s{{src.data(), kN / 2},
                                               {src.data() + kN / 2,
                                                kN / 2}};
      std::vector<upcxx::dst_fragment<long>> d{{remote, kN / 4},
                                               {remote + kN / 4,
                                                3 * kN / 4}};
      upcxx::rput_irregular(s, d, std::move(cxs));
      break;
    }
    case Op::rget_strided:
      upcxx::rget_strided<2>(
          remote,
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          sink.data(),
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          {std::size_t{8}, std::size_t{8}}, std::move(cxs));
      break;
    case Op::rget_irregular: {
      // Remote fragments gather into writable local fragments.
      std::vector<upcxx::dst_fragment<long>> s{{remote, kN / 4},
                                               {remote + kN / 4,
                                                3 * kN / 4}};
      std::vector<upcxx::local_fragment<long>> d{{sink.data(), kN / 2},
                                                 {sink.data() + kN / 2,
                                                  kN / 2}};
      upcxx::rget_irregular(s, d, std::move(cxs));
      break;
    }
  }
}

// One full cell of the matrix, run inside a 2-rank SPMD region.
void run_cell(Op op, Cx cx) {
  static upcxx::global_ptr<long> remote;
  const int me = upcxx::rank_me();
  if (me == 1) {
    remote = upcxx::new_array<long>(kN);
    for (std::size_t i = 0; i < kN; ++i) remote.local()[i] = -7;
  }
  upcxx::barrier();
  if (me == 0) {
    std::vector<long> src(kN), sink(kN, 0);
    for (std::size_t i = 0; i < kN; ++i)
      src[i] = static_cast<long>(1000 + i);

    bool completed = false;
    switch (cx) {
      case Cx::promise: {
        upcxx::promise<> pr;
        issue(op, remote, src, sink,
              upcxx::operation_cx::as_promise(pr));
        pr.finalize().wait();
        completed = true;
        break;
      }
      case Cx::lpc: {
        bool fired = false;
        issue(op, remote, src, sink,
              upcxx::operation_cx::as_lpc([&fired] { fired = true; }));
        while (!fired) upcxx::progress();
        completed = true;
        break;
      }
    }
    EXPECT_TRUE(completed) << op_name(op) << "/" << cx_name(cx);
    if (!g_staging.is_null()) {
      upcxx::deallocate(g_staging);
      g_staging = {};
    }
    if (is_get(op)) {
      // The remote buffer held -7 everywhere; every get shape must deliver
      // exactly that into the local sink.
      for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(sink[i], -7) << op_name(op) << " data at " << i;
    }
    upcxx::barrier();  // rank 1 checks its buffer
  } else {
    upcxx::barrier();
    if (!is_get(op)) {
      // Every put-like op delivered 1000+i in some arrangement; check the
      // multiset instead of the exact layout (irregular reshuffles).
      std::vector<long> got(remote.local(), remote.local() + kN);
      std::sort(got.begin(), got.end());
      if (op == Op::rput_scalar) {
        EXPECT_EQ(remote.local()[0], 1000);
      } else {
        for (std::size_t i = 0; i < kN; ++i)
          EXPECT_EQ(got[i], static_cast<long>(1000 + i))
              << op_name(op) << " element " << i;
      }
    }
    upcxx::delete_array(remote, kN);
  }
  upcxx::barrier();
}

using Cell = std::tuple<int /*Op*/, int /*Cx*/, int /*latency_ns*/,
                        int /*async*/, int /*wire*/>;

class CompletionMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(CompletionMatrix, DataLandsAndCompletionFires) {
  const Op op = static_cast<Op>(std::get<0>(GetParam()));
  const Cx cx = static_cast<Cx>(std::get<1>(GetParam()));
  const int latency = std::get<2>(GetParam());
  const bool async = std::get<3>(GetParam()) != 0;
  const bool am = std::get<4>(GetParam()) != 0;
  gex::Config cfg = testutil::test_cfg(2);
  cfg.sim_latency_ns = static_cast<std::uint64_t>(latency);
  // async cells force every contiguous transfer through the XferEngine in
  // small chunks; sync cells disable the engine path entirely (on the am
  // wire that routes everything through single protocol requests instead).
  cfg.rma_async_min = async ? 1 : 0;
  cfg.xfer_chunk_bytes = 256;  // kN longs = 512 B -> 2 chunks
  // wire cells pin the RMA wire explicitly (overriding any environment
  // default) so both protocols are always covered.
  cfg.rma_wire = am ? gex::RmaWire::kAm : gex::RmaWire::kDirect;
  const int fails = upcxx::run(cfg, [op, cx] { run_cell(op, cx); });
  EXPECT_EQ(fails, 0) << op_name(op) << "/" << cx_name(cx) << "/lat"
                      << latency << (async ? "/async" : "/sync")
                      << (am ? "/am" : "/direct");
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CompletionMatrix,
    ::testing::Combine(::testing::Range(0, 8),  // Op
                       ::testing::Range(0, 2),  // Cx
                       ::testing::Values(0, 5000),
                       ::testing::Range(0, 2),   // data-motion path
                       ::testing::Range(0, 2)),  // RMA wire
    [](const ::testing::TestParamInfo<Cell>& info) {
      return std::string(op_name(static_cast<Op>(std::get<0>(info.param)))) +
             "_" + cx_name(static_cast<Cx>(std::get<1>(info.param))) +
             (std::get<2>(info.param) ? "_lat" : "_instant") +
             (std::get<3>(info.param) ? "_async" : "_sync") +
             (std::get<4>(info.param) ? "_am" : "_direct");
    });

// Future completion is the default path, checked across ops separately
// (issue() above routes future cells through a promise for uniformity).
TEST(CompletionMatrixFuture, FutureCompletionPerOp) {
  gex::Config cfg = testutil::test_cfg(2);
  const int fails = upcxx::run(cfg, [] {
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::new_array<long>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<long> src(kN, 5), sink(kN, 0);
      upcxx::rput(src.data(), remote, kN).wait();
      upcxx::rget(remote, sink.data(), kN).wait();
      EXPECT_EQ(sink, src);
      EXPECT_EQ(upcxx::rget(remote).wait(), 5);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote, kN);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Source completion under simulated latency: synchronous on the memcpy
// path, strictly before operation completion on the async engine path
// (tested in depth in test_xfer.cpp). Here: the full cx grid per source
// mechanism, instant wire.
TEST(CompletionMatrixSource, SourceMechanismsFire) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_async_min = 1;  // engine path: source fires from the drain
  cfg.xfer_chunk_bytes = 256;
  const int fails = upcxx::run(cfg, [] {
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::new_array<long>(kN);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      std::vector<long> src(kN, 3);
      // as_promise
      upcxx::promise<> sp;
      auto f1 = upcxx::rput(src.data(), remote, kN,
                            upcxx::operation_cx::as_future() |
                                upcxx::source_cx::as_promise(sp));
      f1.wait();
      EXPECT_TRUE(sp.finalize().is_ready());
      // as_lpc
      bool src_lpc = false;
      auto f2 = upcxx::rput(src.data(), remote, kN,
                            upcxx::operation_cx::as_future() |
                                upcxx::source_cx::as_lpc(
                                    [&src_lpc] { src_lpc = true; }));
      f2.wait();
      while (!src_lpc) upcxx::progress();
      // as_future together with an operation future (tuple return).
      auto [sf, of] = upcxx::rput(src.data(), remote, kN,
                                  upcxx::source_cx::as_future() |
                                      upcxx::operation_cx::as_future());
      sf.wait();
      of.wait();
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote, kN);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Ack aggregation must not bend completion ordering: with both ranks
// streaming chunked rputs at each other (so acks ride piggybacked on the
// reverse direction's PUT records rather than standalone ack records),
// every transfer still signals source strictly before operation, and
// every completion fires exactly once.
TEST(CompletionMatrixAckBatching, PiggybackedAcksKeepSourceBeforeOperation) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_wire = gex::RmaWire::kAm;
  cfg.rma_async_min = 1;
  cfg.xfer_chunk_bytes = 1024;
  cfg.am_xfer_chunk_bytes = 1024;
  cfg.am_window = 4;
  const int fails = upcxx::run(cfg, [] {
    constexpr std::size_t kBytes = 64 << 10;  // 64 chunks, 16 window turns
    constexpr int kOps = 8;
    const int me = upcxx::rank_me();
    auto mine = upcxx::allocate<char>(kBytes);
    upcxx::dist_object<upcxx::global_ptr<char>> dir(mine);
    auto peer = dir.fetch(1 - me).wait();
    upcxx::barrier();
    std::vector<char> src(kBytes, static_cast<char>('a' + me));
    // Both ranks flood simultaneously: each rank's request stream is the
    // other's ack carrier.
    int source_fired = 0, op_fired = 0;
    bool order_ok = true;
    for (int i = 0; i < kOps; ++i) {
      upcxx::rput(src.data(), peer, kBytes,
                  upcxx::source_cx::as_lpc([&] { ++source_fired; }) |
                      upcxx::operation_cx::as_lpc([&, i] {
                        ++op_fired;
                        // Operation i may only complete after its own (and
                        // all earlier) source events: per-channel FIFO.
                        if (source_fired < i + 1) order_ok = false;
                      }));
    }
    while (op_fired < kOps) upcxx::progress();
    EXPECT_EQ(source_fired, kOps);
    EXPECT_EQ(op_fired, kOps);
    EXPECT_TRUE(order_ok)
        << "an operation completed before its transfer's source event";
    upcxx::barrier();
    // The reverse streams actually carried acks: piggybacking happened.
    EXPECT_GT(gex::rma_am().stats().acks_piggybacked, 0u);
    const auto& st = gex::rma_am().stats();
    EXPECT_EQ(st.ack_cookies_sent + st.acks_piggybacked, st.puts_handled);
    upcxx::barrier();
    upcxx::deallocate(mine);
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0);
}

// Zero-byte cells: every RMA shape at zero length, on both wires and both
// data-motion configurations, must fire its completion exactly once, move
// nothing, and never touch memory through a null/zero memcpy (the UB class
// PR 3 fixed in collectives; this pins the RMA paths). Null local pointers
// are legal at n == 0.
class ZeroByteMatrix
    : public ::testing::TestWithParam<std::tuple<int /*async*/, int /*am*/>> {
};

TEST_P(ZeroByteMatrix, ZeroByteOpsCompleteAndMoveNothing) {
  gex::Config cfg = testutil::test_cfg(2);
  cfg.rma_async_min = std::get<0>(GetParam()) ? 1 : 0;
  cfg.xfer_chunk_bytes = 256;
  cfg.rma_wire = std::get<1>(GetParam()) ? gex::RmaWire::kAm
                                         : gex::RmaWire::kDirect;
  const int fails = upcxx::run(cfg, [] {
    static upcxx::global_ptr<long> remote;
    const int me = upcxx::rank_me();
    if (me == 1) {
      remote = upcxx::new_array<long>(kN);
      for (std::size_t i = 0; i < kN; ++i) remote.local()[i] = -7;
    }
    upcxx::barrier();
    if (me == 0) {
      std::vector<long> buf(kN, 5);
      // Contiguous, valid pointers.
      upcxx::rput(buf.data(), remote, 0).wait();
      upcxx::rget(remote, buf.data(), 0).wait();
      // Contiguous, null local pointer at n == 0.
      upcxx::rput(static_cast<const long*>(nullptr), remote, 0).wait();
      upcxx::rget(remote, static_cast<long*>(nullptr), 0).wait();
      // copy() in both directions (global endpoints must be valid).
      upcxx::copy(buf.data(), remote, 0).wait();
      upcxx::copy(remote, buf.data(), 0).wait();
      // Strided with a zero extent.
      upcxx::rput_strided<2>(
          buf.data(),
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          remote,
          {static_cast<std::ptrdiff_t>(8 * sizeof(long)),
           static_cast<std::ptrdiff_t>(sizeof(long))},
          {std::size_t{0}, std::size_t{8}})
          .wait();
      // Irregular: empty lists.
      upcxx::rput_irregular<long>({}, {}).wait();
      upcxx::rget_irregular<long>({}, {}).wait();
      // Irregular: zero-length fragments mixed with real ones (a trailing
      // zero-length local fragment used to wedge the pairing loop), and a
      // target whose fragments are all zero-length.
      {
        std::vector<upcxx::src_fragment<long>> s{
            {buf.data(), 8}, {buf.data() + 8, 0}};
        std::vector<upcxx::dst_fragment<long>> d{{remote, 0}, {remote, 8}};
        bool fired = false;
        upcxx::rput_irregular(s, d,
                              upcxx::operation_cx::as_lpc(
                                  [&fired] { fired = true; }));
        while (!fired) upcxx::progress();
      }
      {
        std::vector<upcxx::dst_fragment<long>> s{{remote, 0}};
        std::vector<upcxx::local_fragment<long>> d{{nullptr, 0}};
        upcxx::rget_irregular(s, d).wait();
      }
      // rget at 0 bytes must not have disturbed the local buffer either.
      for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 5);
      upcxx::barrier();
    } else {
      upcxx::barrier();
      // The only write was the 8-element irregular put; everything else
      // moved zero bytes.
      for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(remote.local()[i], 5);
      for (std::size_t i = 8; i < kN; ++i)
        EXPECT_EQ(remote.local()[i], -7) << "zero-byte op wrote at " << i;
      upcxx::delete_array(remote, kN);
    }
    upcxx::barrier();
  });
  EXPECT_EQ(fails, 0) << (std::get<0>(GetParam()) ? "async" : "sync") << "/"
                      << (std::get<1>(GetParam()) ? "am" : "direct");
}

INSTANTIATE_TEST_SUITE_P(
    AllZeroByteCells, ZeroByteMatrix,
    ::testing::Combine(::testing::Range(0, 2), ::testing::Range(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(std::get<0>(info.param) ? "async" : "sync") +
             (std::get<1>(info.param) ? "_am" : "_direct");
    });

// The stats facility: counters move with the operations that ran.
TEST(Stats, CountersTrackOperations) {
  testutil::spmd(2, [] {
    const auto before = upcxx::experimental::stats();
    static upcxx::global_ptr<long> remote;
    if (upcxx::rank_me() == 1) remote = upcxx::new_array<long>(8);
    upcxx::barrier();
    if (upcxx::rank_me() == 0) {
      long v = 9;
      upcxx::rput(&v, remote, 1).wait();
      upcxx::rput(&v, remote, 1).wait();
      long out;
      upcxx::rget(remote, &out, 1).wait();
      upcxx::rpc(1, [] {}).wait();
      const auto after = upcxx::experimental::stats();
      EXPECT_EQ(after.rputs - before.rputs, 2u);
      EXPECT_EQ(after.rgets - before.rgets, 1u);
      EXPECT_GE(after.rpcs_sent - before.rpcs_sent, 1u);
    }
    upcxx::barrier();
    if (upcxx::rank_me() == 1) upcxx::delete_array(remote, 8);
    upcxx::barrier();
  });
}

}  // namespace
