// Fixed-slot function registry backing the wire-format handler tables
// (gex AM handlers, upcxx dispatch functions): stable small indices instead
// of function pointers on the wire.
//
// Writers serialize on the mutex; readers never take it — they only touch
// slots below `count`, and each slot is published before `count` advances
// past it. Registration is expected at static-initialization time (before
// ranks exist), which is what keeps indices identical across forked ranks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace arch {

template <typename Fn, std::size_t N>
class FixedRegistry {
 public:
  // Registers fn and returns its index; idempotent per pointer. `what`
  // names the table in diagnostics.
  std::size_t add(Fn fn, const char* name, const char* what) {
    std::lock_guard<std::mutex> g(mu_);
    const std::size_t n = count_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i)
      if (fn_[i] == fn) return i;
    if (n >= N) {
      std::fprintf(stderr, "%s: table full (%zu entries)\n", what, n);
      std::abort();
    }
    fn_[n] = fn;
    name_[n] = name;
    count_.store(n + 1, std::memory_order_release);
    return n;
  }

  // Resolves an index received off the wire. Aborts on an index that was
  // never registered (corruption, or registration skew after fork).
  Fn at(std::size_t idx, const char* what) const {
    if (idx >= count_.load(std::memory_order_acquire)) {
      std::fprintf(stderr,
                   "%s: unregistered index %zu on the wire (corruption, or "
                   "a rank registered entries after fork)\n",
                   what, idx);
      std::abort();
    }
    return fn_[idx];
  }

  std::size_t count() const {
    return count_.load(std::memory_order_acquire);
  }

  const char* name(std::size_t idx) const {
    return idx < count() ? name_[idx] : nullptr;
  }

 private:
  Fn fn_[N] = {};
  const char* name_[N] = {};
  std::atomic<std::size_t> count_{0};
  std::mutex mu_;
};

}  // namespace arch
