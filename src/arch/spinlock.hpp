// Test-and-test-and-set spinlock with exponential backoff.
//
// Used for the short critical sections in the shared arena (AM ring
// reservation, shared-heap allocation). A futex-based mutex is not usable
// there: the arena is shared across forked processes in the process backend,
// and we want identical behaviour in both backends. Critical sections are a
// few dozen instructions, so spinning is the right tool (see the concurrency
// guidance in the C++ Core Guidelines: keep lock scopes minimal and visible).
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace arch {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    // Fast path: uncontended acquire.
    if (!flag_.exchange(true, std::memory_order_acquire)) return;
    int backoff = 1;
    for (;;) {
      // Spin on a plain load to keep the line shared until it looks free.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < backoff; ++i) cpu_relax();
        if (backoff < 64) backoff <<= 1;
      }
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard, analogous to std::lock_guard but usable with Spinlock in
// shared (cross-process) memory.
class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& l) : l_(l) { l_.lock(); }
  ~SpinGuard() { l_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& l_;
};

}  // namespace arch
