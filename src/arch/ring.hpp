// Multi-producer single-consumer byte ring for variable-size records.
//
// This is the wire of the substrate: each rank owns one inbox ring placed in
// the shared arena, every other rank produces into it. Producers serialize on
// a short spinlock only to *reserve* space; the payload memcpy happens outside
// the lock and is published with a per-record ready flag. The consumer drains
// records strictly in reservation order, so a slow producer stalls delivery
// of records behind it but never corrupts the stream (same in-order delivery
// a GASNet conduit provides per peer pair).
//
// The structure is POD-over-raw-memory: it is placement-created over a region
// of the arena and contains no pointers, so it works identically whether the
// ranks are threads or forked processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "arch/cacheline.hpp"
#include "arch/spinlock.hpp"

namespace arch {

class MpscByteRing {
 public:
  // Record states. WRAP records carry no payload; their size field is the
  // number of bytes skipped to reach the start of the buffer.
  enum : std::uint32_t { kNotReady = 0, kReady = 1, kWrap = 2 };

  // alignas(8): record positions advance by align_up(..., alignof), so
  // this sets the payload alignment every producer sees. The AM layer
  // places a WireHeader (which carries std::uint64_t fields) directly at
  // the payload start — 4-aligned records would misalign it whenever an
  // odd-sized record precedes (UBSan-visible on real traffic).
  struct alignas(8) RecordHeader {
    std::atomic<std::uint32_t> state;
    std::uint32_t size;  // payload bytes (data) or skip bytes (wrap)
  };
  static_assert(sizeof(RecordHeader) == 8 && alignof(RecordHeader) == 8);

  // Total bytes needed to host a ring with `capacity` payload-buffer bytes.
  static std::size_t footprint(std::size_t capacity) {
    return align_up(sizeof(MpscByteRing), cacheline_size) + capacity;
  }

  // Placement-creates a ring over `mem` (which must provide footprint()
  // bytes). capacity must be a power of two.
  static MpscByteRing* create(void* mem, std::size_t capacity) {
    auto* r = ::new (mem) MpscByteRing();
    r->capacity_ = capacity;
    return r;
  }

  std::size_t capacity() const { return capacity_; }

  // Largest payload a single record may carry. Anything bigger must go
  // through the rendezvous path of the AM engine. The static form serves
  // callers that know the capacity but have no ring instance yet (the
  // shm-file transport, whose rings appear lazily).
  static std::size_t max_record_payload(std::size_t capacity) {
    return capacity / 4 - sizeof(RecordHeader);
  }
  std::size_t max_record_payload() const {
    return max_record_payload(capacity_);
  }

  // Opaque ticket handed back by try_reserve and redeemed by commit().
  struct Ticket {
    RecordHeader* hdr = nullptr;
    void* payload = nullptr;
  };

  // Reserves a record of `size` payload bytes. Returns an invalid ticket
  // (payload == nullptr) when the ring lacks space; the caller is expected to
  // poll its own inbox and retry (see AmEngine::send for the deadlock-freedom
  // argument). The returned payload pointer may be filled without holding any
  // lock; call commit() to publish.
  Ticket try_reserve(std::size_t size) {
    const std::size_t need =
        align_up(sizeof(RecordHeader) + size, alignof(RecordHeader));
    SpinGuard g(lock_);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::size_t pos = head & (capacity_ - 1);
    std::size_t contiguous = capacity_ - pos;
    std::uint64_t total_need = need;
    if (contiguous < need) total_need = contiguous + need;  // wrap + record
    if (capacity_ - (head - tail) < total_need) return {};
    if (contiguous < need) {
      // Publish a wrap marker covering the unusable bytes at the end.
      auto* wh = header_at(pos);
      wh->size = static_cast<std::uint32_t>(contiguous);
      wh->state.store(kWrap, std::memory_order_release);
      head += contiguous;
      pos = 0;
    }
    auto* h = header_at(pos);
    h->size = static_cast<std::uint32_t>(size);
    h->state.store(kNotReady, std::memory_order_relaxed);
    head_.store(head + need, std::memory_order_release);
    return Ticket{h, buffer() + pos + sizeof(RecordHeader)};
  }

  // Publishes a reserved record after its payload is fully written.
  static void commit(const Ticket& t) {
    t.hdr->state.store(kReady, std::memory_order_release);
  }

  // Consumes at most one record, invoking visit(payload, size) on it.
  // Returns false if the ring is empty or the next record is not yet
  // committed. Single consumer only.
  template <typename Visit>
  bool try_consume(Visit&& visit) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if (tail == head_.load(std::memory_order_acquire)) return false;
      auto* h = header_at(tail & (capacity_ - 1));
      const std::uint32_t st = h->state.load(std::memory_order_acquire);
      if (st == kNotReady) return false;  // in-order: wait for the producer
      if (st == kWrap) {
        tail += h->size;
        tail_.store(tail, std::memory_order_release);
        continue;
      }
      visit(static_cast<void*>(reinterpret_cast<std::byte*>(h) +
                               sizeof(RecordHeader)),
            static_cast<std::size_t>(h->size));
      tail += align_up(sizeof(RecordHeader) + h->size, alignof(RecordHeader));
      tail_.store(tail, std::memory_order_release);
      return true;
    }
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t bytes_in_flight() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  MpscByteRing() = default;

  RecordHeader* header_at(std::size_t pos) {
    return reinterpret_cast<RecordHeader*>(buffer() + pos);
  }

  std::byte* buffer() {
    return reinterpret_cast<std::byte*>(this) +
           align_up(sizeof(MpscByteRing), cacheline_size);
  }

  alignas(cacheline_size) Spinlock lock_;      // serializes producers
  alignas(cacheline_size) std::atomic<std::uint64_t> head_{0};
  alignas(cacheline_size) std::atomic<std::uint64_t> tail_{0};
  std::size_t capacity_ = 0;
};

}  // namespace arch
