// Relaxed atomic accessors over plain counter fields (C++20 atomic_ref).
//
// Stats structs (AmEngine::Stats, PersonaState::Stats) keep plain
// std::uint64_t members so existing readers — benches printing fields,
// tests comparing them after a quiesce — stay source-compatible, while
// every *increment* goes through an atomic_ref: with injector threads and
// progress-pool workers bumping the same counters concurrently, plain ++
// would tear and lose counts that tests assert on. Reads via relaxed_load
// are safe at any time; direct field reads remain fine wherever a
// happens-before edge (thread join, barrier) separates them from the last
// increment.
#pragma once

#include <atomic>
#include <cstdint>

namespace arch {

inline void relaxed_inc(std::uint64_t& c) {
  std::atomic_ref<std::uint64_t>(c).fetch_add(1, std::memory_order_relaxed);
}

inline void relaxed_add(std::uint64_t& c, std::uint64_t n) {
  std::atomic_ref<std::uint64_t>(c).fetch_add(n, std::memory_order_relaxed);
}

inline std::uint64_t relaxed_load(const std::uint64_t& c) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(c))
      .load(std::memory_order_relaxed);
}

// CAS-max for peak trackers (max_inflight, max_outstanding): concurrent
// writers keep the field monotone where a read-compare-store would lose
// peaks.
inline void relaxed_max(std::uint64_t& c, std::uint64_t v) {
  std::atomic_ref<std::uint64_t> r(c);
  std::uint64_t cur = r.load(std::memory_order_relaxed);
  while (cur < v &&
         !r.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace arch
