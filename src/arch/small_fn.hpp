// Move-only type-erased callable with small-buffer optimization.
//
// The futures layer queues large numbers of short-lived callbacks; using
// std::function there would force copyability on captured move-only state
// (promises, buffers) and adds an allocation for every lambda beyond two
// words. UniqueFunction keeps the common callback (a couple of captured
// pointers) inline.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace arch {

template <typename Sig, std::size_t InlineSize = 48>
class UniqueFunction;

template <typename R, typename... A, std::size_t InlineSize>
class UniqueFunction<R(A...), InlineSize> {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, A...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= InlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      inline_ = true;
    } else {
      heap_ = new D(std::forward<F>(f));
    }
    vt_ = &vtable_for<D>;
  }

  UniqueFunction(UniqueFunction&& o) noexcept { move_from(o); }

  UniqueFunction& operator=(UniqueFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(A... args) {
    return vt_->invoke(target(), std::forward<A>(args)...);
  }

  void reset() {
    if (vt_) {
      vt_->destroy(target(), inline_);
      vt_ = nullptr;
      inline_ = false;
      heap_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*, A&&...);
    void (*destroy)(void*, bool is_inline);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
  };

  template <typename D>
  static constexpr VTable vtable_for = {
      +[](void* p, A&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<A>(args)...);
      },
      +[](void* p, bool is_inline) {
        if (is_inline)
          static_cast<D*>(p)->~D();
        else
          delete static_cast<D*>(p);
      },
      +[](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
  };

  void* target() { return inline_ ? static_cast<void*>(buf_) : heap_; }

  void move_from(UniqueFunction& o) noexcept {
    vt_ = o.vt_;
    inline_ = o.inline_;
    if (inline_) {
      vt_->relocate(buf_, o.buf_);
    } else {
      heap_ = o.heap_;
    }
    o.vt_ = nullptr;
    o.inline_ = false;
    o.heap_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  bool inline_ = false;
  union {
    void* heap_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[InlineSize];
  };
};

}  // namespace arch
