// Wall-clock timing utilities used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace arch {

// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double now_s() { return static_cast<double>(now_ns()) * 1e-9; }

// Simple stopwatch: accumulates elapsed time across start/stop pairs.
class Stopwatch {
 public:
  void start() { t0_ = now_ns(); }
  void stop() { acc_ += now_ns() - t0_; }
  void reset() { acc_ = 0; }
  std::uint64_t elapsed_ns() const { return acc_; }
  double elapsed_s() const { return static_cast<double>(acc_) * 1e-9; }

 private:
  std::uint64_t t0_ = 0;
  std::uint64_t acc_ = 0;
};

}  // namespace arch
