// Cache-line geometry and alignment helpers shared by all concurrent
// data structures in the runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace arch {

// GCC 12 on x86-64 does not reliably expose
// std::hardware_destructive_interference_size without -Winterference-size
// noise, so we pin the conventional value for the platforms we support
// (x86-64 and aarch64 both use 64-byte lines; aarch64 prefetchers pull pairs,
// so 128 is the safe destructive distance).
#if defined(__aarch64__)
inline constexpr std::size_t cacheline_size = 128;
#else
inline constexpr std::size_t cacheline_size = 64;
#endif

// Rounds n up to the next multiple of a (a must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) & ~(a - 1);
}

constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// A value padded to its own cache line, preventing false sharing between
// adjacent per-rank counters in the shared arena.
template <typename T>
struct alignas(cacheline_size) Padded {
  T value{};
};

}  // namespace arch
