// Lock-free multi-producer single-consumer queue (Vyukov's intrusive MPSC
// algorithm, non-intrusive here: one heap node per element).
//
// Push is wait-free for producers — one atomic exchange on the head plus a
// release store linking the previous node — so any number of injector
// threads can enqueue without ever spinning on each other. Pop is
// single-consumer: only the thread draining the queue (or threads
// serialized by an external lock, which is how the progress pool's
// work-stealing uses it) may call try_pop/empty_hint.
//
// The classic subtlety: a producer that has exchanged the head but not yet
// linked its predecessor leaves the chain momentarily broken. try_pop
// detects that state (tail != head but tail->next not yet visible) and
// reports the queue empty; the element becomes visible as soon as the
// producer finishes its second store. Consumers that poll (ours all do)
// simply pick it up next round.
#pragma once

#include <atomic>
#include <cassert>
#include <utility>

namespace arch {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Single-consumer teardown: drain whatever is linked. A producer still
    // pushing during destruction is a caller bug (threads must be joined
    // or quiesced first).
    Node* n = tail_;
    while (n) {
      Node* next = n->next.load(std::memory_order_relaxed);
      if (n != &stub_) delete n;
      n = next;
    }
  }

  // Producer side: any thread, any time.
  void push(T v) {
    Node* n = new Node(std::move(v));
    push_node(n);
  }

  // Consumer side. Returns false when empty — including the transient
  // mid-push window described above.
  bool try_pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (!next) return false;   // genuinely empty
      tail_ = next;              // unhook the stub
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
    }
    if (next) {
      out = std::move(tail->val);
      tail_ = next;
      delete tail;
      return true;
    }
    // tail is the last linked node. If it is also the head, the queue holds
    // exactly one element: re-insert the stub behind it so the element can
    // be unhooked, then complete the pop. If head has moved past tail, a
    // producer is mid-push — treat as empty and let the poller retry.
    Node* head = head_.load(std::memory_order_acquire);
    if (tail != head) return false;
    stub_.next.store(nullptr, std::memory_order_relaxed);
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next) {
      out = std::move(tail->val);
      tail_ = next;
      delete tail;
      return true;
    }
    return false;  // another producer slid in between; next poll gets both
  }

  // Cheap consumer-side emptiness probe (no element is popped, no lock is
  // taken): exact "empty" when it returns true at a quiesced queue, may
  // return false transiently while producers are mid-push. Used by the
  // progress loop to skip locked drains on the common idle path.
  bool empty_hint() const {
    return head_.load(std::memory_order_acquire) == tail_ &&
           tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : val(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T val{};
  };

  void push_node(Node* n) {
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  std::atomic<Node*> head_;  // most recently pushed node
  Node* tail_;               // consumer's cursor (oldest node / stub)
  Node stub_;
};

}  // namespace arch
