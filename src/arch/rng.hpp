// Deterministic, fast PRNG for workload generators (splitmix64 seeding a
// xoshiro256**). Workloads must be reproducible across runs and independent
// of libstdc++'s distribution implementations, so we keep our own.
#pragma once

#include <cstdint>

namespace arch {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses the widening-multiply trick; the tiny
  // modulo bias is irrelevant for workload generation.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t s_[4];
};

}  // namespace arch
