// upcxx-run: rank launcher for the socket transport.
//
//   upcxx-run -n <ranks> <binary> [args...]
//
// Spawns <ranks> copies of <binary>, each of which becomes one isolated
// rank: the UPCXX_SOCKET_RANK / UPCXX_SOCKET_BOOTSTRAP environment tells
// gex::launch (inside the binary) to skip its own thread/fork backend and
// run a single rank that bootstraps through this process's
// BootstrapServer — endpoint exchange, world barriers, error fan-out, and
// exit-status collection all ride the bootstrap sockets (gex/socket.hpp).
// Any rank that exits without a BYE (crash, kill, fault injection) fails
// the job: every surviving rank is told, given a grace period to unwind
// through its error-aware teardown, then killed. Exit status is 0 only
// when every rank reported success — mpirun behavior.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gex/socket.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s -n <ranks> <binary> [args...]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 0;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      nranks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--") == 0) {
      ++i;
      break;
    } else {
      break;
    }
  }
  if (nranks <= 0 || i >= argc) return usage(argv[0]);
  char** app_argv = argv + i;

  gex::BootstrapServer boot(nranks);
  std::vector<pid_t> kids;
  kids.reserve(static_cast<std::size_t>(nranks));
  const std::string ranks_s = std::to_string(nranks);
  const std::string boot_s = std::to_string(boot.port());
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::setenv("UPCXX_SOCKET_RANK", std::to_string(r).c_str(), 1);
      ::setenv("UPCXX_SOCKET_BOOTSTRAP", boot_s.c_str(), 1);
      ::setenv("UPCXX_RANKS", ranks_s.c_str(), 1);
      ::setenv("UPCXX_AM_TRANSPORT", "socket", 1);
      ::execvp(app_argv[0], app_argv);
      std::perror("upcxx-run: exec");
      ::_exit(127);
    }
    if (pid < 0) {
      std::perror("upcxx-run: fork");
      return 1;
    }
    kids.push_back(pid);
  }
  const int failures = boot.serve(kids);
  if (failures) {
    std::fprintf(stderr, "upcxx-run: %d of %d ranks failed\n", failures,
                 nranks);
    return 1;
  }
  return 0;
}
