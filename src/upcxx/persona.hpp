// Personas — the UPC++ notion of a thread of execution within a rank.
//
// The paper (§II) notes that futures and promises "are used to manage
// asynchronous dependencies within a thread and not for direct communication
// between threads or processes". Personas are the spec's mechanism that makes
// that rule usable in multithreaded ranks: every thread owns a *default
// persona*, each rank owns a distinguished *master persona*, and threads
// exchange work by posting LPCs (local procedure calls) to each other's
// persona inboxes — the one deliberately thread-safe entry point.
//
// Discipline reproduced from the spec (SEQ thread mode, which is what the
// paper's experiments use):
//   * Communication (rput/rget/rpc/atomics/collectives) may be initiated only
//     by the thread currently holding the rank's master persona. Worker
//     threads request communication by posting an LPC to the master persona.
//   * upcxx::progress() run by the master-holding thread polls the wire and
//     drains the rank-level queues; run by any other thread it drains only
//     the inboxes of the personas that thread holds.
//   * The master persona may migrate: the holder calls
//     liberate_master_persona(), and another thread of the same rank acquires
//     it with a persona_scope. While held elsewhere, the original thread must
//     not communicate.
//
// future/promise objects remain persona-affine and not thread-safe; an LPC
// with a result ships the *values* across threads and fulfills a future
// belonging to the calling persona, on the calling persona's thread.
#pragma once

#include <atomic>
#include <cassert>
#include <deque>
#include <tuple>
#include <type_traits>
#include <utility>

#include "arch/small_fn.hpp"
#include "arch/spinlock.hpp"
#include "upcxx/future.hpp"

namespace upcxx {

class persona;
class persona_scope;

namespace detail {

struct PersonaState;  // rank-level runtime state (progress.hpp)
using Lpc = arch::UniqueFunction<void()>;

// Opaque identity of the calling thread (address of a thread-local).
const void* thread_marker();

// Lazily creates the calling thread's default persona and stack.
void ensure_default_persona();

// The calling thread's persona stack manipulation (persona.cpp).
void persona_stack_push(persona* p);
void persona_stack_pop(persona* p);
bool persona_stack_contains(const persona* p);

// Runs every queued LPC of every persona the calling thread holds. Called
// from user-level progress.
void drain_persona_inboxes();

// Master-persona plumbing used by init_persona()/fini_persona().
void adopt_master(persona& p, PersonaState* st);
void drop_master(persona& p);

// Rank-context rebinding when the master persona migrates (progress.cpp).
void bind_rank_context(PersonaState* st);
PersonaState* rank_context();

}  // namespace detail

// A persona: an inbox of deferred work plus an owning-thread marker. The
// object itself is shared state; all members are private and accessed either
// by the owning thread or under the inbox lock.
class persona {
 public:
  persona() = default;
  persona(const persona&) = delete;
  persona& operator=(const persona&) = delete;
  ~persona() = default;

  // True if the calling thread currently holds this persona.
  bool active_with_caller() const {
    return owner_.load(std::memory_order_acquire) == detail::thread_marker();
  }

  // Fire-and-forget LPC: schedules fn to run during a progress call made by
  // whichever thread holds this persona. Thread-safe; may be called by any
  // thread, with or without a rank context.
  template <typename Fn>
  void lpc_ff(Fn&& fn) {
    {
      arch::SpinGuard g(mu_);
      inbox_.emplace_back(std::forward<Fn>(fn));
    }
    pending_.fetch_add(1, std::memory_order_release);
  }

  // LPC with a result: fn runs on this persona; its result is shipped back
  // and fulfills a future belonging to the *calling* persona, delivered on
  // the calling persona's thread. fn's result must be movable; a
  // future-returning fn is unwrapped on the target persona first.
  template <typename Fn>
  auto lpc(Fn&& fn)
      -> detail::future_from_result_t<std::invoke_result_t<Fn>>;

  // Number of LPCs this persona has executed (observable progress for tests
  // and benches; relaxed counter).
  std::uint64_t lpcs_executed() const {
    return lpcs_executed_.load(std::memory_order_relaxed);
  }

 private:
  friend class persona_scope;
  friend void detail::ensure_default_persona();
  friend void detail::persona_stack_push(persona*);
  friend void detail::persona_stack_pop(persona*);
  friend void detail::drain_persona_inboxes();
  friend void detail::adopt_master(persona&, detail::PersonaState*);
  friend void detail::drop_master(persona&);
  friend void liberate_master_persona();

  mutable arch::Spinlock mu_;
  std::deque<detail::Lpc> inbox_;
  // Queued-LPC count, maintained outside the lock so progress() can skip
  // empty inboxes without taking it (every user-level progress call on
  // every thread probes this — it must stay allocation- and lock-free).
  std::atomic<std::uint32_t> pending_{0};
  std::atomic<const void*> owner_{nullptr};
  std::atomic<std::uint64_t> lpcs_executed_{0};
  // Non-null only on a rank's master persona: holding it carries the right
  // (and obligation) to progress the rank-level queues.
  detail::PersonaState* rank_state_ = nullptr;
};

// The calling thread's default persona (created on first use, always at the
// bottom of the thread's persona stack).
persona& default_persona();

// The persona at the top of the calling thread's stack: the one new
// asynchronous operations are registered on.
persona& current_persona();

// The rank's master persona. Requires a rank context on the calling thread
// (i.e. the caller is the rank's primordial thread or currently holds the
// master persona); worker threads should instead receive a persona& from
// their spawner before the master is liberated.
persona& master_persona();

// Releases the master persona from the calling thread (which must hold it as
// its current persona) so another thread may acquire it via persona_scope.
// The rank context is unbound: this thread must not communicate until it
// re-acquires the master persona.
void liberate_master_persona();

// RAII acquisition of a persona onto the calling thread's stack. Acquiring a
// persona owned by another thread is a programming error (assert); use the
// mutex overload when several threads contend for one persona.
class persona_scope {
 public:
  explicit persona_scope(persona& p) : p_(&p) { acquire(); }

  // Locks mu before acquiring and unlocks after release, serializing
  // contending threads (mirrors upcxx::persona_scope(mutex, persona)).
  template <typename Mutex>
  persona_scope(Mutex& mu, persona& p) : p_(&p) {
    mu.lock();
    unlock_ = [&mu] { mu.unlock(); };
    acquire();
  }

  ~persona_scope() {
    release();
    if (unlock_) unlock_();
  }

  persona_scope(const persona_scope&) = delete;
  persona_scope& operator=(const persona_scope&) = delete;

 private:
  void acquire();
  void release();

  persona* p_;
  arch::UniqueFunction<void()> unlock_;
};

template <typename Fn>
auto persona::lpc(Fn&& fn)
    -> detail::future_from_result_t<std::invoke_result_t<Fn>> {
  using R = std::invoke_result_t<Fn>;
  using Fut = detail::future_from_result_t<R>;
  auto st = std::make_shared<typename Fut::state_t>();
  persona* reply_to = &current_persona();
  lpc_ff([st, reply_to, f = std::forward<Fn>(fn)]() mutable {
    if constexpr (std::is_void_v<R>) {
      f();
      reply_to->lpc_ff([st] {
        st->value.emplace();
        st->retire_deps(1);
      });
    } else if constexpr (detail::is_future_v<R>) {
      // Unwrap on the target persona, then ship the values.
      f().then_raw([st, reply_to](auto&... vals) {
        auto tup = std::make_tuple(vals...);
        reply_to->lpc_ff([st, tup = std::move(tup)]() mutable {
          st->value.emplace(std::move(tup));
          st->retire_deps(1);
        });
      });
    } else {
      auto v = f();
      reply_to->lpc_ff([st, v = std::move(v)]() mutable {
        st->value.emplace(std::move(v));
        st->retire_deps(1);
      });
    }
  });
  return Fut(st);
}

}  // namespace upcxx
