// Futures and promises — the asynchrony vocabulary of UPC++ v1.0 (paper §II).
//
// Semantics reproduced from the paper and the v1.0 spec:
//  * A future is the consumer side of a non-blocking operation; a promise is
//    the producer side. Multiple futures may view one promise's state.
//  * Futures/promises are *persona-local*: they manage dependencies within a
//    rank's thread of control and are deliberately not thread-safe (§II,
//    "used to manage asynchronous dependencies within a thread").
//  * `.then(cb)` chains a callback, producing a new future for cb's result;
//    future-returning callbacks are unwrapped.
//  * `when_all(...)` conjoins futures, concatenating their value lists.
//  * A promise carries a dependency counter: `require_anonymous` registers
//    dependencies, `fulfill_anonymous` retires them, `finalize` retires the
//    initial dependency and hands out the future ("list of futures to
//    satisfy" — paper Fig 2 discussion).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "arch/small_fn.hpp"

namespace upcxx {

// Rank index type (world or team relative), as in UPC++.
using intrank_t = int;

// Thrown by blocking waits (future::wait, barrier, and every blocking
// operation built on them) when another rank of the job has failed: the
// awaited completion may depend on the dead rank and could otherwise never
// arrive, so the wait surfaces the job failure instead of spinning forever.
// Teardown paths already break on the same flag; this extends the contract
// to user-level waits (ROADMAP "error-aware wait").
class rank_failed : public std::runtime_error {
 public:
  rank_failed();
};

template <typename... T>
class future;
template <typename... T>
class promise;

// Runs one round of user-level progress; defined in progress.cpp. Declared
// here so future::wait() can spin on it.
void progress();

namespace detail {

// Monotone count of actions progress has performed on this rank (defined in
// progress.cpp); wait loops yield the core when a progress call leaves it
// unchanged.
std::uint64_t progress_work_counter();

// True once any rank of the job has failed (the arena error flag); false
// outside an SPMD region. Defined in progress.cpp.
bool job_failed();
[[noreturn]] void throw_rank_failed();

}  // namespace detail

namespace detail {

template <typename... T>
struct FutureState {
  bool ready = false;
  std::optional<std::tuple<T...>> value;
  // Dependency counter for the owning promise (a promise starts with one
  // anonymous dependency that finalize()/fulfill_result() retires).
  std::int64_t deps = 1;
  std::vector<arch::UniqueFunction<void(std::tuple<T...>&)>> callbacks;

  void mark_ready() {
    assert(!ready);
    if constexpr (sizeof...(T) == 0) {
      if (!value) value.emplace();
    }
    assert(value && "promise finalized without a result");
    ready = true;
    // Callbacks may attach more callbacks to *other* futures, but not to
    // this one re-entrantly once ready (then() short-circuits on ready).
    auto cbs = std::move(callbacks);
    callbacks.clear();
    for (auto& cb : cbs) cb(*value);
  }

  void retire_deps(std::int64_t n) {
    assert(deps >= n && "fulfilled more dependencies than required");
    deps -= n;
    if (deps == 0) mark_ready();
  }
};

// ---- type computations -----------------------------------------------------

template <typename T>
struct is_future : std::false_type {};
template <typename... T>
struct is_future<future<T...>> : std::true_type {};
template <typename T>
inline constexpr bool is_future_v = is_future<std::decay_t<T>>::value;

// future_from_result<R>: the future type produced by a .then callback
// returning R (void -> future<>, future<U...> -> future<U...>, else
// future<R>).
template <typename R>
struct future_from_result {
  using type = future<R>;
};
template <>
struct future_from_result<void> {
  using type = future<>;
};
template <typename... U>
struct future_from_result<future<U...>> {
  using type = future<U...>;
};
template <typename R>
using future_from_result_t = typename future_from_result<std::decay_t<R>>::type;

// Concatenation of value lists for when_all.
template <typename A, typename B>
struct future_cat;
template <typename... A, typename... B>
struct future_cat<future<A...>, future<B...>> {
  using type = future<A..., B...>;
};
template <typename... Fs>
struct futures_cat {
  using type = future<>;
};
template <typename F>
struct futures_cat<F> {
  using type = F;
};
template <typename F, typename... Rest>
struct futures_cat<F, Rest...> {
  using type =
      typename future_cat<F, typename futures_cat<Rest...>::type>::type;
};

}  // namespace detail

// ----------------------------------------------------------------- future<T>

template <typename... T>
class future {
 public:
  using state_t = detail::FutureState<T...>;
  // result type: void for 0 values, T for 1, tuple for many.
  using result_type = std::conditional_t<
      sizeof...(T) == 0, void,
      std::conditional_t<sizeof...(T) == 1,
                         std::tuple_element_t<0, std::tuple<T..., void>>,
                         std::tuple<T...>>>;

  future() = default;  // non-ready, unattached future
  explicit future(std::shared_ptr<state_t> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }

  bool is_ready() const { return st_ && st_->ready; }

  // Returns the i-th value (requires readiness).
  template <std::size_t I = 0>
  const std::tuple_element_t<I, std::tuple<T...>>& result_ref() const {
    assert(is_ready());
    return std::get<I>(*st_->value);
  }

  result_type result() const {
    assert(is_ready());
    if constexpr (sizeof...(T) == 0) {
      return;
    } else if constexpr (sizeof...(T) == 1) {
      return std::get<0>(*st_->value);
    } else {
      return *st_->value;
    }
  }

  const std::tuple<T...>& result_tuple() const {
    assert(is_ready());
    return *st_->value;
  }

  // Blocks (spinning on user progress) until ready; returns the result.
  // Matches the paper: "the wait call is simply a spin loop around
  // progress". Throws rank_failed once another rank of the job has died —
  // the completion this future awaits may depend on that rank, and a
  // failed job must tear down instead of hanging in user waits.
  result_type wait() const {
    // Yield as soon as a progress call accomplishes nothing: on
    // oversubscribed hosts (single-core CI) the peer this future depends on
    // needs the core to produce the completion, and repeat-polling empty
    // queues only delays it by a scheduling quantum.
    //
    // Check order matters for the failure path: progress first, then
    // readiness, then the error flag — any completion already delivered
    // (e.g. a barrier release committed to our inbox before the failing
    // rank raised the flag) is consumed and returned rather than
    // abandoned.
    while (!is_ready()) {
      const std::uint64_t w = detail::progress_work_counter();
      ::upcxx::progress();
      if (is_ready()) break;
      if (detail::job_failed()) detail::throw_rank_failed();
      if (detail::progress_work_counter() == w) std::this_thread::yield();
    }
    return result();
  }

  // Chains `fn` to run on the values once ready; returns the future of fn's
  // (possibly future-valued) result. Runs immediately when already ready.
  template <typename Fn>
  auto then(Fn&& fn) const
      -> detail::future_from_result_t<std::invoke_result_t<Fn, T&...>> {
    using R = std::invoke_result_t<Fn, T&...>;
    using FutR = detail::future_from_result_t<R>;
    assert(st_ && "then() on an invalid future");
    auto pr = std::make_shared<typename FutR::state_t>();
    auto run = [pr, f = std::forward<Fn>(fn)](std::tuple<T...>& vals) mutable {
      if constexpr (std::is_void_v<R>) {
        std::apply(f, vals);
        pr->value.emplace();
        pr->retire_deps(1);
      } else if constexpr (detail::is_future_v<R>) {
        auto inner = std::apply(f, vals);
        inner.then_raw([pr](auto&... inner_vals) {
          pr->value.emplace(inner_vals...);
          pr->retire_deps(1);
        });
      } else {
        pr->value.emplace(std::apply(f, vals));
        pr->retire_deps(1);
      }
    };
    if (st_->ready) {
      run(*st_->value);
    } else {
      st_->callbacks.emplace_back(std::move(run));
    }
    return FutR(pr);
  }

  // Internal: like then() but fn takes raw refs and no new future is made.
  template <typename Fn>
  void then_raw(Fn&& fn) const {
    assert(st_);
    if (st_->ready) {
      std::apply(fn, *st_->value);
    } else {
      st_->callbacks.emplace_back(
          [f = std::forward<Fn>(fn)](std::tuple<T...>& vals) mutable {
            std::apply(f, vals);
          });
    }
  }

  std::shared_ptr<state_t> state() const { return st_; }

 private:
  std::shared_ptr<state_t> st_;
};

// --------------------------------------------------------------- promise<T>

template <typename... T>
class promise {
 public:
  using state_t = detail::FutureState<T...>;

  promise() : st_(std::make_shared<state_t>()) {}

  // Registers n additional dependencies that must be fulfilled before the
  // associated future becomes ready.
  void require_anonymous(std::int64_t n) {
    assert(!st_->ready);
    st_->deps += n;
  }

  // Retires n dependencies.
  void fulfill_anonymous(std::int64_t n) { st_->retire_deps(n); }

  // Supplies the result values and retires one dependency.
  template <typename... U>
  void fulfill_result(U&&... vals) {
    assert(!st_->value && "result already supplied");
    st_->value.emplace(std::forward<U>(vals)...);
    st_->retire_deps(1);
  }

  // Retires the initial dependency and returns the future. Call exactly
  // once, after all require/fulfill registration is set up.
  future<T...> finalize() {
    st_->retire_deps(1);
    return future<T...>(st_);
  }

  future<T...> get_future() const { return future<T...>(st_); }

 private:
  std::shared_ptr<state_t> st_;
};

// ------------------------------------------------------------- constructors

// make_future(v...): a trivially ready future carrying v...
template <typename... V>
future<std::decay_t<V>...> make_future(V&&... v) {
  auto st = std::make_shared<detail::FutureState<std::decay_t<V>...>>();
  st->value.emplace(std::forward<V>(v)...);
  st->ready = true;
  st->deps = 0;
  return future<std::decay_t<V>...>(std::move(st));
}

// when_all: conjoins futures into one whose value list is the concatenation
// of the inputs' lists (paper §II).
namespace detail {

// Collects per-input value tuples, then concatenates them into the output
// future's value list once every input is ready.
template <typename FutOut, typename... Fs>
struct WhenAllStager {
  using StOut = typename FutOut::state_t;
  std::shared_ptr<StOut> st = std::make_shared<StOut>();
  std::tuple<std::optional<
      std::decay_t<decltype(std::declval<Fs>().result_tuple())>>...>
      parts;
  std::size_t remaining = sizeof...(Fs);

  template <std::size_t... I>
  void finish(std::index_sequence<I...>) {
    st->value.emplace(std::tuple_cat(std::move(*std::get<I>(parts))...));
    st->retire_deps(1);
  }
  void complete() { finish(std::index_sequence_for<Fs...>{}); }
};

}  // namespace detail

template <typename... Fs>
auto when_all(Fs... fs) ->
    typename detail::futures_cat<std::decay_t<Fs>...>::type {
  using FutOut = typename detail::futures_cat<std::decay_t<Fs>...>::type;
  auto stager = std::make_shared<
      detail::WhenAllStager<FutOut, std::decay_t<Fs>...>>();
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (fs.then_raw([stager](auto&... vals) {
      std::get<I>(stager->parts).emplace(vals...);
      if (--stager->remaining == 0) stager->complete();
    }),
     ...);
  }(std::index_sequence_for<Fs...>{});
  if constexpr (sizeof...(Fs) == 0) stager->complete();
  return FutOut(stager->st);
}

// when_all_range: conjoins a runtime-sized collection of homogeneous
// futures. For future<T> inputs the result carries the values in input
// order; for future<> inputs it is a bare future<>.
template <typename T>
future<std::vector<T>> when_all_range(const std::vector<future<T>>& fs) {
  struct State {
    std::vector<T> values;
    std::size_t remaining;
  };
  auto pr = std::make_shared<detail::FutureState<std::vector<T>>>();
  auto st = std::make_shared<State>();
  st->values.resize(fs.size());
  st->remaining = fs.size();
  if (fs.empty()) {
    pr->value.emplace(std::vector<T>{});
    pr->retire_deps(1);
    return future<std::vector<T>>(pr);
  }
  for (std::size_t i = 0; i < fs.size(); ++i) {
    fs[i].then_raw([pr, st, i](T& v) {
      st->values[i] = v;
      if (--st->remaining == 0) {
        pr->value.emplace(std::move(st->values));
        pr->retire_deps(1);
      }
    });
  }
  return future<std::vector<T>>(pr);
}

inline future<> when_all_range(const std::vector<future<>>& fs) {
  promise<> pr;
  pr.require_anonymous(static_cast<std::int64_t>(fs.size()));
  for (const auto& f : fs)
    f.then_raw([pr]() mutable { pr.fulfill_anonymous(1); });
  return pr.finalize();
}

namespace detail {
// A cached, already-ready future<> shared by all synchronously-completed
// operations on this rank — the zero-allocation fast path for operations
// that complete at injection (RMA/atomics on the zero-latency wire).
inline const future<>& ready_future() {
  thread_local future<> f = make_future();
  return f;
}
}  // namespace detail

// to_future: identity on futures, wraps plain values.
template <typename T>
auto to_future(T&& v) {
  if constexpr (detail::is_future_v<T>) {
    return std::forward<T>(v);
  } else {
    return make_future(std::forward<T>(v));
  }
}

}  // namespace upcxx
