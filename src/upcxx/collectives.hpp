// Typed collectives over the generic reduce/broadcast engine (team.cpp).
//
// The paper lists collectives among UPC++'s asynchronous operation types and
// notes "current work includes adding a rich set of non-blocking collective
// operations"; we provide the set the applications and benchmarks need:
// barrier, broadcast, reduce_one, reduce_all — all future-based.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>

#include "upcxx/dist_object.hpp"
#include "upcxx/team.hpp"

namespace upcxx {

// Standard reduction functors (upcxx::op_fast_add etc.).
struct op_fast_add {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct op_fast_mul {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a * b;
  }
};
struct op_fast_min {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};
struct op_fast_max {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};
struct op_fast_bit_or {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a | b;
  }
};
struct op_fast_bit_and {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a & b;
  }
};

// ------------------------------------------------------------------ barrier

inline future<> barrier_async(const team& tm = world()) {
  // Barrier entry drains this rank's aggregation buffers and forces every
  // pending XferEngine chunk onto the wire: everything sent before the
  // barrier is on the wire — and every RMA issued before the barrier is
  // visible at its target — before any rank can observe the barrier
  // complete (tests/test_aggregation.cpp relies on this ordering).
  if (!detail::has_persona()) {
    // Injected barrier: the drains below are rank state, so ship them
    // ahead of the collective entry through the caller's submit shard —
    // shard FIFO guarantees they run (master-side) before the entry that
    // coll_enter submits next. The wire-shard drain first: this thread's
    // earlier injected rpc/rpc_ff sends ride those queues, and the barrier
    // ordering contract covers them too.
    detail::op_context::current().run_at_rank([] {
      auto& p = detail::persona();
      for (std::uint32_t s = 0; s < p.n_wire_shards; ++s)
        detail::drain_wire_shard(p, s, /*may_poll=*/true);
      detail::flush_aggregation();
      detail::drain_xfer_copies();
    });
  } else {
    detail::flush_aggregation();
    detail::drain_xfer_copies();
  }
  promise<> pr;
  detail::CollOps ops;
  ops.up = true;
  ops.down = true;
  ops.combine = [](std::vector<std::byte>&, detail::Reader&) {};
  ops.deliver = [pr](detail::Reader&) mutable { pr.fulfill_anonymous(1); };
  pr.require_anonymous(1);
  detail::coll_enter(tm, 0, {}, std::move(ops));
  return pr.finalize();
}

inline void barrier(const team& tm) { barrier_async(tm).wait(); }
inline void barrier() { barrier(world()); }

// ---------------------------------------------------------------- broadcast

// Broadcasts a serializable value from team rank `root`; everyone (root
// included) receives it through the returned future.
template <typename T>
future<T> broadcast(T value, intrank_t root, const team& tm = world()) {
  promise<T> pr;
  detail::CollOps ops;
  ops.up = false;
  ops.down = true;
  ops.deliver = [pr](detail::Reader& r) mutable {
    pr.fulfill_result(serialization<std::decay_t<T>>::deserialize(r));
  };
  std::vector<std::byte> contrib;
  if (tm.rank_me() == root) {
    detail::SizeArchive sa;
    serialization<std::decay_t<T>>::serialize(sa, value);
    contrib.resize(sa.size());
    detail::WriteArchive wa(contrib.data());
    serialization<std::decay_t<T>>::serialize(wa, value);
  }
  detail::coll_enter(tm, root, std::move(contrib), std::move(ops));
  return pr.get_future();
}

// Bulk broadcast: replicates buf[0..n) from root into every rank's buf.
template <typename T>
future<> broadcast(T* buf, std::size_t n, intrank_t root,
                   const team& tm = world()) {
  static_assert(std::is_trivially_copyable_v<T>,
                "bulk broadcast requires a trivially copyable type");
  promise<> pr;
  pr.require_anonymous(1);
  detail::CollOps ops;
  ops.up = false;
  ops.down = true;
  ops.deliver = [pr, buf, n](detail::Reader& r) mutable {
    if (n) std::memcpy(buf, r.raw(n * sizeof(T)), n * sizeof(T));
    pr.fulfill_anonymous(1);
  };
  std::vector<std::byte> contrib;
  if (tm.rank_me() == root && n) {
    contrib.resize(n * sizeof(T));
    std::memcpy(contrib.data(), buf, n * sizeof(T));
  }
  detail::coll_enter(tm, root, std::move(contrib), std::move(ops));
  return pr.finalize();
}

// ------------------------------------------------------------------- reduce

namespace detail {

template <typename T, typename BinaryOp>
future<T> reduce_generic(T value, BinaryOp op, intrank_t root, const team& tm,
                         bool all) {
  static_assert(std::is_trivially_copyable_v<T>,
                "reductions require a trivially copyable type");
  promise<T> pr;
  CollOps ops;
  ops.up = true;
  ops.down = all;
  ops.combine = [op](std::vector<std::byte>& accum, Reader& r) mutable {
    T a;
    std::memcpy(&a, accum.data(), sizeof(T));
    T b = r.pod<T>();
    a = op(a, b);
    std::memcpy(accum.data(), &a, sizeof(T));
  };
  ops.deliver = [pr](Reader& r) mutable {
    if (r.remaining() >= sizeof(T)) {
      pr.fulfill_result(r.pod<T>());
    } else {
      // Non-root rank of a rooted reduction: value unspecified (as in
      // UPC++); deliver a default-constructed T.
      pr.fulfill_result(T{});
    }
  };
  std::vector<std::byte> contrib(sizeof(T) + 8);
  // Match the wire framing combine/deliver expect: align(8)+pod.
  WriteArchive wa(contrib.data());
  serialization<T>::serialize(wa, value);
  contrib.resize(wa.written());
  coll_enter(tm, root, std::move(contrib), std::move(ops));
  return pr.get_future();
}

}  // namespace detail

// Reduction to one rank: the result is delivered at team rank `root`
// (other ranks' futures carry an unspecified — here default — value).
template <typename T, typename BinaryOp>
future<T> reduce_one(T value, BinaryOp op, intrank_t root,
                     const team& tm = world()) {
  return detail::reduce_generic(value, op, root, tm, /*all=*/false);
}

// Reduction delivered to every rank.
template <typename T, typename BinaryOp>
future<T> reduce_all(T value, BinaryOp op, const team& tm = world()) {
  return detail::reduce_generic(value, op, 0, tm, /*all=*/true);
}

// ------------------------------------------------------- gather/allgather
//
// Part of the "rich set of non-blocking collective operations" the paper
// lists as current work. Contributions are tagged with the contributor's
// team rank on the wire, accumulated up the tree, and (for allgather)
// broadcast back down; the deliverer reassembles rank order.

namespace detail {

template <typename T>
future<std::vector<T>> gather_generic(const T& value, intrank_t root,
                                      const team& tm, bool all) {
  promise<std::vector<T>> pr;
  const int P = tm.rank_n();
  CollOps ops;
  ops.up = true;
  ops.down = all;
  // Accumulator: concatenated [rank, serialized value] records.
  ops.combine = [](std::vector<std::byte>& accum, Reader& r) {
    const std::size_t n = r.remaining();
    const std::size_t at = accum.size();
    accum.resize(at + n);
    std::memcpy(accum.data() + at, r.raw(n), n);
  };
  ops.deliver = [pr, P](Reader& r) mutable {
    std::vector<T> out(static_cast<std::size_t>(P));
    std::vector<bool> seen(static_cast<std::size_t>(P), false);
    while (r.remaining() > 0) {
      const auto rank = r.pod<std::uint32_t>();
      T v = serialization<std::decay_t<T>>::deserialize(r);
      assert(rank < static_cast<std::uint32_t>(P) && !seen[rank]);
      seen[rank] = true;
      out[rank] = std::move(v);
      r.align(8);  // records are 8-aligned back to back
    }
    if (r.remaining() == 0 && !seen.empty()) {
      // Root of a rooted gather sees everything; non-roots see nothing and
      // deliver an empty vector (checked by the caller).
      bool complete = true;
      for (bool s : seen) complete &= s;
      if (!complete) {
        pr.fulfill_result(std::vector<T>{});
        return;
      }
    }
    pr.fulfill_result(std::move(out));
  };
  // My contribution record: [team rank][value], 8-aligned.
  SizeArchive sa;
  const auto my_rank = static_cast<std::uint32_t>(tm.rank_me());
  serialization<std::uint32_t>::serialize(sa, my_rank);
  serialization<std::decay_t<T>>::serialize(sa, value);
  sa.align(8);
  std::vector<std::byte> contrib(sa.size());
  WriteArchive wa(contrib.data());
  serialization<std::uint32_t>::serialize(wa, my_rank);
  serialization<std::decay_t<T>>::serialize(wa, value);
  wa.align(8);
  coll_enter(tm, root, std::move(contrib), std::move(ops));
  return pr.get_future();
}

}  // namespace detail

// Gathers one value per rank; the vector (indexed by team rank) is
// delivered at `root` (non-root futures carry an empty vector).
template <typename T>
future<std::vector<T>> gather(const T& value, intrank_t root,
                              const team& tm = world()) {
  return detail::gather_generic(value, root, tm, /*all=*/false);
}

// Gathers one value per rank and delivers the full vector everywhere.
template <typename T>
future<std::vector<T>> allgather(const T& value, const team& tm = world()) {
  return detail::gather_generic(value, 0, tm, /*all=*/true);
}

// Inclusive prefix scan: rank i receives op(v_0, ..., v_i). Built on
// allgather (fine at the team sizes a single node hosts; a tree scan is a
// drop-in replacement behind the same signature).
template <typename T, typename BinaryOp>
future<T> scan_inclusive(T value, BinaryOp op, const team& tm = world()) {
  static_assert(std::is_trivially_copyable_v<T>);
  const intrank_t me = tm.rank_me();
  return allgather(value, tm).then([me, op](std::vector<T>& all) {
    T acc = all[0];
    for (intrank_t i = 1; i <= me; ++i) acc = op(acc, all[i]);
    return acc;
  });
}

// Exclusive prefix scan: rank i receives op(v_0, ..., v_{i-1}); rank 0
// receives a value-initialized T (as with MPI_Exscan, whose rank-0 result is
// undefined — we pin it for testability).
template <typename T, typename BinaryOp>
future<T> scan_exclusive(T value, BinaryOp op, const team& tm = world()) {
  static_assert(std::is_trivially_copyable_v<T>);
  const intrank_t me = tm.rank_me();
  return allgather(value, tm).then([me, op](std::vector<T>& all) {
    if (me == 0) return T{};
    T acc = all[0];
    for (intrank_t i = 1; i < me; ++i) acc = op(acc, all[i]);
    return acc;
  });
}

// ------------------------------------------------- bulk elementwise reduce

namespace detail {

template <typename T, typename BinaryOp>
future<> reduce_bulk_generic(const T* src, T* dst, std::size_t n, BinaryOp op,
                             intrank_t root, const team& tm, bool all) {
  static_assert(std::is_trivially_copyable_v<T>,
                "bulk reductions require a trivially copyable type");
  promise<> pr;
  pr.require_anonymous(1);
  const bool i_receive = all || tm.rank_me() == root;
  CollOps ops;
  ops.up = true;
  ops.down = all;
  ops.combine = [n, op](std::vector<std::byte>& accum, Reader& r) mutable {
    auto* a = reinterpret_cast<T*>(accum.data());
    const T* b = static_cast<const T*>(r.raw(n * sizeof(T)));
    for (std::size_t i = 0; i < n; ++i) a[i] = op(a[i], b[i]);
  };
  ops.deliver = [pr, dst, n, i_receive](Reader& r) mutable {
    if (n && i_receive && r.remaining() >= n * sizeof(T))
      std::memcpy(dst, r.raw(n * sizeof(T)), n * sizeof(T));
    pr.fulfill_anonymous(1);
  };
  std::vector<std::byte> contrib(n * sizeof(T));
  if (n) std::memcpy(contrib.data(), src, n * sizeof(T));
  coll_enter(tm, root, std::move(contrib), std::move(ops));
  return pr.finalize();
}

}  // namespace detail

// Elementwise reduction of src[0..n) into dst[0..n) at team rank `root`
// (dst untouched elsewhere). src and dst may alias.
template <typename T, typename BinaryOp>
future<> reduce_one(const T* src, T* dst, std::size_t n, BinaryOp op,
                    intrank_t root, const team& tm = world()) {
  return detail::reduce_bulk_generic(src, dst, n, op, root, tm,
                                     /*all=*/false);
}

// Elementwise reduction delivered into every rank's dst.
template <typename T, typename BinaryOp>
future<> reduce_all(const T* src, T* dst, std::size_t n, BinaryOp op,
                    const team& tm = world()) {
  return detail::reduce_bulk_generic(src, dst, n, op, 0, tm, /*all=*/true);
}

// -------------------------------------------------------------- alltoall
//
// Personalized exchange: send[j] goes to team rank j; the future carries
// recv with recv[i] = the value team rank i sent here. Implemented with the
// point-to-point strategy the paper's extend-add uses (one RPC per peer,
// counted by a promise) rather than a rooted tree — the same design choice
// MUMPS makes versus STRUMPACK's collective (§IV-D). T may be any
// serializable type, including std::vector (yielding an alltoallv).

template <typename T>
future<std::vector<T>> alltoall(const std::vector<T>& send,
                                const team& tm = world()) {
  const int P = tm.rank_n();
  assert(static_cast<int>(send.size()) == P &&
         "alltoall: one value per team rank");
  struct State {
    std::vector<T> recv;
    promise<> pr;
  };
  auto st = std::make_shared<State>();
  st->recv.resize(static_cast<std::size_t>(P));
  st->pr.require_anonymous(P);
  // The dist_object gives peers a name for this call's state; construction
  // order is collective, so ids agree. An early peer RPC parks until our
  // representative exists (dist_object requeue semantics).
  auto dobj = std::make_shared<dist_object<std::shared_ptr<State>>>(st, tm);
  const int me = tm.rank_me();
  st->recv[me] = send[me];
  st->pr.fulfill_anonymous(1);
  for (int j = 0; j < P; ++j) {
    if (j == me) continue;
    rpc_ff(tm[j],
           [](dist_object<std::shared_ptr<State>>& d, int from, const T& v) {
             (*d)->recv[from] = v;
             (*d)->pr.fulfill_anonymous(1);
           },
           *dobj, me, send[j]);
  }
  // dobj is captured so the representative outlives all inbound RPCs: the
  // promise fulfills on exactly the last one.
  return st->pr.finalize().then(
      [st, dobj] { return std::move(st->recv); });
}

}  // namespace upcxx
