#include "upcxx/team.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

#include "arch/rng.hpp"
#include "upcxx/collectives.hpp"

namespace upcxx {

namespace detail {
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return arch::splitmix64(s);
}
}  // namespace detail

team& world() {
  // Resolved through the rank context so the world team follows the master
  // persona when it migrates to another thread; injector threads reach it
  // through their injection binding (the team object itself is immutable
  // rank state, safe to read from any thread).
  auto* st = detail::rank_context();
  if (!st) st = detail::inject_context();
  assert(st && st->world_team &&
         "world() requires a rank or injection context (inside upcxx::run, "
         "on the thread holding the master persona or inside an "
         "upcxx::injection_scope)");
  return *st->world_team;
}

namespace detail {

void init_world_team() {
  std::vector<intrank_t> all(gex::rank_n());
  for (int i = 0; i < gex::rank_n(); ++i) all[i] = i;
  persona().world_team = std::make_unique<team>(
      TeamAccess::make(std::move(all), gex::rank_me(), /*id=*/1));
  // Ensure every rank's persona + world team exist before user code runs.
  gex::arena().world_barrier();
}

void fini_world_team() { persona().world_team.reset(); }

// ------------------------------------------------------- collective engine

struct PersonaState::CollInstance {
  bool entered = false;
  bool delivered = false;
  std::uint64_t key = 0;
  // Tree shape (world ranks), fixed at entry.
  std::vector<int> children;
  int parent = -1;
  bool is_root = false;
  int expected_children = 0;
  int got_children = 0;
  CollOps ops;
  std::vector<std::byte> accum;
  // Traffic that arrived before the local rank entered the collective.
  std::vector<std::vector<std::byte>> early_contribs;
  bool got_down = false;
  bool up_sent = false;
  std::vector<std::byte> down_data;
};

namespace {

using Coll = PersonaState::CollInstance;

Coll& coll_instance(std::uint64_t key) {
  auto& p = persona();
  auto it = p.colls.find(key);
  if (it == p.colls.end()) {
    it = p.colls.emplace(key, std::make_shared<Coll>()).first;
    it->second->key = key;
  }
  return *it->second;
}

// Collective control traffic is latency-sensitive (a barrier's critical
// path is a chain of these), so it rides the immediate path — and barrier
// entry has already flushed the aggregation buffers, so staged application
// traffic keeps its ordering relative to the collective.
void coll_send(int world_target, DispatchIdx dispatch, std::uint64_t key,
               const std::vector<std::byte>& payload) {
  const std::size_t body = sizeof(std::uint64_t) + payload.size();
  send_msg_idx(
      world_target, dispatch, body,
      [&](WriteArchive& wa) {
        wa.bytes(&key, sizeof key);
        wa.bytes(payload.data(), payload.size());
      },
      wire_mode::immediate);
}

void coll_up_dispatch(int src, Reader& r);
void coll_down_dispatch(int src, Reader& r);

void coll_finish(Coll& c) {
  // Deliver locally, forward the result down the tree, retire the instance.
  assert(!c.delivered);
  c.delivered = true;
  for (int child : c.children)
    coll_send(child, DispatchReg<&coll_down_dispatch>::idx, c.key,
              c.down_data);
  Reader r(c.down_data.data(), c.down_data.size());
  c.ops.deliver(r);
  persona().colls.erase(c.key);  // c is dangling after this
}

// Advances the up phase once local entry has happened; called whenever a
// contribution arrives or on entry.
void coll_advance(Coll& c) {
  if (!c.entered) return;
  // Fold in any early contributions now that we know how to combine.
  for (auto& buf : c.early_contribs) {
    Reader r(buf.data(), buf.size());
    c.ops.combine(c.accum, r);
    ++c.got_children;
  }
  c.early_contribs.clear();

  if (c.ops.up && c.got_children < c.expected_children) return;

  if (c.is_root) {
    if (c.ops.down) {
      c.down_data = std::move(c.accum);
      coll_finish(c);
    } else {
      // Rooted reduction: root receives the accumulated value, the others
      // get an empty result immediately after their up-send (handled in
      // coll_enter).
      c.down_data = std::move(c.accum);
      coll_finish(c);
    }
    return;
  }

  if (c.ops.up && !c.up_sent) {
    coll_send(c.parent, DispatchReg<&coll_up_dispatch>::idx, c.key, c.accum);
    c.up_sent = true;
    if (!c.ops.down) {
      // No down phase: this rank's role ends; deliver empty result.
      c.down_data.clear();
      coll_finish(c);
      return;
    }
  }
  if (c.got_down) {
    coll_finish(c);
  }
}

void coll_up_dispatch(int src, Reader& r) {
  const auto key = r.pod<std::uint64_t>();
  Coll& c = coll_instance(key);
  if (!c.entered) {
    const std::size_t n = r.remaining();
    std::vector<std::byte> copy(n);
    // Barrier contributions are empty; vector::data() is null then.
    if (n) std::memcpy(copy.data(), r.cursor(), n);
    c.early_contribs.push_back(std::move(copy));
    return;
  }
  c.ops.combine(c.accum, r);
  ++c.got_children;
  coll_advance(c);
}

void coll_down_dispatch(int src, Reader& r) {
  const auto key = r.pod<std::uint64_t>();
  Coll& c = coll_instance(key);
  const std::size_t n = r.remaining();
  c.down_data.resize(n);
  if (n) std::memcpy(c.down_data.data(), r.cursor(), n);
  c.got_down = true;
  coll_advance(c);
}

}  // namespace

CollTopology& coll_topology() {
  thread_local CollTopology t = CollTopology::tree;
  return t;
}

void coll_enter(const team& tm, intrank_t root, std::vector<std::byte> contrib,
                CollOps ops) {
  if (!has_persona()) {
    // Injected collective: the engine state (instance map, sequence
    // counters, tree sends) is master-persona-owned, so the whole entry
    // ships over the caller's submit shard as a descriptor — contribution
    // bytes and fold/deliver closures were built caller-side. The sequence
    // number is allocated master-side, in shard-drain order; one injector
    // thread's collectives stay FIFO through its shard, which is what key
    // agreement across ranks requires (concurrent collectives from
    // *different* threads must be symmetric, the same rule real UPC++
    // imposes on unordered collectives over one team).
    //
    // deliver would otherwise run master-side in coll_finish and touch the
    // caller's promise there; wrap it so the master copies the result
    // bytes out of the tree buffer (which dies with the instance) and the
    // original deliver runs home on the initiating persona.
    const op_context cx = op_context::current();
    auto home_deliver = std::move(ops.deliver);
    ops.deliver = [cx, home_deliver = std::move(home_deliver)](
                      Reader& r) mutable {
      const std::size_t n = r.remaining();
      std::vector<std::byte> copy(n);
      if (n) std::memcpy(copy.data(), r.cursor(), n);
      cx.complete_now([home_deliver = std::move(home_deliver),
                       copy = std::move(copy)]() mutable {
        Reader rr(copy.data(), copy.size());
        home_deliver(rr);
      });
    };
    const team* tp = &tm;
    cx.run_at_rank([tp, root, contrib = std::move(contrib),
                    ops = std::move(ops)]() mutable {
      // Master-side staged traffic keeps its ordering relative to the
      // collective, exactly as an on-persona entry guarantees.
      flush_aggregation();
      coll_enter(*tp, root, std::move(contrib), std::move(ops));
    });
    return;
  }
  auto& p = persona();
  arch::relaxed_inc(p.stats.colls_run);
  const std::uint64_t seq = p.coll_seq[tm.id()]++;
  const std::uint64_t key = mix64(tm.id(), seq);

  Coll& c = coll_instance(key);
  assert(!c.entered && "collective key collision");
  c.entered = true;

  // Topology over *virtual* team indices rotated so that `root` maps to
  // virtual index 0: a binary tree (default) or a flat star (ablation).
  const int P = tm.rank_n();
  const int me_v = (tm.rank_me() - root + P) % P;
  auto to_world = [&](int v) { return tm[(v + root) % P]; };
  c.is_root = (me_v == 0);
  if (coll_topology() == CollTopology::flat) {
    if (c.is_root) {
      for (int v = 1; v < P; ++v) c.children.push_back(to_world(v));
    } else {
      c.parent = to_world(0);
    }
  } else {
    if (!c.is_root) c.parent = to_world((me_v - 1) / 2);
    for (int child_v : {2 * me_v + 1, 2 * me_v + 2})
      if (child_v < P) c.children.push_back(to_world(child_v));
  }
  c.expected_children = static_cast<int>(c.children.size());
  c.accum = std::move(contrib);
  c.ops = std::move(ops);
  coll_advance(c);
}

}  // namespace detail

team team::split(int color, int key) const {
  // Allgather (color, key) across the team through the AM engine's keyed
  // exchange — self-synchronizing and shared-memory-free, so it works on
  // every transport (the scratch-slot version it replaces assumed a
  // cross-mapped arena). The exchange key mixes the team id with the
  // per-team collective counter: identical on every member (they all run
  // the same split sequence on this team), distinct across teams and
  // successive splits.
  struct Slot {
    std::int32_t color;
    std::int32_t key;
  };
  const std::uint64_t xkey =
      detail::mix64(0x5017C0117EC7ull ^ id_, split_count_);
  const Slot mine{color, key};
  std::vector<Slot> slots(static_cast<std::size_t>(rank_n()));
  gex::am().exchange(xkey, members_.data(), slots.size(), &mine,
                     sizeof(Slot), slots.data());

  std::vector<std::pair<std::pair<int, int>, int>> group;  // ((key,world),world)
  for (intrank_t i = 0; i < rank_n(); ++i) {
    const int w = members_[i];
    const Slot& s = slots[static_cast<std::size_t>(i)];
    if (s.color == color) group.push_back({{s.key, w}, w});
  }
  std::sort(group.begin(), group.end());

  // Agree on the child team id (same inputs on every member).
  const std::uint64_t child_id =
      color < 0 ? 0
                : detail::mix64(id_, detail::mix64(split_count_,
                                                   static_cast<std::uint64_t>(
                                                       color)));
  ++split_count_;

  if (color < 0) return detail::TeamAccess::make({}, -1, 0);

  std::vector<intrank_t> members;
  intrank_t me_idx = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members.push_back(group[i].second);
    if (group[i].second == gex::rank_me())
      me_idx = static_cast<intrank_t>(i);
  }
  return detail::TeamAccess::make(std::move(members), me_idx, child_id);
}

}  // namespace upcxx
