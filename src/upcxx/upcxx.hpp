// Umbrella header: the public API of the UPC++ reproduction.
//
// A downstream user includes this and gets the feature set the paper
// describes in §II: futures/promises, global pointers and shared-segment
// allocation, one-sided RMA with completions, RPC, distributed objects,
// view-based serialization, remote atomics, teams and collectives.
//
// Program structure: wrap your SPMD main in upcxx::run(ranks, fn) (the
// moral equivalent of upcxx::init()/finalize() around main()); inside fn use
// the API exactly as in the paper's code listings.
#pragma once

#include "upcxx/atomic.hpp"          // IWYU pragma: export
#include "upcxx/collectives.hpp"     // IWYU pragma: export
#include "upcxx/completion.hpp"      // IWYU pragma: export
#include "upcxx/dist_object.hpp"     // IWYU pragma: export
#include "upcxx/future.hpp"          // IWYU pragma: export
#include "upcxx/global_ptr.hpp"      // IWYU pragma: export
#include "upcxx/inject.hpp"          // IWYU pragma: export
#include "upcxx/persona.hpp"         // IWYU pragma: export
#include "upcxx/progress.hpp"        // IWYU pragma: export
#include "upcxx/progress_thread.hpp" // IWYU pragma: export
#include "upcxx/copy.hpp"            // IWYU pragma: export
#include "upcxx/rma.hpp"             // IWYU pragma: export
#include "upcxx/rpc.hpp"             // IWYU pragma: export
#include "upcxx/serialization.hpp"   // IWYU pragma: export
#include "upcxx/team.hpp"            // IWYU pragma: export
