// global_ptr<T> and shared-segment allocation (paper §II).
//
// A global pointer names memory in some rank's shared segment. Reproducing
// the paper's design decisions:
//  * it cannot be dereferenced (`*` is not provided) — all data motion is
//    explicit through rput/rget/RPC/atomics;
//  * it supports pointer arithmetic and passing by value (trivially
//    copyable, hence trivially serializable as an RPC argument);
//  * it converts to/from a raw pointer for the *owning* rank via local() and
//    to_global_ptr(); is_local() reports whether a direct conversion is
//    possible (always true on our single-node arena, the analog of GASNet
//    PSHM cross-mapping).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>

#include "gex/runtime.hpp"
#include "upcxx/future.hpp"

namespace upcxx {

// Memory kinds (paper §VI future work: transfers "to and from other
// memories (such as that of GPUs)"). `host` is ordinary shared-segment
// memory; `sim_device` is the reproduction's simulated accelerator memory —
// host-backed storage that is *not* host-dereferenceable through the type
// system and whose transfers (upcxx::copy) may carry a simulated
// PCIe-style cost (see device_allocator.hpp).
enum class memory_kind : std::uint8_t {
  host = 0,
  sim_device = 1,
};

template <typename T, memory_kind K = memory_kind::host>
class global_ptr {
 public:
  using element_type = T;
  static constexpr memory_kind kind = K;

  constexpr global_ptr() = default;  // null
  constexpr global_ptr(std::nullptr_t) {}  // NOLINT

  static global_ptr from_raw(intrank_t rank, T* p) {
    global_ptr g;
    g.rank_ = rank;
    g.raw_ = p;
    return g;
  }

  bool is_null() const { return raw_ == nullptr; }
  explicit operator bool() const { return raw_ != nullptr; }

  intrank_t where() const { return rank_; }

  // True when the memory can be reached with a raw pointer from this rank.
  // On the shared-memory arena every segment is cross-mapped, so any valid
  // global_ptr is local — same semantics as UPC++ on a PSHM node.
  bool is_local() const { return true; }

  // Raw pointer usable on this rank. UPC++ permits this only when
  // is_local(); calling it on a null pointer is an error. Device-kind
  // pointers are not host-dereferenceable: use upcxx::copy (or the owning
  // device_allocator's backing accessor) instead.
  T* local() const {
    static_assert(K == memory_kind::host,
                  "local() is only available on host-kind global_ptr; "
                  "device memory moves via upcxx::copy");
    assert(raw_ != nullptr);
    return raw_;
  }

  // The raw address in the owner's address space, without the host-kind
  // restriction. Needed by the runtime (copy, hashing); not part of the
  // user-facing dereference surface.
  T* raw_address() const { return raw_; }

  // Pointer arithmetic (element granularity), as in the paper.
  global_ptr operator+(std::ptrdiff_t d) const {
    return from_raw(rank_, raw_ + d);
  }
  global_ptr operator-(std::ptrdiff_t d) const {
    return from_raw(rank_, raw_ - d);
  }
  std::ptrdiff_t operator-(const global_ptr& o) const {
    assert(rank_ == o.rank_);
    return raw_ - o.raw_;
  }
  global_ptr& operator+=(std::ptrdiff_t d) {
    raw_ += d;
    return *this;
  }
  global_ptr& operator-=(std::ptrdiff_t d) {
    raw_ -= d;
    return *this;
  }
  global_ptr& operator++() { ++raw_; return *this; }
  global_ptr& operator--() { --raw_; return *this; }

  friend bool operator==(const global_ptr& a, const global_ptr& b) {
    return a.raw_ == b.raw_ && (a.raw_ == nullptr || a.rank_ == b.rank_);
  }
  friend bool operator!=(const global_ptr& a, const global_ptr& b) {
    return !(a == b);
  }
  friend bool operator<(const global_ptr& a, const global_ptr& b) {
    return a.raw_ < b.raw_;
  }

  // Reinterpretation (element-type cast), mirroring
  // upcxx::reinterpret_pointer_cast. Preserves the memory kind.
  template <typename U>
  global_ptr<U, K> reinterpret() const {
    return global_ptr<U, K>::from_raw(rank_, reinterpret_cast<U*>(raw_));
  }

 private:
  intrank_t rank_ = 0;
  T* raw_ = nullptr;
};

static_assert(std::is_trivially_copyable_v<global_ptr<int>>,
              "global_ptr must remain trivially serializable");

// ------------------------------------------------------ segment allocation

// Allocates n objects of type T (uninitialized) from the calling rank's
// shared segment. Returns null global_ptr on exhaustion.
template <typename T>
global_ptr<T> allocate(std::size_t n = 1,
                       std::size_t align = alignof(T)) {
  auto* r = gex::self();
  assert(r && "allocate() outside SPMD region");
  void* p = r->arena->segment_heap(r->me).allocate(n * sizeof(T), align);
  if (!p) return {};
  return global_ptr<T>::from_raw(r->me, static_cast<T*>(p));
}

// Frees memory obtained from allocate(). Must be called by the owner.
template <typename T>
void deallocate(global_ptr<T> g) {
  if (g.is_null()) return;
  auto* r = gex::self();
  assert(r && g.where() == r->me &&
         "deallocate() must run on the owning rank");
  r->arena->segment_heap(r->me).deallocate(g.local());
}

// new_/delete_: construct/destroy a T in the shared segment.
template <typename T, typename... Args>
global_ptr<T> new_(Args&&... args) {
  global_ptr<T> g = allocate<T>(1);
  assert(!g.is_null() && "shared segment exhausted");
  ::new (static_cast<void*>(g.local())) T(std::forward<Args>(args)...);
  return g;
}

template <typename T>
void delete_(global_ptr<T> g) {
  if (g.is_null()) return;
  g.local()->~T();
  deallocate(g);
}

// new_array / delete_array, value-initialized as in UPC++.
template <typename T>
global_ptr<T> new_array(std::size_t n) {
  global_ptr<T> g = allocate<T>(n);
  assert(!g.is_null() && "shared segment exhausted");
  for (std::size_t i = 0; i < n; ++i)
    ::new (static_cast<void*>(g.local() + i)) T();
  return g;
}

template <typename T>
void delete_array(global_ptr<T> g, std::size_t n) {
  if (g.is_null()) return;
  for (std::size_t i = 0; i < n; ++i) g.local()[i].~T();
  deallocate(g);
}

// Converts a raw pointer into the calling rank's segment to a global_ptr.
template <typename T>
global_ptr<T> to_global_ptr(T* p) {
  auto* r = gex::self();
  assert(r);
  int owner = r->arena->rank_of(p);
  assert(owner == r->me && "pointer is not into my shared segment");
  return global_ptr<T>::from_raw(owner, p);
}

// Non-asserting variant: null if p is not in any shared segment; otherwise a
// pointer owned by whichever rank's segment contains it.
template <typename T>
global_ptr<T> try_global_ptr(T* p) {
  auto* r = gex::self();
  assert(r);
  int owner = r->arena->rank_of(p);
  if (owner < 0) return {};
  return global_ptr<T>::from_raw(owner, p);
}

}  // namespace upcxx

namespace std {
template <typename T, upcxx::memory_kind K>
struct hash<upcxx::global_ptr<T, K>> {
  size_t operator()(const upcxx::global_ptr<T, K>& g) const {
    return hash<T*>()(g.raw_address());
  }
};
}  // namespace std
