// Teams: ordered subsets of ranks (paper §IV-D, "front_team: a upcxx::team
// object (similar in functionality to an MPI communicator)").
//
// Scalability note reproduced from the paper: a team stores only its member
// list and the local rank's index — there are no per-team symmetric heaps or
// O(world) tables beyond the member vector itself, and teams compose with
// subset collectives (the reason the paper rejects symmetric-heap designs).
#pragma once

#include <cstdint>
#include <vector>

#include "upcxx/future.hpp"
#include "upcxx/progress.hpp"

namespace upcxx {

class team;
team& world();

// The team of ranks co-located in shared memory with the caller. On this
// single-node substrate every rank shares the arena (the situation GASNet
// PSHM creates within a node), so local_team() is the world team — exactly
// what real UPC++ reports on one node.
inline team& local_team() { return world(); }

// True when addr's memory is directly load/store reachable — everywhere on
// this substrate, matching upcxx::local_team_contains on one node.
inline bool local_team_contains(intrank_t /*world_rank*/) { return true; }

namespace detail {
void init_world_team();
void fini_world_team();
class TeamAccess;
}  // namespace detail

class team {
 public:
  // Index of the calling rank within this team; asserts membership.
  intrank_t rank_me() const { return me_idx_; }
  intrank_t rank_n() const { return static_cast<intrank_t>(members_.size()); }

  // Team index -> world rank (paper: front_team[p_dest]).
  intrank_t operator[](intrank_t i) const { return members_[i]; }

  // World rank -> team index, or `otherwise` when not a member.
  intrank_t from_world(intrank_t world_rank, intrank_t otherwise = -1) const {
    for (std::size_t i = 0; i < members_.size(); ++i)
      if (members_[i] == world_rank) return static_cast<intrank_t>(i);
    return otherwise;
  }

  const std::vector<intrank_t>& members() const { return members_; }
  std::uint64_t id() const { return id_; }

  // Collectively splits this team: ranks passing the same color form a new
  // team, ordered by (key, world rank). Every member must call split.
  // color < 0 means "do not join any team" and yields an empty team handle.
  team split(int color, int key) const;

  team(const team&) = delete;
  team& operator=(const team&) = delete;
  team(team&&) = default;
  team& operator=(team&&) = default;

 private:
  team() = default;
  friend team& world();
  friend void detail::init_world_team();
  friend class detail::TeamAccess;

  std::vector<intrank_t> members_;
  intrank_t me_idx_ = -1;
  std::uint64_t id_ = 0;
  mutable std::uint64_t split_count_ = 0;
};

namespace detail {

// Internal constructor access for split()/tests.
class TeamAccess {
 public:
  static team make(std::vector<intrank_t> members, intrank_t me_idx,
                   std::uint64_t id) {
    team t;
    t.members_ = std::move(members);
    t.me_idx_ = me_idx;
    t.id_ = id;
    return t;
  }
};

// ------------------------- generic collective engine (team.cpp) ----------
//
// One reduce-then-broadcast pass over a binomial tree rooted at team index
// `root`. Contributions and results travel as serialized bytes; typed
// wrappers live in collectives.hpp. With up=false the engine degenerates to
// a pure broadcast; with down=false to a rooted reduction.
struct CollOps {
  bool up = true;
  bool down = true;
  // Folds one incoming serialized contribution into the accumulator.
  arch::UniqueFunction<void(std::vector<std::byte>& accum, Reader& r)>
      combine;
  // Receives the final serialized result on every rank (down=true) or on the
  // root only (down=false; other ranks get an empty reader).
  arch::UniqueFunction<void(Reader& r)> deliver;
};

void coll_enter(const team& tm, intrank_t root, std::vector<std::byte> contrib,
                CollOps ops);

// Topology the engine builds per collective (ablation knob; every member
// must use the same setting for a given collective). The default binary
// tree bounds any rank's message count by O(1); the flat star funnels all
// P-1 contributions through the root — cheap in hops, serial at the root.
enum class CollTopology { tree, flat };
CollTopology& coll_topology();

}  // namespace detail

namespace experimental {
// Selects the collective topology for subsequent collectives on this rank
// (must be called symmetrically on every team member). Used by the
// abl_collectives bench to reproduce the tree-vs-flat design tradeoff.
inline void set_coll_topology(detail::CollTopology t) {
  detail::coll_topology() = t;
}
}  // namespace experimental
}  // namespace upcxx
