// Remote procedure calls (paper §II, Fig 2).
//
// rpc(target, fn, args...) ships the callable and serialized arguments to
// `target`, executes fn there during the target's *user-level* progress, and
// returns a future for the (possibly future-valued) result:
//   * fn returning void       -> future<>
//   * fn returning future<U..>-> future<U...> (result sent when ready)
//   * fn returning R          -> future<R'>, R' = deserialized form of R
// rpc_ff (“fire-and-forget”) skips the acknowledgment; the paper notes its
// progression matches rget/rput rather than the two-way RPC of Fig 2.
//
// The callable must be trivially copyable (a function pointer or a lambda
// with trivially-copyable captures) — the same restriction real UPC++ places
// on TriviallySerializable function objects. Arguments may be any
// serializable type, including upcxx::view and upcxx::dist_object&.
#pragma once

#include <cassert>
#include <cstring>
#include <type_traits>

#include "arch/atomics.hpp"
#include "arch/spinlock.hpp"
#include "upcxx/completion.hpp"
#include "upcxx/future.hpp"
#include "upcxx/progress.hpp"
#include "upcxx/serialization.hpp"

namespace upcxx {

namespace detail {

// Writes the callable as a pod (alignment-safe).
template <typename Ar, typename F>
void serialization_write_fn(Ar& ar, const F& fn) {
  ar.align(alignof(F) > kWireAlign ? kWireAlign : alignof(F));
  ar.bytes(&fn, sizeof(F));
}

// Reads the callable back. Capturing lambdas are not default-constructible,
// so reconstitute through aligned storage and trivial copy.
template <typename F>
F read_fn(Reader& r) {
  r.align(alignof(F) > kWireAlign ? kWireAlign : alignof(F));
  struct Box {
    alignas(F) unsigned char bytes[sizeof(F)];
  } box;
  std::memcpy(box.bytes, r.raw(sizeof(F)), sizeof(F));
  return *reinterpret_cast<F*>(box.bytes);
}

// ---- reply plumbing --------------------------------------------------------

// Reply wire format: [op_id][serialized results...]; one generic dispatcher
// looks up the continuation registered at injection time.
inline void reply_dispatch(int /*src*/, Reader& r) {
  const auto op_id = r.pod<std::uint64_t>();
  auto& p = persona();
  arch::UniqueFunction<void(Reader&)> fn;
  {
    // Injector threads register replies concurrently (register_reply), so
    // the map is only touched under its lock; the continuation itself runs
    // outside it (it may send, or ship values to another persona).
    arch::SpinGuard g(p.reply_mu);
    auto it = p.pending_replies.find(op_id);
    assert(it != p.pending_replies.end() && "reply for unknown op");
    fn = std::move(it->second);
    p.pending_replies.erase(it);
  }
  fn(r);
}

// Sends the serialized results of an executed RPC back to the initiator.
// Replies ride the aggregated path: the executing rank is inside user
// progress (which flushes), so batching costs no attentiveness.
template <typename... U>
void send_reply(int initiator, std::uint64_t op_id, const U&... results) {
  SizeArchive sa;
  sa.bytes(&op_id, sizeof op_id);
  serialize_args(sa, results...);
  send_msg<&reply_dispatch>(initiator, sa.size(), [&](WriteArchive& wa) {
    wa.bytes(&op_id, sizeof op_id);
    serialize_args(wa, results...);
  });
}

// ---- request dispatchers ---------------------------------------------------

// invoke fn with a deserialized-args tuple, handling the void / value /
// future-returning cases uniformly. `Reply` is called with the result values
// once available (possibly later, for future-returning fns).
template <typename F, typename ArgsTuple, typename Reply>
void invoke_and_reply(F& fn, ArgsTuple& args, Reply reply) {
  using R = decltype(std::apply(fn, args));
  if constexpr (std::is_void_v<R>) {
    std::apply(fn, args);
    reply();
  } else if constexpr (is_future_v<R>) {
    auto fut = std::apply(fn, args);
    fut.then_raw([reply](auto&... vals) mutable { reply(vals...); });
  } else {
    reply(std::apply(fn, args));
  }
}

// Round-trip RPC request: [op_id][F][args...].
template <typename F, typename... Args>
void rpc_request_dispatch(int src, Reader& r) {
  const auto op_id = r.pod<std::uint64_t>();
  F fn = read_fn<F>(r);
  auto args = deserialize_tuple<Args...>(r);
  arch::relaxed_inc(persona().stats.rpcs_executed);
  invoke_and_reply(fn, args, [src, op_id](const auto&... results) {
    send_reply(src, op_id, results...);
  });
}

// Fire-and-forget request: [F][args...].
template <typename F, typename... Args>
void rpc_ff_dispatch(int /*src*/, Reader& r) {
  F fn = read_fn<F>(r);
  auto args = deserialize_tuple<Args...>(r);
  arch::relaxed_inc(persona().stats.rpcs_executed);
  std::apply(fn, args);
}

// The future type rpc() returns for a callable F applied to Args.
template <typename F, typename... Args>
using rpc_return_t = future_from_result_t<
    std::invoke_result_t<F, deserialized_type_t<Args>&...>>;

// Registers the initiator-side continuation that deserializes the reply and
// fulfills the promise behind `Fut`.
template <typename Fut>
struct reply_fulfiller;

template <typename... U>
struct reply_fulfiller<future<U...>> {
  static future<U...> attach(std::uint64_t* op_id_out) {
    promise<U...> pr;
    // The continuation runs on the master persona (reply_dispatch), but the
    // promise's state is affine to the *initiating* thread's persona.
    // Deserialize on the master — the wire buffer dies with the dispatch —
    // then op_context routes the fulfillment: in place for a master-persona
    // initiator, home via lpc_ff for an injector thread.
    const op_context cx = op_context::current();
    *op_id_out = register_reply([cx, pr](Reader& r) mutable {
      if constexpr (sizeof...(U) == 0) {
        (void)r;
        cx.complete_now([pr]() mutable { pr.fulfill_anonymous(1); });
      } else {
        auto vals = deserialize_tuple<U...>(r);
        cx.complete_now([pr, vals = std::move(vals)]() mutable {
          std::apply(
              [&pr](auto&&... v) {
                pr.fulfill_result(std::forward<decltype(v)>(v)...);
              },
              std::move(vals));
        });
      }
    });
    if constexpr (sizeof...(U) == 0) pr.require_anonymous(1);
    return sizeof...(U) == 0 ? pr.finalize() : pr.get_future();
  }
};

// Implementation bodies shared by the public entry points and the internal
// latency-sensitive callers (AM atomics, remote completion notifications)
// that opt out of aggregation via wire_mode::immediate.

template <typename F, typename... Args>
void rpc_ff_impl(intrank_t target, wire_mode mode, F fn, Args&&... args) {
  static_assert(std::is_trivially_copyable_v<F>,
                "RPC callables must be trivially copyable");
  arch::relaxed_inc(op_state().stats.rpcs_sent);
  SizeArchive sa;
  serialization_write_fn(sa, fn);
  serialize_args(sa, args...);
  send_msg<&rpc_ff_dispatch<F, std::decay_t<Args>...>>(
      target, sa.size(),
      [&](WriteArchive& wa) {
        serialization_write_fn(wa, fn);
        serialize_args(wa, args...);
      },
      mode);
}

// Remote completion notification (declared in completion.hpp so cx_state
// can signal through it): ship fn(args...) to the target on the immediate
// wire path. The args tuple is serialized, never consumed, so multi-target
// fragment lists can notify each target from one completion object.
template <typename F, typename ArgsTuple>
void remote_rpc_send(intrank_t target, const F& fn, const ArgsTuple& args) {
  std::apply(
      [&](const auto&... a) {
        rpc_ff_impl(target, wire_mode::immediate, fn, a...);
      },
      args);
}

template <typename F, typename... Args>
auto rpc_impl(intrank_t target, wire_mode mode, F fn, Args&&... args)
    -> rpc_return_t<F, std::decay_t<Args>...> {
  static_assert(std::is_trivially_copyable_v<F>,
                "RPC callables must be trivially copyable");
  using Fut = rpc_return_t<F, std::decay_t<Args>...>;
  arch::relaxed_inc(op_state().stats.rpcs_sent);
  std::uint64_t op_id = 0;
  Fut fut = reply_fulfiller<Fut>::attach(&op_id);
  SizeArchive sa;
  sa.bytes(&op_id, sizeof op_id);
  serialization_write_fn(sa, fn);
  serialize_args(sa, args...);
  send_msg<&rpc_request_dispatch<F, std::decay_t<Args>...>>(
      target, sa.size(),
      [&](WriteArchive& wa) {
        wa.bytes(&op_id, sizeof op_id);
        serialization_write_fn(wa, fn);
        serialize_args(wa, args...);
      },
      mode);
  return fut;
}

}  // namespace detail

// ----------------------------------------------------------------- rpc_ff

// Ships fn+args to target for execution; no acknowledgment, no result.
template <typename F, typename... Args>
void rpc_ff(intrank_t target, F fn, Args&&... args) {
  detail::rpc_ff_impl(target, detail::wire_mode::aggregated, fn,
                      std::forward<Args>(args)...);
}

// -------------------------------------------------------------------- rpc

// Round-trip RPC returning a future for fn's result (see header comment).
template <typename F, typename... Args>
auto rpc(intrank_t target, F fn, Args&&... args)
    -> detail::rpc_return_t<F, std::decay_t<Args>...> {
  return detail::rpc_impl(target, detail::wire_mode::aggregated, fn,
                          std::forward<Args>(args)...);
}

// RPC with explicit completions — rpc(target, cx, fn, args...), as in
// UPC++. Operation completion means "the result has arrived back at the
// initiator"; supported forms are operation_cx::as_future() (returns the
// result future), ::as_promise(p) (counts readiness into p, result values
// discarded — the flood pattern of §IV-B applied to RPCs), and ::as_lpc(f)
// (runs f on the initiator at completion). Source and remote completions do
// not apply to RPCs and are rejected at compile time.
template <typename Cxs, typename F, typename... Args,
          typename = std::enable_if_t<
              detail::is_completions<std::decay_t<Cxs>>::value>>
auto rpc(intrank_t target, Cxs cxs, F fn, Args&&... args) {
  using CxsD = std::decay_t<Cxs>;
  static_assert(!detail::has_non_op_completions<CxsD>,
                "rpc supports operation completions only "
                "(no source_cx / remote_cx)");
  auto fut = rpc(target, fn, std::forward<Args>(args)...);
  // Same completion pipeline as the RMA calls: the result future's
  // readiness is the operation-completion event; cx_state delivers it
  // through whatever mechanisms were requested. (The op-future case is the
  // result future itself, returned below.)
  if constexpr (CxsD::template has<detail::is_op_promise>() ||
                CxsD::template has<detail::is_op_lpc>()) {
    detail::cx_state<CxsD> st(std::move(cxs), target);
    fut.then_raw([st = std::move(st)](auto&...) mutable {
      st.operation_done(0);
    });
  }
  if constexpr (CxsD::template has<detail::is_op_future>()) {
    return fut;
  } else {
    return;
  }
}

}  // namespace upcxx
