// Remote atomics (paper §II): atomic_domain<T> with offloadable operations.
//
// The paper notes that on capable NICs (Cray Aries) remote atomic updates
// are offloaded, improving latency and scalability [8]. On our shared-memory
// wire the analog of offload is a direct CPU atomic on the target's segment
// (no target-CPU involvement, no AM); the software fallback routes the
// operation through an AM executed by the owner, like a conduit without
// offload. The backend is selected per-domain (kDirect/kAm) or from
// UPCXX_ATOMICS; bench/abl_atomics compares the two, reproducing the
// offloaded-vs-software distinction.
//
// As in UPC++, an atomic_domain is constructed collectively with the set of
// operations it will support, and all accesses to a location should go
// through domains with compatible backends (mixing direct and AM domains on
// one hot location is allowed here because both ultimately use CPU atomics).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "arch/atomics.hpp"
#include "upcxx/collectives.hpp"
#include "upcxx/global_ptr.hpp"
#include "upcxx/rpc.hpp"

namespace upcxx {

enum class atomic_op {
  load,
  store,
  add,
  fetch_add,
  sub,
  fetch_sub,
  inc,
  fetch_inc,
  dec,
  fetch_dec,
  min,
  fetch_min,
  max,
  fetch_max,
  compare_exchange,
  bit_and,
  fetch_bit_and,
  bit_or,
  fetch_bit_or,
  bit_xor,
  fetch_bit_xor,
};

enum class atomic_backend { kDefault, kDirect, kAm };

// Per-type op validity, following the UPC++ spec's tables: integral types
// support every operation; floating-point types support load/store,
// add/sub and min/max (plus fetch variants) — no bitwise ops, no inc/dec,
// no compare_exchange.
template <typename T>
constexpr bool atomic_op_allowed(atomic_op op) {
  if constexpr (std::is_integral_v<T>) {
    return true;
  } else {
    switch (op) {
      case atomic_op::load:
      case atomic_op::store:
      case atomic_op::add:
      case atomic_op::fetch_add:
      case atomic_op::sub:
      case atomic_op::fetch_sub:
      case atomic_op::min:
      case atomic_op::fetch_min:
      case atomic_op::max:
      case atomic_op::fetch_max:
        return true;
      default:
        return false;
    }
  }
}

namespace detail {

// The primitive each op reduces to, applied with std::atomic_ref on the
// target location. Returns the *previous* value.
template <typename T>
T apply_atomic(atomic_op op, T* loc, T a, T b) {
  std::atomic_ref<T> ref(*loc);
  switch (op) {
    case atomic_op::load:
      return ref.load(std::memory_order_acquire);
    case atomic_op::store:
      ref.store(a, std::memory_order_release);
      return T{};
    case atomic_op::add:
    case atomic_op::fetch_add:
      if constexpr (std::is_integral_v<T>) {
        return ref.fetch_add(a, std::memory_order_acq_rel);
      } else {
        T old = ref.load(std::memory_order_relaxed);
        while (!ref.compare_exchange_weak(old, old + a,
                                          std::memory_order_acq_rel)) {
        }
        return old;
      }
    case atomic_op::sub:
    case atomic_op::fetch_sub:
      if constexpr (std::is_integral_v<T>) {
        return ref.fetch_sub(a, std::memory_order_acq_rel);
      } else {
        T old = ref.load(std::memory_order_relaxed);
        while (!ref.compare_exchange_weak(old, old - a,
                                          std::memory_order_acq_rel)) {
        }
        return old;
      }
    case atomic_op::inc:
    case atomic_op::fetch_inc:
      return apply_atomic(atomic_op::fetch_add, loc, T{1}, T{});
    case atomic_op::dec:
    case atomic_op::fetch_dec:
      return apply_atomic(atomic_op::fetch_sub, loc, T{1}, T{});
    case atomic_op::min:
    case atomic_op::fetch_min: {
      T old = ref.load(std::memory_order_relaxed);
      while (a < old && !ref.compare_exchange_weak(
                            old, a, std::memory_order_acq_rel)) {
      }
      return old;
    }
    case atomic_op::max:
    case atomic_op::fetch_max: {
      T old = ref.load(std::memory_order_relaxed);
      while (old < a && !ref.compare_exchange_weak(
                            old, a, std::memory_order_acq_rel)) {
      }
      return old;
    }
    case atomic_op::compare_exchange: {
      T expected = a;
      ref.compare_exchange_strong(expected, b, std::memory_order_acq_rel);
      return expected;  // previous value, as in upcxx
    }
    case atomic_op::bit_and:
    case atomic_op::fetch_bit_and:
      if constexpr (std::is_integral_v<T>) {
        return ref.fetch_and(a, std::memory_order_acq_rel);
      } else {
        assert(false && "bitwise atomic on non-integral type");
        return T{};
      }
    case atomic_op::bit_or:
    case atomic_op::fetch_bit_or:
      if constexpr (std::is_integral_v<T>) {
        return ref.fetch_or(a, std::memory_order_acq_rel);
      } else {
        assert(false && "bitwise atomic on non-integral type");
        return T{};
      }
    case atomic_op::bit_xor:
    case atomic_op::fetch_bit_xor:
      if constexpr (std::is_integral_v<T>) {
        return ref.fetch_xor(a, std::memory_order_acq_rel);
      } else {
        assert(false && "bitwise atomic on non-integral type");
        return T{};
      }
  }
  return T{};
}

}  // namespace detail

template <typename T>
class atomic_domain {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "atomic_domain supports 32/64-bit scalar types");

 public:
  // Collective constructor: every team member supplies the same op set.
  atomic_domain(std::initializer_list<atomic_op> ops, const team& tm = world(),
                atomic_backend backend = atomic_backend::kDefault)
      : ops_(ops.begin(), ops.end()), team_(&tm) {
    for (auto op : ops_) {
      assert(atomic_op_allowed<T>(op) &&
             "atomic op not supported for this element type (see the "
             "UPC++ spec's per-type tables)");
      (void)op;  // assert-only in release builds
    }
    if (backend == atomic_backend::kDefault) {
      direct_ = !gex::arena().config().atomics_use_am;
    } else {
      direct_ = (backend == atomic_backend::kDirect);
    }
    // Collective construction, as required by the UPC++ spec.
    barrier(tm);
  }

  atomic_domain(const atomic_domain&) = delete;
  atomic_domain& operator=(const atomic_domain&) = delete;

  bool uses_direct_backend() const { return direct_; }

  // Value-returning operations yield future<T>; pure updates yield
  // future<>.
  future<T> load(global_ptr<T> p) { return fetch_op(atomic_op::load, p, T{}, T{}); }
  future<> store(global_ptr<T> p, T v) { return update_op(atomic_op::store, p, v, T{}); }
  future<> add(global_ptr<T> p, T v) { return update_op(atomic_op::add, p, v, T{}); }
  future<T> fetch_add(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_add, p, v, T{}); }
  future<> sub(global_ptr<T> p, T v) { return update_op(atomic_op::sub, p, v, T{}); }
  future<T> fetch_sub(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_sub, p, v, T{}); }
  future<> inc(global_ptr<T> p) { return update_op(atomic_op::inc, p, T{}, T{}); }
  future<T> fetch_inc(global_ptr<T> p) { return fetch_op(atomic_op::fetch_inc, p, T{}, T{}); }
  future<> dec(global_ptr<T> p) { return update_op(atomic_op::dec, p, T{}, T{}); }
  future<T> fetch_dec(global_ptr<T> p) { return fetch_op(atomic_op::fetch_dec, p, T{}, T{}); }
  future<> min(global_ptr<T> p, T v) { return update_op(atomic_op::min, p, v, T{}); }
  future<T> fetch_min(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_min, p, v, T{}); }
  future<> max(global_ptr<T> p, T v) { return update_op(atomic_op::max, p, v, T{}); }
  future<T> fetch_max(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_max, p, v, T{}); }
  // Returns the previous value (compare succeeded iff result == expected).
  future<T> compare_exchange(global_ptr<T> p, T expected, T desired) {
    return fetch_op(atomic_op::compare_exchange, p, expected, desired);
  }
  // Bitwise ops (integral element types only).
  future<> bit_and(global_ptr<T> p, T v) { return update_op(atomic_op::bit_and, p, v, T{}); }
  future<T> fetch_bit_and(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_bit_and, p, v, T{}); }
  future<> bit_or(global_ptr<T> p, T v) { return update_op(atomic_op::bit_or, p, v, T{}); }
  future<T> fetch_bit_or(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_bit_or, p, v, T{}); }
  future<> bit_xor(global_ptr<T> p, T v) { return update_op(atomic_op::bit_xor, p, v, T{}); }
  future<T> fetch_bit_xor(global_ptr<T> p, T v) { return fetch_op(atomic_op::fetch_bit_xor, p, v, T{}); }

 private:
  void check(atomic_op op) const {
    bool listed = false;
    for (auto o : ops_) listed |= (o == op);
    assert(listed && "atomic op not declared in this domain");
    (void)listed;
  }

  // Both issue paths are persona-agnostic: the direct path is a plain CPU
  // atomic plus a completion timer (push_completion_after routes itself home
  // through op_context when the caller is an injector thread), and the AM
  // path is rpc_impl, which serializes caller-side and hands the descriptor
  // over the wire shards. No master-persona assert anywhere — an
  // atomic_domain op from inside an injection_scope just works.
  future<T> fetch_op(atomic_op op, global_ptr<T> p, T a, T b) {
    check(op);
    assert(!p.is_null());
    arch::relaxed_inc(detail::op_state().stats.amos_run);
    if (direct_) {
      // "Offloaded": perform the CPU atomic immediately; deliver the result
      // through the progress engine after the simulated round trip (or
      // synchronously on the zero-latency wire, like a NIC doorbell that
      // has already rung).
      T prev = detail::apply_atomic(op, p.local(), a, b);
      if (detail::op_state().sim_latency_ns == 0) return make_future(prev);
      promise<T> pr;
      detail::push_completion_after(2, [pr, prev]() mutable {
        pr.fulfill_result(prev);
      });
      return pr.get_future();
    }
    // Software path: AM to the owner, which applies the op in user progress
    // and replies with the previous value. Atomics are latency-sensitive
    // (callers typically block on the result), so they skip aggregation.
    return detail::rpc_impl(
        p.where(), detail::wire_mode::immediate,
        [](global_ptr<T> gp, int op_i, T a, T b) {
          return detail::apply_atomic(static_cast<atomic_op>(op_i),
                                      gp.local(), a, b);
        },
        p, static_cast<int>(op), a, b);
  }

  future<> update_op(atomic_op op, global_ptr<T> p, T a, T b) {
    check(op);
    assert(!p.is_null());
    arch::relaxed_inc(detail::op_state().stats.amos_run);
    if (direct_) {
      detail::apply_atomic(op, p.local(), a, b);
      if (detail::op_state().sim_latency_ns == 0)
        return detail::ready_future();
      promise<> pr;
      pr.require_anonymous(1);
      detail::push_completion_after(2, [pr]() mutable {
        pr.fulfill_anonymous(1);
      });
      return pr.finalize();
    }
    return detail::rpc_impl(
        p.where(), detail::wire_mode::immediate,
        [](global_ptr<T> gp, int op_i, T a, T b) {
          detail::apply_atomic(static_cast<atomic_op>(op_i), gp.local(), a,
                               b);
        },
        p, static_cast<int>(op), a, b);
  }

  std::vector<atomic_op> ops_;
  const team* team_;
  bool direct_ = true;
};

}  // namespace upcxx
