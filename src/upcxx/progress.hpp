// The UPC++ progress engine (paper §III).
//
// Each rank owns a persona: the per-thread runtime state through which all
// asynchronous operations progress. The paper's three queues map as follows:
//
//   defQ  — operations not yet handed to the substrate. On the shared-memory
//           wire, RMA injection is a memcpy and never back-pressures, and AM
//           sends spin internally, so ops pass through the deferred state
//           instantaneously; the state exists but is degenerate (documented
//           in DESIGN.md).
//   actQ  — operations handed to the substrate and awaiting completion.
//           With simulated wire latency enabled these sit in a time-ordered
//           queue (`timed_`); with zero latency they complete at injection.
//   compQ — completed operations and incoming RPCs awaiting *user-level*
//           progress: promise fulfillments, `.then` callbacks, RPC bodies.
//
// Progress levels match the paper: *internal* progress (performed by every
// communication call) polls the substrate and retires active operations;
// *user* progress (upcxx::progress(), wait()) additionally drains compQ and
// thus executes RPCs and callbacks. A rank that computes without calling
// into the library executes no RPCs — the attentiveness property §III
// describes, which tests/test_progress.cpp verifies.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "arch/atomics.hpp"
#include "arch/mpsc_queue.hpp"
#include "arch/small_fn.hpp"
#include "arch/spinlock.hpp"
#include "gex/agg.hpp"
#include "gex/runtime.hpp"
#include "upcxx/future.hpp"
#include "upcxx/persona.hpp"
#include "upcxx/serialization.hpp"

namespace upcxx {

class team;

enum class progress_level { internal, user };

// One round of progress. Never blocks.
void progress(progress_level lvl);
inline void progress() { progress(progress_level::user); }

// Rank identity (world).
inline intrank_t rank_me() { return gex::rank_me(); }
inline intrank_t rank_n() { return gex::rank_n(); }

namespace detail {

using Lpc = arch::UniqueFunction<void()>;

struct TimedEntry {
  std::uint64_t due_ns;
  std::uint64_t seq;  // FIFO tiebreak
  mutable Lpc fn;     // priority_queue only exposes const refs; fn is moved
                      // out exactly once when the entry fires
  bool operator<(const TimedEntry& o) const {
    // priority_queue is a max-heap; invert for earliest-first.
    return due_ns != o.due_ns ? due_ns > o.due_ns : seq > o.seq;
  }
};

struct PersonaState {
  gex::Rank* rank = nullptr;
  std::uint64_t sim_latency_ns = 0;
  // Cached Config::rma_async_min: contiguous RMA at or above this many
  // bytes rides the asynchronous XferEngine (0 = always synchronous).
  std::size_t rma_async_min = 0;
  // Resolved RMA wire (gex::resolve_rma_wire at init): when true, every
  // rput/rget/copy data path goes through the AM protocol
  // (gex/rma_am.hpp) instead of touching the target's segment directly —
  // the injection-time memcpy fast path is direct-wire only.
  bool rma_wire_am = false;

  // The rank's master persona: holding it carries the right to initiate
  // communication and the obligation to progress the queues below. Created
  // held by the rank's primordial thread; may migrate via
  // liberate_master_persona() + persona_scope (persona.hpp).
  ::upcxx::persona master;

  // The world team lives in the rank state (not a thread_local) so that
  // world() keeps working after the master persona migrates to another
  // thread. Destroyed in fini_persona (team is complete in progress.cpp).
  std::unique_ptr<::upcxx::team> world_team;

  // compQ: ready work executed only at user-level progress.
  std::deque<Lpc> compq;
  // actQ under simulated latency: completions ordered by due time.
  std::priority_queue<TimedEntry> timed;
  std::uint64_t timed_seq = 0;

  // Outstanding RPC replies: op id -> deserialize-and-fulfill action.
  // Guarded by reply_mu: injector threads register replies concurrently
  // with the master persona dispatching arriving ones. Op ids come from
  // the atomic counter so registration never needs the lock for the id.
  arch::Spinlock reply_mu;
  std::unordered_map<std::uint64_t, arch::UniqueFunction<void(Reader&)>>
      pending_replies;
  std::atomic<std::uint64_t> next_op_id{1};

  // dist_object registry: id -> object address, plus per-team id counters.
  std::unordered_map<std::uint64_t, void*> dist_registry;
  std::unordered_map<std::uint64_t, std::uint64_t> dist_counters;

  // Collective engine instances keyed by (team id, sequence). Type-erased
  // (the instance type lives in team.cpp); shared_ptr carries the deleter.
  struct CollInstance;
  std::unordered_map<std::uint64_t, std::shared_ptr<CollInstance>> colls;
  std::unordered_map<std::uint64_t, std::uint64_t> coll_seq;  // per team

  // Counters surfaced by tests and benches. Plain u64 fields (printf-able,
  // source-compatible readers) bumped through arch::relaxed_inc — injector
  // threads increment rputs/rgets/rpcs_sent concurrently with the progress
  // threads, and plain ++ would tear counts the tests assert on. Read via
  // experimental::stats() (relaxed loads) or directly after a quiesce.
  struct Stats {
    std::uint64_t rpcs_executed = 0;
    std::uint64_t rpcs_sent = 0;
    std::uint64_t rputs = 0;
    std::uint64_t rgets = 0;
    std::uint64_t lpcs_run = 0;
    std::uint64_t colls_run = 0;  // collectives entered (per rank, any thread)
    std::uint64_t amos_run = 0;   // atomic_domain ops issued
  } stats;

  // ---- thread-safe injection (off-persona op initiation) ----
  //
  // App threads that hold neither the master persona nor a rank context
  // initiate operations by handing prepared work to the rank through two
  // MPSC paths, both drained at internal progress:
  //
  //   submit_shards  op closures (serialization and cx_state setup already
  //                done caller-side) that need the rank context to
  //                dispatch into the XferEngine / AM RMA protocol.
  //                Sharded by *initiating thread* (UPCXX_SUBMIT_SHARDS;
  //                shard = hash(thread marker) mod count) so concurrent
  //                injectors don't contend on one queue tail while each
  //                thread's own submissions stay FIFO within its shard —
  //                the property collective sequence-number agreement and
  //                per-thread RMA ordering rely on. All shards are drained
  //                by the master persona's internal progress in fixed
  //                order.
  //   wire_shards  fully serialized upcxx messages ([idx prefix][body]);
  //                shard index = target % n_wire_shards, so unrelated
  //                targets never contend and progress-pool helpers can
  //                drain disjoint shards in parallel. A drain holds the
  //                shard lock across pop -> reserve -> memcpy -> commit,
  //                so one thread's sends to one target stay FIFO end to
  //                end; ordering against master-side (aggregated) sends
  //                to the same target is unspecified.
  //
  // Completions route the other way: deferred cx_state transitions are
  // shipped to the *initiating* thread's persona inbox (lpc_ff), so
  // futures and promises still fire persona-affine with no global lock —
  // the per-thread inboxes are the sharded completion queues.
  struct WireSend {
    int target = -1;
    std::uint32_t bytes = 0;
    std::unique_ptr<std::byte[]> buf;
  };
  struct WireShard {
    arch::Spinlock mu;  // serializes competing drainers (pool stealing)
    arch::MpscQueue<WireSend> q;
  };
  struct SubmitShard {
    arch::MpscQueue<Lpc> q;
  };
  std::unique_ptr<SubmitShard[]> submit_shards;
  std::uint32_t n_submit_shards = 1;
  std::unique_ptr<WireShard[]> wire_shards;
  std::uint32_t n_wire_shards = 1;

  // Monotone count of actions performed by progress calls on this rank
  // (messages handled, chunks moved, acks pumped, LPCs run). Spin loops
  // compare it across a progress call and yield the core immediately when
  // nothing happened — on oversubscribed or single-core hosts the peer that
  // must produce the awaited completion needs the cycles far more than a
  // repeat poll of empty queues does (the old fixed yield-every-256-spins
  // wasted a scheduling quantum per window refill on the am wire).
  std::uint64_t work_events = 0;
};

// The calling rank's runtime state. Asserts the calling thread holds a rank
// context (it is the rank's primordial thread or holds the master persona).
PersonaState& persona();

// True if the calling thread currently has a rank context.
bool has_persona();

// Injection context: upcxx::injection_scope (upcxx/inject.hpp) binds the
// rank's PersonaState to an app thread that holds no rank context, allowing
// it to initiate rpc/rput/rget/copy off-persona. op_state() is the union
// accessor — the rank state via either binding; it grants access to the
// *thread-safe* subset only (config fields, stats via relaxed_inc, the
// MPSC hand-off entry points below). Engine access (state.rank->am etc.)
// remains the progress personas' exclusive right; op-layer code that
// touches engines still goes through persona().
PersonaState& op_state();
bool has_op_state();
void bind_inject_context(PersonaState* st);
PersonaState* inject_context();

// MPSC hand-off (thread-safe, lock-free push): enqueues a prepared op
// closure to run with rank context at the master persona's next internal
// progress.
void submit_to_master(PersonaState& st, Lpc fn);
// Enqueues a fully serialized upcxx message for transmission by the next
// wire-shard drain.
void submit_wire_send(PersonaState& st, int target, std::uint32_t bytes,
                      std::unique_ptr<std::byte[]> buf);
// Drain side. drain_submitq requires the rank context (closures dispatch
// into the engines); drain_wire_shard may run on any thread — it takes the
// shard's try_lock (returning 0 when a competing drainer holds it) and
// must pass may_poll=false unless the caller is the wire's consumer
// thread (see gex::AmEngine::SendBuf). Both return items processed.
int drain_submitq(PersonaState& st, int budget);
int drain_wire_shard(PersonaState& st, std::uint32_t shard, bool may_poll);
// True when every injection queue (submitq + all wire shards) looks empty
// (teardown/idle checks; may be transiently false, never falsely empty at
// a quiesced rank).
bool inject_queues_empty(PersonaState& st);

// PersonaState::work_events of the calling thread's rank, or 0 without a
// rank context (a persona-less waiter always yields, which is right — some
// other thread drives the wire). Spin idiom:
//   auto w = detail::progress_work_counter();
//   ::upcxx::progress();
//   if (detail::progress_work_counter() == w) std::this_thread::yield();
std::uint64_t progress_work_counter();

// The master persona object of a rank state (used by upcxx::master_persona).
inline ::upcxx::persona& master_of(PersonaState& st) { return st.master; }

// Schedules fn for the next user-level progress on this rank.
void push_compq(Lpc fn);

// Schedules fn to "complete on the wire" after the simulated latency
// (immediately into compQ when latency is zero).
void push_completion_after(std::uint64_t wire_hops, Lpc fn);

// Same, with an explicit delay in nanoseconds (used by simulated-device
// transfers whose cost is not a multiple of the wire hop latency).
void push_completion_after_ns(std::uint64_t delay_ns, Lpc fn);

// ---- op_context: the one op-initiation dispatch --------------------------
//
// Captured at every public entry point (rput/rget/copy, collectives,
// atomics, rpc replies), op_context records where the op was initiated and
// routes the two thread-crossing moments every deferred operation has:
//
//   run_at_rank(fn)   the engine-touching half. Inline when the caller
//                     already holds the rank context; otherwise fn ships
//                     through the caller's submit shard and runs at the
//                     master persona's next internal progress. fn must
//                     capture everything it needs by value (caller-side
//                     serialization, cx_state construction) — it hands a
//                     descriptor over, never shared state.
//   complete_now / complete_after_ns
//                     the completion half, invoked later *with* the rank
//                     context (an engine callback, an ack handler). Routes
//                     the final hook home: run in place for a master-persona
//                     initiator (cx_state defers user-visible delivery to
//                     compQ itself), through the initiating persona's lpc_ff
//                     shard for an injector thread — so futures/promises
//                     always fire persona-affine, with no global lock.
//
// This is the dispatch invariant the threading model reduces to: *state
// stays put; descriptors cross over; completions cross back.*
struct op_context {
  PersonaState* st;
  ::upcxx::persona* init;  // the initiating thread's current persona
  bool on_persona;         // caller held the rank context at capture time

  static op_context current() {
    return {&op_state(), &::upcxx::current_persona(), has_persona()};
  }

  template <typename Fn>
  void run_at_rank(Fn&& fn) const {
    if (on_persona)
      fn();
    else
      submit_to_master(*st, Lpc(std::forward<Fn>(fn)));
  }

  // Callable only with the rank context held (master side).
  template <typename Fn>
  void complete_now(Fn&& fn) const {
    if (on_persona)
      fn();
    else
      init->lpc_ff(std::forward<Fn>(fn));
  }

  template <typename Fn>
  void complete_after_ns(std::uint64_t delay_ns, Fn&& fn) const {
    if (on_persona) {
      push_completion_after_ns(delay_ns, Lpc(std::forward<Fn>(fn)));
    } else {
      ::upcxx::persona* home = init;
      push_completion_after_ns(
          delay_ns, Lpc([home, f = std::forward<Fn>(fn)]() mutable {
            home->lpc_ff(std::move(f));
          }));
    }
  }
};

// Registers a reply continuation; returns the op id to embed in the request.
std::uint64_t register_reply(arch::UniqueFunction<void(Reader&)> fn);

// ---- message layer v2 ------------------------------------------------------
//
// Upcxx-level messages are [DispatchIdx prefix][serialized body]. The
// prefix is an index into the dispatch registry below — mirroring the gex
// handler registry one level up, so no wire message at any layer carries a
// raw function pointer. Messages ride one of two paths:
//
//   aggregated — staged in the rank's per-target gex::Aggregator and
//                flushed by user-level progress, barrier entry, or the
//                buffer caps. The bulk path: rpc, rpc_ff, RPC replies.
//   immediate  — injected into the target's ring now. Latency-sensitive
//                traffic: collective control messages, remote completion
//                notifications (remote_cx::as_rpc), AM-mode atomics.

// Upcxx-level message dispatch type: reads the body and acts. Runs during
// user progress on the target.
using DispatchFn = void (*)(int src, Reader& r);
using DispatchIdx = std::uint16_t;

enum class wire_mode { aggregated, immediate };

// Dispatch registry (defined in progress.cpp). Registration happens at
// static-initialization time through DispatchReg, so forked ranks agree on
// indices — same contract as gex::register_am_handler.
DispatchIdx register_dispatch(DispatchFn fn);
DispatchFn dispatch_at(DispatchIdx idx);
std::size_t dispatch_count();

template <DispatchFn Fn>
struct DispatchReg {
  static const DispatchIdx idx;
};
template <DispatchFn Fn>
const DispatchIdx DispatchReg<Fn>::idx = register_dispatch(Fn);

// The dispatch index travels as an 8-byte prefix so body alignment matches
// serialization's kWireAlign expectations.
inline constexpr std::size_t kMsgPrefix = 8;

// The gex AM handler that receives all upcxx-level traffic (defined in
// progress.cpp), and its registry index.
void am_delivery(gex::AmContext& cx);
inline gex::HandlerIdx am_delivery_index() {
  return gex::am_handler<&am_delivery>();
}

// Whole-frame sink (gex::AmEngine::set_frame_sink): receives an aggregated
// frame of upcxx messages in one call and schedules a single
// deferred-dispatch entry that walks the sub-messages.
void am_frame_delivery(gex::AmContext& cx);

// Flushes this rank's aggregation buffers (no-op without a rank context).
// Called from user-level progress and from barrier entry.
void flush_aggregation();

// Forces every pending XferEngine chunk onto the wire (no-op without a rank
// context). Called from barrier entry so data issued before a barrier is
// visible at its target before any rank observes the barrier complete —
// the ordering the synchronous memcpy wire used to give for free.
void drain_xfer_copies();

// Sends [idx][body] to target. `body_size` must equal what
// `write_body(WriteArchive&)` produces.
template <typename WriteBody>
void send_msg_idx(int target, DispatchIdx idx, std::size_t body_size,
                  WriteBody&& write_body, wire_mode mode) {
  const std::size_t total = kMsgPrefix + body_size;
  const std::uint64_t prefix = idx;
  if (!has_persona()) {
    // Off-persona injection: serialize caller-side into a private buffer
    // and hand it to the rank's wire shards. The aggregator is rank-
    // private state, so injected messages bypass it (both wire modes
    // collapse to immediate); per-(thread,target) FIFO is preserved by
    // the shard, ordering against other personas is unspecified.
    std::unique_ptr<std::byte[]> buf(new std::byte[total]);
    std::memcpy(buf.get(), &prefix, kMsgPrefix);
    WriteArchive wa(buf.get() + kMsgPrefix);
    write_body(wa);
    assert(wa.written() == body_size);
    submit_wire_send(op_state(), target, static_cast<std::uint32_t>(total),
                     std::move(buf));
    return;
  }
  gex::Aggregator& agg = *gex::self()->agg;
  if (mode == wire_mode::aggregated && agg.enabled() &&
      total <= agg.small_msg_cutoff() && total <= agg.max_msg_bytes() &&
      total <= gex::am().eager_max()) {
    auto* p = static_cast<std::byte*>(
        agg.put(target, am_delivery_index(), total));
    std::memcpy(p, &prefix, kMsgPrefix);
    WriteArchive wa(p + kMsgPrefix);
    write_body(wa);
    assert(wa.written() == body_size);
    return;
  }
  // Direct injection must not overtake messages already staged for this
  // target: upcxx delivery is per-target FIFO (and tests assert it), so
  // drain the staging buffer before bypassing it.
  if (agg.enabled()) agg.flush(target);
  auto& eng = gex::am();
  auto sb = eng.prepare(target, am_delivery_index(), total);
  auto* p = static_cast<std::byte*>(sb.data);
  std::memcpy(p, &prefix, kMsgPrefix);
  WriteArchive wa(p + kMsgPrefix);
  write_body(wa);
  assert(wa.written() == body_size);
  eng.commit(sb);
}

// Statically-registered form: the dispatch function is a template argument
// so its registry index is assigned before main (fork-safe).
template <DispatchFn Fn, typename WriteBody>
void send_msg(int target, std::size_t body_size, WriteBody&& write_body,
              wire_mode mode = wire_mode::aggregated) {
  send_msg_idx(target, DispatchReg<Fn>::idx, body_size,
               std::forward<WriteBody>(write_body), mode);
}

}  // namespace detail

// Schedules fn to run on this rank during a later *user-level* progress
// call and returns a future for its result — the persona LPC ("local
// procedure call") building block the completion system uses internally.
template <typename Fn>
auto lpc(Fn&& fn)
    -> detail::future_from_result_t<std::invoke_result_t<Fn>> {
  using R = std::invoke_result_t<Fn>;
  using Fut = detail::future_from_result_t<R>;
  auto st = std::make_shared<typename Fut::state_t>();
  detail::push_compq([st, f = std::forward<Fn>(fn)]() mutable {
    if constexpr (std::is_void_v<R>) {
      f();
      st->value.emplace();
      st->retire_deps(1);
    } else if constexpr (detail::is_future_v<R>) {
      f().then_raw([st](auto&... vals) {
        st->value.emplace(vals...);
        st->retire_deps(1);
      });
    } else {
      st->value.emplace(f());
      st->retire_deps(1);
    }
  });
  return Fut(st);
}

// Initializes/tears down the calling rank's persona. Wrapped by upcxx::run;
// exposed for harnesses that drive gex::launch directly.
void init_persona();
void fini_persona();

// Runs fn as an SPMD program over `ranks` ranks with personas initialized
// (the moral equivalent of upcxx::init()/finalize() bracketing main in a
// real UPC++ program). Returns the number of failed ranks.
int run(int ranks, const std::function<void()>& fn);
int run(const gex::Config& cfg, const std::function<void()>& fn);
// Ranks/backend taken from UPCXX_* environment variables.
int run_env(const std::function<void()>& fn);

// Barrier over all world ranks (collectives.hpp provides team barriers; this
// forwarding declaration lets low-level code use it without the header).
void barrier();

namespace experimental {

// Snapshot of the calling rank's operation counters — the paper-era
// UPCXX_ENABLE_STATS facility reduced to the counters the benches and tests
// use. Counters are monotonic within one SPMD region.
struct op_stats {
  std::uint64_t rputs = 0;
  std::uint64_t rgets = 0;
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_executed = 0;
  std::uint64_t lpcs_run = 0;
  std::uint64_t colls_run = 0;
  std::uint64_t amos_run = 0;
};

inline op_stats stats() {
  // op_state(): readable from injector threads too; relaxed loads pair
  // with the relaxed_inc writers (mid-run values are monotone snapshots).
  const auto& s = detail::op_state().stats;
  return {arch::relaxed_load(s.rputs),          arch::relaxed_load(s.rgets),
          arch::relaxed_load(s.rpcs_sent),
          arch::relaxed_load(s.rpcs_executed),
          arch::relaxed_load(s.lpcs_run),
          arch::relaxed_load(s.colls_run),
          arch::relaxed_load(s.amos_run)};
}

}  // namespace experimental

}  // namespace upcxx
