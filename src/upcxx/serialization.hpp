// Serialization of RPC arguments and results (paper §II, §IV-D).
//
// UPC++ serializes RPC callables and arguments into the active-message
// payload. We reproduce the trait-driven design:
//  * TriviallySerializable types (trivially copyable) are byte-copied;
//  * std::string, std::vector, std::array, std::pair, std::tuple, std::map,
//    std::unordered_map, std::optional are supported structurally;
//  * upcxx::view<T> serializes a user-supplied iterator sequence and
//    deserializes as a *non-owning view into the incoming network buffer*
//    (zero-copy) when T is trivially copyable — the mechanism the paper's
//    extend-add uses to avoid copying packed update entries;
//  * upcxx::dist_object<T> arguments travel as a global id and rehydrate to
//    the local representative at the target (paper §II "RPCs include support
//    to automatically and efficiently translate distributed object
//    arguments").
//
// Archives: SizeArchive (measure), WriteArchive (emit into a prepared AM
// buffer), Reader (consume). Everything is aligned to 8 bytes so views can
// alias the buffer directly.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <array>
#include <deque>
#include <list>
#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/cacheline.hpp"

namespace upcxx {

template <typename T>
class dist_object;  // fwd; serialization hook lives in dist_object.hpp

namespace detail {
// Thrown by dist_object deserialization when the target has not yet
// constructed its local representative; the progress engine catches it and
// requeues the message (UPC++ blocks the RPC until the object exists).
struct dist_object_unready {};
}  // namespace detail

namespace detail {

inline constexpr std::size_t kWireAlign = 8;

class SizeArchive {
 public:
  void bytes(const void*, std::size_t n) { n_ += n; }
  void align(std::size_t a) { n_ = arch::align_up(n_, a); }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

class WriteArchive {
 public:
  explicit WriteArchive(void* dst) : base_(static_cast<std::byte*>(dst)) {}
  void bytes(const void* src, std::size_t n) {
    if (n) std::memcpy(base_ + n_, src, n);
    n_ += n;
  }
  void align(std::size_t a) {
    std::size_t up = arch::align_up(n_, a);
    if (up != n_) std::memset(base_ + n_, 0, up - n_);
    n_ = up;
  }
  std::size_t written() const { return n_; }

 private:
  std::byte* base_;
  std::size_t n_ = 0;
};

class Reader {
 public:
  Reader(const void* p, std::size_t n)
      : base_(static_cast<const std::byte*>(p)), size_(n) {}

  const void* raw(std::size_t n) {
    assert(off_ + n <= size_);
    const void* p = base_ + off_;
    off_ += n;
    return p;
  }
  void align(std::size_t a) { off_ = arch::align_up(off_, a); }
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    align(alignof(T) > kWireAlign ? kWireAlign : alignof(T));
    T out;
    std::memcpy(&out, raw(sizeof(T)), sizeof(T));
    return out;
  }
  std::size_t remaining() const { return size_ - off_; }
  const std::byte* cursor() const { return base_ + off_; }

 private:
  const std::byte* base_;
  std::size_t size_;
  std::size_t off_ = 0;
};

}  // namespace detail

// Primary serialization trait. Specializations provide:
//   template <class Ar> static void serialize(Ar&, const T&);
//   static deserialized_type deserialize(detail::Reader&);
// `deserialized_type` defaults to T; dist_object and view override it.
template <typename T, typename Enable = void>
struct serialization;

template <typename T>
using deserialized_type_t =
    typename serialization<std::decay_t<T>>::deserialized_type;

template <typename T>
inline constexpr bool is_trivially_serializable_v =
    std::is_trivially_copyable_v<std::decay_t<T>>;

// ---- custom-serialization detection ----------------------------------------
//
// User classes opt in to serialization in either of the ways real UPC++
// provides:
//  * UPCXX_SERIALIZED_FIELDS(a, b, ...) inside the class — the listed
//    members are serialized in order; deserialization default-constructs the
//    object and assigns the fields back;
//  * a member type `upcxx_serialization` with
//      template <class Ar> static void serialize(Ar&, const T&);
//      static T deserialize(upcxx::detail::Reader&);
//    for full control (versioning, re-establishing invariants, skipping
//    caches). The member type takes precedence over the fields macro, and
//    both take precedence over the trivially-copyable byte copy.

namespace detail {

template <typename T, typename = void>
struct has_serialized_fields : std::false_type {};
template <typename T>
struct has_serialized_fields<
    T, std::void_t<decltype(std::declval<const T&>()
                                .upcxx_serialized_fields())>>
    : std::true_type {};

template <typename T, typename = void>
struct has_serialized_values : std::false_type {};
template <typename T>
struct has_serialized_values<
    T, std::void_t<decltype(std::declval<const T&>()
                                .upcxx_serialized_values())>>
    : std::true_type {};

template <typename T, typename = void>
struct has_member_serialization : std::false_type {};
template <typename T>
struct has_member_serialization<T,
                                std::void_t<typename T::upcxx_serialization>>
    : std::true_type {};

template <typename T>
inline constexpr bool has_custom_serialization_v =
    has_serialized_fields<T>::value || has_serialized_values<T>::value ||
    has_member_serialization<T>::value;

// Constructs T from values deserialized in declaration order (braced-list
// evaluation order is guaranteed left-to-right).
template <typename T, typename Tup, std::size_t... I>
T construct_from_reader(Reader& r, std::index_sequence<I...>) {
  return T{serialization<
      std::decay_t<std::tuple_element_t<I, Tup>>>::deserialize(r)...};
}

}  // namespace detail

// ---- trivially copyable ----------------------------------------------------

template <typename T>
struct serialization<
    T, std::enable_if_t<std::is_trivially_copyable_v<T> &&
                        !detail::has_custom_serialization_v<T>>> {
  using deserialized_type = T;
  template <typename Ar>
  static void serialize(Ar& ar, const T& v) {
    ar.align(alignof(T) > detail::kWireAlign ? detail::kWireAlign
                                             : alignof(T));
    ar.bytes(&v, sizeof(T));
  }
  static T deserialize(detail::Reader& r) { return r.pod<T>(); }
};

// ---- user classes: UPCXX_SERIALIZED_FIELDS ---------------------------------

template <typename T>
struct serialization<
    T, std::enable_if_t<detail::has_serialized_fields<T>::value &&
                        !detail::has_serialized_values<T>::value &&
                        !detail::has_member_serialization<T>::value>> {
  using deserialized_type = T;

  template <typename Ar>
  static void serialize(Ar& ar, const T& v) {
    std::apply(
        [&](const auto&... f) {
          (serialization<std::decay_t<decltype(f)>>::serialize(ar, f), ...);
        },
        v.upcxx_serialized_fields());
  }

  static T deserialize(detail::Reader& r) {
    static_assert(std::is_default_constructible_v<T>,
                  "UPCXX_SERIALIZED_FIELDS requires a default-constructible "
                  "type; use a member upcxx_serialization for others");
    T out;
    std::apply(
        [&](auto&... f) {
          // Comma-fold: guaranteed left-to-right, matching serialize order.
          ((f = serialization<std::decay_t<decltype(f)>>::deserialize(r)),
           ...);
        },
        out.upcxx_serialized_fields());
    return out;
  }
};

// ---- user classes: UPCXX_SERIALIZED_VALUES ---------------------------------
//
// The listed *expressions* (evaluated against the object) travel on the
// wire; deserialization reconstructs the object by invoking a constructor
// taking those values in order. Useful when the wire form differs from the
// member layout (e.g. ship polar form, store cartesian).

template <typename T>
struct serialization<
    T, std::enable_if_t<detail::has_serialized_values<T>::value &&
                        !detail::has_member_serialization<T>::value>> {
  using deserialized_type = T;
  using values_tuple =
      decltype(std::declval<const T&>().upcxx_serialized_values());

  template <typename Ar>
  static void serialize(Ar& ar, const T& v) {
    std::apply(
        [&](const auto&... vals) {
          (serialization<std::decay_t<decltype(vals)>>::serialize(ar, vals),
           ...);
        },
        v.upcxx_serialized_values());
  }

  static T deserialize(detail::Reader& r) {
    return detail::construct_from_reader<T, values_tuple>(
        r, std::make_index_sequence<std::tuple_size_v<values_tuple>>{});
  }
};

// ---- user classes: member upcxx_serialization -------------------------------

template <typename T>
struct serialization<
    T, std::enable_if_t<detail::has_member_serialization<T>::value>> {
  using deserialized_type = T;
  template <typename Ar>
  static void serialize(Ar& ar, const T& v) {
    T::upcxx_serialization::serialize(ar, v);
  }
  static T deserialize(detail::Reader& r) {
    return T::upcxx_serialization::deserialize(r);
  }
};

// Helpers for hand-written upcxx_serialization bodies: write one value into
// an archive / read one value back, reusing the library codecs for any
// serializable field type.
template <typename Ar, typename U>
void serialize_one(Ar& ar, const U& v) {
  serialization<std::decay_t<U>>::serialize(ar, v);
}
template <typename U>
U deserialize_one(detail::Reader& r) {
  return serialization<std::decay_t<U>>::deserialize(r);
}

// ---- std::string -----------------------------------------------------------

template <>
struct serialization<std::string> {
  using deserialized_type = std::string;
  template <typename Ar>
  static void serialize(Ar& ar, const std::string& s) {
    std::uint64_t n = s.size();
    ar.align(8);
    ar.bytes(&n, sizeof n);
    ar.bytes(s.data(), n);
  }
  static std::string deserialize(detail::Reader& r) {
    auto n = r.pod<std::uint64_t>();
    const char* p = static_cast<const char*>(r.raw(n));
    return std::string(p, n);
  }
};

// ---- std::vector -----------------------------------------------------------

template <typename T, typename A>
struct serialization<std::vector<T, A>> {
  using deserialized_type = std::vector<T, A>;
  template <typename Ar>
  static void serialize(Ar& ar, const std::vector<T, A>& v) {
    std::uint64_t n = v.size();
    ar.align(8);
    ar.bytes(&n, sizeof n);
    if constexpr (std::is_trivially_copyable_v<T>) {
      ar.align(8);
      ar.bytes(v.data(), n * sizeof(T));
    } else {
      for (const T& e : v) serialization<std::decay_t<T>>::serialize(ar, e);
    }
  }
  static std::vector<T, A> deserialize(detail::Reader& r) {
    auto n = r.pod<std::uint64_t>();
    std::vector<T, A> out;
    out.reserve(n);
    if constexpr (std::is_trivially_copyable_v<T>) {
      r.align(8);
      const T* p = static_cast<const T*>(r.raw(n * sizeof(T)));
      out.assign(p, p + n);
    } else {
      for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(serialization<std::decay_t<T>>::deserialize(r));
    }
    return out;
  }
};

// ---- std::pair / std::tuple / std::optional --------------------------------

template <typename A, typename B>
struct serialization<std::pair<A, B>,
                     std::enable_if_t<!std::is_trivially_copyable_v<
                         std::pair<A, B>>>> {
  using deserialized_type = std::pair<A, B>;
  template <typename Ar>
  static void serialize(Ar& ar, const std::pair<A, B>& p) {
    serialization<std::decay_t<A>>::serialize(ar, p.first);
    serialization<std::decay_t<B>>::serialize(ar, p.second);
  }
  static std::pair<A, B> deserialize(detail::Reader& r) {
    auto a = serialization<std::decay_t<A>>::deserialize(r);
    auto b = serialization<std::decay_t<B>>::deserialize(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename... Ts>
struct serialization<std::tuple<Ts...>,
                     std::enable_if_t<!std::is_trivially_copyable_v<
                         std::tuple<Ts...>>>> {
  using deserialized_type = std::tuple<deserialized_type_t<Ts>...>;
  template <typename Ar>
  static void serialize(Ar& ar, const std::tuple<Ts...>& t) {
    std::apply(
        [&](const Ts&... es) {
          (serialization<std::decay_t<Ts>>::serialize(ar, es), ...);
        },
        t);
  }
  static deserialized_type deserialize(detail::Reader& r) {
    // Deserialize left-to-right (brace-init guarantees order).
    return deserialized_type{
        serialization<std::decay_t<Ts>>::deserialize(r)...};
  }
};

template <typename T>
struct serialization<std::optional<T>,
                     std::enable_if_t<!std::is_trivially_copyable_v<
                         std::optional<T>>>> {
  using deserialized_type = std::optional<T>;
  template <typename Ar>
  static void serialize(Ar& ar, const std::optional<T>& o) {
    std::uint8_t has = o.has_value() ? 1 : 0;
    ar.bytes(&has, 1);
    if (has) serialization<std::decay_t<T>>::serialize(ar, *o);
  }
  static std::optional<T> deserialize(detail::Reader& r) {
    auto has = *static_cast<const std::uint8_t*>(r.raw(1));
    if (!has) return std::nullopt;
    return serialization<std::decay_t<T>>::deserialize(r);
  }
};

// ---- maps -------------------------------------------------------------------

namespace detail {
template <typename Map>
struct map_serialization {
  using deserialized_type = Map;
  using K = typename Map::key_type;
  using V = typename Map::mapped_type;
  template <typename Ar>
  static void serialize(Ar& ar, const Map& m) {
    std::uint64_t n = m.size();
    ar.align(8);
    ar.bytes(&n, sizeof n);
    for (const auto& [k, v] : m) {
      serialization<std::decay_t<K>>::serialize(ar, k);
      serialization<std::decay_t<V>>::serialize(ar, v);
    }
  }
  static Map deserialize(Reader& r) {
    auto n = r.pod<std::uint64_t>();
    Map out;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto k = serialization<std::decay_t<K>>::deserialize(r);
      auto v = serialization<std::decay_t<V>>::deserialize(r);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }
};
}  // namespace detail

template <typename K, typename V, typename C, typename A>
struct serialization<std::map<K, V, C, A>>
    : detail::map_serialization<std::map<K, V, C, A>> {};

template <typename K, typename V, typename H, typename E, typename A>
struct serialization<std::unordered_map<K, V, H, E, A>>
    : detail::map_serialization<std::unordered_map<K, V, H, E, A>> {};

// ---- sequence/set adapters ---------------------------------------------

namespace detail {
// Shared element-wise codec for node-based containers (set, list, deque)
// where the vector fast path does not apply.
template <typename C>
struct sequence_serialization {
  using deserialized_type = C;
  using E = typename C::value_type;
  template <typename Ar>
  static void serialize(Ar& ar, const C& c) {
    std::uint64_t n = c.size();
    ar.align(8);
    ar.bytes(&n, sizeof n);
    for (const auto& e : c) serialization<std::decay_t<E>>::serialize(ar, e);
  }
  static C deserialize(Reader& r) {
    auto n = r.pod<std::uint64_t>();
    C out;
    for (std::uint64_t i = 0; i < n; ++i)
      out.insert(out.end(), serialization<std::decay_t<E>>::deserialize(r));
    return out;
  }
};
}  // namespace detail

template <typename T, typename C, typename A>
struct serialization<std::set<T, C, A>>
    : detail::sequence_serialization<std::set<T, C, A>> {};

template <typename T, typename A>
struct serialization<std::deque<T, A>>
    : detail::sequence_serialization<std::deque<T, A>> {};

template <typename T, typename A>
struct serialization<std::list<T, A>>
    : detail::sequence_serialization<std::list<T, A>> {};

// std::array with non-trivial elements (trivial ones take the memcpy path).
template <typename T, std::size_t N>
struct serialization<std::array<T, N>,
                     std::enable_if_t<!std::is_trivially_copyable_v<
                         std::array<T, N>>>> {
  using deserialized_type = std::array<T, N>;
  template <typename Ar>
  static void serialize(Ar& ar, const std::array<T, N>& a) {
    for (const auto& e : a) serialization<std::decay_t<T>>::serialize(ar, e);
  }
  static std::array<T, N> deserialize(detail::Reader& r) {
    std::array<T, N> out;
    for (std::size_t i = 0; i < N; ++i)
      out[i] = serialization<std::decay_t<T>>::deserialize(r);
    return out;
  }
};

// ------------------------------------------------------------------- view<T>
//
// A serializable, possibly non-owning sequence. On the sender side it wraps
// user iterators (make_view); at the target it aliases the incoming buffer
// when T is trivially copyable, otherwise it owns deserialized elements.

template <typename T, typename Iter = const T*>
class view {
 public:
  using value_type = T;
  using iterator = Iter;

  view() = default;
  view(Iter b, Iter e, std::size_t n) : b_(b), e_(e), n_(n) {}

  Iter begin() const { return b_; }
  Iter end() const { return e_; }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  // Only for pointer-iterator views (the deserialized form).
  const T& operator[](std::size_t i) const {
    static_assert(std::is_same_v<Iter, const T*>);
    return b_[i];
  }

 private:
  Iter b_{};
  Iter e_{};
  std::size_t n_ = 0;

  template <typename U, typename E>
  friend struct serialization;
  // Owning storage for deserialized non-trivial element types.
  std::shared_ptr<std::vector<T>> owned_;
};

// make_view from a container or an iterator pair.
template <typename Container>
auto make_view(const Container& c)
    -> view<typename Container::value_type,
            typename Container::const_iterator> {
  return {c.begin(), c.end(), static_cast<std::size_t>(c.size())};
}

template <typename Iter>
auto make_view(Iter b, Iter e)
    -> view<typename std::iterator_traits<Iter>::value_type, Iter> {
  return {b, e, static_cast<std::size_t>(std::distance(b, e))};
}

template <typename T, typename Iter>
struct serialization<view<T, Iter>> {
  // Deserialized views always iterate over contiguous memory.
  using deserialized_type = view<T, const T*>;

  template <typename Ar>
  static void serialize(Ar& ar, const view<T, Iter>& v) {
    std::uint64_t n = v.size();
    ar.align(8);
    ar.bytes(&n, sizeof n);
    if constexpr (std::is_trivially_copyable_v<T> &&
                  std::is_pointer_v<Iter>) {
      ar.align(8);
      ar.bytes(v.begin(), n * sizeof(T));
    } else if constexpr (std::is_trivially_copyable_v<T>) {
      ar.align(8);
      for (auto it = v.begin(); it != v.end(); ++it) {
        const T& e = *it;
        ar.bytes(&e, sizeof(T));
      }
    } else {
      for (auto it = v.begin(); it != v.end(); ++it)
        serialization<std::decay_t<T>>::serialize(ar, *it);
    }
  }

  static deserialized_type deserialize(detail::Reader& r) {
    auto n = r.pod<std::uint64_t>();
    if constexpr (std::is_trivially_copyable_v<T>) {
      r.align(8);
      // Zero-copy: alias the network buffer (valid for the duration of the
      // RPC execution, exactly like upcxx::view).
      const T* p = static_cast<const T*>(r.raw(n * sizeof(T)));
      return deserialized_type(p, p + n, n);
    } else {
      auto owned = std::make_shared<std::vector<T>>();
      owned->reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        owned->push_back(serialization<std::decay_t<T>>::deserialize(r));
      deserialized_type out(owned->data(), owned->data() + n, n);
      out.owned_ = owned;
      return out;
    }
  }
};

// ---------------------------------------------------------------- helpers

namespace detail {

// Serialize a pack of values into an archive.
template <typename Ar>
void serialize_args(Ar&) {}

template <typename Ar, typename First, typename... Rest>
void serialize_args(Ar& ar, const First& f, const Rest&... rest) {
  serialization<std::decay_t<First>>::serialize(ar, f);
  serialize_args(ar, rest...);
}

// Measured size of a pack.
template <typename... Args>
std::size_t serialized_size(const Args&... args) {
  SizeArchive sa;
  serialize_args(sa, args...);
  return sa.size();
}

// Deserialize a tuple of Args (by decayed type) from a reader.
template <typename... Args>
std::tuple<deserialized_type_t<Args>...> deserialize_tuple(Reader& r) {
  return std::tuple<deserialized_type_t<Args>...>{
      serialization<std::decay_t<Args>>::deserialize(r)...};
}

}  // namespace detail
}  // namespace upcxx

// Declares the listed members as this class's serialized representation
// (order matters and must be stable across ranks). Expand inside the class
// body, after the members are declared:
//
//   struct Particle {
//     std::string tag;
//     std::vector<double> pos;
//     UPCXX_SERIALIZED_FIELDS(tag, pos)
//   };
#define UPCXX_SERIALIZED_FIELDS(...)                            \
  auto upcxx_serialized_fields() { return std::tie(__VA_ARGS__); } \
  auto upcxx_serialized_fields() const { return std::tie(__VA_ARGS__); }

// Declares the listed expressions as this class's wire representation; the
// type is reconstructed by a constructor accepting those values in order:
//
//   class Interval {
//    public:
//     Interval(double lo, double hi);
//     UPCXX_SERIALIZED_VALUES(lo_, hi_ - lo_ /* any expressions */)
//     ...
//   };
#define UPCXX_SERIALIZED_VALUES(...) \
  auto upcxx_serialized_values() const { return std::make_tuple(__VA_ARGS__); }
