// Generalized asynchronous copy between any pair of global/local memory
// locations and memory *kinds* — the direction-agnostic upcxx::copy the
// paper's future-work section (§VI) points toward. Host and simulated-device
// endpoints use one spelling; the completion cost model charges the wire for
// remote endpoints and the simulated PCIe for each device endpoint
// (device_allocator.hpp).
//
// Data paths mirror rput/rget (rma.hpp) and are wire-agnostic:
//   * at or above Config::rma_async_min, any copy that is remote or pays a
//     device toll rides gex::XferEngine: chunks move through the target's
//     channel (on whichever wire is installed) and the simulated-PCIe cost
//     gates landing via the engine's extra-toll hook, so it *composes* with
//     the virtual wire clock instead of being charged at injection —
//     overlapped device copies pipeline exactly like host RMA
//     (bench/micro_copy_devmem.cpp's async section measures this);
//   * below the threshold on the am wire, remote copies ship as one AM
//     put/get. A third-party copy (both endpoints remote) ships as a put to
//     the destination rank whose payload is read through the cross-map —
//     honest for the write side; a distributed backend would stage through
//     a get first;
//   * otherwise the move is a synchronous memcpy at injection with the
//     device/wire cost charged to operation completion, as before.
//
// Completions are delivered through the same detail::cx_state pipeline as
// rput/rget/rpc. Buffers handed to an asynchronous copy must stay valid
// until source completion (source side) / operation completion (both).
#pragma once

#include "upcxx/device_allocator.hpp"
#include "upcxx/rma.hpp"

namespace upcxx {

namespace detail {

// The one data-motion body behind every copy() overload. `cx_target` is
// the rank remote_cx notifications go to (the remote endpoint, matching
// the per-overload conventions below).
template <typename Cxs>
auto copy_impl(Cxs cxs, intrank_t src_rank, intrank_t dst_rank, void* dst,
               const void* src, std::size_t bytes, int dev_ends,
               intrank_t cx_target) {
  // op_state(), not gex::rank_me(): injector threads have no gex TLS rank.
  const intrank_t me = op_state().rank->me;
  const bool remote = src_rank != me || dst_rank != me;
  const std::uint64_t dev_ns = device_transfer_cost_ns(bytes, dev_ends);
  const bool is_get = src_rank != me && dst_rank == me;
  const intrank_t target = is_get ? src_rank : dst_rank;
  const std::uint64_t wire_delay = remote ? 2 * op_state().sim_latency_ns : 0;
  if (use_xfer(bytes) && (remote || dev_ns > 0)) {
    // issue_xfer_ns / issue_am_contig_ns are op_context-routed: the same
    // call works from the master persona and from injector threads.
    return issue_xfer_ns(std::move(cxs), target, dst, src, bytes,
                         wire_delay, is_get, /*extra_landing_ns=*/dev_ns);
  }
  if (wire_am() && remote) {
    return issue_am_contig_ns(std::move(cxs), target, dst, src, bytes,
                              is_get, wire_delay + dev_ns);
  }
  // Synchronous move: thread-safe as-is (the memcpy is the caller's own;
  // the completion hooks route off-persona), so injectors fall through.
  if (bytes) std::memcpy(dst, src, bytes);
  return finish_rma_ns(std::move(cxs), cx_target, wire_delay + dev_ns);
}

}  // namespace detail

// global -> global, any memory kinds (either side may be owned by any rank;
// on the shared arena the initiator or the AM target performs the move —
// and the simulated device is host-backed, so the same holds).
template <typename T, memory_kind KS, memory_kind KD,
          typename Cxs = default_cx_t>
auto copy(global_ptr<T, KS> src, global_ptr<T, KD> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null() && !dest.is_null());
  arch::relaxed_inc(detail::op_state().stats.rputs);
  constexpr int dev_ends = (KS == memory_kind::sim_device ? 1 : 0) +
                           (KD == memory_kind::sim_device ? 1 : 0);
  return detail::copy_impl(std::move(cxs), src.where(), dest.where(),
                           dest.raw_address(), src.raw_address(),
                           n * sizeof(T), dev_ends, dest.where());
}

// local host -> global (host or device).
template <typename T, memory_kind KD, typename Cxs = default_cx_t>
auto copy(const T* src, global_ptr<T, KD> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!dest.is_null());
  arch::relaxed_inc(detail::op_state().stats.rputs);
  constexpr int dev_ends = KD == memory_kind::sim_device ? 1 : 0;
  return detail::copy_impl(std::move(cxs), detail::op_state().rank->me,
                           dest.where(), dest.raw_address(), src,
                           n * sizeof(T), dev_ends, dest.where());
}

// global (host or device) -> local host.
template <typename T, memory_kind KS, typename Cxs = default_cx_t>
auto copy(global_ptr<T, KS> src, T* dest, std::size_t n, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  arch::relaxed_inc(detail::op_state().stats.rgets);
  constexpr int dev_ends = KS == memory_kind::sim_device ? 1 : 0;
  return detail::copy_impl(std::move(cxs), src.where(),
                           detail::op_state().rank->me, dest,
                           src.raw_address(), n * sizeof(T), dev_ends,
                           src.where());
}

}  // namespace upcxx
