// Generalized asynchronous copy between any pair of global/local memory
// locations and memory *kinds* — the direction-agnostic upcxx::copy the
// paper's future-work section (§VI) points toward. Host and simulated-device
// endpoints use one spelling; the completion cost model charges the wire for
// remote endpoints and the simulated PCIe for each device endpoint
// (device_allocator.hpp).
//
// Completions are delivered through the same detail::cx_state pipeline as
// rput/rget/rpc (via finish_rma_ns). The data motion itself stays at
// injection for now — routing device-kind copies through gex::XferEngine is
// a ROADMAP follow-on, since the simulated-PCIe cost model and the wire
// bandwidth model need to compose first.
#pragma once

#include "upcxx/device_allocator.hpp"
#include "upcxx/rma.hpp"

namespace upcxx {

namespace detail {

// Simulated completion delay for a copy: a round trip on the wire when any
// endpoint is remote, plus the device-transfer cost per device endpoint.
inline std::uint64_t copy_delay_ns(intrank_t src_rank, intrank_t dst_rank,
                                   std::size_t bytes, int device_ends) {
  const intrank_t me = gex::rank_me();
  const std::uint64_t wire =
      (src_rank != me || dst_rank != me) ? 2 * persona().sim_latency_ns : 0;
  return wire + device_transfer_cost_ns(bytes, device_ends);
}

}  // namespace detail

// global -> global, any memory kinds (either side may be owned by any rank;
// on the shared arena the initiator performs the move, which is exactly
// GASNet PSHM — and the simulated device is host-backed, so the same holds).
template <typename T, memory_kind KS, memory_kind KD,
          typename Cxs = default_cx_t>
auto copy(global_ptr<T, KS> src, global_ptr<T, KD> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null() && !dest.is_null());
  ++detail::persona().stats.rputs;
  std::memcpy(dest.raw_address(), src.raw_address(), n * sizeof(T));
  constexpr int dev_ends = (KS == memory_kind::sim_device ? 1 : 0) +
                           (KD == memory_kind::sim_device ? 1 : 0);
  return detail::finish_rma_ns(
      std::move(cxs), dest.where(),
      detail::copy_delay_ns(src.where(), dest.where(), n * sizeof(T),
                            dev_ends));
}

// local host -> global (host or device).
template <typename T, memory_kind KD, typename Cxs = default_cx_t>
auto copy(const T* src, global_ptr<T, KD> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!dest.is_null());
  ++detail::persona().stats.rputs;
  std::memcpy(dest.raw_address(), src, n * sizeof(T));
  constexpr int dev_ends = KD == memory_kind::sim_device ? 1 : 0;
  return detail::finish_rma_ns(
      std::move(cxs), dest.where(),
      detail::copy_delay_ns(gex::rank_me(), dest.where(), n * sizeof(T),
                            dev_ends));
}

// global (host or device) -> local host.
template <typename T, memory_kind KS, typename Cxs = default_cx_t>
auto copy(global_ptr<T, KS> src, T* dest, std::size_t n, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  ++detail::persona().stats.rgets;
  std::memcpy(dest, src.raw_address(), n * sizeof(T));
  constexpr int dev_ends = KS == memory_kind::sim_device ? 1 : 0;
  return detail::finish_rma_ns(
      std::move(cxs), src.where(),
      detail::copy_delay_ns(src.where(), gex::rank_me(), n * sizeof(T),
                            dev_ends));
}

}  // namespace upcxx
