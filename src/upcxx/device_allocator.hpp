// Simulated device memory (paper §VI: "Future work will enhance UPC++'s
// one-sided communication to express transfers to and from other memories
// (such as that of GPUs)"). This reproduces the memory-kinds API UPC++
// shipped after the paper: a device type, a device_allocator that creates a
// per-rank device segment, and global_ptr<T, memory_kind> values that can
// only be moved with upcxx::copy (copy.hpp).
//
// Substitution (documented in DESIGN.md): there is no GPU in this
// environment, so the "device" is a distinct region of the shared arena that
// the type system treats as non-host-addressable (global_ptr<T, sim_device>
// provides no local()). Transfers optionally charge a simulated PCIe-style
// cost (fixed latency + per-byte time), configurable programmatically or via
// UPCXX_SIM_DEV_LATENCY_NS / UPCXX_SIM_DEV_GBPS, so benches can expose the
// host-staging vs direct-copy tradeoffs the real feature is about.
#pragma once

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "gex/runtime.hpp"
#include "gex/shared_heap.hpp"
#include "upcxx/global_ptr.hpp"
#include "upcxx/progress.hpp"

namespace upcxx {

// The simulated accelerator device type (the analog of upcxx::cuda_device).
struct sim_device {
  static constexpr memory_kind kind = memory_kind::sim_device;
  using id_type = int;
  static constexpr id_type invalid_device_id = -1;
};

namespace detail {

// Simulated device-transfer parameters. Defaults come from the environment;
// tests and benches may override programmatically per SPMD region.
struct SimDeviceParams {
  std::uint64_t latency_ns = 0;  // fixed per-transfer cost
  double ns_per_byte = 0.0;      // 1 / bandwidth
};

inline SimDeviceParams& sim_device_params() {
  thread_local SimDeviceParams params = [] {
    SimDeviceParams q;
    if (const char* e = std::getenv("UPCXX_SIM_DEV_LATENCY_NS"))
      q.latency_ns = std::strtoull(e, nullptr, 10);
    if (const char* e = std::getenv("UPCXX_SIM_DEV_GBPS")) {
      const double gbps = std::strtod(e, nullptr);
      q.ns_per_byte = gbps > 0.0 ? 1.0 / gbps : 0.0;  // 1 GB/s == 1 byte/ns
    }
    return q;
  }();
  return params;
}

// Per-transfer toll: one DMA per copy touching device memory, regardless of
// how many endpoints are devices (a direct d2d is a single DMA, exactly why
// it beats staging through the host — GPUDirect's point).
inline std::uint64_t device_transfer_cost_ns(std::size_t bytes,
                                             int device_ends) {
  if (device_ends == 0) return 0;
  const auto& p = sim_device_params();
  return p.latency_ns +
         static_cast<std::uint64_t>(p.ns_per_byte *
                                    static_cast<double>(bytes));
}

}  // namespace detail

namespace experimental {

// Overrides the simulated device-transfer cost model for the calling rank
// (latency per transfer end, plus per-byte cost derived from GB/s; pass 0
// gbps for infinite bandwidth).
inline void set_sim_device_params(std::uint64_t latency_ns, double gbps) {
  auto& p = detail::sim_device_params();
  p.latency_ns = latency_ns;
  p.ns_per_byte = gbps > 0.0 ? 1.0 / gbps : 0.0;  // 1 GB/s == 1 byte/ns
}

}  // namespace experimental

// A per-rank device segment. Construction is collective over the world team
// (every rank opens its own device); pointers into the segment may be sent
// to any rank and used as upcxx::copy endpoints from anywhere, exactly like
// the real device_allocator.
template <typename Device>
class device_allocator {
 public:
  static constexpr memory_kind kind = Device::kind;

  // Collective: carves a device segment of `bytes` bytes for this rank.
  explicit device_allocator(std::size_t bytes)
      : bytes_(bytes) {
    auto* r = gex::self();
    assert(r && "device_allocator outside SPMD region");
    // The "device" storage lives in the rank's shared segment so that peer
    // ranks (including forked processes) can reach it — the moral equivalent
    // of GASNet memory-kinds making device segments remotely addressable.
    region_ = r->arena->segment_heap(r->me).allocate(bytes, 64);
    assert(region_ && "shared segment exhausted creating device segment");
    heap_ = gex::SharedHeap::create(region_, bytes);
    ::upcxx::barrier();
  }

  ~device_allocator() {
    if (!region_) return;
    auto* r = gex::self();
    if (r) r->arena->segment_heap(r->me).deallocate(region_);
  }

  device_allocator(const device_allocator&) = delete;
  device_allocator& operator=(const device_allocator&) = delete;

  device_allocator(device_allocator&& o) noexcept
      : region_(o.region_), heap_(o.heap_), bytes_(o.bytes_) {
    o.region_ = nullptr;
    o.heap_ = nullptr;
  }

  // Allocates n device objects; null global_ptr when the segment is full.
  template <typename T>
  global_ptr<T, kind> allocate(std::size_t n = 1,
                               std::size_t align = alignof(T)) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "device memory holds trivially copyable objects");
    void* p = heap_->allocate(n * sizeof(T), align < 16 ? 16 : align);
    if (!p) return {};
    return global_ptr<T, kind>::from_raw(gex::rank_me(),
                                         static_cast<T*>(p));
  }

  // Frees device memory allocated by this rank's allocator.
  template <typename T>
  void deallocate(global_ptr<T, kind> g) {
    if (g.is_null()) return;
    assert(g.where() == gex::rank_me() &&
           "deallocate must run on the owning rank");
    heap_->deallocate(g.raw_address());
  }

  std::size_t segment_bytes() const { return bytes_; }
  std::size_t bytes_free() const { return heap_->bytes_free(); }

 private:
  void* region_ = nullptr;
  gex::SharedHeap* heap_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace upcxx
