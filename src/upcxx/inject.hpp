// Thread-safe op injection: initiate ops from app threads.
//
// The persona discipline (persona.hpp) says communication is initiated
// only by the thread holding the rank's master persona; worker threads
// post LPCs to it. That serializes every initiation through one thread —
// exactly the bottleneck a serving workload with many app threads hits.
// This header is the sanctioned bypass: an `injector` captures the rank's
// runtime state on a thread that has the rank context, and an
// `injection_scope` binds it to an app thread, after which that thread may
// call rpc/rpc_ff, rput/rget (contiguous, irregular, strided), copy,
// collectives (barrier/broadcast/reduce/allgather/...), atomic_domain
// operations, and dist_object::fetch directly. Every public entry point
// routes through detail::op_context (progress.hpp): *state stays put;
// descriptors cross over; completions cross back.* Under the hood:
//
//   * Small sync RMA against the direct wire completes entirely on the
//     calling thread (the same zero-allocation memcpy fast path the
//     master uses — this is where multi-thread injection scales), as do
//     direct-backend atomics (a CPU atomic is a CPU atomic).
//   * Everything else is prepared caller-side (serialization, completion
//     state, collective fold/deliver closures) and handed to the rank
//     through lock-free MPSC queues — the thread-hash-sharded submit
//     queue (PersonaState::submit_shards, UPCXX_SUBMIT_SHARDS) for engine
//     dispatches, the wire shards for serialized sends — drained by the
//     progress persona or upcxx::progress_pool helpers inside poll.
//   * Completions ship back to the initiating thread's own persona inbox,
//     so the returned futures/promises stay persona-affine: they become
//     ready during *this thread's* upcxx::progress() / future::wait()
//     calls, never concurrently from another thread.
//
// Still master-persona-only: team/dist_object/atomic_domain *construction*
// and destruction (collective setup, like upcxx::init itself). Collectives
// injected from several threads concurrently must be issued symmetrically
// across ranks, the same rule real UPC++ imposes on unordered collectives
// over one team; one thread's collectives stay FIFO through its submit
// shard, so per-thread sequences agree rank-to-rank.
//
// Lifetime: the injector must not outlive the SPMD region that created
// it, and every injection_scope must be destroyed (thread joined or scope
// exited) before fini_persona tears the rank down — the final barrier in
// upcxx::run only quiesces work that has already been submitted.
#pragma once

#include <cassert>

#include "upcxx/progress.hpp"

namespace upcxx {

// Capability handle to a rank's runtime state. Create it on a thread that
// has the rank context (the primordial thread, or a holder of the master
// persona); hand copies to app threads. Copyable and cheap — it is just a
// pointer whose validity is the SPMD region's lifetime.
class injector {
 public:
  injector() : st_(&detail::persona()) {}

 private:
  friend class injection_scope;
  detail::PersonaState* st_;
};

// RAII binding of an injector to the calling thread. While alive, this
// thread may initiate operations off-persona (see header comment). Not
// nestable, and invalid on a thread that already has a rank context (the
// master's thread initiates directly and must not shadow itself).
class injection_scope {
 public:
  explicit injection_scope(const injector& inj) {
    assert(!detail::has_persona() &&
           "injection_scope on a thread that already has the rank context");
    assert(!detail::inject_context() && "injection_scope is not nestable");
    detail::bind_inject_context(inj.st_);
  }

  ~injection_scope() { detail::bind_inject_context(nullptr); }

  injection_scope(const injection_scope&) = delete;
  injection_scope& operator=(const injection_scope&) = delete;
};

}  // namespace upcxx
