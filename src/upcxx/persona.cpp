#include "upcxx/persona.hpp"

#include <vector>

#include "gex/runtime.hpp"
#include "upcxx/progress.hpp"

namespace upcxx {
namespace detail {

// NOTE: inside namespace detail the unqualified name `persona` denotes the
// rank-state accessor function detail::persona(); the class is spelled
// ::upcxx::persona throughout this file.

namespace {

// The stack of personas held by this thread, bottom first. The default
// persona is lazily pushed on first use so plain threads (not spawned by the
// runtime) can participate.
thread_local std::vector<::upcxx::persona*> tls_stack;
thread_local ::upcxx::persona tls_default_persona;

}  // namespace

void ensure_default_persona() {
  if (tls_stack.empty()) {
    tls_default_persona.owner_.store(thread_marker(),
                                     std::memory_order_release);
    tls_stack.push_back(&tls_default_persona);
  }
}

const void* thread_marker() {
  return static_cast<const void*>(&tls_default_persona);
}

void persona_stack_push(::upcxx::persona* p) {
  ensure_default_persona();
  tls_stack.push_back(p);
}

void persona_stack_pop(::upcxx::persona* p) {
  assert(!tls_stack.empty() && tls_stack.back() == p &&
         "persona_scope released out of LIFO order");
  tls_stack.pop_back();
}

bool persona_stack_contains(const ::upcxx::persona* p) {
  for (const ::upcxx::persona* q : tls_stack)
    if (q == p) return true;
  return false;
}

void drain_persona_inboxes() {
  ensure_default_persona();
  // Index-based walk: an LPC body may acquire/release personas (mutating
  // the stack) or call progress() re-entrantly (finding an inbox already
  // swapped out) — both are safe under re-checked bounds. The unlocked
  // pending probe keeps the common empty case free of locks and
  // allocations; a push that races past the probe is picked up by the next
  // progress call.
  for (std::size_t i = 0; i < tls_stack.size(); ++i) {
    ::upcxx::persona* p = tls_stack[i];
    if (p->pending_.load(std::memory_order_acquire) == 0) continue;
    std::deque<Lpc> work;
    {
      arch::SpinGuard g(p->mu_);
      work.swap(p->inbox_);
    }
    p->pending_.fetch_sub(static_cast<std::uint32_t>(work.size()),
                          std::memory_order_release);
    for (auto& fn : work) {
      fn();
      p->lpcs_executed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void adopt_master(::upcxx::persona& p, PersonaState* st) {
  ensure_default_persona();
  p.rank_state_ = st;
  p.owner_.store(thread_marker(), std::memory_order_release);
  tls_stack.push_back(&p);
}

void drop_master(::upcxx::persona& p) {
  assert(!tls_stack.empty() && tls_stack.back() == &p &&
         "rank teardown requires the master persona on top of the "
         "primordial thread's stack");
  tls_stack.pop_back();
  p.owner_.store(nullptr, std::memory_order_release);
  p.rank_state_ = nullptr;
}

}  // namespace detail

persona& default_persona() {
  detail::ensure_default_persona();
  return detail::tls_default_persona;
}

persona& current_persona() {
  detail::ensure_default_persona();
  return *detail::tls_stack.back();
}

persona& master_persona() {
  auto* st = detail::rank_context();
  assert(st && "master_persona(): no rank context on this thread; pass a "
               "persona& from the rank's primordial thread instead");
  return detail::master_of(*st);
}

void liberate_master_persona() {
  persona& m = master_persona();
  assert(m.active_with_caller() && &current_persona() == &m &&
         "liberate_master_persona(): caller must hold the master persona as "
         "its current persona");
  detail::persona_stack_pop(&m);
  m.owner_.store(nullptr, std::memory_order_release);
  detail::bind_rank_context(nullptr);
}

void persona_scope::acquire() {
  const void* me = detail::thread_marker();
  const void* expected = nullptr;
  if (!p_->owner_.compare_exchange_strong(expected, me,
                                          std::memory_order_acq_rel)) {
    assert(expected == me &&
           "persona_scope: persona is held by another thread (liberate it "
           "first, or serialize with the mutex overload)");
  }
  detail::persona_stack_push(p_);
  // Acquiring a master persona migrates the rank context to this thread.
  if (p_->rank_state_) detail::bind_rank_context(p_->rank_state_);
}

void persona_scope::release() {
  detail::persona_stack_pop(p_);
  if (!detail::persona_stack_contains(p_)) {
    p_->owner_.store(nullptr, std::memory_order_release);
    if (p_->rank_state_) detail::bind_rank_context(nullptr);
  }
}

}  // namespace upcxx
