// Completion objects (paper §II and §IV-B: operation_cx::as_promise(p)).
//
// UPC++ communication calls accept a *completions* value describing how each
// completion event should be signaled:
//   operation_cx — the whole operation is complete (remotely visible);
//   source_cx   — the source buffer is reusable (local completion);
//   remote_cx   — execute an RPC at the target once the data has landed.
// Variants: as_future() (the default; the call returns a future),
// as_promise(p) (register a dependency on an existing promise — the flood
// bandwidth benchmark's mechanism), as_lpc(fn) (run a local callback, now
// available for both operation and source events), and
// remote_cx::as_rpc(fn, args...).
//
// Completions combine with operator|, e.g.
//   rput(src, dst, n, operation_cx::as_promise(p) | remote_cx::as_rpc(f, a));
// Requesting both source_cx::as_future() and operation_cx::as_future() in
// one call is supported: the call returns std::tuple<future<>, future<>>
// with the source future first.
//
// detail::cx_state below is the single completion-delivery pipeline every
// communication call uses (rput/rget, the irregular and strided variants,
// copy(), rpc): the op-specific code decides *when* each completion event
// has happened (synchronously at injection, after a simulated delay, or
// from an XferEngine callback once an asynchronous transfer drains) and
// cx_state knows *how* to signal it through the requested mechanism.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "arch/small_fn.hpp"
#include "upcxx/future.hpp"

namespace upcxx {

namespace detail {

struct op_future_cx {};
struct src_future_cx {};

struct op_promise_cx {
  promise<> pr;
};
struct src_promise_cx {
  promise<> pr;
};

struct op_lpc_cx {
  arch::UniqueFunction<void()> fn;
};
struct src_lpc_cx {
  arch::UniqueFunction<void()> fn;
};

template <typename F, typename... Args>
struct remote_rpc_cx {
  F fn;
  std::tuple<std::decay_t<Args>...> args;
};

template <typename... Cx>
struct completions {
  std::tuple<Cx...> items;

  // Does this completion list contain an element matching predicate Trait?
  template <template <typename> class Trait>
  static constexpr bool has() {
    return (Trait<Cx>::value || ...);
  }
};

template <>
struct completions<> {
  std::tuple<> items;
  template <template <typename> class Trait>
  static constexpr bool has() {
    return false;
  }
};

template <typename... A, typename... B>
completions<A..., B...> operator|(completions<A...> a, completions<B...> b) {
  return {std::tuple_cat(std::move(a.items), std::move(b.items))};
}

// Trait predicates used by rput/rget/rpc to decide their return type.
template <typename T>
struct is_op_future : std::is_same<T, op_future_cx> {};
template <typename T>
struct is_src_future : std::is_same<T, src_future_cx> {};
template <typename T>
struct is_op_promise : std::is_same<T, op_promise_cx> {};
template <typename T>
struct is_src_promise : std::is_same<T, src_promise_cx> {};
template <typename T>
struct is_op_lpc : std::is_same<T, op_lpc_cx> {};
template <typename T>
struct is_src_lpc : std::is_same<T, src_lpc_cx> {};
template <typename T>
struct is_remote_rpc : std::false_type {};
template <typename F, typename... A>
struct is_remote_rpc<remote_rpc_cx<F, A...>> : std::true_type {};

// Is T a completions<...> pack? Used to disambiguate the rpc overload that
// takes explicit completions from the plain rpc(target, fn, args...) form.
template <typename T>
struct is_completions : std::false_type {};
template <typename... Cx>
struct is_completions<completions<Cx...>> : std::true_type {};

// ---- progress-engine hooks -------------------------------------------------
// cx_state signals through the progress engine and the wire; the providers
// live above this header (progress.hpp / rpc.hpp). Declared here so the
// pipeline can be defined in one place without an include cycle; templates
// instantiate at call sites that see the definitions.
//
// Threading: both hooks are safe off-persona (an injector thread under an
// upcxx::injection_scope). push_compq then routes to the calling thread's
// own persona inbox — its "completion shard" — and push_completion_after_ns
// runs the timer on the master but fires the callback back on the calling
// persona, so a cx_state built by an injector thread always signals where
// its promises live. A cx_state must only ever be *driven* (source_now /
// operation_done) on the persona that built it; the engines honor this by
// shipping deferred transitions home via lpc_ff rather than calling in.

void push_compq(arch::UniqueFunction<void()> fn);
void push_completion_after_ns(std::uint64_t delay_ns,
                              arch::UniqueFunction<void()> fn);

// Ships fn(args...) to `target` on the latency-sensitive immediate wire
// path (remote completion notifications must not sit in the aggregation
// buffer). Defined in rpc.hpp.
template <typename F, typename ArgsTuple>
void remote_rpc_send(intrank_t target, const F& fn, const ArgsTuple& args);

// ---- the unified completion pipeline ---------------------------------------

// cx_state owns a completions pack plus the promise state backing any
// requested futures, and delivers each completion event exactly once:
//
//   source_now()            — signal source completion (buffer reusable);
//   remote_now([target])    — send the remote_cx notifications to a target
//                             (callable repeatedly for multi-target ops);
//   operation_done(delay)   — signal operation completion, deferred by
//                             delay nanoseconds (0 = now);
//   result()                — the value the communication call returns.
//
// Invariants the callers rely on:
//   * The synchronous fast path (source_now + remote_now + operation_done(0)
//     + result, all before returning) performs NO allocation beyond what the
//     user's completion objects already carry: promises are fulfilled in
//     place, LPCs move into compQ, and a requested future is the rank's
//     cached ready future. Every small blocking rput takes this path, and
//     E1 is sensitive to a single malloc here.
//   * For deferred delivery (simulated latency, or an asynchronous transfer
//     whose XferEngine callbacks fire later), promise-backed futures are
//     materialized on demand — or up front via prepare_deferred() when the
//     cx_state must outlive the call (the async path moves it into the
//     engine callbacks before result() is taken).
//   * LPC completions always run from the progress engine, never
//     synchronously inside the injection call.
template <typename Cxs>
class cx_state {
  using CxsD = std::decay_t<Cxs>;

 public:
  static constexpr bool want_op_future = CxsD::template has<is_op_future>();
  static constexpr bool want_src_future = CxsD::template has<is_src_future>();

  cx_state(CxsD&& cxs, intrank_t target)
      : cxs_(std::move(cxs)), target_(target) {}

  cx_state(cx_state&&) = default;
  cx_state& operator=(cx_state&&) = default;

  // Materializes the promises behind any requested futures so result() can
  // be taken before the (asynchronous) completion signals arrive.
  void prepare_deferred() {
    if constexpr (want_op_future) op_promise();
    if constexpr (want_src_future) src_promise();
  }

  // The source buffer is reusable. Fulfills source promises in place and
  // queues source LPCs for the next user-level progress.
  void source_now() {
    std::apply([&](auto&... item) { (source_one(item), ...); }, cxs_.items);
    if constexpr (want_src_future) {
      if (src_pr_) {
        src_pr_->fulfill_anonymous(1);
      } else {
        src_sync_ = true;
      }
    }
  }

  // Sends every remote_cx notification to `target` over the immediate wire
  // path. Multi-target operations (irregular fragment lists) call this once
  // per distinct target; argument tuples are serialized per send, never
  // consumed.
  void remote_now(intrank_t target) {
    std::apply([&](auto&... item) { (remote_one(item, target), ...); },
               cxs_.items);
  }
  void remote_now() { remote_now(target_); }

  // Operation completion, deferred by delay_ns (0 = complete now; LPCs and
  // futures still deliver through the progress engine / compQ).
  void operation_done(std::uint64_t delay_ns) {
    if (delay_ns == 0) {
      std::apply([&](auto&... item) { (op_one_now(item), ...); },
                 cxs_.items);
      if constexpr (want_op_future) {
        if (op_pr_) {
          op_pr_->fulfill_anonymous(1);
        } else {
          op_sync_ = true;
        }
      }
    } else {
      std::apply([&](auto&... item) { (op_one_after(item, delay_ns), ...); },
                 cxs_.items);
      if constexpr (want_op_future) {
        push_completion_after_ns(delay_ns, [pr = op_promise()]() mutable {
          pr.fulfill_anonymous(1);
        });
      }
    }
  }

  // The communication call's return value: future for op_future, future for
  // src_future, tuple (source first) for both, void for neither. Call once.
  auto result() {
    if constexpr (want_src_future && want_op_future) {
      return std::make_tuple(take_src_future(), take_op_future());
    } else if constexpr (want_op_future) {
      return take_op_future();
    } else if constexpr (want_src_future) {
      return take_src_future();
    } else {
      return;
    }
  }

 private:
  template <typename C>
  void source_one(C& cx) {
    if constexpr (std::is_same_v<C, src_promise_cx>) {
      cx.pr.fulfill_anonymous(1);
    } else if constexpr (std::is_same_v<C, src_lpc_cx>) {
      push_compq(std::move(cx.fn));
    }
  }

  template <typename C>
  void remote_one(C& cx, intrank_t target) {
    if constexpr (is_remote_rpc<C>::value) {
      remote_rpc_send(target, cx.fn, cx.args);
    } else {
      (void)cx;
      (void)target;
    }
  }

  template <typename C>
  void op_one_now(C& cx) {
    if constexpr (std::is_same_v<C, op_promise_cx>) {
      cx.pr.fulfill_anonymous(1);
    } else if constexpr (std::is_same_v<C, op_lpc_cx>) {
      push_compq(std::move(cx.fn));
    }
  }

  template <typename C>
  void op_one_after(C& cx, std::uint64_t delay_ns) {
    if constexpr (std::is_same_v<C, op_promise_cx>) {
      push_completion_after_ns(delay_ns, [pr = cx.pr]() mutable {
        pr.fulfill_anonymous(1);
      });
    } else if constexpr (std::is_same_v<C, op_lpc_cx>) {
      push_completion_after_ns(delay_ns, std::move(cx.fn));
    }
  }

  promise<>& op_promise() {
    if (!op_pr_) {
      op_pr_.emplace();
      op_pr_->require_anonymous(1);
    }
    return *op_pr_;
  }
  promise<>& src_promise() {
    if (!src_pr_) {
      src_pr_.emplace();
      src_pr_->require_anonymous(1);
    }
    return *src_pr_;
  }

  future<> take_op_future() {
    if (op_pr_) return op_pr_->finalize();
    assert(op_sync_ && "operation future taken before any completion signal");
    return ready_future();
  }
  future<> take_src_future() {
    if (src_pr_) return src_pr_->finalize();
    assert(src_sync_ && "source future taken before any completion signal");
    return ready_future();
  }

  CxsD cxs_;
  intrank_t target_;
  // Lazily materialized so the synchronous fast path never touches the
  // allocator (a promise carries shared state).
  std::optional<promise<>> op_pr_;
  std::optional<promise<>> src_pr_;
  bool op_sync_ = false;
  bool src_sync_ = false;
};

// True when Cxs contains any source- or remote-kind completion (rpc rejects
// those at compile time).
template <typename Cxs>
inline constexpr bool has_non_op_completions =
    Cxs::template has<is_src_future>() ||
    Cxs::template has<is_src_promise>() ||
    Cxs::template has<is_src_lpc>() || Cxs::template has<is_remote_rpc>();

}  // namespace detail

// Public completion factories, named as in UPC++.
struct operation_cx {
  static detail::completions<detail::op_future_cx> as_future() {
    return {};
  }
  static detail::completions<detail::op_promise_cx> as_promise(
      const promise<>& p) {
    // Each registration adds one dependency, retired on completion.
    detail::completions<detail::op_promise_cx> c{std::tuple<detail::op_promise_cx>{
        detail::op_promise_cx{p}}};
    std::get<0>(c.items).pr.require_anonymous(1);
    return c;
  }
  template <typename Fn>
  static detail::completions<detail::op_lpc_cx> as_lpc(Fn&& fn) {
    return {std::tuple<detail::op_lpc_cx>{
        detail::op_lpc_cx{std::forward<Fn>(fn)}}};
  }
};

struct source_cx {
  static detail::completions<detail::src_future_cx> as_future() {
    return {};
  }
  static detail::completions<detail::src_promise_cx> as_promise(
      const promise<>& p) {
    detail::completions<detail::src_promise_cx> c{
        std::tuple<detail::src_promise_cx>{detail::src_promise_cx{p}}};
    std::get<0>(c.items).pr.require_anonymous(1);
    return c;
  }
  // Runs fn on the initiator once the source buffer is reusable — parity
  // with operation_cx::as_lpc. On the synchronous wire this fires at the
  // next user-level progress; on the asynchronous engine path it fires once
  // the last chunk has been read out of the source buffer.
  template <typename Fn>
  static detail::completions<detail::src_lpc_cx> as_lpc(Fn&& fn) {
    return {std::tuple<detail::src_lpc_cx>{
        detail::src_lpc_cx{std::forward<Fn>(fn)}}};
  }
};

struct remote_cx {
  // Executes fn(args...) at the target rank once the transferred data is
  // visible there (the v1.0 feature §V-A credits for streamlined DHT
  // insertion).
  template <typename F, typename... Args>
  static detail::completions<detail::remote_rpc_cx<F, Args...>> as_rpc(
      F fn, Args&&... args) {
    return {std::tuple<detail::remote_rpc_cx<F, Args...>>{
        detail::remote_rpc_cx<F, Args...>{
            std::move(fn), std::tuple<std::decay_t<Args>...>(
                               std::forward<Args>(args)...)}}};
  }
};

}  // namespace upcxx
