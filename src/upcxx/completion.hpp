// Completion objects (paper §II and §IV-B: operation_cx::as_promise(p)).
//
// UPC++ communication calls accept a *completions* value describing how each
// completion event should be signaled:
//   operation_cx — the whole operation is complete (remotely visible);
//   source_cx   — the source buffer is reusable (local completion);
//   remote_cx   — execute an RPC at the target once the data has landed.
// Variants: as_future() (the default; the call returns a future),
// as_promise(p) (register a dependency on an existing promise — the flood
// bandwidth benchmark's mechanism), as_lpc(fn) (run a local callback), and
// remote_cx::as_rpc(fn, args...).
//
// Completions combine with operator|, e.g.
//   rput(src, dst, n, operation_cx::as_promise(p) | remote_cx::as_rpc(f, a));
#pragma once

#include <tuple>
#include <type_traits>
#include <utility>

#include "arch/small_fn.hpp"
#include "upcxx/future.hpp"

namespace upcxx {

namespace detail {

struct op_future_cx {};
struct src_future_cx {};

struct op_promise_cx {
  promise<> pr;
};
struct src_promise_cx {
  promise<> pr;
};

struct op_lpc_cx {
  arch::UniqueFunction<void()> fn;
};

template <typename F, typename... Args>
struct remote_rpc_cx {
  F fn;
  std::tuple<std::decay_t<Args>...> args;
};

template <typename... Cx>
struct completions {
  std::tuple<Cx...> items;

  // Does this completion list contain an element matching predicate Trait?
  template <template <typename> class Trait>
  static constexpr bool has() {
    return (Trait<Cx>::value || ...);
  }
};

template <>
struct completions<> {
  std::tuple<> items;
  template <template <typename> class Trait>
  static constexpr bool has() {
    return false;
  }
};

template <typename... A, typename... B>
completions<A..., B...> operator|(completions<A...> a, completions<B...> b) {
  return {std::tuple_cat(std::move(a.items), std::move(b.items))};
}

// Trait predicates used by rput/rget/rpc to decide their return type.
template <typename T>
struct is_op_future : std::is_same<T, op_future_cx> {};
template <typename T>
struct is_src_future : std::is_same<T, src_future_cx> {};
template <typename T>
struct is_op_promise : std::is_same<T, op_promise_cx> {};
template <typename T>
struct is_op_lpc : std::is_same<T, op_lpc_cx> {};
template <typename T>
struct is_remote_rpc : std::false_type {};
template <typename F, typename... A>
struct is_remote_rpc<remote_rpc_cx<F, A...>> : std::true_type {};

// Is T a completions<...> pack? Used to disambiguate the rpc overload that
// takes explicit completions from the plain rpc(target, fn, args...) form.
template <typename T>
struct is_completions : std::false_type {};
template <typename... Cx>
struct is_completions<completions<Cx...>> : std::true_type {};

}  // namespace detail

// Public completion factories, named as in UPC++.
struct operation_cx {
  static detail::completions<detail::op_future_cx> as_future() {
    return {};
  }
  static detail::completions<detail::op_promise_cx> as_promise(
      const promise<>& p) {
    // Each registration adds one dependency, retired on completion.
    detail::completions<detail::op_promise_cx> c{std::tuple<detail::op_promise_cx>{
        detail::op_promise_cx{p}}};
    std::get<0>(c.items).pr.require_anonymous(1);
    return c;
  }
  template <typename Fn>
  static detail::completions<detail::op_lpc_cx> as_lpc(Fn&& fn) {
    return {std::tuple<detail::op_lpc_cx>{
        detail::op_lpc_cx{std::forward<Fn>(fn)}}};
  }
};

struct source_cx {
  static detail::completions<detail::src_future_cx> as_future() {
    return {};
  }
  static detail::completions<detail::src_promise_cx> as_promise(
      const promise<>& p) {
    detail::completions<detail::src_promise_cx> c{
        std::tuple<detail::src_promise_cx>{detail::src_promise_cx{p}}};
    std::get<0>(c.items).pr.require_anonymous(1);
    return c;
  }
};

struct remote_cx {
  // Executes fn(args...) at the target rank once the transferred data is
  // visible there (the v1.0 feature §V-A credits for streamlined DHT
  // insertion).
  template <typename F, typename... Args>
  static detail::completions<detail::remote_rpc_cx<F, Args...>> as_rpc(
      F fn, Args&&... args) {
    return {std::tuple<detail::remote_rpc_cx<F, Args...>>{
        detail::remote_rpc_cx<F, Args...>{
            std::move(fn), std::tuple<std::decay_t<Args>...>(
                               std::forward<Args>(args)...)}}};
  }
};

}  // namespace upcxx
