// upcxx::progress_thread — a dedicated communication thread per rank.
//
// The paper (§III) is explicit that the runtime spawns no hidden threads;
// the user balances computation against attentiveness. The classic
// resolution is to dedicate one thread to communication by migrating the
// rank's *master persona* to it, while the primordial thread computes and
// hands communication requests over as LPCs. bench/abl_overlap.cpp and
// examples/progress_thread.cpp used to spell that pattern out by hand;
// this helper packages it:
//
//   upcxx::progress_thread pt;                     // master migrates
//   auto fut = pt.lpc([=] { return upcxx::rput(src, dst, n); });
//   heavy_compute();                               // overlaps the drain
//   fut.wait();
//   pt.stop();                                     // master returns here
//
// The progress loop spins hard only while the data-motion engine has
// chunks to move (XferEngine::copies_pending()) or the AM RMA protocol has
// outstanding requests; otherwise it yields, so an oversubscribed host
// keeps feeding the compute thread while the virtual wire clock — which
// advances on wall time, not CPU — runs out.
//
// The constructing thread must hold the master persona (the default state
// inside upcxx::run) and must be the one calling stop(). Between
// construction and stop() it must not initiate communication directly —
// route everything through lpc().
#pragma once

#include <atomic>
#include <thread>
#include <utility>

#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "upcxx/persona.hpp"
#include "upcxx/progress.hpp"

namespace upcxx {

class progress_thread {
 public:
  progress_thread() : master_(&master_persona()) {
    liberate_master_persona();
    thread_ = std::thread([this] {
      persona_scope scope(*master_);
      while (!stop_.load(std::memory_order_acquire)) {
        progress();
        if (!busy()) std::this_thread::yield();
      }
      // Final drain so late acks and teardown traffic don't linger.
      for (int i = 0; i < 64; ++i) progress();
    });
  }

  ~progress_thread() {
    if (thread_.joinable()) stop();
  }

  progress_thread(const progress_thread&) = delete;
  progress_thread& operator=(const progress_thread&) = delete;

  // The migrated master persona — the address for manual lpc_ff etc.
  persona& master() { return *master_; }

  // Runs fn on the progress thread (which holds the master persona, hence
  // the right to initiate communication); the returned future is fulfilled
  // back on the calling persona. A future-returning fn is unwrapped on the
  // progress thread first, so `pt.lpc([=]{ return rput(...); }).wait()`
  // waits for the transfer itself.
  template <typename Fn>
  auto lpc(Fn&& fn) {
    return master_->lpc(std::forward<Fn>(fn));
  }

  // Joins the communication thread and re-acquires the master persona on
  // the calling thread, which must be the constructing one.
  void stop() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    // Re-acquire for the remainder of the SPMD body and teardown. The
    // scope must outlive this helper and the body itself (fini_persona
    // still needs the master), hence the deliberate leak — the real-UPC++
    // idiom is a persona_scope in main() outliving finalize().
    new persona_scope(*master_);
  }

 private:
  // Anything in flight that wants a hot progress loop rather than a yield?
  static bool busy() {
    auto* r = gex::self();
    if (r->xfer && r->xfer->copies_pending()) return true;
    if (r->rma_am && r->rma_am->outstanding() != 0) return true;
    return false;
  }

  persona* master_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace upcxx
