// upcxx::progress_thread — a dedicated communication thread per rank.
//
// The paper (§III) is explicit that the runtime spawns no hidden threads;
// the user balances computation against attentiveness. The classic
// resolution is to dedicate one thread to communication by migrating the
// rank's *master persona* to it, while the primordial thread computes and
// hands communication requests over as LPCs. bench/abl_overlap.cpp and
// examples/progress_thread.cpp used to spell that pattern out by hand;
// this helper packages it:
//
//   upcxx::progress_thread pt;                     // master migrates
//   auto fut = pt.lpc([=] { return upcxx::rput(src, dst, n); });
//   heavy_compute();                               // overlaps the drain
//   fut.wait();
//   pt.stop();                                     // master returns here
//
// The progress loop spins hard only while the data-motion engine has
// chunks to move (XferEngine::copies_pending()) or the AM RMA protocol has
// outstanding requests; otherwise it yields, so an oversubscribed host
// keeps feeding the compute thread while the virtual wire clock — which
// advances on wall time, not CPU — runs out.
//
// The constructing thread must hold the master persona (the default state
// inside upcxx::run) and must be the one calling stop(). Between
// construction and stop() it must not initiate communication directly —
// route everything through lpc().
#pragma once

#include <atomic>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "upcxx/persona.hpp"
#include "upcxx/progress.hpp"

namespace upcxx {

class progress_thread {
 public:
  progress_thread() : master_(&master_persona()) {
    liberate_master_persona();
    thread_ = std::thread([this] {
      persona_scope scope(*master_);
      while (!stop_.load(std::memory_order_acquire)) {
        progress();
        if (!busy()) std::this_thread::yield();
      }
      // Final drain so late acks and teardown traffic don't linger.
      for (int i = 0; i < 64; ++i) progress();
    });
  }

  ~progress_thread() {
    if (thread_.joinable()) stop();
  }

  progress_thread(const progress_thread&) = delete;
  progress_thread& operator=(const progress_thread&) = delete;

  // The migrated master persona — the address for manual lpc_ff etc.
  persona& master() { return *master_; }

  // Runs fn on the progress thread (which holds the master persona, hence
  // the right to initiate communication); the returned future is fulfilled
  // back on the calling persona. A future-returning fn is unwrapped on the
  // progress thread first, so `pt.lpc([=]{ return rput(...); }).wait()`
  // waits for the transfer itself.
  template <typename Fn>
  auto lpc(Fn&& fn) {
    return master_->lpc(std::forward<Fn>(fn));
  }

  // Joins the communication thread and re-acquires the master persona on
  // the calling thread, which must be the constructing one.
  void stop() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    // Re-acquire for the remainder of the SPMD body and teardown. The
    // scope must outlive this helper and the body itself (fini_persona
    // still needs the master), hence the deliberate leak — the real-UPC++
    // idiom is a persona_scope in main() outliving finalize().
    new persona_scope(*master_);
  }

 private:
  // Anything in flight that wants a hot progress loop rather than a yield?
  static bool busy() {
    auto* r = gex::self();
    if (r->xfer && r->xfer->copies_pending()) return true;
    if (r->rma_am && r->rma_am->outstanding() != 0) return true;
    return false;
  }

  persona* master_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// upcxx::progress_pool — progress_thread generalized to N workers
// (default width: Config::progress_threads, i.e. UPCXX_PROGRESS_THREADS).
//
// Worker 0 *is* a progress_thread: it holds the migrated master persona
// and runs the full progress loop, staying the wire's single consumer
// (AmEngine::poll) and the sole drainer of the rank's submit queue (the
// closures in it need the rank context). Workers 1..N-1 are injection
// helpers with two jobs:
//
//   * drain the MPSC wire shards that injector threads (inject.hpp) fill,
//     each owning the shards congruent to its index and stealing the rest
//     when its own slice runs dry;
//   * run XferEngine::issue_pass over a disjoint slice of the engine's
//     channels, pushing queued chunks onto the wire in parallel with
//     worker 0's receive/completion path — per-channel issue locks make
//     this safe, and helper-issued source callbacks park on the landing
//     queue for worker 0 to fire (helpers never run user code).
//
// Helpers pass may_poll=false everywhere, so a full ring makes them yield
// rather than touch the engine's single-consumer receive path — the
// master keeps polling independently, which keeps the stall bounded.
//
// A pool of width 1 degenerates to exactly progress_thread; widths above
// 1 add send-side bandwidth for heavily multi-threaded injection without
// changing any receive-side or completion-side ownership.
//
// Construction/stop discipline matches progress_thread: build on the
// thread holding the master persona, call stop() from that same thread
// before the SPMD body returns.
class progress_pool {
 public:
  explicit progress_pool(int width = 0) {
    // Capture the rank state before worker 0 migrates the master persona
    // away from this thread.
    st_ = &detail::persona();
    int w = width > 0 ? width : st_->rank->arena->config().progress_threads;
    if (w < 1) w = 1;
    pt_.emplace();
    for (int idx = 0, nh = w - 1; idx < nh; ++idx)
      helpers_.emplace_back([this, idx, nh] { helper_loop(idx, nh); });
  }

  ~progress_pool() {
    if (pt_) stop();
  }

  progress_pool(const progress_pool&) = delete;
  progress_pool& operator=(const progress_pool&) = delete;

  // The migrated master persona (worker 0's).
  persona& master() { return pt_->master(); }

  // Runs fn on worker 0 (the master-persona holder); see
  // progress_thread::lpc.
  template <typename Fn>
  auto lpc(Fn&& fn) {
    return pt_->lpc(std::forward<Fn>(fn));
  }

  // Stops helpers first (they only move already-submitted injector
  // traffic), then worker 0 — which re-acquires the master persona on the
  // calling thread, exactly as progress_thread::stop does.
  void stop() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : helpers_) t.join();
    helpers_.clear();
    pt_->stop();
    pt_.reset();
  }

 private:
  void helper_loop(int idx, int nh) {
    auto& st = *st_;
    while (!stop_.load(std::memory_order_acquire)) {
      int moved = 0;
      // Own slice first — keeps shard-lock contention low when every
      // helper has work — then steal across the whole set.
      for (std::uint32_t s = 0; s < st.n_wire_shards; ++s)
        if (static_cast<int>(s % static_cast<std::uint32_t>(nh)) == idx)
          moved += detail::drain_wire_shard(st, s, /*may_poll=*/false);
      if (moved == 0)
        for (std::uint32_t s = 0; s < st.n_wire_shards; ++s)
          moved += detail::drain_wire_shard(st, s, /*may_poll=*/false);
      // Chunk issue for this helper's channel slice: try-locks only, so a
      // channel worker 0 (or another helper) holds is simply skipped.
      if (st.rank && st.rank->xfer)
        moved += st.rank->xfer->issue_pass(
            8, static_cast<std::size_t>(idx), static_cast<std::size_t>(nh));
      if (moved == 0) std::this_thread::yield();
    }
  }

  detail::PersonaState* st_ = nullptr;
  std::optional<progress_thread> pt_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> helpers_;
};

}  // namespace upcxx
