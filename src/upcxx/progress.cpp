#include "upcxx/progress.hpp"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "arch/fixed_registry.hpp"

#include "arch/timer.hpp"
#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "upcxx/collectives.hpp"
#include "upcxx/team.hpp"

namespace upcxx {

rank_failed::rank_failed()
    : std::runtime_error(
          "upcxx: a peer rank failed; the awaited operation may never "
          "complete") {}

namespace detail {

namespace {
thread_local PersonaState* tls_persona = nullptr;
// Injection binding (upcxx::injection_scope): lets an app thread without a
// rank context reach the rank state's thread-safe subset. Never set on a
// thread that also has tls_persona (the scope asserts).
thread_local PersonaState* tls_inject = nullptr;
}

PersonaState& persona() {
  assert(tls_persona &&
         "no rank context: call inside upcxx::run(), from the thread "
         "holding the master persona");
  return *tls_persona;
}

bool has_persona() { return tls_persona != nullptr; }

PersonaState& op_state() {
  if (tls_persona) return *tls_persona;
  assert(tls_inject &&
         "no rank or injection context: initiate operations from the "
         "master persona's thread, or bind an upcxx::injection_scope");
  return *tls_inject;
}

bool has_op_state() { return tls_persona != nullptr || tls_inject != nullptr; }

void bind_inject_context(PersonaState* st) { tls_inject = st; }

PersonaState* inject_context() { return tls_inject; }

std::uint64_t progress_work_counter() {
  return tls_persona ? tls_persona->work_events : 0;
}

bool job_failed() {
  auto* st = tls_persona;
  if (!st || !st->rank || !st->rank->arena) return false;
  return st->rank->arena->control().error_flag.value.load(
             std::memory_order_acquire) != 0;
}

void throw_rank_failed() { throw rank_failed(); }

void bind_rank_context(PersonaState* st) {
  tls_persona = st;
  gex::bind_self(st ? st->rank : nullptr);
}

PersonaState* rank_context() { return tls_persona; }

void push_compq(Lpc fn) {
  if (tls_persona) {
    tls_persona->compq.push_back(std::move(fn));
    return;
  }
  // Completion-shard routing: an off-persona initiator's "compQ" is its
  // own persona inbox, drained by this thread's user-level progress — so
  // the scheduled fn (promise fulfillment, .then callback) still runs
  // persona-affine, with no rank-global lock involved.
  current_persona().lpc_ff(std::move(fn));
}

void push_completion_after(std::uint64_t wire_hops, Lpc fn) {
  push_completion_after_ns(wire_hops * op_state().sim_latency_ns,
                           std::move(fn));
}

void push_completion_after_ns(std::uint64_t delay_ns, Lpc fn) {
  if (!tls_persona) {
    if (delay_ns == 0) {
      current_persona().lpc_ff(std::move(fn));
      return;
    }
    // The timed queue is master-owned: route the timer through the master
    // persona and ship the firing back to the initiating persona, where
    // fn's captured completion state lives.
    const op_context cx = op_context::current();
    cx.run_at_rank([cx, delay_ns, fn = std::move(fn)]() mutable {
      cx.complete_after_ns(delay_ns, std::move(fn));
    });
    return;
  }
  auto& p = *tls_persona;
  if (delay_ns == 0) {
    p.compq.push_back(std::move(fn));
    return;
  }
  p.timed.push(
      TimedEntry{arch::now_ns() + delay_ns, p.timed_seq++, std::move(fn)});
}

std::uint64_t register_reply(arch::UniqueFunction<void(Reader&)> fn) {
  auto& p = op_state();
  const std::uint64_t id =
      p.next_op_id.fetch_add(1, std::memory_order_relaxed);
  arch::SpinGuard g(p.reply_mu);
  p.pending_replies.emplace(id, std::move(fn));
  return id;
}

// ------------------------------------------------- MPSC injection hand-off

void submit_to_master(PersonaState& st, Lpc fn) {
  // Shard by initiating thread, not round-robin: one thread's submissions
  // must stay FIFO (a thread that enters barrier() then reduce() relies on
  // its collective sequence numbers being allocated in that order), and a
  // stable thread->shard map gives that while spreading unrelated
  // injectors across queue tails.
  const auto h = std::hash<const void*>{}(thread_marker());
  st.submit_shards[h % st.n_submit_shards].q.push(std::move(fn));
}

void submit_wire_send(PersonaState& st, int target, std::uint32_t bytes,
                      std::unique_ptr<std::byte[]> buf) {
  auto& sh = st.wire_shards[static_cast<std::uint32_t>(target) %
                            st.n_wire_shards];
  sh.q.push(PersonaState::WireSend{target, bytes, std::move(buf)});
}

int drain_submitq(PersonaState& st, int budget) {
  assert(tls_persona == &st && "submitq closures need the rank context");
  // The shards are MPSC queues with the master persona as the single
  // consumer; a fixed drain order keeps each thread's submissions FIFO
  // (within its shard) without any cross-shard coordination.
  int work = 0;
  Lpc fn;
  for (std::uint32_t s = 0; s < st.n_submit_shards && budget > 0; ++s) {
    auto& q = st.submit_shards[s].q;
    if (q.empty_hint()) continue;
    while (budget > 0 && q.try_pop(fn)) {
      fn();
      ++work;
      --budget;
    }
  }
  return work;
}

int drain_wire_shard(PersonaState& st, std::uint32_t shard, bool may_poll) {
  auto& sh = st.wire_shards[shard];
  if (sh.q.empty_hint()) return 0;
  if (!sh.mu.try_lock()) return 0;  // a competing drainer owns this shard
  int work = 0;
  PersonaState::WireSend ws;
  // Bounded so one drain cannot monopolize a progress call. The lock is
  // held across reserve -> memcpy -> commit, so a shard's sends hit the
  // target ring in pop order and the transport's per-pair FIFO carries
  // the ordering end to end.
  while (work < 64 && sh.q.try_pop(ws)) {
    auto& eng = *st.rank->am;
    auto sb = eng.prepare(ws.target, am_delivery_index(), ws.bytes, may_poll);
    std::memcpy(sb.data, ws.buf.get(), ws.bytes);
    eng.commit(sb);
    ++work;
  }
  sh.mu.unlock();
  return work;
}

bool inject_queues_empty(PersonaState& st) {
  for (std::uint32_t s = 0; s < st.n_submit_shards; ++s)
    if (!st.submit_shards[s].q.empty_hint()) return false;
  for (std::uint32_t s = 0; s < st.n_wire_shards; ++s)
    if (!st.wire_shards[s].q.empty_hint()) return false;
  return true;
}

// ----------------------------------------------------- dispatch registry

namespace {

// Same fixed-slot registry as the gex AM handler table, one level up.
// Registration happens during static init (DispatchReg), so in practice the
// table is immutable by the time ranks communicate.
arch::FixedRegistry<DispatchFn, 4096>& dispatch_registry() {
  static arch::FixedRegistry<DispatchFn, 4096> r;
  return r;
}

}  // namespace

DispatchIdx register_dispatch(DispatchFn fn) {
  return static_cast<DispatchIdx>(
      dispatch_registry().add(fn, nullptr, "upcxx dispatch"));
}

DispatchFn dispatch_at(DispatchIdx idx) {
  return dispatch_registry().at(idx, "upcxx dispatch");
}

std::size_t dispatch_count() { return dispatch_registry().count(); }

void flush_aggregation() {
  if (!has_persona()) return;
  auto* rank = persona().rank;
  if (rank && rank->agg) rank->agg->flush_all();
}

void drain_xfer_copies() {
  if (!has_persona()) return;
  auto* rank = persona().rank;
  if (!rank || !rank->xfer) return;
  // Barrier-entry contract: every RMA issued before the barrier must be in
  // its target's inbox before our barrier message goes out. On the am wire
  // the engine's drain stops at the credit window and requests can park in
  // the protocol's sender-side queue, so keep pumping acks (which retire
  // credits and release queued requests) until both are empty. Peers
  // draining toward the same barrier serve our requests from their own
  // loops, so this terminates — unless a peer died, which the error flag
  // reports (its acks will never come; the teardown path cancels).
  auto& err = rank->arena->control().error_flag.value;
  for (;;) {
    rank->xfer->drain_copies();
    const bool engine_pending = rank->xfer->copies_pending();
    const bool queued = rank->rma_am && rank->rma_am->queued() != 0;
    if (!engine_pending && !queued) break;
    if (err.load(std::memory_order_acquire) != 0) break;
    int work = rank->am->poll();
    if (rank->rma_am) work += rank->rma_am->poll();
    // The credits we are waiting on come from the peer; on a shared core
    // it needs the cycles more than a repeat poll of empty queues does.
    if (work == 0) std::this_thread::yield();
  }
}

// Receives one upcxx wire message: stages the payload locally and schedules
// its dispatch for user-level progress (the paper's "insert into the
// target's compQ", Fig 2). Eager payloads must be copied out of the ring
// before the handler returns; rendezvous payloads are adopted in place;
// frame sub-messages take a shared reference on the frame buffer, so an
// N-message frame costs one allocation and one copy total.
void am_delivery(gex::AmContext& cx) {
  auto& p = persona();
  const int src = cx.src;
  const std::size_t n = cx.size;
  enum class Own : std::uint8_t { kMalloc, kRendezvous, kFrame };
  std::byte* buf;
  void* frame = nullptr;
  Own own;
  if (cx.in_frame) {
    frame = cx.adopt_frame();
    buf = static_cast<std::byte*>(cx.data);
    own = Own::kFrame;
  } else if (cx.is_rendezvous) {
    buf = static_cast<std::byte*>(cx.adopt());
    own = Own::kRendezvous;
  } else {
    buf = static_cast<std::byte*>(std::malloc(n));
    std::memcpy(buf, cx.data, n);
    own = Own::kMalloc;
  }
  gex::AmEngine* eng = cx.engine;
  auto run = [src, n, buf, own, frame, eng] {
    std::uint64_t prefix;
    std::memcpy(&prefix, buf, kMsgPrefix);
    DispatchFn dispatch = dispatch_at(static_cast<DispatchIdx>(prefix));
    Reader r(buf + kMsgPrefix, n - kMsgPrefix);
    dispatch(src, r);
    switch (own) {
      case Own::kFrame:
        gex::release_frame(frame);
        break;
      case Own::kRendezvous:
        eng->release_rendezvous(buf);
        break;
      case Own::kMalloc:
        std::free(buf);
        break;
    }
  };
  if (p.sim_latency_ns == 0) {
    p.compq.push_back(std::move(run));
  } else {
    // Deliver no earlier than send time + one wire hop.
    p.timed.push(TimedEntry{cx.send_ns + p.sim_latency_ns, p.timed_seq++,
                            std::move(run)});
  }
}

// Whole-frame delivery: one adopt, one compQ entry, N dispatches. The entry
// tracks its own resume offset so a dist_object_unready requeue (progress()
// below) retries the *failing* message without re-running its predecessors.
void am_frame_delivery(gex::AmContext& cx) {
  auto& p = persona();
  const int src = cx.src;
  const std::size_t fsize = cx.size;
  void* frame = cx.adopt_frame();
  auto* buf = static_cast<std::byte*>(cx.data);
  auto run = [src, fsize, buf, frame, off = std::size_t{0}]() mutable {
    while (off + sizeof(gex::FrameMsgHeader) <= fsize) {
      auto* mh = reinterpret_cast<gex::FrameMsgHeader*>(buf + off);
      auto* body = reinterpret_cast<std::byte*>(mh + 1);
      std::uint64_t prefix;
      std::memcpy(&prefix, body, kMsgPrefix);
      Reader r(body + kMsgPrefix, mh->size - kMsgPrefix);
      // A throw leaves `off` on this message, so the requeued entry
      // resumes exactly here.
      dispatch_at(static_cast<DispatchIdx>(prefix))(src, r);
      off += sizeof(gex::FrameMsgHeader) +
             arch::align_up(mh->size, gex::kFrameAlign);
    }
    gex::release_frame(frame);
  };
  if (p.sim_latency_ns == 0) {
    p.compq.push_back(std::move(run));
  } else {
    p.timed.push(TimedEntry{cx.send_ns + p.sim_latency_ns, p.timed_seq++,
                            std::move(run)});
  }
}

}  // namespace detail

void progress(progress_level lvl) {
  // A thread without a rank context (a worker that does not hold the master
  // persona) still progresses the personas it does hold: user-level progress
  // drains their LPC inboxes. The rank-level queues and the wire belong to
  // the master persona's holder alone.
  if (lvl == progress_level::user) detail::drain_persona_inboxes();
  if (!detail::has_persona()) return;
  auto& p = detail::persona();
  // User-level progress flushes the aggregation buffers first: staged
  // messages must never outlive their sender's attentiveness window, so any
  // spin-on-progress wait drains its own staging as a side effect
  // (DESIGN.md, message layer v2). Internal progress leaves the buffers
  // alone to keep batches intact across back-to-back injection calls.
  if (lvl == progress_level::user && p.rank->agg) p.rank->agg->flush_all();
  // Internal progress: poll the wire (stages incoming messages), fire the
  // AM RMA protocol's due completions and queued-request releases (its
  // handlers only record work — nothing is injected from inside a ring
  // consume), advance the data-motion engine by a bounded number of
  // chunks, and retire timed active operations whose completion time has
  // passed. The protocol's standalone-ack flush runs LAST, after the
  // engine: chunk requests issued in between are reverse traffic that
  // carries the acks piggybacked, so the flush only spends a ring record
  // on whatever found no ride.
  // Off-persona injection first: submitted op closures dispatch into the
  // engines (so this poll round already moves their chunks), and staged
  // wire sends reach the target rings ahead of our poll of the replies
  // they will generate. Shard drains here run with may_poll=true — this
  // thread IS the wire consumer, so a full-ring stall may self-poll.
  int work = detail::drain_submitq(p, 64);
  for (std::uint32_t s = 0; s < p.n_wire_shards; ++s)
    work += detail::drain_wire_shard(p, s, /*may_poll=*/true);
  work += p.rank->am->poll();
  if (p.rank->rma_am) work += p.rank->rma_am->poll_requests();
  if (p.rank->xfer) work += p.rank->xfer->poll();
  if (p.rank->rma_am) work += p.rank->rma_am->flush_acks();
  if (!p.timed.empty()) {
    const std::uint64_t now = arch::now_ns();
    while (!p.timed.empty() && p.timed.top().due_ns <= now) {
      p.compq.push_back(std::move(p.timed.top().fn));
      p.timed.pop();
      ++work;
    }
  }
  p.work_events += static_cast<std::uint64_t>(work);
  if (lvl == progress_level::internal) return;

  // User progress: drain compQ. Entries may enqueue more work (an RPC that
  // issues further communication); we drain only what was present at entry
  // to keep one progress call bounded.
  std::size_t budget = p.compq.size();
  while (budget-- > 0 && !p.compq.empty()) {
    auto fn = std::move(p.compq.front());
    p.compq.pop_front();
    try {
      fn();
    } catch (const detail::dist_object_unready&) {
      // RPC referencing a dist_object this rank has not constructed yet:
      // park it at the back of compQ and retry on a later progress call.
      // (Message staging buffers are owned by the closure, so requeueing is
      // safe and idempotent.)
      p.compq.push_back(std::move(fn));
      continue;
    }
    arch::relaxed_inc(p.stats.lpcs_run);
    ++p.work_events;
  }
}

void init_persona() {
  auto* r = gex::self();
  assert(r && "init_persona outside SPMD region");
  auto* st = new detail::PersonaState();
  st->rank = r;
  st->sim_latency_ns = r->arena->config().sim_latency_ns;
  st->rma_async_min = r->arena->config().rma_async_min;
  st->rma_wire_am = r->rma_wire_am;
  st->n_wire_shards = r->arena->config().inject_shards;
  if (st->n_wire_shards == 0) st->n_wire_shards = 1;
  st->wire_shards = std::make_unique<detail::PersonaState::WireShard[]>(
      st->n_wire_shards);
  st->n_submit_shards = r->arena->config().submit_shards;
  if (st->n_submit_shards == 0) st->n_submit_shards = 1;
  st->submit_shards = std::make_unique<detail::PersonaState::SubmitShard[]>(
      st->n_submit_shards);
  // Aggregated upcxx frames take the whole-frame delivery path.
  r->am->set_frame_sink(detail::am_delivery_index(),
                        &detail::am_frame_delivery);
  r->upcxx_state = st;
  detail::tls_persona = st;
  // The primordial thread holds the master persona from init (spec: the
  // thread calling init receives the master persona).
  detail::adopt_master(st->master, st);
  // Gex-level blocking collectives (AmEngine::exchange) drive this while
  // spinning so frames they deliver get dispatched — without it a rank
  // blocked in team-split's allgather never executes peers' rpcs and the
  // job deadlocks on any transport (see Rank::progress_hook).
  r->progress_hook = [] { progress(progress_level::user); };
  detail::init_world_team();
}

void fini_persona() {
  auto* r = gex::self();
  assert(r);
  // Land every in-flight transfer while the persona still exists: the
  // engine's and the AM protocol's completion callbacks push into this
  // rank's compQ and may send remote notifications, neither of which is
  // possible after teardown. Give up when a peer failed — on the am wire
  // idleness needs the peer's acks, and a dead peer never sends them.
  auto* pst = static_cast<detail::PersonaState*>(r->upcxx_state);
  auto& err = gex::arena().control().error_flag.value;
  while ((!detail::inject_queues_empty(*pst) || (r->xfer && !r->xfer->idle()) ||
          (r->rma_am && !r->rma_am->idle())) &&
         err.load(std::memory_order_acquire) == 0) {
    progress();
  }
  // A failed peer holds credits that will never be returned: cancel the
  // protocol's queued and in-flight requests so the final drain below does
  // not try to send into a dead rank's ring.
  if (r->rma_am && err.load(std::memory_order_acquire) != 0)
    r->rma_am->fail_all_peers();
  // Final drain so peers' teardown traffic (e.g. late rpc_ff acks) does not
  // sit in malloc'd staging buffers.
  for (int i = 0; i < 16; ++i) progress();
  detail::fini_world_team();
  r->progress_hook = nullptr;  // persona state dies with us
  auto* st = static_cast<detail::PersonaState*>(r->upcxx_state);
  detail::drop_master(st->master);
  detail::tls_persona = nullptr;
  r->upcxx_state = nullptr;
  delete st;
}

int run(const gex::Config& cfg, const std::function<void()>& fn) {
  return gex::launch(cfg, [&fn] {
    init_persona();
    // All personas exist before any user communication (init_world_team
    // performs a world barrier).
    try {
      fn();
    } catch (...) {
      fini_persona();
      throw;
    }
    // Quiesce: make sure every rank is done sending before teardown. A
    // failed peer never joins the barrier; poll the substrate error flag so
    // survivors tear down instead of spinning forever (failure-injection
    // tests rely on this).
    auto barrier_done = barrier_async();
    auto& err = gex::arena().control().error_flag.value;
    while (!barrier_done.is_ready() &&
           err.load(std::memory_order_acquire) == 0) {
      const std::uint64_t w = detail::progress_work_counter();
      progress();
      if (detail::progress_work_counter() == w) std::this_thread::yield();
    }
    fini_persona();
  });
}

int run(int ranks, const std::function<void()>& fn) {
  gex::Config cfg = gex::Config::from_env();
  cfg.ranks = ranks;
  return run(cfg, fn);
}

int run_env(const std::function<void()>& fn) {
  return run(gex::Config::from_env(), fn);
}

}  // namespace upcxx
