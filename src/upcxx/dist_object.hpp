// dist_object<T>: scalable distributed objects (paper §II).
//
// The paper motivates dist_object as the scalable alternative to symmetric
// heaps / shared arrays: a distributed object is a *collective* object with
// one local representative per team rank, identified by a team-wide id that
// costs O(1) storage per rank. RPCs translate dist_object& arguments to the
// target's local representative automatically; fetching a remote
// representative requires explicit communication (fetch), in keeping with
// "no implicit communication".
//
// Id agreement uses the same mechanism as real UPC++: members create their
// dist_objects in the same collective order, so a per-team counter yields
// matching ids without communication. An RPC may arrive before the target
// has constructed its representative; the runtime requeues the RPC until the
// object exists (UPC++'s "wait for the dist_object" semantics).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "upcxx/rpc.hpp"
#include "upcxx/team.hpp"

namespace upcxx {

template <typename T>
class dist_object {
 public:
  // Collective over tm: every member constructs its local representative.
  explicit dist_object(T value, const team& tm = world())
      : value_(std::move(value)), team_(&tm) {
    auto& p = detail::persona();
    const std::uint64_t seq = p.dist_counters[tm.id()]++;
    id_ = (tm.id() << 32) ^ (seq + 1);
    p.dist_registry[id_] = this;
  }

  ~dist_object() {
    if (id_) detail::persona().dist_registry.erase(id_);
  }

  dist_object(dist_object&& o) noexcept
      : value_(std::move(o.value_)), team_(o.team_), id_(o.id_) {
    if (id_) detail::persona().dist_registry[id_] = this;
    o.id_ = 0;
  }
  dist_object(const dist_object&) = delete;
  dist_object& operator=(const dist_object&) = delete;

  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

  const team& get_team() const { return *team_; }
  std::uint64_t id() const { return id_; }

  // Fetches the remote representative's value (explicit communication).
  // Plain rpc underneath, so it is injection-safe: callable from an
  // injector thread (upcxx::injection_scope), with the future fulfilled on
  // that thread's persona. Construction/destruction remain collective and
  // master-persona-only, like every other collective setup.
  future<T> fetch(intrank_t team_rank) const {
    return rpc((*team_)[team_rank],
               [](const dist_object<T>& o) { return *o; }, *this);
  }

 private:
  T value_;
  const team* team_;
  std::uint64_t id_ = 0;
};

// Serialization hook: a dist_object argument travels as its id and
// rehydrates as a reference to the target's local representative.
template <typename T>
struct serialization<dist_object<T>> {
  using deserialized_type = dist_object<T>&;

  template <typename Ar>
  static void serialize(Ar& ar, const dist_object<T>& o) {
    std::uint64_t id = o.id();
    ar.align(8);
    ar.bytes(&id, sizeof id);
  }

  static dist_object<T>& deserialize(detail::Reader& r) {
    const auto id = r.pod<std::uint64_t>();
    auto& reg = detail::persona().dist_registry;
    auto it = reg.find(id);
    // The sender constructed its representative before injecting the RPC,
    // but this rank may not have reached its own construction yet. Requeue
    // the whole message until it has (matching UPC++, where the RPC waits
    // for the dist_object to come into existence).
    if (it == reg.end()) throw detail::dist_object_unready{};
    return *static_cast<dist_object<T>*>(it->second);
  }
};

}  // namespace upcxx
