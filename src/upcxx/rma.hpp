// One-sided RMA: rput/rget plus the non-contiguous variants (paper §II).
//
// Every call is *wire-agnostic*: the data path is selected per target by
// the resolved RMA wire (gex::resolve_rma_wire, UPCXX_RMA_WIRE=direct|am),
// and within a wire by transfer size (Config::rma_async_min):
//
//   direct wire, small — the data motion is a memcpy performed by the
//     initiator at injection (exactly what GASNet does over PSHM). Zero
//     allocation; source completion is inherently synchronous.
//   direct wire, large contiguous — handed to gex::XferEngine (the paper's
//     actQ): decomposed into pipelined chunks in the target's channel,
//     drained by internal progress with bounded work per poll, so the
//     initiating call returns immediately and a progress-thread persona
//     overlaps the copy with computation.
//   am wire, small — one AM put/get request through gex::RmaAmProtocol
//     (eager payloads inline in the ring, larger ones rendezvous-staged);
//     the target's ack/reply drives completion. Non-contiguous shapes ship
//     as one scatter-put / gather-get record per target rank.
//   am wire, large contiguous — the XferEngine again, with its chunk
//     movers bound to the AM protocol: each chunk is a request, each ack a
//     chunk completion, under the same per-channel budget and bandwidth
//     clock as the direct wire.
//
// Completion semantics on all paths follow the paper's model:
//   * source completion — the source buffer is reusable (on the am wire:
//     the payload has been copied into the wire);
//   * operation completion — remotely complete, including the
//     network-level acknowledgment a blocking rput waits for (§IV-B);
//     under simulated latency this costs a full round trip (2 hops) past
//     the data landing;
//   * remote completion — fires an RPC at the target after the data lands
//     (on the am wire, after the target's ack — the RPC can never overtake
//     the data). Irregular transfers whose fragment lists span several
//     target ranks notify each distinct target once.
// All completion signals are delivered through detail::cx_state
// (completion.hpp) — the one pipeline shared with copy() and rpc — and
// reach user code only via the progress engine's compQ, never synchronously
// inside the injection call (except promise fulfillment for events that are
// synchronous by construction), matching §III.
//
// Ordering note: as in real UPC++, two RMAs touching the same remote region
// are unordered unless sequenced through completions; with the async engine
// a small synchronous put can land before a still-draining large one.
// Barrier entry drains the engine's pending chunks (on the am wire that
// puts every request in the target's inbox ahead of the barrier message),
// so the common "put, barrier, read" idiom keeps its pre-engine meaning.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <memory>
#include <vector>

#include "arch/atomics.hpp"
#include "gex/rma_am.hpp"
#include "gex/xfer.hpp"
#include "upcxx/completion.hpp"
#include "upcxx/global_ptr.hpp"
#include "upcxx/progress.hpp"
#include "upcxx/rpc.hpp"

namespace upcxx {

namespace detail {

// Applies every completion in `cxs` for an operation whose data motion
// already happened synchronously; returns the value the RMA call returns.
// `delay_ns` is the simulated time to operation completion (0 = complete at
// injection — the zero-allocation fast path every small blocking rput on
// the direct wire takes).
template <typename Cxs>
auto finish_rma_ns(Cxs&& cxs, intrank_t target, std::uint64_t delay_ns) {
  cx_state<std::decay_t<Cxs>> st(std::move(cxs), target);
  st.source_now();
  st.remote_now();
  st.operation_done(delay_ns);
  return st.result();
}

// Hop-based wrapper: the simulated wire distance to operation completion in
// units of the configured per-hop latency.
template <typename Cxs>
auto finish_rma(Cxs&& cxs, intrank_t target, std::uint64_t hops) {
  return finish_rma_ns(std::forward<Cxs>(cxs), target,
                       hops * op_state().sim_latency_ns);
}

// True when this rank's RMA rides the AM protocol instead of touching the
// target's segment directly. Reads only configuration frozen at rank
// startup, so it answers correctly on injector threads too (op_state).
inline bool wire_am() { return op_state().rma_wire_am; }

// True when a contiguous transfer of `bytes` should ride the asynchronous
// data-motion engine instead of the injection-time path. Off-persona-safe
// for the same reason as wire_am().
inline bool use_xfer(std::size_t bytes) {
  auto& p = op_state();
  return p.rma_async_min != 0 && bytes >= p.rma_async_min &&
         p.rank->xfer != nullptr;
}

// Hands a contiguous transfer to the XferEngine and wires its two
// callbacks into the completion pipeline. The cx_state outlives the call
// (shared between the source and landed callbacks), so its futures are
// materialized up front; the wire-hop delay to operation completion is
// charged after the data lands. Works on either wire — the engine's chunk
// movers differ, the completion pipeline does not — and from any thread:
// the cx_state is built on the *calling* thread (its futures stay affine
// to this thread's persona), op_context ships only the engine dispatch to
// the rank's progress persona and routes each completion hook back home.
// remote_now() stays on the progress persona: it only reads the remote-cx
// items (the notification AM's payload), so the target's notification
// fires at data-landing time instead of one inbox round trip later.
template <typename Cxs>
auto issue_xfer_ns(Cxs cxs, intrank_t target, void* dst, const void* src,
                   std::size_t bytes, std::uint64_t delay, bool is_get,
                   std::uint64_t extra_landing_ns = 0) {
  auto st = std::make_shared<cx_state<Cxs>>(std::move(cxs), target);
  st->prepare_deferred();
  const op_context cx = op_context::current();
  cx.run_at_rank([cx, st, target, dst, src, bytes, delay, is_get,
                  extra_landing_ns]() mutable {
    persona().rank->xfer->submit(
        target, dst, src, bytes,
        [cx, st] { cx.complete_now([st] { st->source_now(); }); },
        [cx, st, delay] {
          // Data is visible at the target: notify it (1 more hop carried
          // by the rpc itself), then complete the operation after the
          // round-trip acknowledgment.
          st->remote_now();
          cx.complete_after_ns(delay, [st] { st->operation_done(0); });
        },
        is_get, extra_landing_ns);
  });
  return st->result();
}

// Hop-based wrapper (the RMA calls charge a 2-hop round trip).
template <typename Cxs>
auto issue_xfer(Cxs cxs, intrank_t target, void* dst, const void* src,
                std::size_t bytes, std::uint64_t hops, bool is_get) {
  return issue_xfer_ns(std::move(cxs), target, dst, src, bytes,
                       hops * op_state().sim_latency_ns, is_get);
}

// One sub-engine-threshold contiguous op on the am wire: a single protocol
// request whose ack/reply drives remote and operation completion. put()
// copies the payload out before the dispatched closure finishes, so for a
// master-persona initiator source completion is synchronous exactly as
// before; for gets the initiator has no source buffer to protect and the
// same holds trivially. `hold` keeps a caller-side staging buffer (a
// scalar put's value) alive until the closure has consumed it — needed
// only when the initiator's stack frame dies before an injected closure
// runs.
template <typename Cxs>
auto issue_am_contig_ns(Cxs cxs, intrank_t target, void* dst,
                        const void* src, std::size_t bytes, bool is_get,
                        std::uint64_t delay,
                        std::shared_ptr<const void> hold = nullptr) {
  auto st = std::make_shared<cx_state<Cxs>>(std::move(cxs), target);
  st->prepare_deferred();
  const op_context cx = op_context::current();
  cx.run_at_rank([cx, st, target, dst, src, bytes, is_get, delay,
                  hold = std::move(hold)]() mutable {
    (void)hold;  // kept alive until this closure has run
    auto& proto = *persona().rank->rma_am;
    auto done = [cx, st, delay] {
      st->remote_now();
      cx.complete_after_ns(delay, [st] { st->operation_done(0); });
    };
    if (is_get)
      proto.get(target, dst, src, bytes, std::move(done));
    else
      proto.put(target, dst, src, bytes, std::move(done));
    // put() copied the payload out (or there is none): the source is
    // reusable as soon as the initiator hears so.
    cx.complete_now([st] { st->source_now(); });
  });
  return st->result();
}

template <typename Cxs>
auto issue_am_contig(Cxs cxs, intrank_t target, void* dst, const void* src,
                     std::size_t bytes, bool is_get, std::uint64_t hops) {
  return issue_am_contig_ns(std::move(cxs), target, dst, src, bytes, is_get,
                            hops * op_state().sim_latency_ns);
}

// Matched fragment runs grouped by target rank — the unit the am wire's
// scatter-put / gather-get records carry. `remote` and `local` line up
// index-by-index in wire order.
struct AmFragGroup {
  intrank_t target;
  std::vector<gex::RmaAmProtocol::Frag> remote;
  std::vector<gex::RmaAmProtocol::LocalFrag> local;
};

inline AmFragGroup& am_frag_group(std::vector<AmFragGroup>& groups,
                                  intrank_t target) {
  for (auto& g : groups)
    if (g.target == target) return g;
  groups.push_back(AmFragGroup{target, {}, {}});
  return groups.back();
}

// Issues one scatter-put or gather-get per target group and delivers
// completions: each target is remote-notified once when its fragments
// landed (its ack/reply arrived); the operation completes when every
// target has. `is_get` moves each group's local runs into the protocol as
// the reply's scatter list. op_context-routed like the contiguous issue
// paths, so irregular/strided transfers work from injector threads too
// (the fragment descriptors travel inside the dispatched closure; the
// user buffers they point at are pinned until source/operation
// completion by the usual RMA contract).
template <typename Cxs>
auto issue_am_fragments(Cxs cxs, std::vector<AmFragGroup> groups,
                        bool is_get) {
  assert(!groups.empty());
  auto st = std::make_shared<cx_state<Cxs>>(std::move(cxs),
                                            groups.front().target);
  st->prepare_deferred();
  const std::uint64_t delay = 2 * op_state().sim_latency_ns;
  const op_context cx = op_context::current();
  cx.run_at_rank([cx, st, groups = std::move(groups), is_get,
                  delay]() mutable {
    auto remaining = std::make_shared<std::size_t>(groups.size());
    auto& proto = *persona().rank->rma_am;
    for (auto& g : groups) {
      auto done = [cx, st, remaining, t = g.target, delay] {
        st->remote_now(t);
        if (--*remaining == 0)
          cx.complete_after_ns(delay, [st] { st->operation_done(0); });
      };
      if (is_get)
        proto.get_fragments(g.target, g.remote, std::move(g.local),
                            std::move(done));
      else
        proto.put_fragments(g.target, g.remote, g.local, std::move(done));
    }
    cx.complete_now([st] { st->source_now(); });
  });
  return st->result();
}

}  // namespace detail

// Default completion: operation future.
using default_cx_t = detail::completions<detail::op_future_cx>;
inline default_cx_t default_cx() { return operation_cx::as_future(); }

// ------------------------------------------------------------------- rput

// Bulk put: copies n elements from local src to remote dest. At or above
// Config::rma_async_min bytes the transfer is asynchronous: src must stay
// valid until source completion, dest until operation completion.
template <typename T, typename Cxs = default_cx_t>
auto rput(const T* src, global_ptr<T> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "RMA requires trivially copyable element types");
  assert(!dest.is_null());
  arch::relaxed_inc(detail::op_state().stats.rputs);
  const std::size_t bytes = n * sizeof(T);
  if (detail::use_xfer(bytes)) {
    return detail::issue_xfer(std::move(cxs), dest.where(), dest.local(),
                              src, bytes, /*hops=*/2, /*is_get=*/false);
  }
  if (detail::wire_am()) {
    return detail::issue_am_contig(std::move(cxs), dest.where(),
                                   dest.local(), src, bytes,
                                   /*is_get=*/false, /*hops=*/2);
  }
  // Direct-wire injection path: runs unchanged on injector threads — the
  // memcpy is the initiator's own, and every completion hook routes
  // off-persona correctly. This is the multi-thread scaling fast path.
  // 0-byte puts are legal (and may pass a null src); memcpy is not.
  if (bytes) std::memcpy(dest.local(), src, bytes);
  return detail::finish_rma(std::move(cxs), dest.where(), /*hops=*/2);
}

// Scalar value put. Never rides the engine: the source is the by-value
// parameter itself, which dies when this call returns — but both wires
// consume it synchronously (memcpy, or the AM request's payload copy), so
// an 8-byte transfer needs no chunking anyway.
template <typename T, typename Cxs = default_cx_t>
auto rput(T value, global_ptr<T> dest, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "RMA requires trivially copyable element types");
  assert(!dest.is_null());
  arch::relaxed_inc(detail::op_state().stats.rputs);
  if (detail::wire_am()) {
    // The by-value parameter dies with this call; when an injector thread
    // initiates, the AM request is built later on the progress persona —
    // stage the value in a holder the dispatched closure keeps alive (on
    // the master-persona path the closure runs inline, same lifetime,
    // one small allocation next to the cx_state's own).
    auto holder = std::make_shared<T>(value);
    const void* src = holder.get();
    return detail::issue_am_contig_ns(
        std::move(cxs), dest.where(), dest.local(), src, sizeof(T),
        /*is_get=*/false, 2 * detail::op_state().sim_latency_ns,
        std::move(holder));
  }
  std::memcpy(dest.local(), &value, sizeof(T));
  return detail::finish_rma(std::move(cxs), dest.where(), /*hops=*/2);
}

// ------------------------------------------------------------------- rget

// Bulk get: copies n elements from remote src into local dest. Large
// transfers are asynchronous (see rput); dest must stay valid until
// operation completion.
template <typename T, typename Cxs = default_cx_t>
auto rget(global_ptr<T> src, T* dest, std::size_t n, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  arch::relaxed_inc(detail::op_state().stats.rgets);
  const std::size_t bytes = n * sizeof(T);
  if (detail::use_xfer(bytes)) {
    return detail::issue_xfer(std::move(cxs), src.where(), dest,
                              src.local(), bytes, /*hops=*/2,
                              /*is_get=*/true);
  }
  if (detail::wire_am()) {
    return detail::issue_am_contig(std::move(cxs), src.where(), dest,
                                   src.local(), bytes, /*is_get=*/true,
                                   /*hops=*/2);
  }
  if (bytes) std::memcpy(dest, src.local(), bytes);
  return detail::finish_rma(std::move(cxs), src.where(), /*hops=*/2);
}

// Scalar get: future carries the fetched value. The read happens at
// completion time (after the simulated round trip / the AM reply),
// matching a real get.
template <typename T>
future<T> rget(global_ptr<T> src) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  arch::relaxed_inc(detail::op_state().stats.rgets);
  if (detail::wire_am()) {
    // The reply scatters into a shared holder; the value ships to the
    // future through compQ (plus the modeled round trip) like every other
    // deferred completion — back through the initiating persona's inbox
    // when an injector thread asked, where the promise lives.
    auto buf = std::make_shared<T>();
    promise<T> pr;
    const std::uint64_t delay = 2 * detail::op_state().sim_latency_ns;
    const detail::op_context cx = detail::op_context::current();
    cx.run_at_rank([cx, buf, pr, src, delay]() mutable {
      detail::persona().rank->rma_am->get(
          src.where(), buf.get(), src.local(), sizeof(T),
          [cx, buf, pr, delay]() mutable {
            cx.complete_after_ns(delay, [buf, pr]() mutable {
              pr.fulfill_result(*buf);
            });
          });
    });
    return pr.get_future();
  }
  if (detail::op_state().sim_latency_ns == 0) {
    // PSHM fast path: the load is the transfer — thread-safe by nature,
    // so injector threads take it unchanged.
    return make_future(*src.local());
  }
  promise<T> pr;
  detail::push_completion_after(2, [pr, src]() mutable {
    pr.fulfill_result(*src.local());
  });
  return pr.get_future();
}

// --------------------------------------------------- non-contiguous RMA
//
// The paper highlights vector/indexed/strided transfers as productivity
// features for multidimensional data. Fragment lists use (pointer, element
// count) pairs, as in upcxx::rput_irregular.

// Read-only local fragment (the gather side of a put).
template <typename T>
struct src_fragment {
  const T* ptr;
  std::size_t n;
};
// Writable local fragment (the scatter side of a get).
template <typename T>
struct local_fragment {
  T* ptr;
  std::size_t n;
};
// Remote fragment (either direction).
template <typename T>
struct dst_fragment {
  global_ptr<T> ptr;
  std::size_t n;
};

namespace detail {

// Completion delivery for a fragment list spanning one or more target
// ranks whose data motion already happened synchronously: remote_cx
// notifications go to each distinct target exactly once (after all its
// fragments landed — the whole list is copied before any notification is
// sent); operation completion is charged one round trip. `targets` yields
// the target rank of fragment i; fragment lists are short, so the
// distinct-target scan is quadratic rather than allocating.
template <typename Cxs, typename TargetOf>
auto finish_rma_fragments(Cxs&& cxs, std::size_t nfrags, TargetOf&& targets) {
  // nfrags == 0 is legal (an empty transfer): every completion fires, no
  // remote rank is notified because none is named.
  cx_state<std::decay_t<Cxs>> st(std::move(cxs),
                                 nfrags ? targets(0) : intrank_t{0});
  st.source_now();
  for (std::size_t i = 0; i < nfrags; ++i) {
    const intrank_t t = targets(i);
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) seen = targets(j) == t;
    if (!seen) st.remote_now(t);
  }
  st.operation_done(2 * op_state().sim_latency_ns);
  return st.result();
}

// Pairs a local fragment list against a remote one into maximal matched
// runs — fn(local_ptr, remote_gptr, nelems) — walking both lists in order
// exactly as the synchronous copy loops used to. LocalFrag's element
// pointer type carries constness (const T* for puts, T* for gets).
template <typename T, typename LocalPtr, typename LocalVec, typename Fn>
void pair_fragment_runs(const LocalVec& locals,
                        const std::vector<dst_fragment<T>>& remotes,
                        Fn&& fn) {
  std::size_t li = 0, lo = 0;  // local fragment index/offset
  // Exhausted and zero-length local fragments contribute nothing; skipping
  // them up front keeps every fn() run non-empty (a zero-length local
  // fragment used to wedge this loop: take == 0 made no progress).
  auto skip_consumed = [&] {
    while (li < locals.size() && lo == locals[li].n) {
      ++li;
      lo = 0;
    }
  };
  for (const auto& r : remotes) {
    assert(!r.ptr.is_null());
    std::size_t need = r.n, ro = 0;
    while (need) {
      skip_consumed();
      assert(li < locals.size() && "local side shorter than remote side");
      const std::size_t take = std::min(need, locals[li].n - lo);
      fn(static_cast<LocalPtr>(locals[li].ptr) + lo, r.ptr + ro, take);
      ro += take;
      lo += take;
      need -= take;
    }
  }
  skip_consumed();  // trailing zero-length local fragments are legal
  assert(li == locals.size() && lo == 0 &&
         "remote side shorter than local side");
}

}  // namespace detail

// Irregular put: total source elements must equal total destination
// elements; fragments may differ in shape (gather locally / scatter
// remotely) and destination fragments may live on different ranks — each
// distinct target rank receives remote_cx notifications once.
template <typename T, typename Cxs = default_cx_t>
auto rput_irregular(const std::vector<src_fragment<T>>& srcs,
                    const std::vector<dst_fragment<T>>& dsts,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  arch::relaxed_inc(detail::op_state().stats.rputs);
  if (dsts.empty()) {
    // Empty transfer: complete locally (no remote rank is named, so no
    // remote_cx fires). Any local fragments must be zero-length too.
    return detail::finish_rma_fragments(
        std::move(cxs), 0, [](std::size_t) { return intrank_t{0}; });
  }
  if (detail::wire_am()) {
    std::vector<detail::AmFragGroup> groups;
    // Every distinct destination rank gets a group up front: a target
    // whose fragments are all zero-length still receives one (payload-
    // free) scatter record, so its remote_cx notification fires exactly
    // as on the direct wire.
    for (const auto& d : dsts) detail::am_frag_group(groups, d.ptr.where());
    detail::pair_fragment_runs<T, const T*>(
        srcs, dsts, [&](const T* lp, global_ptr<T> rp, std::size_t n) {
          auto& g = detail::am_frag_group(groups, rp.where());
          g.remote.push_back({reinterpret_cast<std::uintptr_t>(rp.local()),
                              n * sizeof(T)});
          g.local.push_back(
              {const_cast<T*>(lp), n * sizeof(T)});  // read-only use
        });
    return detail::issue_am_fragments(std::move(cxs), std::move(groups),
                                      /*is_get=*/false);
  }
  detail::pair_fragment_runs<T, const T*>(
      srcs, dsts, [](const T* lp, global_ptr<T> rp, std::size_t n) {
        std::memcpy(rp.local(), lp, n * sizeof(T));
      });
  return detail::finish_rma_fragments(
      std::move(cxs), dsts.size(),
      [&](std::size_t i) { return dsts[i].ptr.where(); });
}

// Irregular get (mirror of rput_irregular): remote source fragments gather
// into writable local fragments. Source fragments may span ranks; each
// distinct source-owning rank receives remote_cx notifications once.
template <typename T, typename Cxs = default_cx_t>
auto rget_irregular(const std::vector<dst_fragment<T>>& srcs,
                    const std::vector<local_fragment<T>>& dsts,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  arch::relaxed_inc(detail::op_state().stats.rgets);
  if (srcs.empty()) {
    return detail::finish_rma_fragments(
        std::move(cxs), 0, [](std::size_t) { return intrank_t{0}; });
  }
  if (detail::wire_am()) {
    std::vector<detail::AmFragGroup> groups;
    for (const auto& s : srcs) detail::am_frag_group(groups, s.ptr.where());
    detail::pair_fragment_runs<T, T*>(
        dsts, srcs, [&](T* lp, global_ptr<T> rp, std::size_t n) {
          auto& g = detail::am_frag_group(groups, rp.where());
          g.remote.push_back({reinterpret_cast<std::uintptr_t>(rp.local()),
                              n * sizeof(T)});
          g.local.push_back({lp, n * sizeof(T)});
        });
    return detail::issue_am_fragments(std::move(cxs), std::move(groups),
                                      /*is_get=*/true);
  }
  detail::pair_fragment_runs<T, T*>(
      dsts, srcs, [](T* lp, global_ptr<T> rp, std::size_t n) {
        std::memcpy(lp, rp.local(), n * sizeof(T));
      });
  return detail::finish_rma_fragments(
      std::move(cxs), srcs.size(),
      [&](std::size_t i) { return srcs[i].ptr.where(); });
}

// Strided put/get over Dim-dimensional blocks. Strides are in *bytes*
// (matching upcxx::rput_strided); extents count elements per dimension with
// extent[Dim-1] iterating contiguously element-by-element.
namespace detail {

// Walks the common Dim-dimensional iteration space and invokes
// fn(a_run, b_run, run_bytes) for each maximal contiguous run: whole
// innermost rows when both sides are element-contiguous there, single
// elements otherwise. Both the direct wire (fn = memcpy) and the am wire
// (fn = collect fragment descriptors) drive their data motion off the same
// enumeration.
template <typename T, int Dim, typename Fn>
void strided_for_each_run(const std::byte* a, const std::ptrdiff_t* as,
                          std::byte* b, const std::ptrdiff_t* bs,
                          const std::size_t* extent, int dim, Fn&& fn) {
  if (dim == Dim - 1) {
    const auto elem = static_cast<std::ptrdiff_t>(sizeof(T));
    if (as[dim] == elem && bs[dim] == elem) {
      fn(a, b, extent[dim] * sizeof(T));
      return;
    }
    for (std::size_t i = 0; i < extent[dim]; ++i)
      fn(a + static_cast<std::ptrdiff_t>(i) * as[dim],
         b + static_cast<std::ptrdiff_t>(i) * bs[dim], sizeof(T));
    return;
  }
  for (std::size_t i = 0; i < extent[dim]; ++i)
    strided_for_each_run<T, Dim>(
        a + static_cast<std::ptrdiff_t>(i) * as[dim], as,
        b + static_cast<std::ptrdiff_t>(i) * bs[dim], bs, extent, dim + 1,
        fn);
}

// Builds the am-wire fragment group of a strided transfer: `remote_is_b`
// puts b-side runs on the wire as remote descriptors and a-side runs as
// the local list (a put); inverted for gets.
template <typename T, int Dim>
std::vector<AmFragGroup> strided_am_group(
    const std::byte* a, const std::ptrdiff_t* as, std::byte* b,
    const std::ptrdiff_t* bs, const std::size_t* extent, intrank_t target,
    bool remote_is_b) {
  std::vector<AmFragGroup> groups;
  auto& g = am_frag_group(groups, target);
  strided_for_each_run<T, Dim>(
      a, as, b, bs, extent, 0,
      [&](const std::byte* ra, std::byte* rb, std::size_t bytes) {
        const std::byte* remote = remote_is_b ? rb : ra;
        const std::byte* local = remote_is_b ? ra : rb;
        g.remote.push_back(
            {reinterpret_cast<std::uintptr_t>(remote), bytes});
        g.local.push_back(
            {const_cast<std::byte*>(local), bytes});
      });
  return groups;
}

}  // namespace detail

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rput_strided(const T* src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  global_ptr<T> dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  arch::relaxed_inc(detail::op_state().stats.rputs);
  auto* a = reinterpret_cast<const std::byte*>(src_base);
  auto* b = reinterpret_cast<std::byte*>(dst_base.local());
  if (detail::wire_am()) {
    auto groups = detail::strided_am_group<T, Dim>(
        a, src_strides.data(), b, dst_strides.data(), extents.data(),
        dst_base.where(), /*remote_is_b=*/true);
    if (!groups.front().remote.empty())
      return detail::issue_am_fragments(std::move(cxs), std::move(groups),
                                        /*is_get=*/false);
    return detail::finish_rma(std::move(cxs), dst_base.where(), 2);
  }
  detail::strided_for_each_run<T, Dim>(
      a, src_strides.data(), b, dst_strides.data(), extents.data(), 0,
      [](const std::byte* ra, std::byte* rb, std::size_t bytes) {
        std::memcpy(rb, ra, bytes);
      });
  return detail::finish_rma(std::move(cxs), dst_base.where(), 2);
}

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rget_strided(global_ptr<T> src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  T* dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  arch::relaxed_inc(detail::op_state().stats.rgets);
  auto* a = reinterpret_cast<const std::byte*>(src_base.local());
  auto* b = reinterpret_cast<std::byte*>(dst_base);
  if (detail::wire_am()) {
    auto groups = detail::strided_am_group<T, Dim>(
        a, src_strides.data(), b, dst_strides.data(), extents.data(),
        src_base.where(), /*remote_is_b=*/false);
    if (!groups.front().remote.empty())
      return detail::issue_am_fragments(std::move(cxs), std::move(groups),
                                        /*is_get=*/true);
    return detail::finish_rma(std::move(cxs), src_base.where(), 2);
  }
  detail::strided_for_each_run<T, Dim>(
      a, src_strides.data(), b, dst_strides.data(), extents.data(), 0,
      [](const std::byte* ra, std::byte* rb, std::size_t bytes) {
        std::memcpy(rb, ra, bytes);
      });
  return detail::finish_rma(std::move(cxs), src_base.where(), 2);
}

}  // namespace upcxx
