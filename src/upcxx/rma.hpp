// One-sided RMA: rput/rget plus the non-contiguous variants (paper §II).
//
// Two data-motion paths, split by Config::rma_async_min:
//
//   * synchronous (small transfers) — the data motion is a memcpy performed
//     by the initiator at injection (exactly what GASNet does over PSHM).
//     Zero allocation; source completion is inherently synchronous.
//   * asynchronous (large contiguous transfers) — the transfer is handed to
//     gex::XferEngine (the paper's actQ): it is decomposed into pipelined
//     chunks drained by internal progress with bounded work per poll, so
//     the initiating call returns immediately and a progress-thread persona
//     overlaps the copy with computation. Source completion fires when the
//     last chunk has been read out of the source buffer; under the
//     simulated bandwidth model (UPCXX_SIM_BW_GBPS) it genuinely precedes
//     operation completion.
//
// Completion semantics on both paths follow the paper's model:
//   * source completion — the source buffer is reusable;
//   * operation completion — remotely complete, including the network-level
//     acknowledgment a blocking rput waits for (§IV-B); under simulated
//     latency this costs a full round trip (2 hops) past the data landing;
//   * remote completion — fires an RPC at the target after the data lands
//     (1 hop). Irregular transfers whose fragment lists span several target
//     ranks notify each distinct target once.
// All completion signals are delivered through detail::cx_state
// (completion.hpp) — the one pipeline shared with copy() and rpc — and
// reach user code only via the progress engine's compQ, never synchronously
// inside the injection call (except promise fulfillment for events that are
// synchronous by construction), matching §III.
//
// Ordering note: as in real UPC++, two RMAs touching the same remote region
// are unordered unless sequenced through completions; with the async engine
// a small synchronous put can land before a still-draining large one.
// Barrier entry drains the engine's pending copies, so the common
// "put, barrier, read" idiom keeps its pre-engine meaning.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <memory>
#include <vector>

#include "gex/xfer.hpp"
#include "upcxx/completion.hpp"
#include "upcxx/global_ptr.hpp"
#include "upcxx/progress.hpp"
#include "upcxx/rpc.hpp"

namespace upcxx {

namespace detail {

// Applies every completion in `cxs` for an operation whose data motion
// already happened synchronously; returns the value the RMA call returns.
// `delay_ns` is the simulated time to operation completion (0 = complete at
// injection — the zero-allocation fast path every small blocking rput on
// the memcpy wire takes).
template <typename Cxs>
auto finish_rma_ns(Cxs&& cxs, intrank_t target, std::uint64_t delay_ns) {
  cx_state<std::decay_t<Cxs>> st(std::move(cxs), target);
  st.source_now();
  st.remote_now();
  st.operation_done(delay_ns);
  return st.result();
}

// Hop-based wrapper: the simulated wire distance to operation completion in
// units of the configured per-hop latency.
template <typename Cxs>
auto finish_rma(Cxs&& cxs, intrank_t target, std::uint64_t hops) {
  return finish_rma_ns(std::forward<Cxs>(cxs), target,
                       hops * persona().sim_latency_ns);
}

// True when a contiguous transfer of `bytes` should ride the asynchronous
// data-motion engine instead of the injection-time memcpy.
inline bool use_xfer(std::size_t bytes) {
  auto& p = persona();
  return p.rma_async_min != 0 && bytes >= p.rma_async_min &&
         p.rank->xfer != nullptr;
}

// Hands a contiguous transfer to the XferEngine and wires its two
// callbacks into the completion pipeline. The cx_state outlives the call
// (shared between the source and landed callbacks), so its futures are
// materialized up front; the wire-hop delay to operation completion is
// charged after the data lands.
template <typename Cxs>
auto issue_xfer(Cxs cxs, intrank_t target, void* dst, const void* src,
                std::size_t bytes, std::uint64_t hops) {
  auto st = std::make_shared<cx_state<Cxs>>(std::move(cxs), target);
  st->prepare_deferred();
  const std::uint64_t delay = hops * persona().sim_latency_ns;
  persona().rank->xfer->submit(
      dst, src, bytes, [st] { st->source_now(); },
      [st, delay] {
        // Data is visible at the target: notify it (1 more hop carried by
        // the rpc itself), then complete the operation after the
        // round-trip acknowledgment.
        st->remote_now();
        st->operation_done(delay);
      });
  return st->result();
}

}  // namespace detail

// Default completion: operation future.
using default_cx_t = detail::completions<detail::op_future_cx>;
inline default_cx_t default_cx() { return operation_cx::as_future(); }

// ------------------------------------------------------------------- rput

// Bulk put: copies n elements from local src to remote dest. At or above
// Config::rma_async_min bytes the transfer is asynchronous: src must stay
// valid until source completion, dest until operation completion.
template <typename T, typename Cxs = default_cx_t>
auto rput(const T* src, global_ptr<T> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "RMA requires trivially copyable element types");
  assert(!dest.is_null());
  ++detail::persona().stats.rputs;
  const std::size_t bytes = n * sizeof(T);
  if (detail::use_xfer(bytes)) {
    return detail::issue_xfer(std::move(cxs), dest.where(), dest.local(),
                              src, bytes, /*hops=*/2);
  }
  std::memcpy(dest.local(), src, bytes);
  return detail::finish_rma(std::move(cxs), dest.where(), /*hops=*/2);
}

// Scalar value put. Always synchronous: the source is the by-value
// parameter itself, which dies when this call returns — an async engine
// ride would read a dangling stack slot, and an 8-byte transfer gains
// nothing from chunking anyway.
template <typename T, typename Cxs = default_cx_t>
auto rput(T value, global_ptr<T> dest, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "RMA requires trivially copyable element types");
  assert(!dest.is_null());
  ++detail::persona().stats.rputs;
  std::memcpy(dest.local(), &value, sizeof(T));
  return detail::finish_rma(std::move(cxs), dest.where(), /*hops=*/2);
}

// ------------------------------------------------------------------- rget

// Bulk get: copies n elements from remote src into local dest. Large
// transfers are asynchronous (see rput); dest must stay valid until
// operation completion.
template <typename T, typename Cxs = default_cx_t>
auto rget(global_ptr<T> src, T* dest, std::size_t n, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  ++detail::persona().stats.rgets;
  const std::size_t bytes = n * sizeof(T);
  if (detail::use_xfer(bytes)) {
    return detail::issue_xfer(std::move(cxs), src.where(), dest,
                              src.local(), bytes, /*hops=*/2);
  }
  std::memcpy(dest, src.local(), bytes);
  return detail::finish_rma(std::move(cxs), src.where(), /*hops=*/2);
}

// Scalar get: future carries the fetched value. The read happens at
// completion time (after the simulated round trip), matching a real get.
template <typename T>
future<T> rget(global_ptr<T> src) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  ++detail::persona().stats.rgets;
  if (detail::persona().sim_latency_ns == 0) {
    // PSHM fast path: the load is the transfer.
    return make_future(*src.local());
  }
  promise<T> pr;
  detail::push_completion_after(2, [pr, src]() mutable {
    pr.fulfill_result(*src.local());
  });
  return pr.get_future();
}

// --------------------------------------------------- non-contiguous RMA
//
// The paper highlights vector/indexed/strided transfers as productivity
// features for multidimensional data. Fragment lists use (pointer, element
// count) pairs, as in upcxx::rput_irregular.

// Read-only local fragment (the gather side of a put).
template <typename T>
struct src_fragment {
  const T* ptr;
  std::size_t n;
};
// Writable local fragment (the scatter side of a get).
template <typename T>
struct local_fragment {
  T* ptr;
  std::size_t n;
};
// Remote fragment (either direction).
template <typename T>
struct dst_fragment {
  global_ptr<T> ptr;
  std::size_t n;
};

namespace detail {

// Completion delivery for a fragment list spanning one or more target
// ranks: remote_cx notifications go to each distinct target exactly once
// (after all its fragments landed — the whole list is copied before any
// notification is sent); operation completion is charged one round trip.
// `targets` yields the target rank of fragment i; fragment lists are short,
// so the distinct-target scan is quadratic rather than allocating.
template <typename Cxs, typename TargetOf>
auto finish_rma_fragments(Cxs&& cxs, std::size_t nfrags, TargetOf&& targets) {
  assert(nfrags > 0 && "empty fragment list");
  cx_state<std::decay_t<Cxs>> st(std::move(cxs),
                                 nfrags ? targets(0) : intrank_t{0});
  st.source_now();
  for (std::size_t i = 0; i < nfrags; ++i) {
    const intrank_t t = targets(i);
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) seen = targets(j) == t;
    if (!seen) st.remote_now(t);
  }
  st.operation_done(2 * persona().sim_latency_ns);
  return st.result();
}

}  // namespace detail

// Irregular put: total source elements must equal total destination
// elements; fragments may differ in shape (gather locally / scatter
// remotely) and destination fragments may live on different ranks — each
// distinct target rank receives remote_cx notifications once.
template <typename T, typename Cxs = default_cx_t>
auto rput_irregular(const std::vector<src_fragment<T>>& srcs,
                    const std::vector<dst_fragment<T>>& dsts,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rputs;
  std::size_t si = 0, so = 0;  // source fragment index/offset
  for (const auto& d : dsts) {
    assert(!d.ptr.is_null());
    T* out = d.ptr.local();
    std::size_t need = d.n;
    while (need) {
      assert(si < srcs.size() && "source shorter than destination");
      std::size_t take = std::min(need, srcs[si].n - so);
      std::memcpy(out, srcs[si].ptr + so, take * sizeof(T));
      out += take;
      so += take;
      need -= take;
      if (so == srcs[si].n) {
        ++si;
        so = 0;
      }
    }
  }
  assert(si == srcs.size() && so == 0 && "destination shorter than source");
  return detail::finish_rma_fragments(
      std::move(cxs), dsts.size(),
      [&](std::size_t i) { return dsts[i].ptr.where(); });
}

// Irregular get (mirror of rput_irregular): remote source fragments gather
// into writable local fragments. Source fragments may span ranks; each
// distinct source-owning rank receives remote_cx notifications once.
template <typename T, typename Cxs = default_cx_t>
auto rget_irregular(const std::vector<dst_fragment<T>>& srcs,
                    const std::vector<local_fragment<T>>& dsts,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rgets;
  std::size_t si = 0, so = 0;
  for (const auto& d : dsts) {
    T* out = d.ptr;
    std::size_t need = d.n;
    while (need) {
      assert(si < srcs.size() && "remote source shorter than destination");
      assert(!srcs[si].ptr.is_null());
      std::size_t take = std::min(need, srcs[si].n - so);
      std::memcpy(out, srcs[si].ptr.local() + so, take * sizeof(T));
      out += take;
      so += take;
      need -= take;
      if (so == srcs[si].n) {
        ++si;
        so = 0;
      }
    }
  }
  assert(si == srcs.size() && so == 0 && "destination longer than source");
  return detail::finish_rma_fragments(
      std::move(cxs), srcs.size(),
      [&](std::size_t i) { return srcs[i].ptr.where(); });
}

// Strided put/get over Dim-dimensional blocks. Strides are in *bytes*
// (matching upcxx::rput_strided); extents count elements per dimension with
// extent[Dim-1] iterating contiguously element-by-element.
namespace detail {
template <typename T, int Dim>
void strided_copy(const std::byte* src, const std::ptrdiff_t* sstride,
                  std::byte* dst, const std::ptrdiff_t* dstride,
                  const std::size_t* extent, int dim) {
  if (dim == Dim - 1) {
    for (std::size_t i = 0; i < extent[dim]; ++i)
      std::memcpy(dst + static_cast<std::ptrdiff_t>(i) * dstride[dim],
                  src + static_cast<std::ptrdiff_t>(i) * sstride[dim],
                  sizeof(T));
    return;
  }
  for (std::size_t i = 0; i < extent[dim]; ++i)
    strided_copy<T, Dim>(src + static_cast<std::ptrdiff_t>(i) * sstride[dim],
                         sstride,
                         dst + static_cast<std::ptrdiff_t>(i) * dstride[dim],
                         dstride, extent, dim + 1);
}
}  // namespace detail

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rput_strided(const T* src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  global_ptr<T> dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rputs;
  detail::strided_copy<T, Dim>(
      reinterpret_cast<const std::byte*>(src_base), src_strides.data(),
      reinterpret_cast<std::byte*>(dst_base.local()), dst_strides.data(),
      extents.data(), 0);
  return detail::finish_rma(std::move(cxs), dst_base.where(), 2);
}

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rget_strided(global_ptr<T> src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  T* dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rgets;
  detail::strided_copy<T, Dim>(
      reinterpret_cast<const std::byte*>(src_base.local()),
      src_strides.data(), reinterpret_cast<std::byte*>(dst_base),
      dst_strides.data(), extents.data(), 0);
  return detail::finish_rma(std::move(cxs), src_base.where(), 2);
}

}  // namespace upcxx
