// One-sided RMA: rput/rget plus the non-contiguous variants (paper §II).
//
// On the shared-memory wire the data motion itself is a memcpy performed by
// the initiator (exactly what GASNet does over PSHM). Completion semantics
// follow the paper's model:
//   * source completion — the source buffer is reusable: synchronous here,
//     since the copy happens at injection;
//   * operation completion — remotely complete, including the network-level
//     acknowledgment a blocking rput waits for (§IV-B); under simulated
//     latency this costs a full round trip (2 hops);
//   * remote completion — fires an RPC at the target after the data lands
//     (1 hop).
// All completion signals are delivered through the progress engine's compQ,
// never synchronously inside the injection call (except source_cx, whose
// meaning is inherently synchronous here), matching §III.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "upcxx/completion.hpp"
#include "upcxx/global_ptr.hpp"
#include "upcxx/progress.hpp"
#include "upcxx/rpc.hpp"

namespace upcxx {

namespace detail {

// On the shared-memory wire (sim latency 0) an RMA is remotely complete
// when the injection memcpy returns — the GASNet PSHM fast path, where
// upcxx returns an immediately-ready future (detail::ready_future, no
// per-op allocation).

// Applies every non-future completion in `cxs`; returns the future for the
// op_future completion if present (void otherwise). `delay_ns` is the
// simulated time to operation completion (0 = complete at injection).
template <typename Cxs>
auto finish_rma_ns(Cxs&& cxs, intrank_t target, std::uint64_t delay_ns) {
  using CxsD = std::decay_t<Cxs>;
  constexpr bool want_future = CxsD::template has<is_op_future>();
  // Synchronous completion (the common case): signal everything now.
  const bool instant = delay_ns == 0;

  if (instant) {
    // Zero-allocation fast path: no operation promise is materialized; a
    // requested future is the rank's cached ready future. This is the path
    // every blocking rput on the memcpy wire takes, so it must not touch
    // the allocator (E1 is sensitive to a single malloc here).
    std::apply(
        [&](auto&... item) {
          auto handle = [&](auto& cx) {
            using C = std::decay_t<decltype(cx)>;
            if constexpr (std::is_same_v<C, op_promise_cx> ||
                          std::is_same_v<C, src_promise_cx>) {
              cx.pr.fulfill_anonymous(1);
            } else if constexpr (std::is_same_v<C, op_lpc_cx>) {
              // LPCs always run from the progress engine, never
              // synchronously inside the injection call.
              push_compq(std::move(cx.fn));
            } else if constexpr (is_remote_rpc<C>::value) {
              // Remote completion notification: latency-sensitive (a peer
              // may be spinning on it), so it bypasses aggregation.
              std::apply(
                  [&](auto&... args) {
                    rpc_ff_impl(target, wire_mode::immediate, cx.fn,
                                args...);
                  },
                  cx.args);
            }
          };
          (handle(item), ...);
        },
        cxs.items);
    if constexpr (want_future) {
      return ready_future();
    } else if constexpr (CxsD::template has<is_src_future>()) {
      return make_future();
    } else {
      return;
    }
  }

  // Simulated-delay path: completions are deferred by delay_ns.
  promise<> op_pr;  // backs the returned future
  if constexpr (want_future) op_pr.require_anonymous(1);

  std::apply(
      [&](auto&... item) {
        auto handle = [&](auto& cx) {
          using C = std::decay_t<decltype(cx)>;
          if constexpr (std::is_same_v<C, op_future_cx>) {
            push_completion_after_ns(delay_ns, [pr = op_pr]() mutable {
              pr.fulfill_anonymous(1);
            });
          } else if constexpr (std::is_same_v<C, op_promise_cx>) {
            push_completion_after_ns(delay_ns, [pr = cx.pr]() mutable {
              pr.fulfill_anonymous(1);
            });
          } else if constexpr (std::is_same_v<C, op_lpc_cx>) {
            push_completion_after_ns(delay_ns, std::move(cx.fn));
          } else if constexpr (std::is_same_v<C, src_future_cx> ||
                               std::is_same_v<C, src_promise_cx>) {
            // Source completion: the copy already happened at injection.
            if constexpr (std::is_same_v<C, src_promise_cx>)
              cx.pr.fulfill_anonymous(1);
          } else if constexpr (is_remote_rpc<C>::value) {
            // Ship fn+args to the target; executes in its user progress
            // after one wire hop (the AM carries the send timestamp).
            // Immediate path: completion notifications must not sit in the
            // aggregation buffer.
            std::apply(
                [&](auto&... args) {
                  rpc_ff_impl(target, wire_mode::immediate, cx.fn, args...);
                },
                cx.args);
          }
        };
        (handle(item), ...);
      },
      cxs.items);

  if constexpr (want_future) {
    return op_pr.finalize();
  } else {
    // Fulfill the src_future case: with synchronous source completion a
    // requested source future would be immediately ready; omit support for
    // returning *two* futures at once to keep the API surface honest.
    static_assert(!CxsD::template has<is_src_future>() ||
                      !CxsD::template has<is_op_future>(),
                  "requesting both source and operation futures from one "
                  "call is not supported in this reproduction");
    if constexpr (CxsD::template has<is_src_future>()) {
      return make_future();
    } else {
      return;
    }
  }
}

// Hop-based wrapper: the simulated wire distance to operation completion in
// units of the configured per-hop latency.
template <typename Cxs>
auto finish_rma(Cxs&& cxs, intrank_t target, std::uint64_t hops) {
  return finish_rma_ns(std::forward<Cxs>(cxs), target,
                       hops * persona().sim_latency_ns);
}

}  // namespace detail

// Default completion: operation future.
using default_cx_t = detail::completions<detail::op_future_cx>;
inline default_cx_t default_cx() { return operation_cx::as_future(); }

// ------------------------------------------------------------------- rput

// Bulk put: copies n elements from local src to remote dest.
template <typename T, typename Cxs = default_cx_t>
auto rput(const T* src, global_ptr<T> dest, std::size_t n,
          Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "RMA requires trivially copyable element types");
  assert(!dest.is_null());
  ++detail::persona().stats.rputs;
  std::memcpy(dest.local(), src, n * sizeof(T));
  return detail::finish_rma(std::move(cxs), dest.where(), /*hops=*/2);
}

// Scalar value put.
template <typename T, typename Cxs = default_cx_t>
auto rput(T value, global_ptr<T> dest, Cxs cxs = Cxs{}) {
  return rput(&value, dest, 1, std::move(cxs));
}

// ------------------------------------------------------------------- rget

// Bulk get: copies n elements from remote src into local dest.
template <typename T, typename Cxs = default_cx_t>
auto rget(global_ptr<T> src, T* dest, std::size_t n, Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  ++detail::persona().stats.rgets;
  std::memcpy(dest, src.local(), n * sizeof(T));
  return detail::finish_rma(std::move(cxs), src.where(), /*hops=*/2);
}

// Scalar get: future carries the fetched value. The read happens at
// completion time (after the simulated round trip), matching a real get.
template <typename T>
future<T> rget(global_ptr<T> src) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(!src.is_null());
  ++detail::persona().stats.rgets;
  if (detail::persona().sim_latency_ns == 0) {
    // PSHM fast path: the load is the transfer.
    return make_future(*src.local());
  }
  promise<T> pr;
  detail::push_completion_after(2, [pr, src]() mutable {
    pr.fulfill_result(*src.local());
  });
  return pr.get_future();
}

// --------------------------------------------------- non-contiguous RMA
//
// The paper highlights vector/indexed/strided transfers as productivity
// features for multidimensional data. Fragment lists use (pointer, element
// count) pairs, as in upcxx::rput_irregular.

template <typename T>
struct src_fragment {
  const T* ptr;
  std::size_t n;
};
template <typename T>
struct dst_fragment {
  global_ptr<T> ptr;
  std::size_t n;
};

// Irregular put: total source elements must equal total destination
// elements; fragments may differ in shape (gather locally / scatter
// remotely).
template <typename T, typename Cxs = default_cx_t>
auto rput_irregular(const std::vector<src_fragment<T>>& srcs,
                    const std::vector<dst_fragment<T>>& dsts,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rputs;
  std::size_t si = 0, so = 0;  // source fragment index/offset
  intrank_t target = 0;
  for (const auto& d : dsts) {
    assert(!d.ptr.is_null());
    target = d.ptr.where();
    T* out = d.ptr.local();
    std::size_t need = d.n;
    while (need) {
      assert(si < srcs.size() && "source shorter than destination");
      std::size_t take = std::min(need, srcs[si].n - so);
      std::memcpy(out, srcs[si].ptr + so, take * sizeof(T));
      out += take;
      so += take;
      need -= take;
      if (so == srcs[si].n) {
        ++si;
        so = 0;
      }
    }
  }
  assert(si == srcs.size() && so == 0 && "destination shorter than source");
  return detail::finish_rma(std::move(cxs), target, 2);
}

// Irregular get (mirror of rput_irregular).
template <typename T, typename Cxs = default_cx_t>
auto rget_irregular(const std::vector<dst_fragment<T>>& srcs,
                    const std::vector<src_fragment<T>>& dsts_local,
                    Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rgets;
  std::size_t si = 0, so = 0;
  intrank_t target = 0;
  for (const auto& d : dsts_local) {
    T* out = const_cast<T*>(d.ptr);
    std::size_t need = d.n;
    while (need) {
      assert(si < srcs.size());
      target = srcs[si].ptr.where();
      std::size_t take = std::min(need, srcs[si].n - so);
      std::memcpy(out, srcs[si].ptr.local() + so, take * sizeof(T));
      out += take;
      so += take;
      need -= take;
      if (so == srcs[si].n) {
        ++si;
        so = 0;
      }
    }
  }
  return detail::finish_rma(std::move(cxs), target, 2);
}

// Strided put/get over Dim-dimensional blocks. Strides are in *bytes*
// (matching upcxx::rput_strided); extents count elements per dimension with
// extent[Dim-1] iterating contiguously element-by-element.
namespace detail {
template <typename T, int Dim>
void strided_copy(const std::byte* src, const std::ptrdiff_t* sstride,
                  std::byte* dst, const std::ptrdiff_t* dstride,
                  const std::size_t* extent, int dim) {
  if (dim == Dim - 1) {
    for (std::size_t i = 0; i < extent[dim]; ++i)
      std::memcpy(dst + static_cast<std::ptrdiff_t>(i) * dstride[dim],
                  src + static_cast<std::ptrdiff_t>(i) * sstride[dim],
                  sizeof(T));
    return;
  }
  for (std::size_t i = 0; i < extent[dim]; ++i)
    strided_copy<T, Dim>(src + static_cast<std::ptrdiff_t>(i) * sstride[dim],
                         sstride,
                         dst + static_cast<std::ptrdiff_t>(i) * dstride[dim],
                         dstride, extent, dim + 1);
}
}  // namespace detail

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rput_strided(const T* src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  global_ptr<T> dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rputs;
  detail::strided_copy<T, Dim>(
      reinterpret_cast<const std::byte*>(src_base), src_strides.data(),
      reinterpret_cast<std::byte*>(dst_base.local()), dst_strides.data(),
      extents.data(), 0);
  return detail::finish_rma(std::move(cxs), dst_base.where(), 2);
}

template <int Dim, typename T, typename Cxs = default_cx_t>
auto rget_strided(global_ptr<T> src_base,
                  const std::array<std::ptrdiff_t, Dim>& src_strides,
                  T* dst_base,
                  const std::array<std::ptrdiff_t, Dim>& dst_strides,
                  const std::array<std::size_t, Dim>& extents,
                  Cxs cxs = Cxs{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++detail::persona().stats.rgets;
  detail::strided_copy<T, Dim>(
      reinterpret_cast<const std::byte*>(src_base.local()),
      src_strides.data(), reinterpret_cast<std::byte*>(dst_base),
      dst_strides.data(), extents.data(), 0);
  return detail::finish_rma(std::move(cxs), src_base.where(), 2);
}

}  // namespace upcxx
