// minimpi: the MPI baseline used by the paper's comparisons.
//
// The paper benchmarks UPC++ against (a) MPI-3 one-sided RMA — passive
// target + MPI_Win_flush, via the IMB Unidir_put test (Fig 3) — and (b)
// two-sided MPI_Isend/Irecv and MPI_Alltoallv (Fig 8). Cray MPI is not
// available offline, so we implement the message-passing semantics those
// benchmarks need *over the same gex substrate* UPC++ uses. Both sides then
// ride identical hardware (memcpy + shared-memory rings), and measured
// differences reflect the software paths: minimpi deliberately keeps the
// structure of a general MPI implementation —
//   * two-sided matching queues ((source, tag) with wildcards, unexpected-
//     message queue, non-overtaking per pair),
//   * request objects allocated per operation,
//   * windows validated through a registry with epoch checks and per-target
//     operation records reaped by flush,
// which is exactly the overhead class the paper attributes to MPI RMA when
// comparing against the leaner PGAS path (§IV-B).
//
// Progress happens inside library calls (wait/test/flush/barrier poll the
// substrate), matching the MPI progress model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t count = 0;  // bytes received
};

namespace detail {
struct RequestState;
struct MpiState;
struct WinState;
}  // namespace detail

// Nonblocking-operation handle (MPI_Request). Copyable; copies share state.
class Request {
 public:
  Request() = default;
  bool valid() const { return st_ != nullptr; }
  bool done() const;
  const Status& status() const;

  // Implementation detail (shared completion record); not part of the
  // public surface even though it is technically reachable.
  std::shared_ptr<detail::RequestState> st_;
};

// ---- environment -----------------------------------------------------------

// Collective over all ranks; call once inside the SPMD region before any
// other minimpi function (MPI_Init).
void init();
// Collective; drains outstanding traffic (MPI_Finalize).
void finalize();

int rank();  // MPI_Comm_rank(MPI_COMM_WORLD)
int size();  // MPI_Comm_size(MPI_COMM_WORLD)

// Polls the substrate once (the progress that would happen inside any MPI
// call); exposed for latency-sensitive loops.
void poll();

// ---- two-sided -------------------------------------------------------------

Request isend(const void* buf, std::size_t bytes, int dest, int tag);
Request irecv(void* buf, std::size_t max_bytes, int source, int tag);

void wait(Request& r, Status* status = nullptr);
bool test(Request& r, Status* status = nullptr);
void waitall(Request* reqs, std::size_t n);

void send(const void* buf, std::size_t bytes, int dest, int tag);
Status recv(void* buf, std::size_t max_bytes, int source, int tag);

void sendrecv(const void* sbuf, std::size_t sbytes, int dest, int stag,
              void* rbuf, std::size_t rbytes_max, int source, int rtag,
              Status* status = nullptr);

// ---- collectives -----------------------------------------------------------

void barrier();

// MPI_Alltoallv over bytes: counts/displacements are in bytes. Implemented
// with the pairwise-exchange schedule used by production MPIs for large
// messages.
void alltoallv(const void* sendbuf, const std::size_t* sendcounts,
               const std::size_t* senddispls, void* recvbuf,
               const std::size_t* recvcounts, const std::size_t* recvdispls);

// Alltoallv over a process subgroup — the communicator-scoped collective a
// solver like STRUMPACK issues per frontal team. `members` lists world
// ranks (every member calls with the same list); counts/displacements are
// indexed by group position. `tag` disambiguates concurrent group
// collectives.
void alltoallv_group(const std::vector<int>& members, const void* sendbuf,
                     const std::size_t* sendcounts,
                     const std::size_t* senddispls, void* recvbuf,
                     const std::size_t* recvcounts,
                     const std::size_t* recvdispls, int tag);

// ---- one-sided (passive target, the Fig 3 comparison path) -----------------

class Win {
 public:
  // Collective: every rank contributes a local exposure region.
  static Win create(void* base, std::size_t bytes);
  // Collective; all outstanding accesses must be flushed first.
  void free();

  // MPI_Put: origin -> (target rank, byte displacement). Nonblocking; remote
  // completion is guaranteed only after flush(target).
  void put(const void* origin, std::size_t bytes, int target,
           std::size_t target_disp);
  // MPI_Get.
  void get(void* origin, std::size_t bytes, int target,
           std::size_t target_disp);

  // MPI_Win_flush(target): completes all outstanding ops to `target` at both
  // origin and target.
  void flush(int target);
  // MPI_Win_flush_all.
  void flush_all();

  void* base(int target_rank) const;
  std::size_t size(int target_rank) const;

 private:
  friend struct detail::WinState;
  std::uint32_t id_ = 0;  // index into the window registry
};

}  // namespace minimpi
