#include "minimpi/minimpi.hpp"

#include <cassert>
#include <cstdlib>
#include <atomic>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "arch/cacheline.hpp"
#include "gex/am.hpp"
#include "gex/runtime.hpp"

namespace minimpi {
namespace detail {

struct RequestState {
  bool done = false;
  Status status;
};

// An arrived-but-unmatched message (MPI unexpected queue).
struct Unexpected {
  int src;
  int tag;
  std::byte* data;       // owned (malloc) or adopted rendezvous buffer
  std::size_t bytes;
  bool rendezvous;
};

// A posted receive awaiting a matching arrival.
struct PostedRecv {
  int src;  // kAnySource allowed
  int tag;  // kAnyTag allowed
  void* buf;
  std::size_t max_bytes;
  std::shared_ptr<RequestState> req;
};

// Per-op outstanding one-sided operation record, heap-allocated and linked
// per target, reaped by flush — mirroring the request objects a general MPI
// implementation (MPICH-family) creates for every RMA op. This per-op
// software cost, together with window/epoch validation, is exactly what the
// paper's Fig 3 attributes MPI RMA's latency gap to.
struct RmaOp {
  int target;
  std::size_t bytes;
  std::uint32_t kind;  // 0 = put, 1 = get
  std::unique_ptr<RmaOp> next;
};

struct WinState {
  std::vector<std::byte*> bases;   // per rank
  std::vector<std::size_t> sizes;  // per rank
  std::vector<std::unique_ptr<RmaOp>> pending;  // per-target op lists
  std::vector<std::uint32_t> pending_count;
  // Passive-target epoch state per target (0 = no access epoch yet,
  // 1 = lock-all style epoch open). Checked on every access, as an MPI
  // implementation validates the epoch discipline.
  std::vector<std::uint32_t> epoch;
  std::size_t disp_unit = 1;  // datatype/displacement translation factor
  bool live = true;
};

struct MpiState {
  int rank = -1;
  int nranks = 0;
  std::deque<Unexpected> unexpected;
  std::deque<PostedRecv> posted;
  std::vector<WinState> windows;
  // Dissemination-barrier arrival counts: key = (seq<<8)|round.
  std::unordered_map<std::uint64_t, int> barrier_got;
  std::uint64_t barrier_seq = 0;

  static std::shared_ptr<RequestState> make_done(int src, int tag,
                                                 std::size_t n) {
    auto st = std::make_shared<RequestState>();
    st->done = true;
    st->status = Status{src, tag, n};
    return st;
  }
};

namespace {

MpiState& st() {
  auto* r = gex::self();
  assert(r && r->minimpi_state && "minimpi::init() not called on this rank");
  return *static_cast<MpiState*>(r->minimpi_state);
}

bool match(int posted_src, int posted_tag, int src, int tag) {
  return (posted_src == kAnySource || posted_src == src) &&
         (posted_tag == kAnyTag || posted_tag == tag);
}

// Wire header for two-sided traffic: [SendHdr][payload].
struct SendHdr {
  std::int32_t tag;
};

// Delivers a two-sided message: match a posted receive or queue unexpected.
void send_handler(gex::AmContext& cx) {
  auto& s = st();
  const auto* hdr = static_cast<const SendHdr*>(cx.data);
  const auto* payload =
      reinterpret_cast<const std::byte*>(hdr + 1);
  const std::size_t bytes = cx.size - sizeof(SendHdr);
  for (auto it = s.posted.begin(); it != s.posted.end(); ++it) {
    if (match(it->src, it->tag, cx.src, hdr->tag)) {
      assert(bytes <= it->max_bytes && "message truncation");
      if (bytes) std::memcpy(it->buf, payload, bytes);
      it->req->status = Status{cx.src, hdr->tag, bytes};
      it->req->done = true;
      s.posted.erase(it);
      return;
    }
  }
  // No match: stage a copy on the unexpected queue. For rendezvous arrivals
  // we adopt the shared-heap buffer, but the header sits at its front, so we
  // track the offset via a plain copy for simplicity and free the original.
  auto* copy = static_cast<std::byte*>(std::malloc(bytes ? bytes : 1));
  std::memcpy(copy, payload, bytes);
  s.unexpected.push_back(
      Unexpected{cx.src, hdr->tag, copy, bytes, false});
}

// Barrier round arrival.
struct BarrierHdr {
  std::uint64_t key;
};
void barrier_handler(gex::AmContext& cx) {
  const auto* h = static_cast<const BarrierHdr*>(cx.data);
  ++st().barrier_got[h->key];
}

}  // namespace
}  // namespace detail

using detail::MpiState;

void init() {
  auto* r = gex::self();
  assert(r && !r->minimpi_state && "minimpi::init() called twice");
  auto* s = new MpiState();
  s->rank = r->me;
  s->nranks = r->arena->nranks();
  r->minimpi_state = s;
  r->arena->world_barrier();
}

void finalize() {
  barrier();
  auto* r = gex::self();
  auto* s = static_cast<MpiState*>(r->minimpi_state);
  assert(s->posted.empty() && "finalize with posted receives outstanding");
  for (auto& u : s->unexpected) std::free(u.data);
  delete s;
  r->minimpi_state = nullptr;
  r->arena->world_barrier();
}

int rank() { return detail::st().rank; }
int size() { return detail::st().nranks; }

void poll() { gex::self()->am->poll(); }

Request isend(const void* buf, std::size_t bytes, int dest, int tag) {
  auto& s = detail::st();
  assert(dest >= 0 && dest < s.nranks);
  detail::SendHdr hdr{static_cast<std::int32_t>(tag)};
  auto& eng = *gex::self()->am;
  auto sb = eng.prepare(dest, gex::am_handler<&detail::send_handler>(),
                        sizeof(hdr) + bytes);
  std::memcpy(sb.data, &hdr, sizeof(hdr));
  if (bytes)
    std::memcpy(static_cast<std::byte*>(sb.data) + sizeof(hdr), buf, bytes);
  eng.commit(sb);
  // Buffered-send semantics: the payload was copied at injection, so the
  // request is locally complete immediately.
  Request r;
  r.st_ = MpiState::make_done(s.rank, tag, bytes);
  return r;
}

Request irecv(void* buf, std::size_t max_bytes, int source, int tag) {
  auto& s = detail::st();
  Request r;
  // Check the unexpected queue first (arrival order preserved).
  for (auto it = s.unexpected.begin(); it != s.unexpected.end(); ++it) {
    if (detail::match(source, tag, it->src, it->tag)) {
      assert(it->bytes <= max_bytes && "message truncation");
      if (it->bytes) std::memcpy(buf, it->data, it->bytes);
      r.st_ = MpiState::make_done(it->src, it->tag, it->bytes);
      std::free(it->data);
      s.unexpected.erase(it);
      return r;
    }
  }
  r.st_ = std::make_shared<detail::RequestState>();
  s.posted.push_back(detail::PostedRecv{source, tag, buf, max_bytes, r.st_});
  return r;
}

bool Request::done() const { return st_ && st_->done; }
const Status& Request::status() const {
  assert(st_);
  return st_->status;
}

void wait(Request& r, Status* status) {
  assert(r.valid());
  while (!r.st_->done) poll();
  if (status) *status = r.st_->status;
}

bool test(Request& r, Status* status) {
  assert(r.valid());
  poll();
  if (r.st_->done && status) *status = r.st_->status;
  return r.st_->done;
}

void waitall(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) wait(reqs[i]);
}

void send(const void* buf, std::size_t bytes, int dest, int tag) {
  Request r = isend(buf, bytes, dest, tag);
  wait(r);
}

Status recv(void* buf, std::size_t max_bytes, int source, int tag) {
  Request r = irecv(buf, max_bytes, source, tag);
  Status st;
  wait(r, &st);
  return st;
}

void sendrecv(const void* sbuf, std::size_t sbytes, int dest, int stag,
              void* rbuf, std::size_t rbytes_max, int source, int rtag,
              Status* status) {
  Request rr = irecv(rbuf, rbytes_max, source, rtag);
  Request sr = isend(sbuf, sbytes, dest, stag);
  wait(sr);
  wait(rr, status);
}

void barrier() {
  auto& s = detail::st();
  const std::uint64_t seq = s.barrier_seq++;
  const int P = s.nranks;
  auto& eng = *gex::self()->am;
  for (int k = 1, round = 0; k < P; k <<= 1, ++round) {
    const std::uint64_t key = (seq << 8) | static_cast<unsigned>(round);
    detail::BarrierHdr h{key};
    eng.send((s.rank + k) % P, gex::am_handler<&detail::barrier_handler>(), &h,
             sizeof h);
    while (s.barrier_got[key] < 1) poll();
    s.barrier_got.erase(key);
  }
  // Our receives arriving says nothing about our *sends* on a buffered-tx
  // transport (socket): the last round's record can still sit in a
  // user-space queue behind an in-flight connect. The caller may stop
  // polling entirely after this return (finalize's world_barrier is a pure
  // atomic spin), which would strand the record and deadlock its target's
  // barrier. Push everything onto the wire first.
  while (!eng.transport().tx_quiesced()) poll();
}

void alltoallv(const void* sendbuf, const std::size_t* sendcounts,
               const std::size_t* senddispls, void* recvbuf,
               const std::size_t* recvcounts, const std::size_t* recvdispls) {
  auto& s = detail::st();
  const int P = s.nranks;
  const auto* sb = static_cast<const std::byte*>(sendbuf);
  auto* rb = static_cast<std::byte*>(recvbuf);
  constexpr int kTag = 0x5A5A;
  // Self-copy first, then the pairwise-exchange schedule. (Guard the
  // zero-byte case: callers may pass null buffers with all-zero counts.)
  if (sendcounts[s.rank])
    std::memcpy(rb + recvdispls[s.rank], sb + senddispls[s.rank],
                sendcounts[s.rank]);
  for (int step = 1; step < P; ++step) {
    const int to = (s.rank + step) % P;
    const int from = (s.rank - step + P) % P;
    sendrecv(sb + senddispls[to], sendcounts[to], to, kTag,
             rb + recvdispls[from], recvcounts[from], from, kTag);
  }
}

void alltoallv_group(const std::vector<int>& members, const void* sendbuf,
                     const std::size_t* sendcounts,
                     const std::size_t* senddispls, void* recvbuf,
                     const std::size_t* recvcounts,
                     const std::size_t* recvdispls, int tag) {
  auto& s = detail::st();
  const int G = static_cast<int>(members.size());
  int me_g = -1;
  for (int i = 0; i < G; ++i)
    if (members[i] == s.rank) me_g = i;
  assert(me_g >= 0 && "caller is not a member of the group");
  const auto* sb = static_cast<const std::byte*>(sendbuf);
  auto* rb = static_cast<std::byte*>(recvbuf);
  std::memcpy(rb + recvdispls[me_g], sb + senddispls[me_g],
              sendcounts[me_g]);
  for (int step = 1; step < G; ++step) {
    const int to_g = (me_g + step) % G;
    const int from_g = (me_g - step + G) % G;
    sendrecv(sb + senddispls[to_g], sendcounts[to_g], members[to_g], tag,
             rb + recvdispls[from_g], recvcounts[from_g], members[from_g],
             tag);
  }
}

// ------------------------------------------------------------- one-sided

Win Win::create(void* base, std::size_t bytes) {
  auto& s = detail::st();
  // Allgather (base, size) over the AM engine's keyed exchange —
  // self-synchronizing, no shared scratch, works on every transport. The
  // key mixes a salt with the per-process window count: window creation is
  // collective, so the count (and thus the key) agrees on all ranks. MPI
  // windows legitimately store O(ranks) bases — one of the non-scalable
  // constructs the paper's design principles call out.
  struct Slot {
    void* base;
    std::size_t size;
  };
  const Slot mine{base, bytes};
  std::vector<Slot> slots(static_cast<std::size_t>(s.nranks));
  std::vector<int> world(static_cast<std::size_t>(s.nranks));
  for (int r = 0; r < s.nranks; ++r) world[static_cast<std::size_t>(r)] = r;
  gex::self()->am->exchange(
      0x31145EED0000ull ^ static_cast<std::uint64_t>(s.windows.size()),
      world.data(), world.size(), &mine, sizeof(Slot), slots.data());
  detail::WinState w;
  w.bases.resize(s.nranks);
  w.sizes.resize(s.nranks);
  w.pending.resize(s.nranks);
  w.pending_count.assign(s.nranks, 0);
  w.epoch.assign(s.nranks, 0);
  for (int r = 0; r < s.nranks; ++r) {
    w.bases[r] = static_cast<std::byte*>(slots[static_cast<std::size_t>(r)].base);
    w.sizes[r] = slots[static_cast<std::size_t>(r)].size;
  }
  s.windows.push_back(std::move(w));
  Win win;
  win.id_ = static_cast<std::uint32_t>(s.windows.size() - 1);
  return win;
}

namespace {
detail::WinState& win_state(std::uint32_t id) {
  auto& s = detail::st();
  assert(id < s.windows.size() && "invalid window handle");
  auto& w = s.windows[id];
  assert(w.live && "window already freed");
  return w;
}
}  // namespace

void Win::free() {
  flush_all();
  barrier();
  win_state(id_).live = false;
}

namespace {
// The origin-side issue path shared by put/get: epoch validation, byte/
// displacement translation, per-op request allocation — the general-MPI
// software layers that a lean PGAS runtime skips (paper §IV-B).
detail::RmaOp* rma_issue(detail::WinState& w, int target, std::size_t bytes,
                         std::size_t target_disp, std::uint32_t kind) {
  assert(target >= 0 && target < size());
  // Lazily open a passive-target access epoch (lock_all semantics), and
  // validate it on each access.
  if (w.epoch[target] == 0) w.epoch[target] = 1;
  assert(w.epoch[target] == 1 && "RMA access outside an access epoch");
  // Datatype/displacement translation (byte datatype here, but the
  // multiply-and-check is the code path every datatype takes).
  const std::size_t disp_bytes = target_disp * w.disp_unit;
  assert(disp_bytes + bytes <= w.sizes[target] &&
         "access outside window exposure");
  (void)disp_bytes;
  // Allocate and link the request record.
  auto op = std::make_unique<detail::RmaOp>();
  auto* raw = op.get();
  op->target = target;
  op->bytes = bytes;
  op->kind = kind;
  op->next = std::move(w.pending[target]);
  w.pending[target] = std::move(op);
  ++w.pending_count[target];
  return raw;
}
}  // namespace

void Win::put(const void* origin, std::size_t bytes, int target,
              std::size_t target_disp) {
  auto& w = win_state(id_);
  rma_issue(w, target, bytes, target_disp, /*kind=*/0);
  // Data moves now (RDMA analog); remote completion is guaranteed to the
  // caller only after flush.
  std::memcpy(w.bases[target] + target_disp, origin, bytes);
}

void Win::get(void* origin, std::size_t bytes, int target,
              std::size_t target_disp) {
  auto& w = win_state(id_);
  rma_issue(w, target, bytes, target_disp, /*kind=*/1);
  std::memcpy(origin, w.bases[target] + target_disp, bytes);
}

void Win::flush(int target) {
  auto& w = win_state(id_);
  // Progress inside MPI calls: drive the substrate (two-sided matching and
  // all), then walk and retire this target's op list, then fence so the
  // completions are globally visible — the passive-target flush path of a
  // software MPI.
  poll();
  // Retire iteratively (the list can hold millions of flood-test records;
  // a recursive unique_ptr chain teardown would overflow the stack).
  std::size_t retired = 0;
  auto head = std::move(w.pending[target]);
  while (head) {
    head = std::move(head->next);
    ++retired;
  }
  assert(retired == w.pending_count[target]);
  (void)retired;
  w.pending_count[target] = 0;
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Win::flush_all() {
  auto& w = win_state(id_);
  poll();
  for (std::size_t t = 0; t < w.pending.size(); ++t) {
    auto head = std::move(w.pending[t]);
    while (head) head = std::move(head->next);
    w.pending_count[t] = 0;
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void* Win::base(int target_rank) const {
  return win_state(id_).bases[target_rank];
}
std::size_t Win::size(int target_rank) const {
  return win_state(id_).sizes[target_rank];
}

}  // namespace minimpi
