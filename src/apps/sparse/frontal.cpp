#include "apps/sparse/frontal.hpp"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace sparse {
namespace {

// During structure generation, border entries are recorded as tokens
// (pre-order node id, offset within that node's separator); global indices
// are materialized afterwards so that separators can be numbered in
// *postorder* — children eliminated before parents, giving every front a
// sorted index list whose first ncols entries are its own separator (the
// paper's F11-first convention) and a valid Cholesky elimination order.
using Token = std::uint64_t;
inline Token make_token(int pre_id, int k) {
  return (static_cast<Token>(pre_id) << 32) | static_cast<std::uint32_t>(k);
}
inline int token_node(Token t) { return static_cast<int>(t >> 32); }
inline int token_off(Token t) {
  return static_cast<int>(t & 0xFFFFFFFFu);
}

struct ProtoNode {
  int pre_id = -1;
  int depth = 0;
  int sep = 0;
  std::vector<Token> border;
  int lchild = -1, rchild = -1;  // postorder ids, filled on pop
};

struct Builder {
  const TreeParams& p;
  arch::Xoshiro256 rng;
  std::vector<FrontNode>& nodes;            // postorder output
  std::vector<int> pre_to_post;             // pre-order id -> postorder id
  int next_pre = 0;

  Builder(const TreeParams& p_, std::vector<FrontNode>& out)
      : p(p_), rng(p_.seed), nodes(out) {}

  // Returns the postorder id of the subtree root.
  int build(double n_vertices, int depth, const std::vector<Token>& ancestors) {
    const int pre_id = next_pre++;
    pre_to_post.resize(next_pre, -1);

    int sep = std::max(
        p.min_sep,
        static_cast<int>(p.sep_coeff * std::pow(n_vertices, 2.0 / 3.0)));
    // Cap the separator so the border keeps its proportional share of the
    // front-size budget (otherwise capped fronts would have empty borders
    // and move no extend-add data).
    const int sep_cap = std::max(
        p.min_sep,
        static_cast<int>(p.max_front / (1.0 + p.border_factor)));
    sep = std::min(sep, sep_cap);

    const int want_border = std::min(
        static_cast<int>(ancestors.size()),
        std::min(static_cast<int>(p.border_factor * sep), p.max_front - sep));

    // Sample a subset of the ancestor tokens for the border, preserving
    // order (biased sampling keeps nearer ancestors denser naturally since
    // they dominate the candidate list).
    std::vector<Token> border;
    border.reserve(want_border);
    if (want_border > 0) {
      const double keep = static_cast<double>(want_border) /
                          static_cast<double>(ancestors.size());
      for (std::size_t i = 0; i < ancestors.size(); ++i) {
        if (static_cast<int>(border.size()) >= want_border) break;
        const std::size_t remaining = ancestors.size() - i;
        const int need = want_border - static_cast<int>(border.size());
        if (remaining <= static_cast<std::size_t>(need) ||
            rng.next_double() < keep)
          border.push_back(ancestors[i]);
      }
    }

    int lpost = -1, rpost = -1;
    if (depth + 1 < p.levels) {
      // Children may reference this node's separator and its border.
      std::vector<Token> child_anc;
      child_anc.reserve(sep + border.size());
      for (int k = 0; k < sep; ++k) child_anc.push_back(make_token(pre_id, k));
      child_anc.insert(child_anc.end(), border.begin(), border.end());
      lpost = build(n_vertices / 2.0, depth + 1, child_anc);
      rpost = build(n_vertices / 2.0, depth + 1, child_anc);
    }

    FrontNode node;
    node.depth = depth;
    node.ncols = sep;
    node.lchild = lpost;
    node.rchild = rpost;
    node.id = static_cast<int>(nodes.size());
    if (lpost >= 0) nodes[lpost].parent = node.id;
    if (rpost >= 0) nodes[rpost].parent = node.id;
    // Stash the border tokens in row_indices temporarily (materialized in
    // pass 2); encode as negative-free token values after separator count.
    node.row_indices.assign(border.begin(), border.end());
    nodes.push_back(std::move(node));
    pre_to_post[pre_id] = nodes.back().id;
    return nodes.back().id;
  }
};

}  // namespace

FrontalTree FrontalTree::synthetic(const TreeParams& p, int nranks) {
  FrontalTree t;
  t.nodes.reserve((std::size_t{1} << p.levels) - 1);
  Builder b(p, t.nodes);
  b.build(p.n_vertices, 0, {});

  // Pass 2: number separators in postorder (== nodes order), then translate
  // border tokens and sort. Children precede parents, so every border index
  // (an ancestor separator entry) is numerically larger than the node's own
  // separator — sorted row_indices put the separator first.
  std::vector<std::int64_t> base(t.nodes.size());
  std::int64_t counter = 0;
  for (auto& n : t.nodes) {
    base[n.id] = counter;
    counter += n.ncols;
  }
  t.next_index_ = counter;
  for (auto& n : t.nodes) {
    std::vector<Token> tokens(n.row_indices.begin(), n.row_indices.end());
    n.row_indices.clear();
    n.row_indices.reserve(n.ncols + tokens.size());
    for (int k = 0; k < n.ncols; ++k) n.row_indices.push_back(base[n.id] + k);
    for (Token tok : tokens) {
      const int post = b.pre_to_post[token_node(tok)];
      n.row_indices.push_back(base[post] + token_off(tok));
    }
    std::sort(n.row_indices.begin(), n.row_indices.end());
  }

  t.proportional_map(t.root().id, 0, std::max(nranks, 1));
  return t;
}

void FrontalTree::proportional_map(int node_id, int lo, int np) {
  FrontNode& n = nodes[node_id];
  n.team_lo = lo;
  n.team_np = np;
  if (n.lchild < 0) return;
  if (np == 1) {
    proportional_map(n.lchild, lo, 1);
    proportional_map(n.rchild, lo, 1);
    return;
  }
  // Split ranks proportionally to subtree cost (Pothen & Sun heuristic).
  auto subtree_cost = [this](int id) {
    double total = 0;
    std::vector<int> stack{id};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      total += nodes[v].cost();
      if (nodes[v].lchild >= 0) {
        stack.push_back(nodes[v].lchild);
        stack.push_back(nodes[v].rchild);
      }
    }
    return total;
  };
  const double cl = subtree_cost(n.lchild);
  const double cr = subtree_cost(n.rchild);
  int npl = static_cast<int>(std::round(np * cl / (cl + cr)));
  npl = std::min(std::max(npl, 1), np - 1);
  proportional_map(n.lchild, lo, npl);
  proportional_map(n.rchild, lo + npl, np - npl);
}

bool FrontalTree::check_invariants() const {
  std::unordered_set<std::int64_t> seps_seen;
  for (const auto& n : nodes) {
    if (n.ncols <= 0 || n.ncols > n.nrows()) return false;
    // Sorted unique.
    for (std::size_t i = 1; i < n.row_indices.size(); ++i)
      if (n.row_indices[i - 1] >= n.row_indices[i]) return false;
    // First ncols entries are this node's separator: globally unique.
    for (int i = 0; i < n.ncols; ++i) {
      if (!seps_seen.insert(n.row_indices[i]).second) return false;
    }
    // Border entries are strictly larger than the separator's last entry
    // (ancestors are numbered after us in postorder).
    for (int i = n.ncols; i < n.nrows(); ++i)
      if (n.row_indices[i] <= n.row_indices[n.ncols - 1]) return false;
    // Child borders contained in parent's index set.
    if (n.parent >= 0) {
      const auto& par = nodes[n.parent].row_indices;
      for (int i = n.ncols; i < n.nrows(); ++i)
        if (!std::binary_search(par.begin(), par.end(), n.row_indices[i]))
          return false;
      // Team containment.
      const auto& p = nodes[n.parent];
      if (n.team_lo < p.team_lo ||
          n.team_lo + n.team_np > p.team_lo + p.team_np)
        return false;
    }
    if (n.team_np < 1) return false;
  }
  return true;
}

}  // namespace sparse
