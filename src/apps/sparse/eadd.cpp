#include "apps/sparse/eadd.hpp"

#include <cassert>
#include <cstring>

#include "arch/timer.hpp"
#include "minimpi/minimpi.hpp"
#include "upcxx/upcxx.hpp"

namespace sparse {

const char* variant_name(EaddVariant v) {
  switch (v) {
    case EaddVariant::kUpcxxRpc:
      return "UPC++ RPC";
    case EaddVariant::kMpiAlltoallv:
      return "MPI Alltoallv";
    case EaddVariant::kMpiP2p:
      return "MPI P2P";
  }
  return "?";
}

namespace {
// The RPC accumulate callback reaches the bench instance through rank-local
// state (captureless lambdas ship as function pointers).
thread_local EaddBench* tls_bench = nullptr;
thread_local std::unordered_map<int, upcxx::promise<>>* tls_proms = nullptr;

// Global indices (>= ncols) owned by this rank along each axis of a layout.
void owned_axis(const Layout2D& l, int me, int lo_bound, bool rows,
                std::vector<int>* out) {
  out->clear();
  int r, c;
  l.coords(me, &r, &c);
  const int coord = rows ? r : c;
  const int nproc = rows ? l.pr : l.pc;
  for (int b = coord; b * l.block < l.n; b += nproc) {
    const int lo = b * l.block;
    const int hi = std::min(l.n, lo + l.block);
    for (int g = std::max(lo, lo_bound); g < hi; ++g) out->push_back(g);
  }
}
}  // namespace

EaddBench::EaddBench(const FrontalTree& tree, int block)
    : tree_(tree), block_(block), me_(upcxx::rank_me()) {
  layouts_.reserve(tree_.nodes.size());
  for (const auto& n : tree_.nodes)
    layouts_.push_back(Layout2D::make(n.nrows(), n.team_lo, n.team_np, block_));
  local_.resize(tree_.nodes.size());
}

EaddBench::~EaddBench() {
  if (tls_bench == this) tls_bench = nullptr;
}

void EaddBench::setup() {
  tls_bench = this;
  // Allocate local dense storage for every front I belong to.
  for (const auto& n : tree_.nodes) {
    const auto& l = layouts_[n.id];
    if (!l.is_member(me_)) continue;
    auto [ml, nl] = l.local_extent(me_);
    local_[n.id].assign(static_cast<std::size_t>(ml) * nl, 0.0);
  }

  // Build per-parent plans in bottom-up order.
  std::vector<int> my_rows, my_cols, pos;
  for (const auto& lvl : tree_.levels_bottom_up()) {
    for (int fid : lvl) {
      const auto& par = tree_.nodes[fid];
      if (par.lchild < 0) continue;
      const auto& lp = layouts_[fid];
      if (!lp.is_member(me_)) continue;  // child teams nest inside parent's
      ParentPlan plan;
      plan.parent = fid;
      plan.team_members.resize(lp.nprocs());
      for (int i = 0; i < lp.nprocs(); ++i)
        plan.team_members[i] = lp.team_lo + i;
      plan.recv_bytes_from.assign(upcxx::rank_n(), 0);
      plan.a2a_send.assign(lp.nprocs(), 0);
      plan.a2a_recv.assign(lp.nprocs(), 0);

      std::vector<std::pair<int, std::size_t>> expected;  // (src, bytes)
      for (int child : {par.lchild, par.rchild}) {
        const auto& ch = tree_.nodes[child];
        const auto& lc = layouts_[child];
        // Child position -> parent position (both index lists sorted).
        pos.assign(ch.nrows(), -1);
        {
          const auto& ci = ch.row_indices;
          const auto& pi = par.row_indices;
          std::size_t j = 0;
          for (int i = ch.ncols; i < ch.nrows(); ++i) {
            while (j < pi.size() && pi[j] < ci[i]) ++j;
            assert(j < pi.size() && pi[j] == ci[i] &&
                   "child border index missing from parent");
            pos[i] = static_cast<int>(j);
          }
        }

        // (a) entries I own in the child's F22: the packing lists.
        if (lc.is_member(me_)) {
          owned_axis(lc, me_, ch.ncols, /*rows=*/true, &my_rows);
          owned_axis(lc, me_, ch.ncols, /*rows=*/false, &my_cols);
          std::unordered_map<int, std::size_t> bin_of;
          ChildPlan cp;
          cp.child = child;
          for (int j : my_cols) {
            for (int i : my_rows) {
              const int dest = lp.owner(pos[i], pos[j]);
              auto [it, fresh] = bin_of.emplace(dest, cp.bins.size());
              if (fresh) {
                cp.bins.emplace_back();
                cp.bins.back().dest = dest;
              }
              auto& bin = cp.bins[it->second];
              bin.src_off.push_back(
                  static_cast<std::uint32_t>(lc.local_offset(i, j, me_)));
              bin.staged.push_back(Entry{pos[i], pos[j], 0.0});
            }
          }
          if (!cp.bins.empty()) plan.children.push_back(std::move(cp));
        }

        // (b) entries destined for me: expected message table. One scan of
        // the child's F22 coordinate space, counting (owner_child -> me).
        {
          std::unordered_map<int, std::size_t> from_counts;
          for (int j = ch.ncols; j < ch.nrows(); ++j) {
            // Only columns whose parent column I own can produce entries
            // for me: quick reject via owner column coordinate.
            for (int i = ch.ncols; i < ch.nrows(); ++i) {
              if (lp.owner(pos[i], pos[j]) != me_) continue;
              ++from_counts[lc.owner(i, j)];
            }
          }
          // Deterministic order: ascending source rank (and this child
          // before the next, preserving per-pair send order).
          std::vector<std::pair<int, std::size_t>> sorted(from_counts.begin(),
                                                          from_counts.end());
          std::sort(sorted.begin(), sorted.end());
          for (auto& [src, cnt] : sorted)
            expected.emplace_back(src, cnt * sizeof(Entry));
        }
      }

      plan.expected_rpcs = static_cast<int>(expected.size());
      for (auto& [src, bytes] : expected) plan.recv_bytes_from[src] += bytes;

      // alltoallv schedule over the parent team.
      for (const auto& cp : plan.children)
        for (const auto& bin : cp.bins)
          plan.a2a_send[bin.dest - lp.team_lo] +=
              bin.staged.size() * sizeof(Entry);
      for (auto& [src, bytes] : expected)
        plan.a2a_recv[src - lp.team_lo] += bytes;
      plan.a2a_sdisp.assign(lp.nprocs(), 0);
      plan.a2a_rdisp.assign(lp.nprocs(), 0);
      for (int i = 1; i < lp.nprocs(); ++i) {
        plan.a2a_sdisp[i] = plan.a2a_sdisp[i - 1] + plan.a2a_send[i - 1];
        plan.a2a_rdisp[i] = plan.a2a_rdisp[i - 1] + plan.a2a_recv[i - 1];
      }

      // Stash exact per-message receive schedule for P2P in recv order.
      plan.p2p_msgs = std::move(expected);

      plans_.push_back(std::move(plan));
    }
  }
  reset_values();
  upcxx::barrier();
}

void EaddBench::fill_child_values(int fid) {
  const auto& n = tree_.nodes[fid];
  const auto& l = layouts_[fid];
  if (!l.is_member(me_) || n.parent < 0) return;
  std::vector<int> my_rows, my_cols;
  owned_axis(l, me_, n.ncols, true, &my_rows);
  owned_axis(l, me_, n.ncols, false, &my_cols);
  auto& buf = local_[fid];
  for (int j : my_cols)
    for (int i : my_rows)
      buf[l.local_offset(i, j, me_)] =
          synth_value(fid, n.row_indices[i], n.row_indices[j]);
}

void EaddBench::reset_values() {
  for (const auto& n : tree_.nodes) {
    if (!layouts_[n.id].is_member(me_)) continue;
    std::fill(local_[n.id].begin(), local_[n.id].end(), 0.0);
  }
  for (const auto& n : tree_.nodes) fill_child_values(n.id);
  upcxx::barrier();
}

void EaddBench::accumulate(int fid, const Entry* entries, std::size_t n) {
  const auto& l = layouts_[fid];
  auto& buf = local_[fid];
  for (std::size_t k = 0; k < n; ++k) {
    buf[l.local_offset(entries[k].pi, entries[k].pj, me_)] += entries[k].v;
  }
}

void EaddBench::gather_values(ChildPlan& cp) {
  auto& src = local_[cp.child];
  for (auto& bin : cp.bins) {
    for (std::size_t k = 0; k < bin.src_off.size(); ++k)
      bin.staged[k].v = src[bin.src_off[k]];
  }
}

// ------------------------------------------------------------ RPC variant

void EaddBench::do_eadd_rpc(ParentPlan& plan) {
  // Paper Fig 7: e_add_prom pre-loaded with the expected RPC count (done for
  // every plan at run() start, since contributions from fast peers can land
  // before this rank reaches the plan), futures of issued RPCs conjoined,
  // single wait on when_all of both.
  upcxx::promise<>& prom = (*tls_proms)[plan.parent];
  upcxx::future<> f_conj = upcxx::make_future();
  for (auto& cp : plan.children) {
    gather_values(cp);
    for (auto& bin : cp.bins) {
      auto v = upcxx::make_view(bin.staged.data(),
                                bin.staged.data() + bin.staged.size());
      auto fut = upcxx::rpc(
          bin.dest,
          [](int fid, upcxx::view<Entry> entries) {
            tls_bench->accumulate(fid, entries.begin(), entries.size());
            (*tls_proms)[fid].fulfill_anonymous(1);
          },
          plan.parent, v);
      bytes_sent_ += bin.staged.size() * sizeof(Entry);
      f_conj = upcxx::when_all(f_conj, fut);
    }
  }
  upcxx::when_all(f_conj, prom.finalize()).wait();
  tls_proms->erase(plan.parent);
}

// ------------------------------------------------------ Alltoallv variant

void EaddBench::do_eadd_a2a(ParentPlan& plan) {
  const auto& lp = layouts_[plan.parent];
  const int G = lp.nprocs();
  std::size_t send_total = plan.a2a_sdisp[G - 1] + plan.a2a_send[G - 1];
  std::size_t recv_total = plan.a2a_rdisp[G - 1] + plan.a2a_recv[G - 1];
  std::vector<std::byte> sendbuf(send_total), recvbuf(recv_total);
  // Pack: per destination, child bins in (lchild, rchild) order.
  std::vector<std::size_t> cursor = plan.a2a_sdisp;
  for (auto& cp : plan.children) {
    gather_values(cp);
    for (auto& bin : cp.bins) {
      const int g = bin.dest - lp.team_lo;
      const std::size_t bytes = bin.staged.size() * sizeof(Entry);
      std::memcpy(sendbuf.data() + cursor[g], bin.staged.data(), bytes);
      cursor[g] += bytes;
      bytes_sent_ += bytes;
    }
  }
  minimpi::alltoallv_group(plan.team_members, sendbuf.data(),
                           plan.a2a_send.data(), plan.a2a_sdisp.data(),
                           recvbuf.data(), plan.a2a_recv.data(),
                           plan.a2a_rdisp.data(),
                           /*tag=*/0x40000 + plan.parent);
  accumulate(plan.parent, reinterpret_cast<const Entry*>(recvbuf.data()),
             recv_total / sizeof(Entry));
}

// ------------------------------------------------------------ P2P variant

void EaddBench::do_eadd_p2p(ParentPlan& plan) {
  const int tag = 0x80000 + plan.parent;
  // Post exact-size receives first (sizes known from the symbolic phase,
  // as in MUMPS), then fire nonblocking sends, then wait and accumulate.
  std::vector<std::vector<std::byte>> rbufs(plan.p2p_msgs.size());
  std::vector<minimpi::Request> reqs;
  reqs.reserve(plan.p2p_msgs.size() * 2);
  for (std::size_t m = 0; m < plan.p2p_msgs.size(); ++m) {
    rbufs[m].resize(plan.p2p_msgs[m].second);
    reqs.push_back(minimpi::irecv(rbufs[m].data(), rbufs[m].size(),
                                  plan.p2p_msgs[m].first, tag));
  }
  for (auto& cp : plan.children) {
    gather_values(cp);
    for (auto& bin : cp.bins) {
      const std::size_t bytes = bin.staged.size() * sizeof(Entry);
      reqs.push_back(
          minimpi::isend(bin.staged.data(), bytes, bin.dest, tag));
      bytes_sent_ += bytes;
    }
  }
  minimpi::waitall(reqs.data(), reqs.size());
  for (std::size_t m = 0; m < plan.p2p_msgs.size(); ++m)
    accumulate(plan.parent, reinterpret_cast<const Entry*>(rbufs[m].data()),
               rbufs[m].size() / sizeof(Entry));
}

double EaddBench::run(EaddVariant v) {
  tls_bench = this;
  std::unordered_map<int, upcxx::promise<>> proms;
  tls_proms = &proms;
  if (v == EaddVariant::kUpcxxRpc) {
    // e_add_prom registration must precede the barrier: once peers start,
    // their RPCs may arrive for fronts this rank has not reached yet.
    for (auto& plan : plans_)
      proms[plan.parent].require_anonymous(plan.expected_rpcs);
  }
  bytes_sent_ = 0;
  upcxx::barrier();
  const double t0 = arch::now_s();
  for (auto& plan : plans_) {
    switch (v) {
      case EaddVariant::kUpcxxRpc:
        do_eadd_rpc(plan);
        break;
      case EaddVariant::kMpiAlltoallv:
        do_eadd_a2a(plan);
        break;
      case EaddVariant::kMpiP2p:
        do_eadd_p2p(plan);
        break;
    }
  }
  upcxx::barrier();
  const double dt = arch::now_s() - t0;
  tls_proms = nullptr;
  return dt;
}

double EaddBench::local_checksum() const {
  double sum = 0;
  for (std::size_t f = 0; f < local_.size(); ++f) {
    const auto& buf = local_[f];
    for (std::size_t k = 0; k < buf.size(); ++k)
      sum += buf[k] * (1.0 + static_cast<double>((k * 31 + f) % 101));
  }
  return sum;
}

}  // namespace sparse
