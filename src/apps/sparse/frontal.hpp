// Frontal-matrix tree model for the sparse-solver experiments (paper §IV-D).
//
// The paper uses the audikw_1 / Flan_1565 matrices with tree and distribution
// data extracted from STRUMPACK. SuiteSparse is not redistributable offline,
// so we generate a *synthetic nested-dissection model* with the same
// governing structure (documented in DESIGN.md):
//
//   * a binary elimination tree; the separator of a subtree over N model
//     vertices has |sep| ~ c * N^(2/3) (the 3-D nested-dissection law that
//     audikw_1, an automotive FE mesh, follows);
//   * each node's frontal matrix covers its separator columns plus a border
//     of ancestor indices (so every child border index appears in its
//     parent's index set — the invariant extend-add relies on);
//   * fronts are assigned to contiguous rank ranges by *proportional
//     mapping* [Pothen & Sun], splitting ranks between siblings by subtree
//     cost, and distributed 2-D block-cyclic within each range (§IV-D-1).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "arch/rng.hpp"

namespace sparse {

// One frontal matrix F partitioned as [F11 F12; F21 F22] (paper §IV-D-1):
// the first `ncols` of row_indices are this front's (eliminated) separator
// columns; the remainder is the border, updating ancestors via extend-add.
struct FrontNode {
  int id = -1;
  int parent = -1;
  int lchild = -1;
  int rchild = -1;
  int depth = 0;

  // Sorted global indices; [0, ncols) = separator, [ncols, n) = border.
  std::vector<std::int64_t> row_indices;
  int ncols = 0;

  // Proportional-mapping assignment: contiguous world ranks
  // [team_lo, team_lo + team_np).
  int team_lo = 0;
  int team_np = 1;

  int nrows() const { return static_cast<int>(row_indices.size()); }
  int border() const { return nrows() - ncols; }
  // Dense work estimate (partial factorization of this front).
  double cost() const {
    const double m = nrows(), k = ncols;
    return k * k * k / 3.0 + k * k * (m - k) + k * (m - k) * (m - k);
  }
};

struct TreeParams {
  int levels = 8;            // tree depth; 2^levels - 1 nodes
  double n_vertices = 1e6;   // model mesh size at the root (audikw_1 ~ 1e6)
  double sep_coeff = 1.0;    // c in |sep| = c * N^(2/3)
  int min_sep = 6;           // floor on separator size
  double border_factor = 1.8;  // |border| ~ factor * |sep|
  std::uint64_t seed = 12345;
  int max_front = 4096;      // cap on front size (memory guard)
};

class FrontalTree {
 public:
  // Nodes are stored in postorder (children before parents; root last).
  std::vector<FrontNode> nodes;

  const FrontNode& root() const { return nodes.back(); }

  // Postorder ids of nodes at each depth, deepest level first — the
  // bottom-up traversal schedule of the numeric factorization.
  std::vector<std::vector<int>> levels_bottom_up() const {
    int maxd = 0;
    for (const auto& n : nodes) maxd = std::max(maxd, n.depth);
    std::vector<std::vector<int>> out(maxd + 1);
    for (const auto& n : nodes) out[maxd - n.depth].push_back(n.id);
    return out;
  }

  std::int64_t total_indices() const { return next_index_; }

  // Generates the synthetic model and assigns ranks by proportional mapping
  // over `nranks` ranks.
  static FrontalTree synthetic(const TreeParams& p, int nranks);

  // For tests: verify structural invariants (sorted unique indices; child
  // borders contained in parent's index set; separators globally disjoint).
  bool check_invariants() const;

 private:
  std::int64_t next_index_ = 0;

  int build(const TreeParams& p, arch::Xoshiro256& rng, double n_vertices,
            int depth, const std::vector<std::int64_t>& ancestors);
  void proportional_map(int node, int lo, int np);
};

// ---------------------------------------------------------------- Layout2D

// 2-D block-cyclic distribution of an nrows x nrows front over a pr x pc
// process grid drawn from the contiguous world-rank range [team_lo, ..)
// (paper: "distributed in a 2D block-cyclic manner with a fixed block size").
struct Layout2D {
  int n = 0;        // matrix dimension (front nrows)
  int block = 32;   // block size
  int pr = 1, pc = 1;
  int team_lo = 0;

  static Layout2D make(int n, int team_lo, int team_np, int block = 32) {
    Layout2D l;
    l.n = n;
    l.block = block;
    l.team_lo = team_lo;
    // Squarish grid: pr * pc == team_np, pr <= pc.
    int pr = static_cast<int>(std::sqrt(static_cast<double>(team_np)));
    while (team_np % pr != 0) --pr;
    l.pr = pr;
    l.pc = team_np / pr;
    return l;
  }

  int nprocs() const { return pr * pc; }

  // World rank owning entry (i, j).
  int owner(int i, int j) const {
    const int bi = (i / block) % pr;
    const int bj = (j / block) % pc;
    return team_lo + bi * pc + bj;
  }

  // numroc: number of rows/cols of the global dimension owned by grid
  // coordinate `coord` out of `nproc` along that axis.
  int numroc(int coord, int nproc) const {
    const int nblocks = (n + block - 1) / block;
    int full = nblocks / nproc;
    int extra = nblocks % nproc;
    int mine = full + (coord < extra ? 1 : 0);
    int len = mine * block;
    // Trim the trailing partial block if I own the last block.
    const int last_block_owner = (nblocks - 1) % nproc;
    if (coord == last_block_owner) len -= nblocks * block - n;
    return std::max(len, 0);
  }

  // Local row/col index of a global index for its owning coordinate.
  int local_of(int g, int nproc) const {
    const int b = g / block;
    return (b / nproc) * block + g % block;
  }

  // Grid coordinates of a world rank in this layout.
  void coords(int world_rank, int* row, int* col) const {
    const int r = world_rank - team_lo;
    *row = r / pc;
    *col = r % pc;
  }

  // Local dense storage extent for a world rank (rows x cols).
  std::pair<int, int> local_extent(int world_rank) const {
    int r, c;
    coords(world_rank, &r, &c);
    return {numroc(r, pr), numroc(c, pc)};
  }

  // Local linear offset (column-major) of global (i, j) on its owner.
  std::size_t local_offset(int i, int j, int world_rank) const {
    int r, c;
    coords(world_rank, &r, &c);
    const int li = local_of(i, pr);
    const int lj = local_of(j, pc);
    return static_cast<std::size_t>(lj) * numroc(r, pr) + li;
  }

  bool is_member(int world_rank) const {
    return world_rank >= team_lo && world_rank < team_lo + nprocs();
  }
};

// Deterministic synthetic value of child contribution entry (gi, gj) from
// front `fid` — lets every variant and the serial oracle agree exactly.
inline double synth_value(int fid, std::int64_t gi, std::int64_t gj) {
  std::uint64_t s = static_cast<std::uint64_t>(fid) * 0x9E3779B97F4A7C15ull ^
                    static_cast<std::uint64_t>(gi) * 0xBF58476D1CE4E5B9ull ^
                    static_cast<std::uint64_t>(gj) * 0x94D049BB133111EBull;
  return static_cast<double>(arch::splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
}

}  // namespace sparse
