// Distributed extend-add (paper §IV-D-2, Figs 6-8).
//
// EaddBench owns the distributed frontal storage for one FrontalTree and
// executes the full bottom-up extend-add traversal with any of the paper's
// three communication strategies:
//
//   kUpcxxRpc      — the paper's Fig 7 code: pack per destination, one RPC
//                    per (child, destination) carrying a upcxx::view of the
//                    packed entries, futures conjoined with when_all, plus a
//                    promise pre-loaded with the expected incoming-RPC count
//                    (e_add_prom).
//   kMpiAlltoallv  — STRUMPACK's strategy: one group alltoallv over the
//                    parent front's team per extend-add.
//   kMpiP2p        — MUMPS's strategy: nonblocking Isend/Irecv pairs with
//                    exact sizes known from the symbolic phase.
//
// A symbolic phase (setup(), untimed — real solvers hoist this into symbolic
// factorization) computes, per rank: packing item lists grouped by
// destination and the expected incoming message/entry counts. The timed
// phase is value packing + communication + accumulation only ("no
// computation other than the accumulation of numerical values", §IV-D-3).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/sparse/frontal.hpp"

namespace sparse {

enum class EaddVariant { kUpcxxRpc, kMpiAlltoallv, kMpiP2p };

const char* variant_name(EaddVariant v);

// One packed update entry: coordinates in the *parent's* local system plus
// the value (the i1..i4 mapping of paper Fig 6).
struct Entry {
  std::int32_t pi;
  std::int32_t pj;
  double v;
};
static_assert(sizeof(Entry) == 16);

class EaddBench {
 public:
  // Collective over all ranks. block: 2-D block-cyclic block size.
  EaddBench(const FrontalTree& tree, int block = 32);
  ~EaddBench();

  // Symbolic phase: allocate local front storage, fill child F22 values,
  // build packing lists and expected-receive tables. Collective.
  void setup();

  // Re-initializes numeric values (so repeated timed runs are identical).
  // Collective.
  void reset_values();

  // One full bottom-up extend-add traversal. Collective; returns this
  // rank's elapsed seconds (reduce to max for the reported figure).
  double run(EaddVariant v);

  // Local checksum of all front storage; combined with a reduction this
  // verifies all variants produce identical numerics.
  double local_checksum() const;

  // Total bytes this rank sent during the last run (diagnostics).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  const FrontalTree& tree() const { return tree_; }
  const Layout2D& layout(int fid) const { return layouts_[fid]; }

  // Local dense storage of front fid (column-major; empty if not a member).
  std::vector<double>& storage(int fid) { return local_[fid]; }

  // Internal: RPC accumulate target (must be public for the dispatch).
  void accumulate(int fid, const Entry* entries, std::size_t n);

 private:
  struct PackList {
    int dest = -1;                    // world rank
    std::vector<std::uint32_t> src_off;  // child-local offsets to gather
    std::vector<Entry> staged;        // pi/pj prefilled; v gathered per run
  };
  struct ChildPlan {
    int child = -1;
    std::vector<PackList> bins;  // nonempty destinations only
  };
  struct ParentPlan {
    int parent = -1;
    std::vector<ChildPlan> children;   // plans where I own child data
    // Receive expectations for me as a parent-team member:
    int expected_rpcs = 0;                       // kUpcxxRpc
    std::vector<std::size_t> recv_bytes_from;    // world-rank indexed
    // alltoallv schedule (parent-team indexed):
    std::vector<std::size_t> a2a_send, a2a_sdisp, a2a_recv, a2a_rdisp;
    std::vector<int> team_members;
    // Exact per-message receive schedule for P2P: (source world rank,
    // bytes), in arrival order per source (lchild before rchild).
    std::vector<std::pair<int, std::size_t>> p2p_msgs;
  };

  void fill_child_values(int fid);
  void do_eadd_rpc(ParentPlan& plan);
  void do_eadd_a2a(ParentPlan& plan);
  void do_eadd_p2p(ParentPlan& plan);
  void gather_values(ChildPlan& cp);

  const FrontalTree& tree_;
  int block_;
  int me_ = -1;
  std::vector<Layout2D> layouts_;
  std::vector<std::vector<double>> local_;  // per front, my dense block
  std::vector<ParentPlan> plans_;           // bottom-up order
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace sparse
