// Distributed hash table (paper §IV-C).
//
// Three insert strategies, exactly as the paper discusses:
//   * RpcOnly      — one RPC carries key+value; the target inserts into its
//                    local std::unordered_map (the paper's first listing).
//   * RpcRma       — the zero-copy variant: an RPC of make_lz allocates a
//                    landing zone in the target's shared segment and records
//                    {global_ptr, len} in the local map; the value data then
//                    travels by one-sided rput chained with .then (the
//                    paper's second listing). Better for larger values.
//   * OldApi       — the v0.1 reconstruction from §V-A: *blocking* remote
//                    allocation followed by *blocking* RMA, with events; the
//                    ablation bench shows the latency/overlap penalty.
//
// Key type is std::string (as in the paper's exposition); the benchmark in
// bench/fig4 uses 8-byte random keys rendered into strings, and value sizes
// swept as in Fig 4. find() is implemented with RPC for RpcOnly and with
// RPC(pointer lookup) + rget for RpcRma.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "oldupcxx/oldupcxx.hpp"
#include "upcxx/upcxx.hpp"

namespace dht {

// FNV-1a; deterministic across ranks so get_target agrees everywhere.
inline std::uint64_t hash_key(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// ------------------------------------------------------------------ RpcOnly

class RpcOnlyMap {
 public:
  explicit RpcOnlyMap(const upcxx::team& tm = upcxx::world())
      : tm_(&tm), store_(std::unordered_map<std::string, std::string>{}) {}

  upcxx::intrank_t get_target(const std::string& key) const {
    return static_cast<upcxx::intrank_t>(hash_key(key) %
                                         static_cast<std::uint64_t>(
                                             tm_->rank_n()));
  }

  // Asynchronous insert: one RPC, value shipped inline (paper listing 1).
  upcxx::future<> insert(const std::string& key, const std::string& val) {
    return upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<std::unordered_map<std::string, std::string>>&
               lm,
           const std::string& k, const std::string& v) {
          lm->insert_or_assign(k, v);
        },
        store_, key, val);
  }

  // Asynchronous find; empty optional when absent.
  upcxx::future<std::optional<std::string>> find(const std::string& key) {
    return upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<std::unordered_map<std::string, std::string>>&
               lm,
           const std::string& k) -> std::optional<std::string> {
          auto it = lm->find(k);
          if (it == lm->end()) return std::nullopt;
          return it->second;
        },
        store_, key);
  }

  // Asynchronous erase; future carries true when a mapping was removed.
  upcxx::future<bool> erase(const std::string& key) {
    return upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<std::unordered_map<std::string, std::string>>&
               lm,
           const std::string& k) { return lm->erase(k) > 0; },
        store_, key);
  }

  // In-place update at the owner (the paper's Vertex motif: "if we wish to
  // update a vertex ... that is easy to do with RPCs"). fn runs on the
  // owner against the mapped value, default-inserting when absent; it must
  // be a capture-free callable of signature void(std::string&).
  template <typename Fn>
  upcxx::future<> update(const std::string& key, Fn fn) {
    return upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<std::unordered_map<std::string, std::string>>&
               lm,
           const std::string& k, Fn f) { f((*lm)[k]); },
        store_, key, fn);
  }

  // Bulk insert riding the aggregated message path (message layer v2): the
  // RPCs are issued back-to-back with no intervening progress, so the
  // per-target aggregation buffer packs them into multi-message frames —
  // one ring transaction per ~agg_max_msgs elements instead of one each.
  // The returned future completes when every element is acknowledged.
  upcxx::future<> insert_batch(
      const std::vector<std::pair<std::string, std::string>>& kvs) {
    upcxx::promise<> pr;
    for (const auto& [k, v] : kvs) {
      pr.require_anonymous(1);
      insert(k, v).then([pr]() mutable { pr.fulfill_anonymous(1); });
    }
    return pr.finalize();
  }

  // Bulk find, same aggregation pattern; results arrive positionally.
  upcxx::future<std::vector<std::optional<std::string>>> find_batch(
      const std::vector<std::string>& keys) {
    auto out = std::make_shared<std::vector<std::optional<std::string>>>(
        keys.size());
    upcxx::promise<> pr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      pr.require_anonymous(1);
      find(keys[i]).then(
          [out, i, pr](const std::optional<std::string>& v) mutable {
            (*out)[i] = v;
            pr.fulfill_anonymous(1);
          });
    }
    return pr.finalize().then([out] { return std::move(*out); });
  }

  std::size_t local_size() const { return store_->size(); }

 private:
  const upcxx::team* tm_;
  upcxx::dist_object<std::unordered_map<std::string, std::string>> store_;
};

// ------------------------------------------------------------------- RpcRma

// Landing zone: where a value lives in the owner's shared segment (the
// paper's lz_t).
struct lz_t {
  upcxx::global_ptr<char> gptr;
  std::size_t len = 0;
};

class RpcRmaMap {
  using LocalMap = std::unordered_map<std::string, lz_t>;

 public:
  explicit RpcRmaMap(const upcxx::team& tm = upcxx::world())
      : tm_(&tm), store_(LocalMap{}) {}

  ~RpcRmaMap() {
    // Landing zones live in our segment; reclaim them.
    for (auto& [k, lz] : *store_)
      if (!lz.gptr.is_null()) upcxx::deallocate(lz.gptr);
  }

  upcxx::intrank_t get_target(const std::string& key) const {
    return static_cast<upcxx::intrank_t>(hash_key(key) %
                                         static_cast<std::uint64_t>(
                                             tm_->rank_n()));
  }

  // The paper's two-phase insert: RPC make_lz for the landing zone, then a
  // .then-chained zero-copy rput of the value bytes.
  upcxx::future<> insert(const std::string& key, const std::string& val) {
    upcxx::future<upcxx::global_ptr<char>> f = upcxx::rpc(
        (*tm_)[get_target(key)],
        // make_lz: allocate space and record the landing zone (runs at the
        // owner; returns a global pointer suitable for RMA).
        [](upcxx::dist_object<LocalMap>& lm, const std::string& k,
           std::uint64_t len) {
          auto dest = upcxx::allocate<char>(static_cast<std::size_t>(len));
          auto [it, fresh] = lm->insert_or_assign(
              k, lz_t{dest, static_cast<std::size_t>(len)});
          (void)it;
          (void)fresh;
          return dest;
        },
        store_, key, static_cast<std::uint64_t>(val.size() + 1));
    auto v = std::make_shared<std::string>(val);
    return f.then([v](upcxx::global_ptr<char> dest) {
      // Large values ride the asynchronous data-motion engine, which reads
      // the source bytes from later progress polls — anchor them to the
      // operation future instead of letting the continuation's capture die
      // when this lambda returns.
      return upcxx::rput(v->c_str(), dest, v->size() + 1).then([v] {});
    });
  }

  // find: RPC fetches the landing zone, then rget pulls the value.
  upcxx::future<std::optional<std::string>> find(const std::string& key) {
    upcxx::future<lz_t> f = upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<LocalMap>& lm, const std::string& k) {
          auto it = lm->find(k);
          if (it == lm->end()) return lz_t{};
          return it->second;
        },
        store_, key);
    return f.then([](const lz_t& lz) -> upcxx::future<std::optional<std::string>> {
      if (lz.gptr.is_null())
        return upcxx::make_future(std::optional<std::string>{});
      auto buf = std::make_shared<std::vector<char>>(lz.len);
      return upcxx::rget(lz.gptr, buf->data(), lz.len)
          .then([buf]() -> std::optional<std::string> {
            // Landing zones store NUL-terminated value bytes.
            return std::string(buf->data(),
                               buf->size() ? buf->size() - 1 : 0);
          });
    });
  }

  // Asynchronous erase: the owner drops the mapping and frees the landing
  // zone (it lives in the owner's segment, so the owner must deallocate).
  upcxx::future<bool> erase(const std::string& key) {
    return upcxx::rpc(
        (*tm_)[get_target(key)],
        [](upcxx::dist_object<LocalMap>& lm, const std::string& k) {
          auto it = lm->find(k);
          if (it == lm->end()) return false;
          if (!it->second.gptr.is_null()) upcxx::deallocate(it->second.gptr);
          lm->erase(it);
          return true;
        },
        store_, key);
  }

  // Bulk insert: the landing-zone RPCs aggregate into frames (message layer
  // v2) and the value rputs overlap; one future covers the whole batch.
  upcxx::future<> insert_batch(
      const std::vector<std::pair<std::string, std::string>>& kvs) {
    upcxx::promise<> pr;
    for (const auto& [k, v] : kvs) {
      pr.require_anonymous(1);
      insert(k, v).then([pr]() mutable { pr.fulfill_anonymous(1); });
    }
    return pr.finalize();
  }

  std::size_t local_size() const { return store_->size(); }

 private:
  const upcxx::team* tm_;
  upcxx::dist_object<LocalMap> store_;
};

// ------------------------------------------------------------------- OldApi

// §V-A reconstruction: v0.1 had no future-returning RPCs and no completion
// chaining, so the insert (a) blocks on a remote allocation RPC, then (b)
// blocks on the RMA — "which negatively impact latency performance and
// overlap potential". ~50% more code than the v1.0 listing for the same
// effect.
class OldApiMap {
  using LocalMap = std::unordered_map<std::string, lz_t>;

 public:
  explicit OldApiMap(const upcxx::team& tm = upcxx::world())
      : tm_(&tm), store_(LocalMap{}) {}

  ~OldApiMap() {
    for (auto& [k, lz] : *store_)
      if (!lz.gptr.is_null()) upcxx::deallocate(lz.gptr);
  }

  upcxx::intrank_t get_target(const std::string& key) const {
    return static_cast<upcxx::intrank_t>(hash_key(key) %
                                         static_cast<std::uint64_t>(
                                             tm_->rank_n()));
  }

  // Blocking insert, v0.1 style.
  void insert(const std::string& key, const std::string& val) {
    const auto target = (*tm_)[get_target(key)];
    // (1) blocking remote allocation of the landing zone;
    auto dest = oldupcxx::allocate<char>(target, val.size() + 1);
    // (2) async to record the landing zone in the remote map, waited via an
    //     explicit event the caller must manage;
    oldupcxx::event reg;
    oldupcxx::async(target, &reg)(
        [](upcxx::dist_object<LocalMap>& lm, const std::string& k,
           upcxx::global_ptr<char> g, std::uint64_t len) {
          lm->insert_or_assign(k,
                               lz_t{g, static_cast<std::size_t>(len)});
        },
        store_, key, dest, static_cast<std::uint64_t>(val.size() + 1));
    // (3) blocking copy of the value into the landing zone.
    auto src = upcxx::allocate<char>(val.size() + 1);
    std::memcpy(src.local(), val.c_str(), val.size() + 1);
    oldupcxx::copy(src, dest, val.size() + 1);
    upcxx::deallocate(src);
    reg.wait();
  }

  std::optional<std::string> find(const std::string& key) {
    const auto target = (*tm_)[get_target(key)];
    // v0.1: fetch the landing zone via a blocking async round trip into a
    // caller-provided slot, then a blocking copy.
    auto slot = upcxx::allocate<lz_t>(1);
    auto slot_gp = slot;
    oldupcxx::event e;
    oldupcxx::async(target, &e)(
        [](upcxx::dist_object<LocalMap>& lm, const std::string& k,
           upcxx::global_ptr<lz_t> out) {
          lz_t lz{};
          auto it = lm->find(k);
          if (it != lm->end()) lz = it->second;
          upcxx::rput(lz, out);  // write back into the caller's slot
        },
        store_, key, slot_gp);
    e.wait();
    lz_t lz = *slot.local();
    upcxx::deallocate(slot);
    if (lz.gptr.is_null()) return std::nullopt;
    std::vector<char> buf(lz.len);
    auto tmp = upcxx::allocate<char>(lz.len);
    oldupcxx::copy(lz.gptr, tmp, lz.len);
    std::memcpy(buf.data(), tmp.local(), lz.len);
    upcxx::deallocate(tmp);
    return std::string(buf.data(), buf.size() ? buf.size() - 1 : 0);
  }

  std::size_t local_size() const { return store_->size(); }

 private:
  const upcxx::team* tm_;
  upcxx::dist_object<LocalMap> store_;
};

}  // namespace dht
