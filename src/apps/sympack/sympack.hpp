// mini-symPACK: a multifrontal sparse Cholesky factorization (paper
// §IV-D-4, Fig 9).
//
// symPACK is a direct solver for sparse symmetric matrices; the paper's
// experiment ports it from UPC++ v0.1 (asyncs + events) to v1.0 (RPCs +
// futures) and shows the two perform identically — i.e. the redesigned
// asynchrony machinery adds no measurable overhead. We reproduce that with a
// compact multifrontal right-looking Cholesky over the synthetic frontal
// tree (frontal.hpp):
//
//   * fronts are mapped to owner ranks by proportional mapping (the leader
//     of each front's rank group);
//   * each front assembles its original-matrix entries plus both children's
//     Schur complements (extend-add), then performs a dense partial
//     factorization of its separator columns;
//   * the F22 Schur complement travels to the parent's owner with either
//     - kV10: one rpc carrying a upcxx::view of the values, completion
//       tracked by a per-front promise (e_add_prom idiom), or
//     - kV01: the v0.1 sequence — blocking remote allocation, blocking
//       copy into it, then an async that accumulates and a polled counter
//       (events cannot carry values, so data and signal travel separately).
//
// The synthetic matrix is symmetric positive definite by diagonal dominance
// (diag = 1 + 0.6 * row nonzero count), and the factorization is exact w.r.t.
// a dense reference Cholesky (tests/test_sympack.cpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "apps/sparse/frontal.hpp"

namespace sympack {

enum class Api { kV10, kV01 };
const char* api_name(Api a);

// Deterministic symmetric original-matrix entry for global (gi, gj), gi>gj.
double matrix_entry(std::int64_t gi, std::int64_t gj);

class Solver {
 public:
  // Collective. The tree provides structure and the owner map.
  explicit Solver(const sparse::FrontalTree& tree);
  ~Solver();

  int owner(int fid) const { return tree_.nodes[fid].team_lo; }

  // Collective: allocates owned fronts, computes row counts for the SPD
  // diagonal, zeroes numerics.
  void setup();

  // Collective: full numeric factorization with the chosen API flavor.
  // Returns this rank's elapsed seconds.
  double factorize(Api api);

  // After factorize: L(i, j) for a front's local coordinates (column j must
  // be one of the front's separator columns). Used by tests.
  double factor_entry(int fid, int i, int j) const;

  // Deterministic checksum over owned factor columns (for cross-API
  // equality checks).
  double local_checksum() const;

  // Dense assembled matrix (for the reference Cholesky in tests). Only
  // sensible for small trees; n = tree.total_indices().
  std::vector<double> assemble_dense() const;

  const sparse::FrontalTree& tree() const { return tree_; }

  // Internal (RPC/asynch targets).
  void accum_contribution(int child_fid, const double* values, std::size_t n);
  void note_contribution(int parent_fid);

 private:
  void assemble_original(int fid);
  void partial_factor(int fid);
  void send_contribution_v10(int fid);
  void send_contribution_v01(int fid);

  const sparse::FrontalTree& tree_;
  int me_ = -1;
  // Owned fronts: dense column-major nrows x nrows buffers.
  std::vector<std::vector<double>> fronts_;
  std::vector<int> expected_;              // contributions expected per front
  std::vector<int> received_;              // arrived so far (v0.1 polling)
  std::vector<double> row_weight_;         // nonzeros per global row (diag)
};

}  // namespace sympack
