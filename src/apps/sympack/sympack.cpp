#include "apps/sympack/sympack.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "arch/timer.hpp"
#include "oldupcxx/oldupcxx.hpp"
#include "upcxx/upcxx.hpp"

namespace sympack {

const char* api_name(Api a) {
  return a == Api::kV10 ? "UPC++ v1.0 (futures)" : "UPC++ v0.1 (events)";
}

double matrix_entry(std::int64_t gi, std::int64_t gj) {
  std::uint64_t s = static_cast<std::uint64_t>(gi) * 0x9E3779B97F4A7C15ull ^
                    static_cast<std::uint64_t>(gj) * 0xD1B54A32D192ED03ull;
  return static_cast<double>(arch::splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
}

namespace {
thread_local Solver* tls_solver = nullptr;
}

Solver::Solver(const sparse::FrontalTree& tree)
    : tree_(tree), me_(upcxx::rank_me()) {
  fronts_.resize(tree_.nodes.size());
  expected_.assign(tree_.nodes.size(), 0);
  received_.assign(tree_.nodes.size(), 0);
}

Solver::~Solver() {
  if (tls_solver == this) tls_solver = nullptr;
}

void Solver::setup() {
  tls_solver = this;
  // Row nonzero weights for the dominant diagonal: every rank computes the
  // full vector (structure is global knowledge; values are deterministic).
  row_weight_.assign(static_cast<std::size_t>(tree_.total_indices()), 0.0);
  for (const auto& f : tree_.nodes) {
    for (int j = 0; j < f.ncols; ++j) {
      for (int i = j + 1; i < f.nrows(); ++i) {
        row_weight_[f.row_indices[i]] += 1.0;
        row_weight_[f.row_indices[j]] += 1.0;
      }
    }
  }
  for (const auto& f : tree_.nodes) {
    if (owner(f.id) != me_) continue;
    fronts_[f.id].assign(
        static_cast<std::size_t>(f.nrows()) * f.nrows(), 0.0);
    expected_[f.id] = (f.lchild >= 0) ? 2 : 0;
  }
  std::fill(received_.begin(), received_.end(), 0);
  upcxx::barrier();
}

void Solver::assemble_original(int fid) {
  const auto& f = tree_.nodes[fid];
  auto& buf = fronts_[fid];
  const int n = f.nrows();
  for (int j = 0; j < f.ncols; ++j) {
    const std::int64_t gj = f.row_indices[j];
    buf[static_cast<std::size_t>(j) * n + j] +=
        1.0 + 0.6 * row_weight_[gj];
    for (int i = j + 1; i < n; ++i) {
      buf[static_cast<std::size_t>(j) * n + i] +=
          matrix_entry(f.row_indices[i], gj);
    }
  }
}

void Solver::partial_factor(int fid) {
  // Right-looking dense partial Cholesky of the separator columns; the
  // trailing (border x border) block becomes the Schur complement shipped to
  // the parent. Lower triangle, column-major.
  const auto& f = tree_.nodes[fid];
  auto& a = fronts_[fid];
  const int n = f.nrows();
  for (int k = 0; k < f.ncols; ++k) {
    double* ck = &a[static_cast<std::size_t>(k) * n];
    assert(ck[k] > 0 && "front lost positive definiteness");
    const double pivot = std::sqrt(ck[k]);
    ck[k] = pivot;
    for (int i = k + 1; i < n; ++i) ck[i] /= pivot;
    for (int j = k + 1; j < n; ++j) {
      const double ljk = ck[j];
      if (ljk == 0.0) continue;
      double* cj = &a[static_cast<std::size_t>(j) * n];
      for (int i = j; i < n; ++i) cj[i] -= ck[i] * ljk;
    }
  }
}

void Solver::accum_contribution(int child_fid, const double* values,
                                std::size_t n) {
  const auto& ch = tree_.nodes[child_fid];
  const auto& par = tree_.nodes[ch.parent];
  const int b = ch.border();
  assert(n == static_cast<std::size_t>(b) * b);
  (void)n;
  // Child border position -> parent position.
  std::vector<int> pos(b);
  {
    std::size_t j = 0;
    for (int i = 0; i < b; ++i) {
      const std::int64_t g = ch.row_indices[ch.ncols + i];
      while (j < par.row_indices.size() && par.row_indices[j] < g) ++j;
      assert(j < par.row_indices.size() && par.row_indices[j] == g);
      pos[i] = static_cast<int>(j);
    }
  }
  auto& buf = fronts_[ch.parent];
  const int pn = par.nrows();
  for (int j = 0; j < b; ++j) {
    for (int i = j; i < b; ++i) {  // lower triangle only
      buf[static_cast<std::size_t>(pos[j]) * pn + pos[i]] +=
          values[static_cast<std::size_t>(j) * b + i];
    }
  }
}

void Solver::note_contribution(int parent_fid) { ++received_[parent_fid]; }

void Solver::send_contribution_v10(int fid) {
  const auto& f = tree_.nodes[fid];
  const int b = f.border();
  const int n = f.nrows();
  // Pack the (border x border) trailing block, column-major.
  std::vector<double> f22(static_cast<std::size_t>(b) * b);
  for (int j = 0; j < b; ++j)
    std::memcpy(&f22[static_cast<std::size_t>(j) * b],
                &fronts_[fid][static_cast<std::size_t>(f.ncols + j) * n +
                              f.ncols],
                static_cast<std::size_t>(b) * sizeof(double));
  // v1.0: one RPC with a zero-copy view; the target accumulates and counts.
  upcxx::rpc(
      owner(f.parent),
      [](int child, upcxx::view<double> vals) {
        tls_solver->accum_contribution(child, vals.begin(), vals.size());
        tls_solver->note_contribution(
            tls_solver->tree().nodes[child].parent);
      },
      fid, upcxx::make_view(f22.data(), f22.data() + f22.size()))
      .wait();
}

void Solver::send_contribution_v01(int fid) {
  const auto& f = tree_.nodes[fid];
  const int b = f.border();
  const int n = f.nrows();
  const std::size_t cnt = static_cast<std::size_t>(b) * b;
  // v0.1: events carry no payloads, so data goes through a blocking remote
  // allocation + copy, then an async installs and signals (§V-A's critique).
  auto stage = upcxx::allocate<double>(cnt);
  for (int j = 0; j < b; ++j)
    std::memcpy(stage.local() + static_cast<std::size_t>(j) * b,
                &fronts_[fid][static_cast<std::size_t>(f.ncols + j) * n +
                              f.ncols],
                static_cast<std::size_t>(b) * sizeof(double));
  auto remote = oldupcxx::allocate<double>(owner(f.parent), cnt);
  oldupcxx::copy(stage, remote, cnt);
  upcxx::deallocate(stage);
  oldupcxx::event done;
  oldupcxx::async(owner(f.parent), &done)(
      [](int child, upcxx::global_ptr<double> buf, std::uint64_t n) {
        tls_solver->accum_contribution(child, buf.local(),
                                       static_cast<std::size_t>(n));
        tls_solver->note_contribution(
            tls_solver->tree().nodes[child].parent);
        upcxx::deallocate(buf);
      },
      fid, remote, static_cast<std::uint64_t>(cnt));
  done.wait();
}

double Solver::factorize(Api api) {
  tls_solver = this;
  upcxx::barrier();
  const double t0 = arch::now_s();
  // Postorder = storage order; process my fronts, waiting for children.
  for (const auto& f : tree_.nodes) {
    if (owner(f.id) != me_) continue;
    while (received_[f.id] < expected_[f.id]) upcxx::progress();
    assemble_original(f.id);
    partial_factor(f.id);
    if (f.parent >= 0) {
      if (api == Api::kV10)
        send_contribution_v10(f.id);
      else
        send_contribution_v01(f.id);
    }
  }
  upcxx::barrier();
  return arch::now_s() - t0;
}

double Solver::factor_entry(int fid, int i, int j) const {
  const auto& f = tree_.nodes[fid];
  return fronts_[fid][static_cast<std::size_t>(j) * f.nrows() + i];
}

double Solver::local_checksum() const {
  double sum = 0;
  for (const auto& f : tree_.nodes) {
    if (owner(f.id) != me_ || fronts_[f.id].empty()) continue;
    const int n = f.nrows();
    for (int j = 0; j < f.ncols; ++j)
      for (int i = j; i < n; ++i)
        sum += fronts_[f.id][static_cast<std::size_t>(j) * n + i] *
               (1.0 + ((i * 131 + j * 17 + f.id) % 97));
  }
  return sum;
}

std::vector<double> Solver::assemble_dense() const {
  const auto n = static_cast<std::size_t>(tree_.total_indices());
  std::vector<double> a(n * n, 0.0);
  for (const auto& f : tree_.nodes) {
    for (int j = 0; j < f.ncols; ++j) {
      const std::int64_t gj = f.row_indices[j];
      a[static_cast<std::size_t>(gj) * n + gj] += 1.0 + 0.6 * row_weight_[gj];
      for (int i = j + 1; i < f.nrows(); ++i) {
        const std::int64_t gi = f.row_indices[i];
        const double v = matrix_entry(gi, gj);
        a[static_cast<std::size_t>(gj) * n + gi] += v;
        a[static_cast<std::size_t>(gi) * n + gj] += v;
      }
    }
  }
  return a;
}

}  // namespace sympack
