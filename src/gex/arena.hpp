// The arena is the "network": one shared mapping created before the ranks
// start, containing everything ranks use to communicate.
//
// Layout (all offsets fixed at creation):
//
//   [ControlBlock][scratch: nranks slots][inbox rings: nranks]
//   [global shared heap][per-rank shared segments: nranks]
//
// The mapping is MAP_SHARED|MAP_ANONYMOUS and is created by the launcher
// before threads are spawned or processes forked, so every rank sees it at
// the same virtual address. That is the property that lets global_ptr carry
// raw addresses (the moral equivalent of GASNet's PSHM cross-mapping).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/cacheline.hpp"
#include "arch/ring.hpp"
#include "gex/config.hpp"
#include "gex/segment.hpp"
#include "gex/shared_heap.hpp"

namespace gex {

// Per-arena bootstrap state. Also hosts the world barrier used by the
// launcher and by upcxx::barrier's fallback path.
struct ControlBlock {
  std::uint32_t nranks = 0;
  std::size_t segment_bytes = 0;

  // Job identity (launcher pid + a per-launch nonce), written once at
  // creation. Names the shm-file transport's per-pair ring files so
  // concurrent jobs on one host never collide.
  std::uint32_t job_pid = 0;
  std::uint32_t job_nonce = 0;

  // Sense-reversing centralized barrier over all world ranks.
  arch::Padded<std::atomic<std::uint32_t>> barrier_arrived;
  arch::Padded<std::atomic<std::uint32_t>> barrier_epoch;

  // Set non-zero by any rank that fails; the launcher reports it.
  arch::Padded<std::atomic<std::int32_t>> error_flag;
};

// Fixed-size per-rank scratch slot used by bootstrap collectives
// (team split exchange, allgather of small values).
inline constexpr std::size_t kScratchSlot = 256;

// Job-wide control operations (world barrier, error propagation) for
// deployments whose ranks share no memory: an isolated socket rank cannot
// reach the peer's ControlBlock, so its SocketRuntime implements this over
// the bootstrap connection and installs itself via set_control_plane.
// world_barrier()/signal_error() then delegate; the local ControlBlock
// error flag stays the in-process signal every wait loop reads.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  // Blocks until every world rank arrives (or the job is failing).
  virtual void barrier() = 0;
  // Tells every other rank that this rank failed.
  virtual void broadcast_error() = 0;
};

class Arena {
 public:
  // Maps and initializes an arena for `cfg`. Aborts on OOM.
  static Arena* create(const Config& cfg);
  // Maps a *private* per-process arena at the fixed address
  // cfg.socket_arena_base (isolated socket ranks). Identical layout and
  // base on every rank, so global_ptr raw addresses and segment-map ids
  // agree across processes that share nothing; the bytes behind each
  // rank's segment are authoritative only on that rank, which is exactly
  // the PGAS model once every transfer rides the AM wire — the config is
  // forced to socket/am/atomics-over-am accordingly.
  static Arena* create_private(const Config& cfg);
  // Unmaps. Only the launcher calls this, after all ranks are done.
  static void destroy(Arena* a);

  const Config& config() const { return cfg_; }
  int nranks() const { return cfg_.ranks; }

  ControlBlock& control() { return *ctrl_; }
  arch::MpscByteRing& inbox(int rank) { return *rings_[rank]; }
  SharedHeap& heap() { return *heap_; }
  SharedHeap& segment_heap(int rank) { return *seg_heaps_[rank]; }
  std::byte* scratch(int rank) { return scratch_ + rank * kScratchSlot; }
  std::uint32_t job_pid() const { return ctrl_->job_pid; }
  std::uint32_t job_nonce() const { return ctrl_->job_nonce; }

  // Wire-address name space over this arena's regions (global heap, rank
  // segments, ring arena). Built at create, immutable afterwards; every
  // address a wire record carries is encoded/decoded through it.
  const SegmentMap& segmap() const { return segmap_; }

  std::byte* segment_base(int rank) const {
    return seg_base_ + static_cast<std::size_t>(rank) * cfg_.segment_bytes;
  }

  // True if p points anywhere inside some rank's shared segment.
  bool in_segments(const void* p) const {
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(seg_base_);
    return u >= b && u < b + static_cast<std::size_t>(cfg_.ranks) *
                                 cfg_.segment_bytes;
  }

  // Owning rank of a shared-segment address; -1 if outside all segments.
  int rank_of(const void* p) const {
    if (!in_segments(p)) return -1;
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(seg_base_);
    return static_cast<int>((u - b) / cfg_.segment_bytes);
  }

  // Blocks until all world ranks arrive. Spins; used at startup/teardown and
  // by tests. Application barriers go through the AM-based collectives.
  // Delegates to the installed ControlPlane when ranks share no memory.
  void world_barrier();

  // Marks the job as failing: sets the local error flag (what every
  // error-aware wait loop reads) and, with a ControlPlane installed,
  // broadcasts the failure so peers that cannot see this mapping learn it.
  void signal_error();

  void set_control_plane(ControlPlane* cp) { cp_ = cp; }
  ControlPlane* control_plane() const { return cp_; }

  // Per-rank endpoint slot (socket transport, shared-arena mode): each
  // rank publishes its AM listen port here at transport construction;
  // senders read the peer's slot before the first connect. Zero until
  // published. Isolated ranks exchange ports through the launcher instead.
  std::atomic<std::uint32_t>& port_slot(int rank) { return ports_[rank]; }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

 private:
  Arena() = default;
  static Arena* create_at(const Config& cfg, std::uint64_t fixed_base);

  Config cfg_;
  void* map_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  ControlBlock* ctrl_ = nullptr;
  ControlPlane* cp_ = nullptr;
  std::atomic<std::uint32_t>* ports_ = nullptr;
  std::byte* scratch_ = nullptr;
  arch::MpscByteRing** rings_ = nullptr;  // process-local pointer table
  SharedHeap* heap_ = nullptr;
  SharedHeap** seg_heaps_ = nullptr;
  std::byte* seg_base_ = nullptr;
  SegmentMap segmap_;
};

}  // namespace gex
