// The arena is the "network": one shared mapping created before the ranks
// start, containing everything ranks use to communicate.
//
// Layout (all offsets fixed at creation):
//
//   [ControlBlock][scratch: nranks slots][inbox rings: nranks]
//   [global shared heap][per-rank shared segments: nranks]
//
// The mapping is MAP_SHARED|MAP_ANONYMOUS and is created by the launcher
// before threads are spawned or processes forked, so every rank sees it at
// the same virtual address. That is the property that lets global_ptr carry
// raw addresses (the moral equivalent of GASNet's PSHM cross-mapping).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/cacheline.hpp"
#include "arch/ring.hpp"
#include "gex/config.hpp"
#include "gex/segment.hpp"
#include "gex/shared_heap.hpp"

namespace gex {

// Per-arena bootstrap state. Also hosts the world barrier used by the
// launcher and by upcxx::barrier's fallback path.
struct ControlBlock {
  std::uint32_t nranks = 0;
  std::size_t segment_bytes = 0;

  // Job identity (launcher pid + a per-launch nonce), written once at
  // creation. Names the shm-file transport's per-pair ring files so
  // concurrent jobs on one host never collide.
  std::uint32_t job_pid = 0;
  std::uint32_t job_nonce = 0;

  // Sense-reversing centralized barrier over all world ranks.
  arch::Padded<std::atomic<std::uint32_t>> barrier_arrived;
  arch::Padded<std::atomic<std::uint32_t>> barrier_epoch;

  // Set non-zero by any rank that fails; the launcher reports it.
  arch::Padded<std::atomic<std::int32_t>> error_flag;
};

// Fixed-size per-rank scratch slot used by bootstrap collectives
// (team split exchange, allgather of small values).
inline constexpr std::size_t kScratchSlot = 256;

class Arena {
 public:
  // Maps and initializes an arena for `cfg`. Aborts on OOM.
  static Arena* create(const Config& cfg);
  // Unmaps. Only the launcher calls this, after all ranks are done.
  static void destroy(Arena* a);

  const Config& config() const { return cfg_; }
  int nranks() const { return cfg_.ranks; }

  ControlBlock& control() { return *ctrl_; }
  arch::MpscByteRing& inbox(int rank) { return *rings_[rank]; }
  SharedHeap& heap() { return *heap_; }
  SharedHeap& segment_heap(int rank) { return *seg_heaps_[rank]; }
  std::byte* scratch(int rank) { return scratch_ + rank * kScratchSlot; }
  std::uint32_t job_pid() const { return ctrl_->job_pid; }
  std::uint32_t job_nonce() const { return ctrl_->job_nonce; }

  // Wire-address name space over this arena's regions (global heap, rank
  // segments, ring arena). Built at create, immutable afterwards; every
  // address a wire record carries is encoded/decoded through it.
  const SegmentMap& segmap() const { return segmap_; }

  std::byte* segment_base(int rank) const {
    return seg_base_ + static_cast<std::size_t>(rank) * cfg_.segment_bytes;
  }

  // True if p points anywhere inside some rank's shared segment.
  bool in_segments(const void* p) const {
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(seg_base_);
    return u >= b && u < b + static_cast<std::size_t>(cfg_.ranks) *
                                 cfg_.segment_bytes;
  }

  // Owning rank of a shared-segment address; -1 if outside all segments.
  int rank_of(const void* p) const {
    if (!in_segments(p)) return -1;
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(seg_base_);
    return static_cast<int>((u - b) / cfg_.segment_bytes);
  }

  // Blocks until all world ranks arrive. Spins; used at startup/teardown and
  // by tests. Application barriers go through the AM-based collectives.
  void world_barrier();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

 private:
  Arena() = default;

  Config cfg_;
  void* map_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  ControlBlock* ctrl_ = nullptr;
  std::byte* scratch_ = nullptr;
  arch::MpscByteRing** rings_ = nullptr;  // process-local pointer table
  SharedHeap* heap_ = nullptr;
  SharedHeap** seg_heaps_ = nullptr;
  std::byte* seg_base_ = nullptr;
  SegmentMap segmap_;
};

}  // namespace gex
