#include "gex/xfer.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <vector>

#include "arch/timer.hpp"

namespace gex {

XferEngine::XferEngine(std::size_t chunk_bytes, double bw_gbps)
    : chunk_bytes_(chunk_bytes ? chunk_bytes : std::size_t{256} << 10),
      bw_gbps_(bw_gbps > 0 ? bw_gbps : 0),
      // 1 GB/s == 1e9 bytes/s == 1 byte/ns, so ns-per-byte is 1/gbps.
      ns_per_byte_(bw_gbps > 0 ? 1.0 / bw_gbps : 0) {}

XferEngine::Channel& XferEngine::channel(int target) {
  for (auto& ch : channels_)
    if (ch.target == target) return ch;
  channels_.push_back(Channel{target, ns_per_byte_, {}, {}, 0});
  return channels_.back();
}

void XferEngine::set_link_bw_gbps(int target, double gbps) {
  channel(target).ns_per_byte = gbps > 0 ? 1.0 / gbps : 0;
}

void XferEngine::submit(int target, void* dst, const void* src,
                        std::size_t bytes, Callback on_source,
                        Callback on_landed, bool is_get,
                        std::uint64_t extra_landing_ns) {
  assert((bytes == 0 || (dst && src)) && "null endpoint on a live transfer");
  channel(target).active_.push_back(
      Xfer{static_cast<std::byte*>(dst), static_cast<const std::byte*>(src),
           bytes, 0, is_get, std::move(on_source), std::move(on_landed),
           extra_landing_ns, 0, nullptr});
  ++stats_.submitted;
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, inflight());
}

void XferEngine::issue_one_chunk(Channel& ch) {
  Xfer& x = ch.active_.front();
  const std::size_t take = std::min(chunk_bytes_, x.bytes - x.off);
  if (take) {
    if (!wire_) {
      std::memcpy(x.dst + x.off, x.src + x.off, take);
    } else {
      // Each wire chunk carries a pending-ack token; the transfer retires
      // only once every token has been returned. The wire may complete
      // synchronously (done before put_chunk returns), so the counter is
      // bumped first.
      if (!x.unacked) x.unacked = std::make_shared<std::uint32_t>(0);
      ++*x.unacked;
      Callback done = [u = x.unacked] { --*u; };
      if (x.is_get)
        wire_->get_chunk(ch.target, x.dst + x.off, x.src + x.off, take,
                         std::move(done));
      else
        wire_->put_chunk(ch.target, x.dst + x.off, x.src + x.off, take,
                         std::move(done));
    }
    x.off += take;
    stats_.bytes_copied += take;
  }
  ++stats_.chunks_copied;
  if (ch.ns_per_byte > 0) {
    // Virtual wire clock (per link): the wire starts this chunk when it
    // frees up (or now, if it has been idle) and holds it for bytes/bw.
    const std::uint64_t now = arch::now_ns();
    ch.wire_free_ns_ = std::max(ch.wire_free_ns_, now) +
                       static_cast<std::uint64_t>(take * ch.ns_per_byte);
  }
  if (x.off == x.bytes) {
    // Last byte read out of the source: the initiator may reuse it. Move
    // the transfer off active_ BEFORE firing the callback — user code may
    // re-enter poll() (a promise continuation that spins progress), and a
    // still-queued finished transfer would double-fire and dangle `x`.
    // retire_landed() follows the same pop-then-fire discipline.
    Callback source_cb = std::move(x.on_source);
    x.landed_due_ns = ch.ns_per_byte > 0 ? ch.wire_free_ns_ : 0;
    if (x.extra_landing_ns)
      x.landed_due_ns = std::max(x.landed_due_ns, arch::now_ns()) +
                        x.extra_landing_ns;
    ch.landing_.push_back(std::move(x));
    ch.active_.pop_front();
    if (source_cb) source_cb();
  }
}

int XferEngine::retire_landed(Channel& ch) {
  int fired = 0;
  // Due times are monotone per channel (its wire clock only advances) and
  // acks return in chunk-issue order, so the head check suffices.
  // Callbacks may submit new transfers; they land behind the current queue
  // and are picked up by later polls.
  while (!ch.landing_.empty()) {
    Xfer& head = ch.landing_.front();
    if (head.unacked && *head.unacked != 0) break;
    if (head.landed_due_ns > arch::now_ns()) break;
    Callback cb = std::move(head.on_landed);
    ch.landing_.pop_front();
    ++stats_.landed;
    if (cb) cb();
    ++fired;
  }
  return fired;
}

int XferEngine::poll(int chunk_budget) {
  int work = 0;
  // Per-poll credit ledger on metered wires (WireOps::credits — the AM
  // wire's adaptive window): how many more chunks each channel may issue
  // this poll. Both passes deal against the same snapshot, so budget a
  // throttled channel cannot use flows to the others rather than being
  // burned on a channel whose window is already full. Unmetered wires
  // (the direct wire) skip the ledger entirely — no allocation on the
  // fast path.
  const bool metered = wire_ && wire_->credits;
  std::vector<int> credit;
  auto credit_of = [&](std::size_t i) -> int {
    if (!metered) return std::numeric_limits<int>::max();
    while (credit.size() <= i)  // channels may appear mid-poll
      credit.push_back(static_cast<int>(std::min<std::uint32_t>(
          wire_->credits(channels_[credit.size()].target), 1u << 30)));
    return credit[i];
  };
  auto spend_credit = [&](std::size_t i) {
    if (metered) --credit[i];
  };
  // Pass 1 — bandwidth-proportional quotas: each channel with queued work
  // and a ready wire gets a share of the budget scaled by its link
  // bandwidth (minimum one chunk), so a fast link soaks up the budget a
  // clock-bound capped link cannot convert into delivered bytes. Weights
  // are recomputed per poll: completion callbacks change the channel set.
  if (chunk_budget > 0 && !channels_.empty()) {
    double total_weight = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      Channel& ch = channels_[i];
      if (!ch.active_.empty() && wire_ready(ch) && credit_of(i) > 0)
        total_weight += link_weight(ch);
    }
    if (total_weight > 0) {
      const int budget0 = chunk_budget;
      const std::size_t n = channels_.size();
      for (std::size_t k = 0; k < n && chunk_budget > 0; ++k) {
        const std::size_t i = (rr_ + k) % n;
        Channel& ch = channels_[i];
        if (ch.active_.empty() || !wire_ready(ch)) continue;
        int quota = std::max(
            1, static_cast<int>(budget0 * (link_weight(ch) / total_weight)));
        quota = std::min({quota, chunk_budget, credit_of(i)});
        // Re-check readiness per chunk: each issued chunk may consume a
        // wire credit (the AM window) and close the channel mid-quota.
        while (quota > 0 && !ch.active_.empty() && wire_ready(ch)) {
          issue_one_chunk(ch);
          spend_credit(i);
          --quota;
          --chunk_budget;
          ++work;
        }
      }
    }
  }
  // Pass 2 — leftover budget (quotas rounded down, or their channels ran
  // dry) goes round-robin one chunk at a time, the pre-quota behavior.
  while (chunk_budget > 0 && !channels_.empty()) {
    bool any = false;
    const std::size_t n = channels_.size();
    for (std::size_t k = 0; k < n && chunk_budget > 0; ++k) {
      const std::size_t i = (rr_ + k) % n;
      Channel& ch = channels_[i];
      if (ch.active_.empty() || !wire_ready(ch) || credit_of(i) <= 0)
        continue;
      issue_one_chunk(ch);
      spend_credit(i);
      --chunk_budget;
      ++work;
      any = true;
    }
    if (!any) break;
  }
  if (!channels_.empty()) rr_ = (rr_ + 1) % channels_.size();
  // Index loop: retire callbacks may create new channels (deque keeps the
  // current reference stable; freshly added channels are visited too).
  for (std::size_t i = 0; i < channels_.size(); ++i)
    work += retire_landed(channels_[i]);
  return work;
}

void XferEngine::drain_copies() {
  // A not-ready wire stops its channel: the chunks must wait for wire
  // credits, which only arrive through the caller's AM polling — the
  // barrier-entry loop in upcxx re-invokes until copies_pending() clears.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    while (!channels_[i].active_.empty() && wire_ready(channels_[i]))
      issue_one_chunk(channels_[i]);
    retire_landed(channels_[i]);
  }
}

void XferEngine::drain_all() {
  while (!idle()) poll(1 << 20);
}

bool XferEngine::idle() const {
  for (const auto& ch : channels_)
    if (!ch.active_.empty() || !ch.landing_.empty()) return false;
  return true;
}

std::size_t XferEngine::inflight() const {
  std::size_t n = 0;
  for (const auto& ch : channels_)
    n += ch.active_.size() + ch.landing_.size();
  return n;
}

bool XferEngine::copies_pending() const {
  for (const auto& ch : channels_)
    if (!ch.active_.empty()) return true;
  return false;
}

std::size_t XferEngine::pending_chunks(int target) const {
  for (const auto& ch : channels_) {
    if (ch.target != target) continue;
    std::size_t n = 0;
    for (const auto& x : ch.active_)
      n += (x.bytes - x.off + chunk_bytes_ - 1) / chunk_bytes_;
    return n;
  }
  return 0;
}

}  // namespace gex
