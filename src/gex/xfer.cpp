#include "gex/xfer.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "arch/atomics.hpp"
#include "arch/timer.hpp"

namespace gex {

XferEngine::XferEngine(std::size_t chunk_bytes, double bw_gbps)
    : chunk_bytes_(chunk_bytes ? chunk_bytes : std::size_t{256} << 10),
      bw_gbps_(bw_gbps > 0 ? bw_gbps : 0),
      // 1 GB/s == 1e9 bytes/s == 1 byte/ns, so ns-per-byte is 1/gbps.
      ns_per_byte_(bw_gbps > 0 ? 1.0 / bw_gbps : 0) {}

XferEngine::Channel& XferEngine::channel(int target) {
  arch::SpinGuard g(channels_mu_);
  for (auto& ch : channels_)
    if (ch->target == target) return *ch;
  channels_.push_back(std::make_unique<Channel>());
  channels_.back()->target = target;
  channels_.back()->ns_per_byte = ns_per_byte_;
  return *channels_.back();
}

std::vector<XferEngine::Channel*> XferEngine::snapshot() const {
  arch::SpinGuard g(channels_mu_);
  std::vector<Channel*> v;
  v.reserve(channels_.size());
  for (const auto& ch : channels_) v.push_back(ch.get());
  return v;
}

std::size_t XferEngine::channel_count() const {
  arch::SpinGuard g(channels_mu_);
  return channels_.size();
}

void XferEngine::set_link_bw_gbps(int target, double gbps) {
  Channel& ch = channel(target);
  arch::SpinGuard g(ch.mu);
  ch.ns_per_byte = gbps > 0 ? 1.0 / gbps : 0;
}

void XferEngine::submit(int target, void* dst, const void* src,
                        std::size_t bytes, Callback on_source,
                        Callback on_landed, bool is_get,
                        std::uint64_t extra_landing_ns) {
  assert((bytes == 0 || (dst && src)) && "null endpoint on a live transfer");
  Xfer x{static_cast<std::byte*>(dst), static_cast<const std::byte*>(src),
         bytes, 0, is_get, std::move(on_source), std::move(on_landed),
         extra_landing_ns, 0, nullptr};
  active_count_.fetch_add(1, std::memory_order_relaxed);
  const auto inflight =
      inflight_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  arch::relaxed_inc(stats_.submitted);
  arch::relaxed_max(stats_.max_inflight, inflight);
  // Per-target FIFO: once anything is parked in the deferred queue, every
  // later submit parks behind it, so transfers to one target never
  // reorder around a busy channel.
  if (deferred_submits_.empty()) {
    Channel& ch = channel(target);
    if (ch.mu.try_lock()) {
      ch.active_.push_back(std::move(x));
      ch.active_n.store(ch.active_.size(), std::memory_order_relaxed);
      ch.mu.unlock();
      return;
    }
  }
  deferred_submits_.emplace_back(target, std::move(x));
}

int XferEngine::flush_deferred() {
  if (deferred_submits_.empty()) return 0;
  auto batch = std::move(deferred_submits_);
  deferred_submits_.clear();
  int moved = 0;
  while (!batch.empty()) {
    Channel& ch = channel(batch.front().first);
    if (!ch.mu.try_lock()) break;  // still busy: re-park the rest, in order
    ch.active_.push_back(std::move(batch.front().second));
    ch.active_n.store(ch.active_.size(), std::memory_order_relaxed);
    ch.mu.unlock();
    batch.pop_front();
    ++moved;
  }
  // Unplaced transfers go back to the FRONT: submits that arrived through
  // wire-call recursion while this ran must stay behind them.
  for (auto it = batch.rbegin(); it != batch.rend(); ++it)
    deferred_submits_.push_front(std::move(*it));
  return moved;
}

void XferEngine::issue_one_chunk(Channel& ch,
                                 std::vector<Callback>* sources) {
  Xfer& x = ch.active_.front();
  const std::size_t take = std::min(chunk_bytes_, x.bytes - x.off);
  if (take) {
    if (!wire_) {
      std::memcpy(x.dst + x.off, x.src + x.off, take);
    } else {
      // Each wire chunk carries a pending-ack token; the transfer retires
      // only once every token has been returned. The wire may complete
      // synchronously (done before put_chunk returns), so the counter is
      // bumped first.
      if (!x.unacked)
        x.unacked = std::make_shared<std::atomic<std::uint32_t>>(0);
      x.unacked->fetch_add(1, std::memory_order_acq_rel);
      Callback done = [u = x.unacked] {
        u->fetch_sub(1, std::memory_order_acq_rel);
      };
      if (x.is_get)
        wire_->get_chunk(ch.target, x.dst + x.off, x.src + x.off, take,
                         std::move(done));
      else
        wire_->put_chunk(ch.target, x.dst + x.off, x.src + x.off, take,
                         std::move(done));
    }
    x.off += take;
    arch::relaxed_add(stats_.bytes_copied, take);
  }
  arch::relaxed_inc(stats_.chunks_copied);
  if (ch.ns_per_byte > 0) {
    // Virtual wire clock (per link): the wire starts this chunk when it
    // frees up (or now, if it has been idle) and holds it for bytes/bw.
    const std::uint64_t now = arch::now_ns();
    ch.wire_free_ns_ = std::max(ch.wire_free_ns_, now) +
                       static_cast<std::uint64_t>(take * ch.ns_per_byte);
  }
  if (x.off == x.bytes) {
    // Last byte read out of the source: the initiator may reuse it. The
    // callback never fires under ch.mu — on the persona path it is handed
    // to the caller (user code may re-enter poll() or submit()); on the
    // helper path (`sources` null) it stays parked on the landing entry
    // for worker 0's retire sweep, so helpers never run user code.
    if (sources && x.on_source)
      sources->push_back(std::move(x.on_source));
    x.landed_due_ns = ch.ns_per_byte > 0 ? ch.wire_free_ns_ : 0;
    if (x.extra_landing_ns)
      x.landed_due_ns = std::max(x.landed_due_ns, arch::now_ns()) +
                        x.extra_landing_ns;
    ch.landing_.push_back(std::move(x));
    ch.active_.pop_front();
    ch.active_n.store(ch.active_.size(), std::memory_order_relaxed);
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

int XferEngine::retire_landed(Channel& ch) {
  if (!ch.mu.try_lock()) return 0;
  std::vector<Callback> sources, landed;
  // Helper-issued transfers parked their on_source here (issue_one_chunk);
  // collect in FIFO order so source still precedes landed per transfer.
  for (auto& x : ch.landing_)
    if (x.on_source) sources.push_back(std::move(x.on_source));
  // Due times are monotone per channel (its wire clock only advances) and
  // acks return in chunk-issue order, so the head check suffices.
  while (!ch.landing_.empty()) {
    Xfer& head = ch.landing_.front();
    if (head.unacked && head.unacked->load(std::memory_order_acquire) != 0)
      break;
    if (head.landed_due_ns > arch::now_ns()) break;
    landed.push_back(std::move(head.on_landed));
    ch.landing_.pop_front();
    inflight_count_.fetch_sub(1, std::memory_order_relaxed);
    arch::relaxed_inc(stats_.landed);
  }
  ch.mu.unlock();
  // Fire outside the lock: callbacks may submit new transfers (deferred
  // queue or another channel) or re-enter poll (try_lock everywhere).
  int fired = 0;
  for (auto& cb : sources) {
    cb();
    ++fired;
  }
  for (auto& cb : landed) {
    if (cb) cb();
    ++fired;
  }
  return fired;
}

int XferEngine::poll(int chunk_budget) {
  int work = flush_deferred();
  const std::vector<Channel*> chans = snapshot();
  if (chans.empty()) return work;
  // Per-poll credit ledger on metered wires (WireOps::credits — the AM
  // wire's adaptive window): how many more chunks each channel may issue
  // this poll. Both passes deal against the same snapshot, so budget a
  // throttled channel cannot use flows to the others rather than being
  // burned on a channel whose window is already full. Unmetered wires
  // (the direct wire) skip the ledger entirely — no allocation on the
  // fast path.
  const bool metered = wire_ && wire_->credits;
  std::vector<int> credit;
  auto credit_of = [&](std::size_t i) -> int {
    if (!metered) return std::numeric_limits<int>::max();
    while (credit.size() <= i)
      credit.push_back(static_cast<int>(std::min<std::uint32_t>(
          wire_->credits(chans[credit.size()]->target), 1u << 30)));
    return credit[i];
  };
  auto spend_credit = [&](std::size_t i) {
    if (metered) --credit[i];
  };
  std::vector<Callback> sources;
  auto fire_sources = [&] {
    for (auto& cb : sources) {
      cb();
      ++work;
    }
    sources.clear();
  };
  const std::size_t n = chans.size();
  // Pass 1 — bandwidth-proportional quotas: each channel with queued work
  // and a ready wire gets a share of the budget scaled by its link
  // bandwidth (minimum one chunk), so a fast link soaks up the budget a
  // clock-bound capped link cannot convert into delivered bytes. Weights
  // are recomputed per poll: completion callbacks change the channel set.
  if (chunk_budget > 0) {
    double total_weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Channel& ch = *chans[i];
      if (ch.active_n.load(std::memory_order_relaxed) != 0 &&
          wire_ready(ch) && credit_of(i) > 0)
        total_weight += link_weight(ch);
    }
    if (total_weight > 0) {
      const int budget0 = chunk_budget;
      for (std::size_t k = 0; k < n && chunk_budget > 0; ++k) {
        const std::size_t i = (rr_ + k) % n;
        Channel& ch = *chans[i];
        if (ch.active_n.load(std::memory_order_relaxed) == 0 ||
            !wire_ready(ch))
          continue;
        int quota = std::max(
            1, static_cast<int>(budget0 * (link_weight(ch) / total_weight)));
        quota = std::min({quota, chunk_budget, credit_of(i)});
        if (quota <= 0) continue;
        // A helper mid-issue on this channel: skip, it is being served.
        if (!ch.mu.try_lock()) continue;
        // Re-check readiness per chunk: each issued chunk may consume a
        // wire credit (the AM window) and close the channel mid-quota.
        while (quota > 0 && !ch.active_.empty() && wire_ready(ch)) {
          issue_one_chunk(ch, &sources);
          spend_credit(i);
          --quota;
          --chunk_budget;
          ++work;
        }
        ch.mu.unlock();
        fire_sources();
      }
    }
  }
  // Pass 2 — leftover budget (quotas rounded down, or their channels ran
  // dry) goes round-robin one chunk at a time, the pre-quota behavior.
  while (chunk_budget > 0) {
    bool any = false;
    for (std::size_t k = 0; k < n && chunk_budget > 0; ++k) {
      const std::size_t i = (rr_ + k) % n;
      Channel& ch = *chans[i];
      if (ch.active_n.load(std::memory_order_relaxed) == 0 ||
          !wire_ready(ch) || credit_of(i) <= 0)
        continue;
      if (!ch.mu.try_lock()) continue;
      if (!ch.active_.empty() && wire_ready(ch)) {
        issue_one_chunk(ch, &sources);
        spend_credit(i);
        --chunk_budget;
        ++work;
        any = true;
      }
      ch.mu.unlock();
      fire_sources();
    }
    if (!any) break;
  }
  rr_ = (rr_ + 1) % n;
  // Fresh snapshot: issue/retire callbacks may have created new channels.
  for (Channel* ch : snapshot()) work += retire_landed(*ch);
  return work;
}

int XferEngine::issue_pass(int chunk_budget, std::size_t slice,
                           std::size_t nslices) {
  if (active_count_.load(std::memory_order_relaxed) == 0) return 0;
  if (nslices == 0) nslices = 1;
  int work = 0;
  const std::vector<Channel*> chans = snapshot();
  for (std::size_t i = slice % nslices;
       i < chans.size() && chunk_budget > 0; i += nslices) {
    Channel& ch = *chans[i];
    if (ch.active_n.load(std::memory_order_relaxed) == 0 ||
        !wire_ready(ch))
      continue;
    int quota = chunk_budget;
    if (wire_ && wire_->credits)
      quota = std::min(quota, static_cast<int>(std::min<std::uint32_t>(
                                  wire_->credits(ch.target), 1u << 30)));
    if (quota <= 0) continue;
    if (!ch.mu.try_lock()) continue;
    while (quota > 0 && !ch.active_.empty() && wire_ready(ch)) {
      issue_one_chunk(ch, nullptr);  // sources park for worker 0
      --quota;
      --chunk_budget;
      ++work;
    }
    ch.mu.unlock();
  }
  return work;
}

void XferEngine::drain_copies() {
  flush_deferred();
  // A not-ready wire stops its channel: the chunks must wait for wire
  // credits, which only arrive through the caller's AM polling — the
  // barrier-entry loop in upcxx re-invokes until copies_pending() clears.
  // The same loop covers a channel a helper holds mid-issue.
  std::vector<Callback> sources;
  for (Channel* chp : snapshot()) {
    Channel& ch = *chp;
    if (ch.active_n.load(std::memory_order_relaxed) != 0 &&
        ch.mu.try_lock()) {
      while (!ch.active_.empty() && wire_ready(ch))
        issue_one_chunk(ch, &sources);
      ch.mu.unlock();
      for (auto& cb : sources) cb();
      sources.clear();
    }
    retire_landed(ch);
  }
}

void XferEngine::drain_all() {
  while (!idle()) poll(1 << 20);
}

bool XferEngine::idle() const {
  return inflight_count_.load(std::memory_order_acquire) == 0;
}

std::size_t XferEngine::inflight() const {
  return inflight_count_.load(std::memory_order_acquire);
}

bool XferEngine::copies_pending() const {
  return active_count_.load(std::memory_order_acquire) != 0;
}

std::size_t XferEngine::pending_chunks(int target) const {
  for (Channel* chp : snapshot()) {
    if (chp->target != target) continue;
    arch::SpinGuard g(chp->mu);
    std::size_t n = 0;
    for (const auto& x : chp->active_)
      n += (x.bytes - x.off + chunk_bytes_ - 1) / chunk_bytes_;
    return n;
  }
  return 0;
}

}  // namespace gex
