#include "gex/xfer.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "arch/timer.hpp"

namespace gex {

XferEngine::XferEngine(std::size_t chunk_bytes, double bw_gbps)
    : chunk_bytes_(chunk_bytes ? chunk_bytes : std::size_t{256} << 10),
      bw_gbps_(bw_gbps > 0 ? bw_gbps : 0),
      // 1 GB/s == 1e9 bytes/s == 1 byte/ns, so ns-per-byte is 1/gbps.
      ns_per_byte_(bw_gbps > 0 ? 1.0 / bw_gbps : 0) {}

void XferEngine::submit(void* dst, const void* src, std::size_t bytes,
                        Callback on_source, Callback on_landed) {
  assert((bytes == 0 || (dst && src)) && "null endpoint on a live transfer");
  active_.push_back(Xfer{static_cast<std::byte*>(dst),
                         static_cast<const std::byte*>(src), bytes, 0,
                         std::move(on_source), std::move(on_landed), 0});
  ++stats_.submitted;
  stats_.max_inflight = std::max<std::uint64_t>(stats_.max_inflight,
                                                inflight());
}

void XferEngine::copy_one_chunk() {
  Xfer& x = active_.front();
  const std::size_t take = std::min(chunk_bytes_, x.bytes - x.off);
  if (take) {
    std::memcpy(x.dst + x.off, x.src + x.off, take);
    x.off += take;
    stats_.bytes_copied += take;
  }
  ++stats_.chunks_copied;
  if (ns_per_byte_ > 0) {
    // Virtual wire clock: the wire starts this chunk when it frees up (or
    // now, if it has been idle) and holds it for bytes/bw.
    const std::uint64_t now = arch::now_ns();
    wire_free_ns_ = std::max(wire_free_ns_, now) +
                    static_cast<std::uint64_t>(take * ns_per_byte_);
  }
  if (x.off == x.bytes) {
    // Last byte read out of the source: the initiator may reuse it. Move
    // the transfer off active_ BEFORE firing the callback — user code may
    // re-enter poll() (a promise continuation that spins progress), and a
    // still-queued finished transfer would double-fire and dangle `x`.
    // retire_landed() follows the same pop-then-fire discipline.
    Callback source_cb = std::move(x.on_source);
    x.landed_due_ns = ns_per_byte_ > 0 ? wire_free_ns_ : 0;
    landing_.push_back(std::move(x));
    active_.pop_front();
    if (source_cb) source_cb();
  }
}

int XferEngine::retire_landed() {
  int fired = 0;
  // Due times are monotone (the wire clock only advances), so the head
  // check suffices. Callbacks may submit new transfers; they land behind
  // the current queue and are picked up by later polls.
  while (!landing_.empty() &&
         landing_.front().landed_due_ns <= arch::now_ns()) {
    Callback cb = std::move(landing_.front().on_landed);
    landing_.pop_front();
    ++stats_.landed;
    if (cb) cb();
    ++fired;
  }
  return fired;
}

int XferEngine::poll(int chunk_budget) {
  int work = 0;
  while (chunk_budget-- > 0 && !active_.empty()) {
    copy_one_chunk();
    ++work;
  }
  work += retire_landed();
  return work;
}

void XferEngine::drain_copies() {
  while (!active_.empty()) copy_one_chunk();
  retire_landed();
}

void XferEngine::drain_all() {
  while (!idle()) poll(1 << 20);
}

}  // namespace gex
