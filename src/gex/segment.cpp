#include "gex/segment.hpp"

#include <cstdio>
#include <cstdlib>

namespace gex {

std::uint16_t SegmentMap::add(const void* base, std::size_t bytes,
                              const char* name) {
  if (bytes > kWireAddrOffsetMask) {
    std::fprintf(stderr,
                 "gex: segment '%s' of %zu bytes exceeds the 48-bit wire "
                 "offset space\n",
                 name, bytes);
    std::abort();
  }
  segs_.push_back(Seg{static_cast<const std::byte*>(base), bytes, name});
  return static_cast<std::uint16_t>(segs_.size());
}

WireAddr SegmentMap::try_encode(const void* p) const {
  auto* b = static_cast<const std::byte*>(p);
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    const Seg& s = segs_[i];
    if (b >= s.base && b < s.base + s.bytes) {
      const auto off = static_cast<std::uint64_t>(b - s.base);
      return (static_cast<std::uint64_t>(i + 1) << kWireAddrOffsetBits) |
             off;
    }
  }
  return 0;
}

void* SegmentMap::try_decode(WireAddr wa) const {
  const std::uint64_t id = wa >> kWireAddrOffsetBits;
  if (id == 0 || id > segs_.size()) return nullptr;
  const Seg& s = segs_[id - 1];
  const std::uint64_t off = wa & kWireAddrOffsetMask;
  if (off >= s.bytes) return nullptr;
  decodes_.fetch_add(1, std::memory_order_relaxed);
  return const_cast<std::byte*>(s.base) + off;
}

WireAddr SegmentMap::encode(const void* p) const {
  const WireAddr wa = try_encode(p);
  if (wa == 0) {
    std::fprintf(stderr,
                 "gex: attempt to put a process-private address %p on the "
                 "wire (no registered segment contains it)\n",
                 p);
    std::abort();
  }
  return wa;
}

void* SegmentMap::decode(WireAddr wa) const {
  void* p = try_decode(wa);
  if (!p) {
    std::fprintf(stderr,
                 "gex: wire record carried address 0x%016llx, which does "
                 "not resolve through the segment registry (segment %llu "
                 "of %zu, offset 0x%llx)\n",
                 static_cast<unsigned long long>(wa),
                 static_cast<unsigned long long>(wa >> kWireAddrOffsetBits),
                 segs_.size(),
                 static_cast<unsigned long long>(wa & kWireAddrOffsetMask));
    std::abort();
  }
  return p;
}

const char* SegmentMap::segment_name(std::uint16_t id) const {
  if (id == 0 || id > segs_.size()) return nullptr;
  return segs_[id - 1].name;
}

}  // namespace gex
