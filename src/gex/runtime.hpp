// Rank lifecycle: the launcher creates the arena, starts the ranks (threads
// or forked processes), runs the SPMD function on each, and tears down.
//
// Mirrors the paper's constraint that the runtime introduces *no hidden
// threads*: each rank is exactly one thread of control, and all progress
// happens inside explicit library calls made by that rank.
#pragma once

#include <functional>

#include "gex/am.hpp"
#include "gex/arena.hpp"
#include "gex/config.hpp"

namespace gex {

class Aggregator;
class XferEngine;
class RmaAmProtocol;

// Per-rank runtime state. Upper layers (upcxx, minimpi) hang their own
// per-rank state off the opaque slots so the substrate stays layered.
struct Rank {
  int me = -1;
  Arena* arena = nullptr;
  AmEngine* am = nullptr;
  Aggregator* agg = nullptr;
  XferEngine* xfer = nullptr;
  RmaAmProtocol* rma_am = nullptr;
  // Resolved RMA wire for this rank (resolve_rma_wire at launch): true
  // when rput/rget/copy must ride the AM protocol instead of touching the
  // target's segment directly. The XferEngine has the matching wire ops
  // installed when set.
  bool rma_wire_am = false;
  // Upper-layer progress, driven from gex-level blocking spins
  // (AmEngine::exchange): AmEngine::poll() only *delivers* frames — the
  // upcxx layer defers their dispatch (rpc execution, reply staging) to
  // its own user-level progress queue. A rank blocked inside a gex
  // collective must keep running that layer, or a peer waiting on one of
  // this rank's rpc replies never reaches the collective and the job
  // deadlocks. Installed by upcxx init_persona, cleared by fini_persona;
  // spins fall back to flushing `agg` directly when unset.
  std::function<void()> progress_hook;
  void* upcxx_state = nullptr;
  void* minimpi_state = nullptr;
};

// The calling thread's rank context; null outside an SPMD region.
Rank* self();
// Rebinds the calling thread's rank context. Used by the upcxx persona layer
// when the master persona (and with it the right to poll the wire) migrates
// to another thread of the same rank. Pass nullptr to unbind.
void bind_self(Rank* r);
// Asserting accessors.
int rank_me();
int rank_n();
Arena& arena();
AmEngine& am();
Aggregator& agg();
XferEngine& xfer();
RmaAmProtocol& rma_am();

// Runs `fn` as an SPMD program over cfg.ranks ranks. Returns the number of
// ranks that failed (threw / exited non-zero). Re-entrant launches are not
// supported (one SPMD region at a time per process tree).
int launch(const Config& cfg, const std::function<void()>& fn);

// Convenience: launch with Config::from_env().
int launch_env(const std::function<void()>& fn);

}  // namespace gex
