// Runtime configuration of the substrate, settable via environment variables
// (mirroring GASNet's GASNET_* knobs). Read once at launch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gex {

enum class Backend {
  kThread,   // ranks are threads of one process (default; used by tests)
  kProcess,  // ranks are forked processes sharing the arena (smp-conduit-like)
};

struct Config {
  int ranks = 4;                          // UPCXX_RANKS
  Backend backend = Backend::kThread;     // UPCXX_BACKEND=thread|process
  std::size_t segment_bytes = 32 << 20;   // UPCXX_SEGMENT_MB
  std::size_t ring_bytes = 1 << 20;       // UPCXX_RING_KB (power of two)
  std::size_t eager_max = 8 << 10;        // UPCXX_EAGER_MAX (bytes)
  std::size_t heap_bytes = 64 << 20;      // UPCXX_HEAP_MB (shared heap)
  std::uint64_t sim_latency_ns = 0;       // UPCXX_SIM_LATENCY_NS
  bool atomics_use_am = false;            // UPCXX_ATOMICS=am|direct

  // Loads defaults overridden by environment variables.
  static Config from_env();
};

}  // namespace gex
