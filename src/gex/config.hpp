// Runtime configuration of the substrate, settable via environment variables
// (mirroring GASNet's GASNET_* knobs). Read once at launch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gex {

enum class Backend {
  kThread,   // ranks are threads of one process (default; used by tests)
  kProcess,  // ranks are forked processes sharing the arena (smp-conduit-like)
};

// RMA data-motion wire (UPCXX_RMA_WIRE=auto|direct|am). The `direct` wire
// moves bytes with initiator-side memcpys into the cross-mapped arena (the
// GASNet-PSHM fast path); the `am` wire ships every transfer through the
// active-message put/get protocol (gex/rma_am.hpp) — the conduit shape a
// non-shared-memory backend needs. `auto` picks per target: direct whenever
// the target's segment is cross-mapped (always true on this arena), am
// otherwise.
enum class RmaWire {
  kAuto,
  kDirect,
  kAm,
};

// AM transport (UPCXX_AM_TRANSPORT=auto|mmap|shmfile|socket): what backs
// the inbox rings the AmEngine pushes records through (gex/transport.hpp).
// `mmap` is the pre-existing shared-arena ring (the fast path); `shmfile`
// backs each (sender, receiver) pair with its own lazily created ring
// file, mapped independently by each side — the proof that the wire
// carries no cross-mapped pointers. `socket` frames each record onto a
// non-blocking loopback TCP stream (gex/socket.hpp) — the first transport
// that needs no shared memory at all, so rendezvous/staged payloads ship
// inline and UPCXX_RMA_WIRE resolves to `am` under it. `auto` consults
// the environment, then falls back to mmap.
enum class AmTransport {
  kAuto,
  kMmap,
  kShmFile,
  kSocket,
};

struct Config {
  int ranks = 4;                          // UPCXX_RANKS
  Backend backend = Backend::kThread;     // UPCXX_BACKEND=thread|process
  std::size_t segment_bytes = 32 << 20;   // UPCXX_SEGMENT_MB
  std::size_t ring_bytes = 1 << 20;       // UPCXX_RING_KB (power of two)
  std::size_t eager_max = 8 << 10;        // UPCXX_EAGER_MAX (bytes)
  std::size_t heap_bytes = 64 << 20;      // UPCXX_HEAP_MB (shared heap)
  std::uint64_t sim_latency_ns = 0;       // UPCXX_SIM_LATENCY_NS
  bool atomics_use_am = false;            // UPCXX_ATOMICS=am|direct

  // Message-layer v2 aggregation knobs (gex/agg.hpp).
  bool agg_enabled = true;                // UPCXX_AGG (0 disables)
  std::size_t agg_max_bytes = 16 << 10;   // UPCXX_AGG_MAX_BYTES (per frame)
  std::uint32_t agg_max_msgs = 64;        // UPCXX_AGG_MAX_MSGS (per frame)

  // Data-motion engine knobs (gex/xfer.hpp).
  // Simulated wire bandwidth in GB/s; 0 = unlimited (no model).
  double sim_bw_gbps = 0;                 // UPCXX_SIM_BW_GBPS
  // Chunk granularity of pipelined transfers.
  std::size_t xfer_chunk_bytes = 256 << 10;  // UPCXX_XFER_CHUNK_KB
  // Contiguous RMA at or above this many bytes rides the asynchronous
  // engine; below it, the zero-allocation synchronous path. 0 disables the
  // async path entirely.
  std::size_t rma_async_min = 64 << 10;   // UPCXX_RMA_ASYNC_MIN (bytes)
  // RMA wire selection (see enum above).
  RmaWire rma_wire = RmaWire::kAuto;      // UPCXX_RMA_WIRE=auto|direct|am
  // AM-wire flow control: at most this many unacknowledged protocol
  // requests (put/get/fragment records) in flight per target; further
  // requests queue sender-side and are released as acks retire credits.
  // Small windows serialize (W=1 is the worst-case CI job); large windows
  // let a flood fill the target's ring and staging heap — and blow the
  // in-flight staging (window × chunk) out of cache, which is what caps
  // am-wire bandwidth (see am_xfer_chunk_bytes). 0 = auto: consult
  // UPCXX_AM_WINDOW (so hand-built test Configs honor the CI matrix, like
  // rma_wire's kAuto); `auto` or an unset environment selects the
  // *adaptive* window (an ack-RTT-driven BBR-style controller per target —
  // see resolve_am_window below), an explicit positive integer pins a
  // fixed window for tests/CI. kAmWindowForceAuto forces the adaptive
  // controller even when the environment pins a window (benchmark series
  // that must measure `auto` under any CI matrix). An explicit value wins
  // over the environment.
  std::uint32_t am_window = 0;            // UPCXX_AM_WINDOW
  // Chunk granularity on the am wire: the engine uses
  // min(xfer_chunk_bytes, am_xfer_chunk_bytes) there, so explicit small
  // test chunkings still apply while the default transfers keep their
  // in-flight staging footprint (window × chunk) inside L2 — the bounce
  // pool only pays off while the target consumes a chunk before it cools.
  std::size_t am_xfer_chunk_bytes = 64 << 10;  // UPCXX_AM_CHUNK_KB
  // AM transport selection (see enum above).
  AmTransport am_transport = AmTransport::kAuto;  // UPCXX_AM_TRANSPORT
  // Progress-pool width (upcxx::progress_pool): how many dedicated
  // progress threads pump the rank when the app hands progress off. 1
  // reproduces upcxx::progress_thread exactly (one worker owning the
  // master persona); N > 1 adds N-1 helpers that drain the injection
  // wire shards (partitioned by shard index, stealing when their
  // partition is idle) while worker 0 keeps engine polling — engines
  // stay single-consumer by construction.
  int progress_threads = 1;               // UPCXX_PROGRESS_THREADS
  // Injection wire shards: off-persona sends are staged into
  // shard[target % inject_shards], so unrelated targets never contend
  // on one queue and pool helpers can drain disjoint shards in
  // parallel. Clamped to [1, 64].
  std::uint32_t inject_shards = 4;        // UPCXX_INJECT_SHARDS
  // Submit-queue shards: off-persona op closures (engine submits,
  // collective entries, protocol put/get) are staged into
  // shard[hash(thread) % submit_shards], keeping each injector thread's
  // submissions FIFO while spreading unrelated threads across queue
  // tails. All shards are drained by the master persona. Clamped to
  // [1, 64].
  std::uint32_t submit_shards = 4;        // UPCXX_SUBMIT_SHARDS
  // ------------------------------------------------- socket transport
  // Largest record the socket transport advertises via
  // Transport::max_record_payload (the stream itself accepts any size;
  // this caps what the inline-only AM paths will ship in one record).
  std::size_t socket_max_record = 8 << 20;  // UPCXX_SOCKET_MAX_RECORD_KB
  // Fixed virtual address isolated-mode ranks map their *private* arenas
  // at (MAP_FIXED_NOREPLACE), so global_ptr raw addresses and segment-map
  // ids agree across processes that share nothing. 0x2000'0000'0000 sits
  // between the heap and the mmap base on every Linux layout we target.
  std::uint64_t socket_arena_base = 0x200000000000ull;
  //                                         UPCXX_SOCKET_ARENA_BASE
  // With backend=process and the socket transport: fork ranks that each
  // create their own private arena and bootstrap over a control socket
  // (no shared memory at all) instead of sharing the pre-fork arena.
  // This is what `upcxx-run` sets up across exec'd processes; the flag
  // gives in-process tests the same topology.
  bool socket_isolated = false;           // UPCXX_SOCKET_ISOLATED
  // Deterministic fault injection inside the socket transport. Faults are
  // active when any of the knobs below is set; the seed (xor'd with the
  // rank) makes every schedule reproducible.
  std::uint64_t socket_fault_seed = 0;    // UPCXX_SOCKET_FAULT_SEED
  // Probability (percent) that one flush truncates its write to a random
  // prefix — exercises partial-write continuation and framing recovery.
  std::uint32_t socket_fault_short_write_pct = 0;
  //                                  UPCXX_SOCKET_FAULT_SHORT_WRITE_PCT
  // Probability (percent) that one ready fd is read in a short, delayed
  // gulp (1..64 bytes) this pump — exercises header/body reassembly.
  std::uint32_t socket_fault_short_read_pct = 0;
  //                                  UPCXX_SOCKET_FAULT_SHORT_READ_PCT
  // Rank that _exit()s mid-stream after committing its Nth record,
  // leaving a half-written frame on the wire (die_rank < 0 disables).
  // Only meaningful when ranks are processes — in thread mode an _exit
  // would take the whole job down.
  int socket_fault_die_rank = -1;         // UPCXX_SOCKET_FAULT_DIE_RANK
  std::uint64_t socket_fault_die_at = 0;  // UPCXX_SOCKET_FAULT_DIE_AT

  // Adaptive-window RTT envelope: an ack counts as "timely" while its RTT
  // stays at or below envelope × the observed RTT floor (plus a small
  // absolute slack absorbing scheduler noise — see rma_am.hpp). Larger
  // values tolerate more queuing before the controller backs off. 0 =
  // auto: consult UPCXX_AM_RTT_ENVELOPE, else kDefaultAmRttEnvelope.
  double am_rtt_envelope = 0;             // UPCXX_AM_RTT_ENVELOPE

  // Loads defaults overridden by environment variables; the result is
  // normalized.
  static Config from_env();

  // Enforces the invariants the substrate assumes: positive sizes (zero
  // segment/heap/ring sizes fall back to defaults instead of silently
  // mis-shifting), power-of-two ring, eager payloads and aggregation frames
  // that fit a single ring record. Arena creation normalizes its copy, so
  // hand-built Configs are covered too.
  void normalize();
};

// Resolves a Config's rma_wire to a concrete wire. kAuto consults
// UPCXX_RMA_WIRE (so hand-built Configs — the test helpers — still honor a
// CI-level wire override) and otherwise selects kDirect, because every
// target segment on this arena is cross-mapped — unless the AM transport
// resolves to socket, whose peers must be treated as not cross-mapped, in
// which case auto pins kAm. An explicitly set kDirect / kAm always wins
// over the environment (explicit kDirect under socket is legal only while
// ranks still share one arena — thread or plain process backends).
RmaWire resolve_rma_wire(const Config& cfg);

// The resolved AM-window policy: either a fixed per-target window (an
// explicit integer in the Config or the environment — tests and CI pin
// the flow-control state machine with these) or the adaptive controller
// (the default), which starts every target at `window` and moves it
// within [1, kMaxAmWindow] from ack-RTT feedback (gex::AmWindowController,
// rma_am.hpp).
struct AmWindowSetting {
  bool adaptive;
  std::uint32_t window;  // fixed window, or the adaptive starting window
};

// Adaptive starting window (also the fixed default if the environment
// names no number).
inline constexpr std::uint32_t kDefaultAmWindow = 8;
// Adaptive ceiling: window × UPCXX_AM_CHUNK_KB is the staging working
// set, so 64 × 64K = 4M bounds it at roughly an L3's worth.
inline constexpr std::uint32_t kMaxAmWindow = 64;
// Config::am_window sentinel: adaptive regardless of the environment.
inline constexpr std::uint32_t kAmWindowForceAuto = 0xFFFFFFFFu;
// Default RTT envelope factor (see Config::am_rtt_envelope).
// Default 4.0: on a shared-memory "wire" the ack RTT is dominated by the
// window's own queuing (depth × chunk service time), not propagation, so a
// tight envelope reads healthy pipelining as lateness and oscillates. 4×
// the floor plus the absolute slack keeps the controller near the
// footprint-clamped ceiling in steady state (measured: window_grow/shrink
// counts drop ~10× vs 2.0 with no bandwidth cost) while a genuinely
// descheduled peer — milliseconds, far past any envelope — still backs off.
inline constexpr double kDefaultAmRttEnvelope = 4.0;

// Resolves a Config's am_window: kAmWindowForceAuto selects the adaptive
// controller unconditionally; any other explicit (non-zero) value pins a
// fixed window; 0 (auto) consults UPCXX_AM_WINDOW — a positive integer
// pins, `auto`/unset/garbage selects the adaptive controller (the
// default since the self-tuning transport landed).
AmWindowSetting resolve_am_window(const Config& cfg);

// Resolves the RTT envelope: an explicit (>= 1) value wins; otherwise
// UPCXX_AM_RTT_ENVELOPE, else kDefaultAmRttEnvelope.
double resolve_am_rtt_envelope(const Config& cfg);

// Resolves a Config's am_transport. kAuto consults UPCXX_AM_TRANSPORT (so
// hand-built Configs — the test helpers — honor a CI-level transport
// override) and otherwise selects kMmap. An explicit kMmap / kShmFile /
// kSocket wins over the environment.
AmTransport resolve_am_transport(const Config& cfg);

}  // namespace gex
