// Socket transport: the gex::Transport contract over non-blocking TCP.
//
// Wire: every AM record is framed as [u32 len][u32 check = len ^ magic]
// followed by the record bytes (WireHeader + payload). The 8-byte frame
// header keeps the record 8-aligned inside the sender's staging buffer —
// WireHeader carries a u64 — and the receive side assembles each record
// into its own 16-aligned allocation, so alignment survives the stream.
// Connections are unidirectional: a rank's sends to one peer ride a
// single connection it initiated (opening with an 8-byte preamble naming
// the sender), which gives the per-pair FIFO guarantee for free from TCP
// ordering. A rank therefore owns one listen socket, up to P-1 inbound
// connections (its inbox) and up to P-1 lazily opened outbound ones.
//
// Event loop: one epoll instance per rank, pumped from try_consume — i.e.
// from AmEngine::poll, so progress keeps the paper's no-hidden-threads
// property: the rank that owns the persona pumps its own wire. A
// spinlock guards transport state because injection-shard drains call
// try_reserve/commit concurrently with the consumer; the lock is never
// held across the record-visit callback.
//
// try_reserve returns a private malloc'd staging buffer (never a pointer
// into shared state); commit frames it onto the peer's send queue and
// flushes as far as the kernel accepts, with partial-write continuation
// picked up by the pump when EPOLLOUT fires. Backpressure: a peer whose
// queue exceeds a bound makes try_reserve return a null ticket, which
// sends AmEngine::prepare into its poll-own-inbox retry loop — the same
// deadlock-freedom argument as a full ring. Sends to a peer already known
// dead get a "black hole" ticket: a valid staging buffer that commit
// silently frees (the error flag, not a lost record, is the failure
// signal).
//
// Endpoint exchange: in shared-arena mode (thread or plain process
// backends) each rank publishes its listen port in the arena's port
// slots. In isolated mode (upcxx-run, or UPCXX_SOCKET_ISOLATED with the
// process backend) ranks share nothing: a SocketRuntime connects to the
// launcher's bootstrap socket, sends HELLO{rank, port}, receives the full
// port table, and from then on serves as the arena's ControlPlane —
// world barriers and error propagation travel as CtlMsg records over the
// bootstrap connection, pumped by the same epoll loop.
//
// Fault injection (UPCXX_SOCKET_FAULT_*): a per-rank xorshift stream
// seeded from UPCXX_SOCKET_FAULT_SEED ^ rank drives probabilistic short
// writes (partial-write continuation), short delayed reads (frame
// reassembly), and a deterministic peer-death-at-record-N that leaves a
// torn frame on the wire — the harness the error-aware-wait tests drive.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "arch/spinlock.hpp"
#include "gex/arena.hpp"
#include "gex/transport.hpp"

namespace gex {

class SocketTransport;

// ------------------------------------------------------- control protocol
//
// Fixed-size little messages on the bootstrap connection (rank <->
// launcher). Both sides read/write whole structs; the connection is
// trusted (loopback, same uid) so there is no versioning.
struct CtlMsg {
  std::uint32_t type = 0;
  std::uint32_t a = 0;  // HELLO: rank; BYE: exit code
  std::uint64_t b = 0;  // HELLO: listen port; BARRIER_*: epoch
};

inline constexpr std::uint32_t kCtlHello = 1;
// ENDPOINTS: header only; nranks u32 ports follow on the stream.
inline constexpr std::uint32_t kCtlEndpoints = 2;
inline constexpr std::uint32_t kCtlBarrierArrive = 3;
inline constexpr std::uint32_t kCtlBarrierRelease = 4;
inline constexpr std::uint32_t kCtlError = 5;
inline constexpr std::uint32_t kCtlBye = 6;

// ---------------------------------------------------------- SocketRuntime
//
// Isolated-rank bootstrap state: owns the AM listen socket (bound before
// HELLO so the port can be announced), the bootstrap connection to the
// launcher, and the peer port table. Implements the arena ControlPlane
// over that connection. One per process (isolated ranks are one rank per
// process); the transport picks it up via active_socket_runtime().
class SocketRuntime final : public ControlPlane {
 public:
  // Binds the AM listen socket, connects to the launcher's bootstrap
  // port on loopback, sends HELLO, and blocks until ENDPOINTS arrives.
  // Aborts on any bootstrap failure — there is no job without it.
  static SocketRuntime* create(int me, int nranks, int bootstrap_port);
  ~SocketRuntime() override;

  int me() const { return me_; }
  int nranks() const { return nranks_; }
  int listen_fd() const { return listen_fd_; }
  int bootstrap_fd() const { return boot_fd_; }
  std::uint16_t peer_port(int rank) const { return ports_[rank]; }

  // The transport registers the bootstrap fd in its epoll set and feeds
  // control messages back through on_ctl(); barrier() pumps it for I/O.
  void attach(Arena* arena, SocketTransport* t);
  void detach() { transport_ = nullptr; }
  void on_ctl(const CtlMsg& m);
  // Drains whatever control messages the (non-blocking) bootstrap fd has,
  // buffering a partial message across calls. EOF means the launcher died;
  // that sets the local error flag.
  void on_ctl_readable();

  // ControlPlane over the bootstrap connection: arrive at the launcher,
  // pump the wire until the matching release (or the job fails).
  void barrier() override;
  void broadcast_error() override;

  // Final word to the launcher (exit status); EOF without it reads as a
  // crash.
  void bye(int rc);

 private:
  SocketRuntime() = default;
  void send_ctl(const CtlMsg& m);

  int me_ = -1;
  int nranks_ = 0;
  int listen_fd_ = -1;
  int boot_fd_ = -1;
  std::vector<std::uint16_t> ports_;
  Arena* arena_ = nullptr;
  SocketTransport* transport_ = nullptr;
  std::uint64_t barriers_entered_ = 0;
  std::uint64_t releases_seen_ = 0;
  bool error_sent_ = false;
  std::byte ctl_buf_[sizeof(CtlMsg)];
  std::size_t ctl_have_ = 0;
};

// The calling process's isolated-rank runtime; null in shared-arena mode.
SocketRuntime* active_socket_runtime();
void set_active_socket_runtime(SocketRuntime* rt);

// -------------------------------------------------------- BootstrapServer
//
// The launcher half of the bootstrap protocol, used by `upcxx-run` and by
// in-process isolated launches (UPCXX_SOCKET_ISOLATED): accepts one
// connection per rank, collects HELLOs, broadcasts the port table, then
// centralizes world barriers and failure propagation until every rank
// said BYE or died. Single-threaded, poll-driven.
class BootstrapServer {
 public:
  explicit BootstrapServer(int nranks);  // binds 127.0.0.1:0; aborts on error
  ~BootstrapServer();

  int port() const { return port_; }

  // Runs the whole protocol against the given child pids (one per rank,
  // same indexing). Watches the children: a rank that exits — or whose
  // connection drops — before BYE marks the job failed and every
  // surviving rank is told via kCtlError. Returns the number of ranks
  // that failed (non-zero BYE, crash, or never completed).
  int serve(const std::vector<pid_t>& kids);

 private:
  void broadcast(const CtlMsg& m);
  void fail_job();

  int nranks_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<int> fds_;  // per rank; -1 until HELLO, -2 after close
  std::vector<int> rc_;   // per rank exit/BYE status; -1 unknown
  bool failed_ = false;
};

// Builds the socket transport for rank `me` (factory target of
// gex::make_transport). Picks up active_socket_runtime() when the process
// is an isolated rank; otherwise exchanges endpoints through the arena.
Transport* make_socket_transport(Arena* arena, int me);

}  // namespace gex
