#include "gex/transport.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/cacheline.hpp"
#include "arch/spinlock.hpp"
#include "gex/arena.hpp"
#include "gex/socket.hpp"

namespace gex {

namespace {

// ------------------------------------------------------------------- mmap
//
// The pre-existing wire: per-rank MPSC rings inside the shared arena
// mapping. Every call forwards to the ring the arena already placed.
// Bridges the ring's two-field ticket into the transport-neutral handle.
Transport::Ticket wrap(const arch::MpscByteRing::Ticket& rt, int target) {
  return Transport::Ticket{rt.hdr, rt.payload, target};
}
arch::MpscByteRing::Ticket unwrap(const Transport::Ticket& t) {
  return arch::MpscByteRing::Ticket{
      static_cast<arch::MpscByteRing::RecordHeader*>(t.h), t.payload};
}

class MmapTransport final : public Transport {
 public:
  MmapTransport(Arena* arena, int me) : arena_(arena), me_(me) {}

  Ticket try_reserve(int target, std::size_t bytes) override {
    return wrap(arena_->inbox(target).try_reserve(bytes), target);
  }
  void commit(const Ticket& t) override {
    arch::MpscByteRing::commit(unwrap(t));
  }
  bool try_consume(RecordVisitor visit, void* cx) override {
    return arena_->inbox(me_).try_consume(
        [&](void* p, std::size_t n) { visit(p, n, cx); });
  }
  std::size_t max_record_payload() const override {
    return arena_->inbox(me_).max_record_payload();
  }
  bool rx_empty() override { return arena_->inbox(me_).empty(); }
  const char* name() const override { return "mmap"; }

 private:
  Arena* arena_;
  int me_;
};

// ---------------------------------------------------------------- shmfile
//
// One ring file per (sender, receiver) pair, mapped independently by each
// side — no pre-fork shared mapping is involved, so this transport only
// works because the records themselves are mapping-independent (segment-
// offset addressing, handler indices). Files are created lazily: a sender
// on first send to a target, a receiver on first poll (it opens all its
// inbound pairs at once so subsequent polls never hit the filesystem).
// Whichever side arrives first creates and initializes the file; the init
// handshake is a three-state flag at offset 0 (0 raw -> 1 initializing ->
// 2 ready) that the loser spins on. The receiver unlinks its inbound
// files at teardown (after the job's final barrier, so no sender can
// still be writing).
class ShmFileTransport final : public Transport {
 public:
  ShmFileTransport(Arena* arena, int me)
      : nranks_(arena->nranks()),
        me_(me),
        ring_bytes_(arena->config().ring_bytes),
        job_pid_(arena->job_pid()),
        job_nonce_(arena->job_nonce()),
        map_bytes_(arch::align_up(
            kRingOff + arch::MpscByteRing::footprint(
                           arena->config().ring_bytes),
            std::size_t{4096})),
        tx_(static_cast<std::size_t>(arena->nranks())),
        rx_(static_cast<std::size_t>(arena->nranks()), nullptr) {}

  ~ShmFileTransport() override {
    for (void* m : maps_) ::munmap(m, map_bytes_);
    // This rank owns its inbound pair files; unlink them all — including
    // ones a sender created that this rank never polled (ENOENT for the
    // rest is fine). Senders that still hold a mapping keep it alive past
    // the unlink, which is all they need; teardown runs after the job's
    // final barrier, so no one opens these names again.
    char path[kPathMax];
    for (int s = 0; s < nranks_; ++s) {
      pair_path(path, s, me_);
      ::unlink(path);
    }
  }

  Ticket try_reserve(int target, std::size_t bytes) override {
    // Double-checked lazy open: try_reserve is called concurrently by
    // injection-shard drains, so the slot is an atomic and the one-time
    // file open/mmap/init runs under open_mu_ (the ring itself is MPSC —
    // only its *creation* needs serializing).
    auto& slot = tx_[static_cast<std::size_t>(target)];
    arch::MpscByteRing* ring = slot.load(std::memory_order_acquire);
    if (!ring) {
      arch::SpinGuard g(open_mu_);
      ring = slot.load(std::memory_order_relaxed);
      if (!ring) {
        ring = open_pair(me_, target);
        slot.store(ring, std::memory_order_release);
      }
    }
    return wrap(ring->try_reserve(bytes), target);
  }

  void commit(const Ticket& t) override {
    arch::MpscByteRing::commit(unwrap(t));
  }

  bool try_consume(RecordVisitor visit, void* cx) override {
    if (!rx_open_) open_rx();
    // Round-robin over the inbound pairs so one chatty sender cannot
    // starve the rest (the arena's single MPSC ring got this for free
    // from reservation order).
    for (int i = 0; i < nranks_; ++i) {
      const int s = static_cast<int>((rr_ + static_cast<unsigned>(i)) %
                                     static_cast<unsigned>(nranks_));
      auto* ring = rx_[static_cast<std::size_t>(s)];
      if (ring && ring->try_consume(
                      [&](void* p, std::size_t n) { visit(p, n, cx); })) {
        rr_ = static_cast<unsigned>(s + 1) % static_cast<unsigned>(nranks_);
        return true;
      }
    }
    return false;
  }

  std::size_t max_record_payload() const override {
    return arch::MpscByteRing::max_record_payload(ring_bytes_);
  }

  bool rx_empty() override {
    // A sender may have created and filled a pair ring this rank has
    // never polled; open the inbound set so the answer is authoritative
    // ("never falsely empty" — the interface contract).
    if (!rx_open_) open_rx();
    for (int s = 0; s < nranks_; ++s) {
      auto* ring = rx_[static_cast<std::size_t>(s)];
      if (ring && !ring->empty()) return false;
    }
    return true;
  }

  const char* name() const override { return "shmfile"; }

 private:
  // File layout: [init flag, one cacheline][MpscByteRing footprint].
  static constexpr std::size_t kRingOff = arch::cacheline_size;
  static constexpr std::size_t kPathMax = 288;

  void pair_path(char* buf, int src, int dst) const {
    const int n = std::snprintf(buf, kPathMax, "%s/upcxx-am-%u-%08x-%dto%d",
                                shm_transport_dir(), job_pid_, job_nonce_,
                                src, dst);
    if (n < 0 || static_cast<std::size_t>(n) >= kPathMax) {
      // Truncation would collapse distinct pairs onto one file (the
      // -<src>to<dst> suffix is what distinguishes them) — fail loudly.
      std::fprintf(stderr,
                   "gex: shmfile transport directory path too long: %s\n",
                   shm_transport_dir());
      std::abort();
    }
  }

  arch::MpscByteRing* open_pair(int src, int dst) {
    char path[kPathMax];
    pair_path(path, src, dst);
    const int fd = ::open(path, O_RDWR | O_CREAT, 0600);
    if (fd < 0 || ::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
      std::perror("gex: shmfile transport open/ftruncate");
      std::abort();
    }
    void* base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      std::perror("gex: shmfile transport mmap");
      std::abort();
    }
    {
      // The consumer's open_rx() can race a sender-side lazy open (which
      // already holds open_mu_), so maps_ gets its own guard.
      arch::SpinGuard g(maps_mu_);
      maps_.push_back(base);
    }
    // First-toucher initializes the ring; the file arrives zero-filled, so
    // the flag reads 0 exactly once across all openers.
    auto* state = reinterpret_cast<std::atomic<std::uint32_t>*>(base);
    auto* ring_mem = static_cast<std::byte*>(base) + kRingOff;
    std::uint32_t expect = 0;
    if (state->compare_exchange_strong(expect, 1,
                                       std::memory_order_acq_rel)) {
      auto* ring = arch::MpscByteRing::create(ring_mem, ring_bytes_);
      state->store(2, std::memory_order_release);
      return ring;
    }
    while (state->load(std::memory_order_acquire) != 2) arch::cpu_relax();
    return reinterpret_cast<arch::MpscByteRing*>(ring_mem);
  }

  void open_rx() {
    for (int s = 0; s < nranks_; ++s)
      rx_[static_cast<std::size_t>(s)] = open_pair(s, me_);
    rx_open_ = true;
  }

  int nranks_;
  int me_;
  std::size_t ring_bytes_;
  std::uint32_t job_pid_;
  std::uint32_t job_nonce_;
  std::size_t map_bytes_;
  // [target], null until first send; atomic because any injector-drain
  // thread may race the first send to a target.
  std::vector<std::atomic<arch::MpscByteRing*>> tx_;
  std::vector<arch::MpscByteRing*> rx_;  // [sender], null until first poll
  std::vector<void*> maps_;              // guarded by maps_mu_
  arch::Spinlock open_mu_;               // serializes lazy tx pair opens
  arch::Spinlock maps_mu_;
  bool rx_open_ = false;
  unsigned rr_ = 0;
};

}  // namespace

const char* shm_transport_dir() {
  static const char* dir = [] {
    if (::access("/dev/shm", W_OK) == 0) return "/dev/shm";
    if (const char* t = std::getenv("TMPDIR"); t && *t) return t;
    return "/tmp";
  }();
  return dir;
}

Transport* make_transport(Arena* arena, int me) {
  switch (resolve_am_transport(arena->config())) {
    case AmTransport::kShmFile:
      return new ShmFileTransport(arena, me);
    case AmTransport::kSocket:
      return make_socket_transport(arena, me);
    case AmTransport::kMmap:
    case AmTransport::kAuto:
      break;
  }
  return new MmapTransport(arena, me);
}

}  // namespace gex
