// Per-target aggregation of small active messages into multi-message frames.
//
// Fine-grained AM traffic (the paper's DHT and eadd patterns, Fig 4) is
// bounded by per-message ring-transaction overhead, not bandwidth. The
// aggregator amortizes that overhead: messages are staged in rank-private
// memory — a bump-pointer write, no locks, no shared-memory traffic — and
// reach the target's ring as one frame record carrying many messages.
//
// Flush triggers:
//   * staged bytes would exceed agg_max_bytes (Config / UPCXX_AGG_MAX_BYTES)
//   * staged message count reaches agg_max_msgs (UPCXX_AGG_MAX_MSGS)
//   * explicit flush: upcxx user-level progress, barrier entry, teardown.
//
// The explicit flushes preserve the paper's attentiveness model: a message
// never outlives its sender's current progress window, so any rank spinning
// on user-level progress drains its own staging buffers as a side effect.
// Latency-sensitive traffic (collective control, remote completion
// notifications, AM atomics) bypasses the aggregator entirely via the
// engine's immediate path.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gex/am.hpp"

namespace gex {

class Aggregator {
 public:
  // Knobs come from the engine's arena config (agg_enabled, agg_max_bytes,
  // agg_max_msgs).
  explicit Aggregator(AmEngine* eng);

  bool enabled() const { return enabled_; }

  // Largest single payload that may ride a frame; bigger messages must use
  // the engine's direct path.
  std::size_t max_msg_bytes() const { return max_msg_bytes_; }

  // Aggregation pays an extra staging copy, which only amortizes when many
  // messages share a frame; callers should route payloads above this cutoff
  // (an eighth of a frame) to the direct path, where bandwidth — not
  // per-message overhead — is already the bound.
  std::size_t small_msg_cutoff() const { return max_bytes_ / 8; }

  // Stages one message to `target` with handler `h`; returns the slot to
  // write `n` payload bytes into. The write must complete before the next
  // aggregator or progress call (a later put may flush the buffer). May
  // flush `target` first to make room — which can spin on a full ring and
  // poll the caller's inbox (same backpressure contract as AmEngine::send).
  void* put(int target, HandlerIdx h, std::size_t n);

  // Sends `target`'s staged messages as one frame; false if nothing staged.
  bool flush(int target);

  // Flushes every target with staged traffic; returns frames sent.
  int flush_all();

  std::size_t pending_bytes(int target) const { return bufs_[target].used; }
  std::uint32_t pending_msgs(int target) const { return bufs_[target].msgs; }

  struct Stats {
    std::uint64_t msgs = 0;              // messages staged
    std::uint64_t frames = 0;            // frames flushed
    std::uint64_t flushes_capacity = 0;  // forced by size/count caps
    std::uint64_t flushes_explicit = 0;  // flush()/flush_all() with traffic
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Buf {
    std::unique_ptr<std::byte[]> bytes;  // allocated on first use
    std::size_t used = 0;
    std::uint32_t msgs = 0;
    // Uniform-handler tracking: frames whose sub-messages all target one
    // handler are eligible for whole-frame sink delivery at the receiver.
    HandlerIdx handler = 0;
    bool uniform = true;
  };

  bool flush_buf(int target, Buf& b);

  AmEngine* eng_;
  std::vector<Buf> bufs_;  // one per target rank
  std::size_t max_bytes_;
  std::uint32_t max_msgs_;
  std::size_t max_msg_bytes_;
  bool enabled_;
  Stats stats_;
};

}  // namespace gex
