#include "gex/runtime.hpp"

#include "gex/agg.hpp"
#include "gex/rma_am.hpp"
#include "gex/socket.hpp"
#include "gex/xfer.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

namespace gex {

namespace {
thread_local Rank* tls_rank = nullptr;

// Runs the SPMD body on one rank with enter/exit barriers so that no rank
// communicates before every inbox ring exists and none tears down while
// peers may still send to it.
int run_rank(Arena* arena, int r, const std::function<void()>& fn) {
  Rank rank;
  rank.me = r;
  rank.arena = arena;
  AmEngine engine(arena, r);
  rank.am = &engine;
  Aggregator aggregator(&engine);
  rank.agg = &aggregator;
  // Wire selection: on the am wire the engine's chunk movers are the AM
  // protocol; on the direct wire the engine keeps its built-in memcpy.
  // AM-wire chunks are additionally clamped so window × chunk (the
  // in-flight bounce staging) stays cache-sized — explicit smaller test
  // chunkings still win through the min().
  rank.rma_wire_am = resolve_rma_wire(arena->config()) == RmaWire::kAm;
  const std::size_t chunk_bytes =
      rank.rma_wire_am ? std::min(arena->config().xfer_chunk_bytes,
                                  arena->config().am_xfer_chunk_bytes)
                       : arena->config().xfer_chunk_bytes;
  XferEngine xfer_engine(chunk_bytes, arena->config().sim_bw_gbps);
  rank.xfer = &xfer_engine;
  RmaAmProtocol rma_am_proto(&engine, resolve_am_window(arena->config()),
                             resolve_am_rtt_envelope(arena->config()));
  rank.rma_am = &rma_am_proto;
  if (rank.rma_wire_am) xfer_engine.set_wire(rma_am_proto.wire_ops());
  tls_rank = &rank;
  arena->world_barrier();
  int rc = 0;
  try {
    fn();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gex: rank %d terminated with exception: %s\n", r,
                 e.what());
    // signal_error (not a bare flag store): isolated socket ranks must also
    // tell peers that cannot see this mapping.
    arena->signal_error();
    rc = 1;
  } catch (...) {
    std::fprintf(stderr, "gex: rank %d terminated with unknown exception\n",
                 r);
    arena->signal_error();
    rc = 1;
  }
  // Drain any stragglers so peers blocked on a full ring can finish, then
  // synchronize teardown. If some rank failed we skip the barrier to avoid
  // hanging on a rank that never arrives. In-flight transfers land first
  // (upcxx teardown already drained its own; this covers raw-gex users),
  // then staged aggregation frames go out — peers may still be waiting on
  // them. On the am wire the engine's acks arrive through the AM engine,
  // so the drain loop drives the whole stack, not just the XferEngine —
  // and must give up when a peer failed (its acks will never come).
  while ((!xfer_engine.idle() || !rma_am_proto.idle()) &&
         arena->control().error_flag.value.load(std::memory_order_acquire) ==
             0) {
    xfer_engine.poll(1 << 20);
    engine.poll();
    rma_am_proto.poll();
  }
  // Gave up because a peer failed: its acks will never retire our credits.
  // Release them and cancel queued/in-flight requests now, or the polls
  // below would keep trying to send into the dead rank's (possibly full)
  // ring and hang the survivors.
  if (arena->control().error_flag.value.load(std::memory_order_acquire) != 0)
    rma_am_proto.fail_all_peers();
  aggregator.flush_all();
  for (int i = 0; i < 64; ++i) {
    engine.poll();
    rma_am_proto.poll();
  }
  // Transports with buffered tx (socket) may still hold committed records
  // in user-space queues; push them onto the wire before the barrier, or a
  // peer could pass the barrier and tear down while our bytes are queued.
  while (!engine.transport().tx_quiesced() &&
         arena->control().error_flag.value.load(std::memory_order_acquire) ==
             0)
    engine.poll();
  if (arena->control().error_flag.value.load(std::memory_order_acquire) == 0)
    arena->world_barrier();
  tls_rank = nullptr;
  return rc;
}

// One isolated socket rank: this process IS rank `me` of an nranks-wide
// job whose peers live in other processes (spawned by upcxx-run or by
// launch_socket_isolated below). Bootstraps through the launcher, builds a
// private arena at the agreed fixed base, and installs the SocketRuntime
// as the arena's control plane so barriers and error propagation travel
// over the bootstrap connection.
int launch_socket_worker(const Config& cfg, const std::function<void()>& fn,
                         int me, int boot_port) {
  SocketRuntime* rt = SocketRuntime::create(me, cfg.ranks, boot_port);
  set_active_socket_runtime(rt);
  Arena* arena = Arena::create_private(cfg);
  arena->set_control_plane(rt);
  const int rc = run_rank(arena, me, fn) == 0 ? 0 : 1;
  // Tell the launcher we finished (either way) before closing anything —
  // EOF without a BYE reads as a crash.
  rt->bye(rc);
  Arena::destroy(arena);
  set_active_socket_runtime(nullptr);
  delete rt;
  return rc;
}

// Isolated-mode in-process launcher (UPCXX_SOCKET_ISOLATED with the
// process backend): forks one process per rank like the plain process
// backend, but ranks share no arena — each builds its own private mapping
// and all traffic rides the socket transport, which is exactly what
// upcxx-run does across binaries. Used by tests to exercise the
// no-shared-memory path without exec.
int launch_socket_isolated(const Config& cfg,
                           const std::function<void()>& fn) {
  BootstrapServer boot(cfg.ranks);
  std::vector<pid_t> kids;
  kids.reserve(cfg.ranks);
  for (int r = 0; r < cfg.ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      const int rc = launch_socket_worker(cfg, fn, r, boot.port());
      std::fflush(stdout);
      std::fflush(stderr);
      ::_exit(rc);
    }
    if (pid < 0) {
      std::perror("gex: fork");
      std::abort();
    }
    kids.push_back(pid);
  }
  return boot.serve(kids);
}

}  // namespace

Rank* self() { return tls_rank; }

void bind_self(Rank* r) { tls_rank = r; }

int rank_me() {
  assert(tls_rank && "called outside an SPMD region");
  return tls_rank->me;
}

int rank_n() {
  assert(tls_rank && "called outside an SPMD region");
  return tls_rank->arena->nranks();
}

Arena& arena() {
  assert(tls_rank);
  return *tls_rank->arena;
}

AmEngine& am() {
  assert(tls_rank);
  return *tls_rank->am;
}

Aggregator& agg() {
  assert(tls_rank);
  return *tls_rank->agg;
}

XferEngine& xfer() {
  assert(tls_rank);
  return *tls_rank->xfer;
}

RmaAmProtocol& rma_am() {
  assert(tls_rank);
  return *tls_rank->rma_am;
}

int launch(const Config& cfg, const std::function<void()>& fn) {
  // Spawned by upcxx-run: this process is one isolated rank of a wider
  // job, whatever the binary's own launch arguments say.
  if (const char* sr = std::getenv("UPCXX_SOCKET_RANK")) {
    const char* bp = std::getenv("UPCXX_SOCKET_BOOTSTRAP");
    if (!bp) {
      std::fprintf(stderr,
                   "gex: UPCXX_SOCKET_RANK set without "
                   "UPCXX_SOCKET_BOOTSTRAP\n");
      return 1;
    }
    Config c = cfg;
    c.normalize();
    return launch_socket_worker(c, fn, std::atoi(sr), std::atoi(bp));
  }
  // Explicit isolated mode: fork ranks that share nothing.
  if (cfg.socket_isolated && cfg.backend == Backend::kProcess &&
      resolve_am_transport(cfg) == AmTransport::kSocket) {
    Config c = cfg;
    c.normalize();
    return launch_socket_isolated(c, fn);
  }
  Arena* arena = Arena::create(cfg);
  int failures = 0;

  if (cfg.backend == Backend::kThread) {
    std::atomic<int> fail_count{0};
    std::vector<std::thread> threads;
    threads.reserve(cfg.ranks);
    for (int r = 0; r < cfg.ranks; ++r) {
      threads.emplace_back([&, r] {
        if (run_rank(arena, r, fn) != 0)
          fail_count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
    failures = fail_count.load();
  } else {
    std::vector<pid_t> kids;
    kids.reserve(cfg.ranks);
    for (int r = 0; r < cfg.ranks; ++r) {
      pid_t pid = ::fork();
      if (pid == 0) {
        int rc = run_rank(arena, r, fn);
        // _exit skips stdio teardown; flush so rank output survives when
        // stdout is a pipe (block-buffered).
        std::fflush(stdout);
        std::fflush(stderr);
        ::_exit(rc == 0 ? 0 : 1);
      }
      if (pid < 0) {
        std::perror("gex: fork");
        std::abort();
      }
      kids.push_back(pid);
    }
    for (pid_t pid : kids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
    }
  }

  if (arena->control().error_flag.value.load() != 0 && failures == 0)
    failures = 1;
  Arena::destroy(arena);
  return failures;
}

int launch_env(const std::function<void()>& fn) {
  return launch(Config::from_env(), fn);
}

}  // namespace gex
