// Active-message engine: the substrate's counterpart of GASNet-EX AMs.
//
// Wire format v2 (message layer v2): records carry a 16-bit index into the
// handler registry (handlers.hpp) — never a raw function pointer — plus an
// opaque payload. Three record kinds travel through a target's inbox ring:
//
//   eager       payload inline in the ring, up to Config::eager_max bytes.
//   rendezvous  payload staged in the global shared heap; the ring carries
//               only a descriptor (same two-protocol split real conduits
//               use; the subject of the abl_am_protocol bench).
//   frame       one ring transaction carrying N packed sub-messages, each
//               with its own handler index (agg.hpp builds these). The
//               receive side copies the frame out of the ring once and all
//               sub-messages share that one buffer.
//
// Handler rules (same as GASNet): handlers run inside poll() on the target
// rank, must not block and must not initiate communication. For eager
// messages the payload lives in ring memory and must be consumed before the
// handler returns; rendezvous handlers may adopt() the heap buffer and free
// it later with release_rendezvous(); frame sub-message handlers may
// adopt_frame() to keep the shared frame buffer alive past the handler
// (release with release_frame()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/ring.hpp"
#include "gex/arena.hpp"
#include "gex/handlers.hpp"
#include "gex/transport.hpp"

namespace gex {

class AmEngine;

// ------------------------------------------------------------- wire format

// Record flags.
inline constexpr std::uint16_t kWireRendezvous = 1;
inline constexpr std::uint16_t kWireFrame = 2;
// Every sub-message of the frame targets the same handler (stored in the
// wire header); eligible for whole-frame sink delivery.
inline constexpr std::uint16_t kWireUniform = 4;

// Public (rather than an AmEngine private) so tests can statically verify
// that nothing pointer-shaped rides the ring.
struct WireHeader {
  HandlerIdx handler;   // registry index; ignored for frame records
  std::uint16_t flags;  // kWireRendezvous | kWireFrame
  std::int32_t src;     // sender world rank
  std::uint64_t send_ns;  // send timestamp (drives simulated latency)
};
static_assert(sizeof(WireHeader) == 16, "keep the per-message header small");

// Sub-message header inside a frame; payload follows, padded to
// kFrameAlign so the next header is naturally aligned.
struct FrameMsgHeader {
  HandlerIdx handler;
  std::uint16_t flags;  // reserved (frame sub-messages are always eager)
  std::uint32_t size;   // payload bytes, unpadded
};
static_assert(sizeof(FrameMsgHeader) == 8);

inline constexpr std::size_t kFrameAlign = 8;

struct RdzvDesc {
  // Shared-heap location as a (segment id, offset) wire address — decoded
  // against the receiver's own mapping, never a raw pointer (the same
  // contract as every RMA record since segment-offset addressing).
  WireAddr buf;
  std::uint64_t size;
};

// Frees a frame buffer reference taken with AmContext::adopt_frame().
void release_frame(void* handle);

// --------------------------------------------------------------- AmContext

struct AmContext {
  AmEngine* engine = nullptr;
  int src = -1;             // sender world rank
  void* data = nullptr;     // payload bytes
  std::size_t size = 0;     // payload byte count
  std::uint64_t send_ns = 0;  // send timestamp (drives simulated latency)
  bool is_rendezvous = false;
  bool in_frame = false;    // sub-message of a multi-message frame

  // Takes ownership of a rendezvous buffer; the engine will not free it.
  // Invalid for eager or frame messages (their storage is not individually
  // owned).
  void* adopt() {
    adopted = true;
    return data;
  }

  // Takes a shared reference on the frame buffer holding this sub-message:
  // `data` stays valid until the returned handle is passed to
  // release_frame(). Only valid when in_frame.
  void* adopt_frame();

  bool adopted = false;
  void* frame = nullptr;  // engine-internal frame buffer handle
};

// ---------------------------------------------------------------- AmEngine

class AmEngine {
 public:
  // Builds the engine on the transport resolved from arena->config()
  // (UPCXX_AM_TRANSPORT; gex/transport.hpp). The engine owns it.
  AmEngine(Arena* arena, int my_rank);
  ~AmEngine();

  int rank() const { return me_; }
  Arena& arena() { return *arena_; }
  Transport& transport() { return *transport_; }
  std::size_t eager_max() const { return eager_max_; }

  // Largest payload a single frame record may carry through the ring.
  std::size_t max_frame_payload() const {
    return transport_->max_record_payload() - sizeof(WireHeader);
  }

  // Largest payload prepare() can ship without the shared-heap rendezvous
  // path — i.e. inside one wire record. On transports whose peers cannot
  // read this rank's memory (socket), every payload must fit under this;
  // the RMA protocol caps its eager/staged decisions with it.
  std::size_t inline_max() const {
    return transport_->max_record_payload() - sizeof(WireHeader);
  }

  // Two-phase zero-copy send: reserve space for `n` payload bytes addressed
  // to `target`, serialize into .data, then commit(). Never fails; if the
  // target ring is full the call polls its own inbox while spinning, which
  // guarantees progress (every rank stuck sending still drains its inbox, so
  // some ring in the cycle eventually empties).
  //
  // may_poll = false marks a send issued off the consumer thread (an
  // injection-shard drain by a progress-pool helper): poll() is strictly
  // single-consumer, so a stalled reserve then only yields — the real
  // consumer keeps draining and eventually makes room. Senders that ARE
  // the consumer must leave it true or a cyclic backlog can deadlock.
  struct SendBuf {
    void* data = nullptr;
    std::size_t size = 0;

   private:
    friend class AmEngine;
    Transport::Ticket ticket;  // eager path
    int target = -1;
    HandlerIdx handler = 0;
    bool rendezvous = false;
    bool frame = false;
    bool uniform = false;
    bool may_poll = true;  // carried into commit's rendezvous reserve spin
  };
  SendBuf prepare(int target, HandlerIdx h, std::size_t n,
                  bool may_poll = true);
  void commit(SendBuf& sb);

  // Reserves a frame record of `n` payload bytes (packed sub-messages, laid
  // out by gex::Aggregator). Always travels inline through the ring; n must
  // be <= max_frame_payload(). When every staged sub-message targets one
  // handler, pass it as uniform_handler (with uniform = true) so the
  // receiver can hand the whole frame to a sink in one call.
  SendBuf prepare_frame(int target, std::size_t n,
                        HandlerIdx uniform_handler, bool uniform,
                        bool may_poll = true);

  // Registers a whole-frame delivery sink for uniform frames addressed to
  // handler `h`: instead of one handler call per sub-message, poll() makes
  // one sink call per frame (cx.data/cx.size cover the packed sub-message
  // region, cx.in_frame is set, and the frame buffer is adoptable). The
  // upcxx layer uses this to stage an entire frame with one allocation and
  // one deferred-dispatch entry. One sink per engine.
  using FrameSink = void (*)(AmContext&);
  void set_frame_sink(HandlerIdx h, FrameSink sink) {
    sink_handler_ = h;
    sink_ = sink;
  }

  // Convenience single-shot send.
  void send(int target, HandlerIdx h, const void* data, std::size_t n);

  // Keyed small-value allgather over `group` (n world ranks, this rank
  // among them): every member calls exchange with an agreed key and the
  // same group in the same order; on return `out` holds n*bytes with
  // member i's contribution at offset i*bytes. Self-synchronizing — each
  // member's value travels as an AM, and the call polls until all have
  // arrived — so it needs no shared scratch memory and works on every
  // transport (it replaces the arena scratch-slot exchanges that assumed a
  // shared mapping). Keys must be unique among concurrent exchanges and
  // agreed across the group (e.g. hash of a team id and a collective
  // counter). Bails out early, zero-filling missing slots, if the job
  // error flag rises.
  void exchange(std::uint64_t key, const int* group, std::size_t n,
                const void* mine, std::size_t bytes, void* out);

  // Drains up to max_msgs ring records from this rank's inbox, invoking
  // handlers (a frame record counts as one but may deliver many messages).
  // Returns the number of messages handled.
  int poll(int max_msgs = 64);

  // Frees a rendezvous buffer previously adopt()ed by a handler.
  void release_rendezvous(void* buf) { arena_->heap().deallocate(buf); }

  // Counters (per rank, for tests and the micro_am bench). Fields stay
  // plain u64 (printf-able); the engine bumps them through
  // arch::relaxed_inc since reserve/commit may run concurrently on
  // injector-drain threads. Read exactly after a quiesce, or via
  // arch::relaxed_load mid-run.
  struct Stats {
    std::uint64_t sent_eager = 0;
    std::uint64_t sent_rendezvous = 0;
    std::uint64_t sent_frames = 0;
    std::uint64_t received = 0;        // messages (frame sub-messages count)
    std::uint64_t received_frames = 0;
    std::uint64_t send_stalls = 0;  // times a reserve had to spin
  };
  const Stats& stats() const { return stats_; }

 private:
  static void on_exchange(AmContext& cx);

  Arena* arena_;
  int me_;
  std::unique_ptr<Transport> transport_;
  std::size_t eager_max_;
  HandlerIdx sink_handler_ = 0;
  FrameSink sink_ = nullptr;
  Stats stats_;
  // In-flight exchange() contributions, keyed by collective key then
  // sender rank. Touched only from poll handlers and exchange() itself
  // (consumer thread), so no lock.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<int, std::vector<std::byte>>>
      exchanges_;
};

}  // namespace gex
