// Active-message engine: the substrate's counterpart of GASNet-EX AMs.
//
// Messages carry a handler function pointer plus an opaque payload. Payloads
// up to Config::eager_max travel inline through the target's inbox ring
// ("eager"); larger payloads are written to the global shared heap and only a
// descriptor goes through the ring ("rendezvous") — the same two-protocol
// split real conduits use, and the subject of the abl_am_protocol bench.
//
// Handler rules (same as GASNet): handlers run inside poll() on the target
// rank, must not block and must not initiate communication. For eager
// messages the payload lives in ring memory and must be consumed before the
// handler returns; rendezvous handlers may adopt() the heap buffer and free
// it later with release_rendezvous().
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/ring.hpp"
#include "gex/arena.hpp"

namespace gex {

class AmEngine;

struct AmContext {
  AmEngine* engine = nullptr;
  int src = -1;             // sender world rank
  void* data = nullptr;     // payload bytes
  std::size_t size = 0;     // payload byte count
  std::uint64_t send_ns = 0;  // send timestamp (drives simulated latency)
  bool is_rendezvous = false;

  // Takes ownership of a rendezvous buffer; the engine will not free it.
  // Invalid for eager messages (their storage is the ring).
  void* adopt() {
    adopted = true;
    return data;
  }
  bool adopted = false;
};

using AmHandler = void (*)(AmContext&);

class AmEngine {
 public:
  AmEngine(Arena* arena, int my_rank)
      : arena_(arena),
        me_(my_rank),
        eager_max_(arena->config().eager_max) {}

  int rank() const { return me_; }
  Arena& arena() { return *arena_; }
  std::size_t eager_max() const { return eager_max_; }

  // Two-phase zero-copy send: reserve space for `n` payload bytes addressed
  // to `target`, serialize into .data, then commit(). Never fails; if the
  // target ring is full the call polls its own inbox while spinning, which
  // guarantees progress (every rank stuck sending still drains its inbox, so
  // some ring in the cycle eventually empties).
  struct SendBuf {
    void* data = nullptr;
    std::size_t size = 0;

   private:
    friend class AmEngine;
    arch::MpscByteRing::Ticket ticket;  // eager path
    int target = -1;
    AmHandler handler = nullptr;
    bool rendezvous = false;
  };
  SendBuf prepare(int target, AmHandler h, std::size_t n);
  void commit(SendBuf& sb);

  // Convenience single-shot send.
  void send(int target, AmHandler h, const void* data, std::size_t n);

  // Drains up to max_msgs from this rank's inbox, invoking handlers.
  // Returns the number of messages handled.
  int poll(int max_msgs = 64);

  // Frees a rendezvous buffer previously adopt()ed by a handler.
  void release_rendezvous(void* buf) { arena_->heap().deallocate(buf); }

  // Counters (per rank, for tests and the micro_am bench).
  struct Stats {
    std::uint64_t sent_eager = 0;
    std::uint64_t sent_rendezvous = 0;
    std::uint64_t received = 0;
    std::uint64_t send_stalls = 0;  // times a reserve had to spin
  };
  const Stats& stats() const { return stats_; }

 private:
  struct WireHeader {
    AmHandler handler;
    std::int32_t src;
    std::uint32_t flags;  // bit 0: rendezvous
    std::uint64_t send_ns;
  };
  struct RdzvDesc {
    void* buf;
    std::uint64_t size;
  };

  Arena* arena_;
  int me_;
  std::size_t eager_max_;
  Stats stats_;
};

}  // namespace gex
