// Asynchronous data-motion engine — the substrate's bulk-transfer path and
// the paper's actQ (§III) made real.
//
// Large RMA transfers are decomposed into pipelined chunks held in
// *per-target channels* and drained by *internal* progress with bounded
// work per poll. The initiating call returns immediately after queueing;
// the actual data motion happens inside later poll() calls made by
// whichever thread holds the rank's master persona — so a dedicated
// progress-thread persona gives true communication/computation overlap on
// multicore, which is the property bench/abl_overlap.cpp measures.
//
// Channels: transfers to one target form a FIFO (chunks of transfer N+1
// never start before transfer N's finish), but *different* targets'
// channels advance independently — poll() deals its chunk budget round-
// robin across channels with queued work, so a saturated or slow link to
// one target never head-of-line-blocks traffic to another. Each channel
// owns its own virtual wire clock (per-link bandwidth: Config::sim_bw_gbps
// is the per-channel default, overridable per target with
// set_link_bw_gbps()).
//
// Wires: the engine decides *when* each chunk moves; a pluggable wire
// decides *how* (WireOps below). The built-in direct wire is an
// initiator-side memcpy into the cross-mapped arena — synchronous,
// zero-allocation, remotely visible on return. The AM wire
// (gex/rma_am.hpp, selected by UPCXX_RMA_WIRE=am) ships each chunk as an
// active-message put/get request and completes it when the target's ack
// arrives; the engine's completion pipeline is identical either way.
//
// Two completion signals per transfer, always in this order:
//   on_source — every byte has been read out of the source buffer (the
//               initiator may reuse it: UPC++ source completion). On the
//               direct wire this means the memcpys happened; on the AM
//               wire it means every chunk's payload was copied into the
//               wire (ring or staging heap).
//   on_landed — every byte is visible at the destination (direct: copied;
//               am: acked by the target) AND the simulated wire has
//               delivered it (see the bandwidth model below). The upcxx
//               layer sends remote_cx notifications and schedules
//               operation completion from this callback, so remote RPCs
//               never observe partially-landed data.
//
// Bandwidth model: with a channel's bw_gbps > 0 the channel maintains a
// virtual wire clock. Each chunk issued at real time t advances the clock
// by chunk_bytes / bw; a transfer "lands" only once the clock entry of its
// last chunk has passed. Copies themselves are never delayed (the memory
// system is the real wire here, exactly as GASNet PSHM), so the model
// caps *reported* bandwidth without serializing the actual data motion —
// fig3_rma_bandwidth uses this to produce a real bandwidth curve.
//
// Threading: split issue ownership. The rank's progress persona (worker 0
// of a progress_pool, or the sole master-persona holder) owns submission,
// the budget dealer (poll), the drains, and every user-visible callback;
// progress-pool helpers run *chunk issue* for disjoint targets in parallel
// through issue_pass(). Each channel carries a spinlock held across its
// head chunk's wire call — one issuer per channel at a time — and every
// acquisition anywhere is a try_lock: a busy channel is skipped, never
// waited on. A submit that finds its channel busy parks the transfer on a
// worker-0-local deferred queue drained at the next poll (per-target FIFO
// is preserved: once anything is deferred, later submits park behind it).
// Helpers never run user code: a helper-issued final chunk leaves
// on_source parked on the landing queue, and worker 0's retire sweep
// fires it — source still strictly before that transfer's on_landed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "arch/small_fn.hpp"
#include "arch/spinlock.hpp"

namespace gex {

class XferEngine {
 public:
  using Callback = arch::UniqueFunction<void()>;

  // Chunks issued per poll() by default: bounds the work one internal
  // progress call performs so injection-heavy loops stay responsive.
  static constexpr int kDefaultChunkBudget = 4;

  // A pluggable chunk mover. Each op transports one chunk to/from `target`
  // and must invoke `done` exactly once when the chunk's data is remotely
  // visible — synchronously (the direct wire) or from a later engine/AM
  // poll (the AM wire, once the target's ack arrives). put_chunk must
  // consume `src` before returning (the engine fires on_source when the
  // last chunk has been issued); get_chunk must have written `dst` by the
  // time it calls done. An optional `ready` predicate lets the wire apply
  // back-pressure: while ready(target) is false the engine holds that
  // channel's chunks (they cost nothing in the engine — the source buffer
  // is pinned until on_source) instead of pushing them into a wire that
  // would have to buffer or block. The AM wire reports false while its
  // credit window to the target is full.
  struct WireOps {
    arch::UniqueFunction<void(int target, void* dst, const void* src,
                              std::size_t bytes, Callback done)>
        put_chunk;
    arch::UniqueFunction<void(int target, void* dst, const void* src,
                              std::size_t bytes, Callback done)>
        get_chunk;
    arch::UniqueFunction<bool(int target)> ready;  // null = always ready
    // Chunks the wire will accept toward `target` right now — the AM
    // wire's *adaptive* credit window (window_now) minus its in-flight
    // requests, rather than any static ceiling. Null = unmetered. poll()
    // deals its per-poll budget against this, so quota a throttled
    // channel cannot convert flows to other channels in the same poll
    // instead of dying with the throttled one.
    arch::UniqueFunction<std::uint32_t(int target)> credits;
  };

  // chunk_bytes: pipelining granularity (Config::xfer_chunk_bytes).
  // bw_gbps: default per-channel simulated wire bandwidth in GB/s;
  // 0 disables the model.
  XferEngine(std::size_t chunk_bytes, double bw_gbps);

  // Installs a wire (replacing the built-in direct memcpy). Must happen
  // before any submit().
  void set_wire(WireOps ops) { wire_.emplace(std::move(ops)); }
  bool wire_is_direct() const { return !wire_.has_value(); }

  // Overrides the simulated bandwidth of the link to `target` (per-link
  // cap; other links keep the engine default).
  void set_link_bw_gbps(int target, double gbps);

  // Queues an asynchronous move of `bytes` between this rank and `target`
  // (is_get: dst is local, src remote; otherwise src is local, dst
  // remote). No data moves inside this call. Both buffers must stay valid
  // until on_source (src) / on_landed (dst) fire. Either callback may be
  // empty. extra_landing_ns adds a fixed toll to the transfer's landing
  // time on top of the wire clock — the simulated-PCIe cost of a
  // device-kind copy() composes with the wire model through it.
  // Progress-persona-only (helpers issue, they never submit).
  void submit(int target, void* dst, const void* src, std::size_t bytes,
              Callback on_source, Callback on_landed, bool is_get = false,
              std::uint64_t extra_landing_ns = 0);

  // Bounded internal progress: issues at most `chunk_budget` chunks across
  // channels with queued work (per-channel FIFO is preserved), and fires
  // every due completion callback. The budget is dealt in two passes:
  // first bandwidth-proportionally — each eligible channel gets a share
  // scaled by its link bandwidth (minimum one chunk), so a fast link stays
  // saturated while a clock-bound capped link gets just enough to keep its
  // virtual wire busy — then any leftover budget goes round-robin to
  // channels that still have work. Channels whose wire reports not-ready
  // are skipped entirely (see WireOps::ready). Returns the number of
  // chunks issued plus callbacks fired; 0 means there was nothing
  // actionable.
  int poll(int chunk_budget = kDefaultChunkBudget);

  // Helper-side chunk issue: a progress-pool helper calls this with its
  // slice (channels whose snapshot index is congruent to `slice` mod
  // `nslices`) and issues up to chunk_budget chunks on channels it can
  // try-lock, subject to the same wire readiness and credit metering as
  // poll(). No callback ever fires here — a transfer that finishes
  // issuing parks its on_source for worker 0's retire sweep — so the
  // wire calls (payload staging memcpys on the AM wire, the whole data
  // motion on the direct wire) are the only work that moves off the
  // progress persona. Returns chunks issued.
  int issue_pass(int chunk_budget, std::size_t slice, std::size_t nslices);

  // Issues every queued chunk the wire will currently accept (unbounded,
  // but a not-ready wire stops its channel's drain — the caller must keep
  // polling the wire's ack path and re-invoking until copies_pending() is
  // false; upcxx's barrier entry does). Fires the source callbacks as
  // transfers finish issuing; wire-time and ack gating of on_landed still
  // apply. Used at barrier entry so the pre-engine "data visible once
  // issued before a barrier" ordering survives (on the AM wire the
  // requests are then in the target's inbox ahead of any barrier
  // message), and at teardown.
  void drain_copies();

  // Spins poll() until nothing is in flight (teardown; under the bandwidth
  // model this waits out the virtual wire clock). On the AM wire this only
  // completes if acks keep arriving — drive AmEngine::poll and
  // RmaAmProtocol::poll alongside (upcxx::progress does; run_rank's
  // teardown loop does for raw-gex users).
  void drain_all();

  bool idle() const;
  std::size_t inflight() const;
  // True while chunks remain to be issued (as opposed to issued transfers
  // merely waiting out acks or the virtual wire clock). Progress-thread
  // loops use this to yield instead of hot-spinning when the engine only
  // needs an occasional clock check.
  bool copies_pending() const;

  std::size_t chunk_bytes() const { return chunk_bytes_; }
  double bw_gbps() const { return bw_gbps_; }
  std::size_t channel_count() const;
  // Chunks not yet issued on the link to `target` (budget-scaling tests;
  // call quiesced — it takes the channel lock blocking).
  std::size_t pending_chunks(int target) const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t chunks_copied = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t landed = 0;
    std::uint64_t max_inflight = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Xfer {
    std::byte* dst;
    const std::byte* src;
    std::size_t bytes;
    std::size_t off;  // bytes issued so far
    bool is_get;
    Callback on_source;
    Callback on_landed;
    std::uint64_t extra_landing_ns;
    std::uint64_t landed_due_ns;  // virtual wire time of the last chunk
    // Chunks issued on a non-direct wire whose done has not fired yet.
    // Null on the direct wire (chunks complete synchronously — the
    // zero-allocation fast path keeps holding). Atomic: a helper issues
    // the chunk (increment), the consumer's ack path retires it.
    std::shared_ptr<std::atomic<std::uint32_t>> unacked;
  };

  // One target's lane: its own FIFO pair and its own wire clock.
  struct Channel {
    int target = -1;
    double ns_per_byte = 0;  // 0 when the bandwidth model is off
    // Head transfer is being chunked out; the rest wait. Separate landing
    // queue for issued transfers awaiting acks / the virtual wire clock
    // (due times are monotone per channel, so FIFO).
    std::deque<Xfer> active_;
    std::deque<Xfer> landing_;
    std::uint64_t wire_free_ns_ = 0;
    // Mirror of active_.size(): lock-free "anything to issue here?" peeks
    // by the budget passes, so a channel another thread is working is
    // never touched without its lock.
    std::atomic<std::size_t> active_n{0};
    // Issue ownership: held across the head chunk's wire call. Every
    // acquisition on a hot path is a try_lock (see header comment).
    arch::Spinlock mu;
  };

  // Lock-free lookup is impossible while channels appear lazily, so every
  // traversal goes through a pointer snapshot taken under channels_mu_;
  // Channel objects themselves are stable (unique_ptr) for the engine's
  // lifetime.
  Channel& channel(int target);
  std::vector<Channel*> snapshot() const;

  // Weight of an uncapped link in the bandwidth-proportional budget split:
  // effectively "memcpy speed", far above any modeled link, so uncapped
  // channels absorb the budget a clock-bound capped link cannot use.
  static constexpr double kUncappedWeightGbps = 128.0;

  bool wire_ready(const Channel& ch) {
    return !wire_ || !wire_->ready || wire_->ready(ch.target);
  }
  double link_weight(const Channel& ch) const {
    return ch.ns_per_byte > 0 ? 1.0 / ch.ns_per_byte : kUncappedWeightGbps;
  }

  // Issues the next chunk of the channel's head transfer (ch.mu held by
  // the caller). When the last byte goes out the transfer moves to
  // landing_; its on_source is appended to `sources` for the caller to
  // fire after dropping the lock, or — `sources` null (helper path) —
  // left parked on the landing entry for worker 0's retire sweep.
  void issue_one_chunk(Channel& ch, std::vector<Callback>* sources);
  // Worker 0 only: collects helper-parked on_source callbacks and every
  // due on_landed under a try-locked ch.mu, fires them after release
  // (source before landed per transfer). Returns callbacks fired.
  int retire_landed(Channel& ch);
  // Worker 0 only: re-places deferred submits onto their channels in
  // order, stopping at the first busy channel. Returns transfers placed.
  int flush_deferred();

  std::size_t chunk_bytes_;
  double bw_gbps_;
  double ns_per_byte_;  // 0 when the bandwidth model is off

  std::optional<WireOps> wire_;
  // Few targets; linear scan under channels_mu_ (guards the container
  // only, never held while taking a channel lock). unique_ptr entries so
  // Channel stays put — and needs no move ctor despite its lock/atomics —
  // while completion callbacks grow the set mid-traversal.
  std::vector<std::unique_ptr<Channel>> channels_;
  mutable arch::Spinlock channels_mu_;
  std::size_t rr_ = 0;  // round-robin start cursor (worker 0 only)

  // Worker-0-local: transfers whose channel was busy at submit time, and
  // submits arriving from wire-call recursion while worker 0 itself holds
  // a channel lock (an AM handler running user code that calls rput).
  std::deque<std::pair<int, Xfer>> deferred_submits_;

  // Transfer population counters so idle()/inflight()/copies_pending()
  // never walk queues other threads may be mutating. active: submitted
  // (incl. deferred) and not yet fully issued; inflight: not yet retired.
  std::atomic<std::size_t> active_count_{0};
  std::atomic<std::size_t> inflight_count_{0};

  Stats stats_;
};

}  // namespace gex
