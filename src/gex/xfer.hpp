// Asynchronous data-motion engine — the substrate's bulk-transfer path and
// the paper's actQ (§III) made real.
//
// Large RMA transfers are decomposed into pipelined chunks held in a
// per-rank in-flight list and drained by *internal* progress with bounded
// work per poll. The initiating call returns immediately after queueing;
// the actual memcpys happen inside later poll() calls made by whichever
// thread holds the rank's master persona — so a dedicated progress-thread
// persona gives true communication/computation overlap on multicore, which
// is the property bench/abl_overlap.cpp measures.
//
// Two completion signals per transfer, always in this order:
//   on_source — every byte has been read out of the source buffer (the
//               initiator may reuse it: UPC++ source completion);
//   on_landed — every byte is visible at the destination AND the simulated
//               wire has delivered it (see the bandwidth model below). The
//               upcxx layer sends remote_cx notifications and schedules
//               operation completion from this callback, so remote RPCs
//               never observe partially-landed data.
//
// Bandwidth model: with Config::sim_bw_gbps > 0 the engine maintains a
// virtual wire clock. Each chunk copied at real time t advances the clock
// by chunk_bytes / bw; a transfer "lands" only once the clock entry of its
// last chunk has passed. Copies themselves are never delayed (the memory
// system is the real wire here, exactly as GASNet PSHM), so the model
// caps *reported* bandwidth without serializing the actual data motion —
// fig3_rma_bandwidth uses this to produce a real bandwidth curve.
//
// Threading: the engine is owned by the rank and must only be touched by
// the thread currently holding the rank's master persona (the same
// discipline as AmEngine). It is not internally locked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "arch/small_fn.hpp"

namespace gex {

class XferEngine {
 public:
  using Callback = arch::UniqueFunction<void()>;

  // Chunks copied per poll() by default: bounds the work one internal
  // progress call performs so injection-heavy loops stay responsive.
  static constexpr int kDefaultChunkBudget = 4;

  // chunk_bytes: pipelining granularity (Config::xfer_chunk_bytes).
  // bw_gbps: simulated wire bandwidth in GB/s; 0 disables the model.
  XferEngine(std::size_t chunk_bytes, double bw_gbps);

  // Queues an asynchronous move of `bytes` from src to dst. No data moves
  // inside this call. Both buffers must stay valid until on_source
  // (src) / on_landed (dst) fire. Either callback may be empty.
  void submit(void* dst, const void* src, std::size_t bytes,
              Callback on_source, Callback on_landed);

  // Bounded internal progress: copies at most `chunk_budget` chunks (in
  // submission order — per-initiator FIFO is preserved) and fires every
  // due completion callback. Returns the number of chunks copied plus
  // callbacks fired; 0 means there was nothing actionable.
  int poll(int chunk_budget = kDefaultChunkBudget);

  // Forces every queued byte onto the wire now (unbounded copying) and
  // fires the source callbacks. Wire-time gating of on_landed still
  // applies. Used at barrier entry so the pre-engine "data visible once
  // issued before a barrier" ordering survives, and at teardown.
  void drain_copies();

  // Spins poll() until nothing is in flight (teardown; under the bandwidth
  // model this waits out the virtual wire clock).
  void drain_all();

  bool idle() const { return active_.empty() && landing_.empty(); }
  std::size_t inflight() const { return active_.size() + landing_.size(); }
  // True while chunk copies remain to be performed (as opposed to copied
  // transfers merely waiting out the virtual wire clock). Progress-thread
  // loops use this to yield instead of hot-spinning when the engine only
  // needs an occasional clock check.
  bool copies_pending() const { return !active_.empty(); }

  std::size_t chunk_bytes() const { return chunk_bytes_; }
  double bw_gbps() const { return bw_gbps_; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t chunks_copied = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t landed = 0;
    std::uint64_t max_inflight = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Xfer {
    std::byte* dst;
    const std::byte* src;
    std::size_t bytes;
    std::size_t off;  // bytes copied so far
    Callback on_source;
    Callback on_landed;
    std::uint64_t landed_due_ns;  // virtual wire time of the last chunk
  };

  // Copies the next chunk of the head transfer; fires on_source and moves
  // the transfer to landing_ when its last byte is out.
  void copy_one_chunk();
  // Fires on_landed for every landing_ entry whose wire time has passed.
  int retire_landed();

  std::size_t chunk_bytes_;
  double bw_gbps_;
  double ns_per_byte_;  // 0 when the bandwidth model is off

  // The in-flight list (the paper's actQ): head transfer is being chunked
  // out; the rest wait. Separate landing queue for copied transfers whose
  // virtual wire time has not passed (due times are monotone, so FIFO).
  std::deque<Xfer> active_;
  std::deque<Xfer> landing_;
  std::uint64_t wire_free_ns_ = 0;

  Stats stats_;
};

}  // namespace gex
