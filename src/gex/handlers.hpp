// Active-message handler registry: stable small indices for AM handlers.
//
// The v1 wire carried raw `AmHandler` function pointers, which only works
// when every rank shares one address-space image (threads, or forks of one
// binary). v2 ships a 16-bit index into this table instead — the GASNet
// model, where handlers are registered up front and the wire format is
// position-independent, which is what unblocks future non-shared-address-
// space backends.
//
// Index agreement across ranks: registration must happen identically on
// every rank *before* any communication. The `am_handler<&fn>()` helper
// registers through a class-template static member whose dynamic
// initializer runs during static initialization (before main, hence before
// launch() spawns threads or forks), so every rank inherits one identical
// table regardless of backend. Calling register_am_handler() after fork
// from only some ranks is a programming error; the receive side aborts on
// an index it has never seen.
//
// Registered here besides the upcxx delivery handler: the AM RMA protocol
// (gex/rma_am.cpp) — put/get request, ack, and get-reply handlers that
// form the `am` data-motion wire behind UPCXX_RMA_WIRE.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gex {

struct AmContext;
using AmHandler = void (*)(AmContext&);
using HandlerIdx = std::uint16_t;

inline constexpr std::size_t kMaxAmHandlers = 256;

// Registers h and returns its index. Idempotent: re-registering a handler
// returns the index it already holds. Thread-safe, but see the header
// comment — in practice all registration happens before launch().
HandlerIdx register_am_handler(AmHandler h, const char* name = nullptr);

// Resolves an index received off the wire. Aborts on an index that was
// never registered (wire corruption, or registration skew after fork).
AmHandler am_handler_at(HandlerIdx idx);

std::size_t am_handler_count();
const char* am_handler_name(HandlerIdx idx);  // may be null

// Static-init-time registration (see header comment).
template <AmHandler H>
struct AmHandlerReg {
  static const HandlerIdx idx;
};
template <AmHandler H>
const HandlerIdx AmHandlerReg<H>::idx = register_am_handler(H);

template <AmHandler H>
inline HandlerIdx am_handler() {
  return AmHandlerReg<H>::idx;
}

}  // namespace gex
