#include "gex/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "arch/timer.hpp"

namespace gex {

namespace {

// Frame header ahead of every record on the stream: [len][len ^ magic].
// 8 bytes so the record behind it stays 8-aligned in the staging buffer.
constexpr std::uint32_t kFrameMagic = 0x9E3779B9u;
// First 8 bytes of every data connection: {magic, sender world rank}.
constexpr std::uint32_t kPreambleMagic = 0x75506358u;  // "uPcX"
constexpr std::size_t kPreambleBytes = 8;
// Per-peer bound on user-space queued tx bytes; past it try_reserve
// returns a null ticket and the sender falls into its poll-retry loop.
constexpr std::size_t kTxBackpressure = 4u << 20;
// Exit code of a fault-injected mid-stream death (tests assert on it).
constexpr int kFaultDeathExit = 113;
// Most frames a single sendmsg gathers. Queues deeper than this drain in
// successive batches; 16 covers the bursts injection produces without an
// oversized on-stack iovec array.
constexpr std::size_t kTxIovBatch = 16;

struct FrameHdr {
  std::uint32_t len;
  std::uint32_t check;
};
static_assert(sizeof(FrameHdr) == 8);

int set_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  return fl < 0 ? -1 : ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

void die(const char* what) {
  std::perror(what);
  std::abort();
}

// Binds a loopback listen socket on an ephemeral port. Returns the fd;
// stores the chosen port. Non-blocking (the accept loop is epoll-driven).
int make_listen_socket(std::uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) die("gex: socket(listen)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    die("gex: bind(listen)");
  if (::listen(fd, 128) != 0) die("gex: listen");
  socklen_t alen = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0)
    die("gex: getsockname");
  if (set_nonblock(fd) != 0) die("gex: fcntl(listen)");
  *port_out = ntohs(addr.sin_port);
  return fd;
}

// Blocking full-buffer I/O on a possibly non-blocking fd (bootstrap
// traffic: tiny fixed-size messages, spinning on EAGAIN is fine).
bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (n) {
    const ssize_t w = ::write(fd, p, n);
    if (w > 0) {
      p += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EINTR || errno == EAGAIN)) {
      arch::cpu_relax();
      continue;
    }
    return false;
  }
  return true;
}

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  while (n) {
    const ssize_t r = ::read(fd, p, n);
    if (r > 0) {
      p += r;
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && (errno == EINTR || errno == EAGAIN)) {
      arch::cpu_relax();
      continue;
    }
    return false;  // EOF or hard error
  }
  return true;
}

std::uint64_t xorshift64(std::uint64_t* s) {
  std::uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

SocketRuntime* g_socket_runtime = nullptr;

}  // namespace

SocketRuntime* active_socket_runtime() { return g_socket_runtime; }
void set_active_socket_runtime(SocketRuntime* rt) { g_socket_runtime = rt; }

// ------------------------------------------------------------- transport

class SocketTransport final : public Transport {
 public:
  SocketTransport(Arena* arena, int me, SocketRuntime* rt)
      : arena_(arena),
        me_(me),
        nranks_(arena->nranks()),
        rt_(rt),
        max_rec_(arena->config().socket_max_record),
        tx_(static_cast<std::size_t>(arena->nranks())) {
    ep_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep_ < 0) die("gex: epoll_create1");
    if (rt_) {
      listen_fd_ = rt_->listen_fd();
      owns_listen_ = false;
    } else {
      std::uint16_t port = 0;
      listen_fd_ = make_listen_socket(&port);
      owns_listen_ = true;
      arena_->port_slot(me_).store(port, std::memory_order_release);
    }
    ep_add(listen_fd_, kEpListen, 0, EPOLLIN);
    if (rt_) {
      ep_add(rt_->bootstrap_fd(), kEpBoot, 0, EPOLLIN);
      rt_->attach(arena_, this);
    }
    // SIGPIPE-free writes to dying peers (MSG_NOSIGNAL is send()-only, so
    // all data writes below go through ::send).
    const auto& cfg = arena_->config();
    fault_on_ = cfg.socket_fault_seed != 0 ||
                cfg.socket_fault_short_write_pct != 0 ||
                cfg.socket_fault_short_read_pct != 0 ||
                cfg.socket_fault_die_rank >= 0;
    rng_ = cfg.socket_fault_seed ^
           (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(me + 1));
    if (rng_ == 0) rng_ = 1;
    short_write_pct_ = cfg.socket_fault_short_write_pct;
    short_read_pct_ = cfg.socket_fault_short_read_pct;
    die_here_ = cfg.socket_fault_die_rank == me;
    die_at_ = cfg.socket_fault_die_at;
  }

  ~SocketTransport() override {
    if (rt_) rt_->detach();
    for (RxConn* c : rx_) {
      if (!c) continue;
      ::close(c->fd);
      std::free(c->rec);
      delete c;
    }
    for (PeerTx& p : tx_) {
      if (p.fd >= 0) ::close(p.fd);
      for (TxBuf& b : p.q) std::free(b.data);
    }
    for (RxRec& r : ready_) std::free(r.base);
    if (owns_listen_) ::close(listen_fd_);
    ::close(ep_);
  }

  Ticket try_reserve(int target, std::size_t bytes) override {
    if (bytes > max_rec_) {
      std::fprintf(stderr,
                   "gex: socket record of %zu bytes exceeds "
                   "UPCXX_SOCKET_MAX_RECORD_KB (%zu)\n",
                   bytes, max_rec_);
      std::abort();
    }
    if (target != me_) {
      arch::SpinGuard g(mu_);
      PeerTx& p = tx_[static_cast<std::size_t>(target)];
      if (!p.dead && p.queued >= kTxBackpressure) {
        pump();
        if (!p.dead && p.queued >= kTxBackpressure) return Ticket{};
      }
    }
    // Private staging buffer; the frame header is filled in now so commit
    // (and the self-send path) can recover the record length from it.
    auto* base = static_cast<std::byte*>(std::malloc(sizeof(FrameHdr) + bytes));
    assert(base && "socket staging allocation failed");
    const FrameHdr h{static_cast<std::uint32_t>(bytes),
                     static_cast<std::uint32_t>(bytes) ^ kFrameMagic};
    std::memcpy(base, &h, sizeof h);
    return Ticket{base, base + sizeof(FrameHdr), target};
  }

  void commit(const Ticket& t) override {
    auto* base = static_cast<std::byte*>(t.h);
    FrameHdr h;
    std::memcpy(&h, base, sizeof h);
    const std::uint32_t total = static_cast<std::uint32_t>(sizeof h) + h.len;
    mu_.lock();
    if (die_here_ && die_at_ != 0 && ++committed_ == die_at_) die_torn(t, base, total);
    if (t.target == me_) {
      // Self sends bypass the wire entirely (the ring transports loop
      // through the own-inbox ring; here the "inbox" is the ready queue).
      ready_.push_back(RxRec{base, base + sizeof h, h.len});
      mu_.unlock();
      return;
    }
    PeerTx& p = tx_[static_cast<std::size_t>(t.target)];
    if (p.dead) {
      // Black hole: the peer is gone and the error flag already says so;
      // dropping the record keeps every reserve/commit caller loop-free.
      mu_.unlock();
      std::free(base);
      return;
    }
    if (p.fd < 0) connect_peer(t.target, p);
    p.q.push_back(TxBuf{base, total, 0});
    p.queued += total;
    flush(t.target, p);
    // Commit's contract matches the ring transports': when it returns, the
    // record has left this rank (handed to the kernel), not merely joined a
    // user-space queue. Without this, a rank that commits and then stops
    // polling — a collective root releasing a child and exiting its wait
    // loop, a barrier entrant parking in a pure atomic spin — strands the
    // record behind an in-flight connect or a short write, and the peer
    // waits forever. Pump the event loop until this peer's queue drains:
    // pumping also reads inbound bytes into ready_ (no handlers run), so
    // two ranks blocked here flooding each other still free each other's
    // kernel buffers; a vanished peer trips peer_lost(), which empties the
    // queue and marks it dead. The lock drops between iterations so the
    // consumer and concurrent injectors keep making progress while this
    // thread waits out a slow connect or a full kernel buffer (p is a
    // reference into tx_, which never resizes after construction).
    while (!p.dead && !p.q.empty()) {
      pump();
      if (!p.connecting && !p.q.empty()) flush(t.target, p);
      if (p.dead || p.q.empty()) break;
      mu_.unlock();
      arch::cpu_relax();
      mu_.lock();
    }
    mu_.unlock();
  }

  bool try_consume(RecordVisitor visit, void* cx) override {
    mu_.lock();
    if (ready_.empty()) pump();
    if (ready_.empty()) {
      mu_.unlock();
      return false;
    }
    RxRec r = ready_.front();
    ready_.pop_front();
    // Handlers run without the transport lock: they may re-enter the
    // engine (a handler-triggered poll or an injector thread's reserve).
    mu_.unlock();
    visit(r.rec, r.len, cx);
    std::free(r.base);
    return true;
  }

  std::size_t max_record_payload() const override { return max_rec_; }

  bool rx_empty() override {
    arch::SpinGuard g(mu_);
    pump();
    if (!ready_.empty()) return false;
    for (const RxConn* c : rx_)
      if (c && (c->rec_have || c->hdr_have)) return false;  // mid-frame
    return true;
  }

  bool shared_memory() const override { return false; }

  bool tx_quiesced() override {
    arch::SpinGuard g(mu_);
    pump();
    for (const PeerTx& p : tx_)
      if (!p.dead && !p.q.empty()) return false;
    return true;
  }

  const char* name() const override { return "socket"; }

  std::uint64_t tx_writev_batches() const override {
    return tx_writev_batches_.load(std::memory_order_relaxed);
  }

  // I/O progress without record delivery — the control-plane barrier
  // pumps this so launcher releases (and peer traffic) keep flowing while
  // the rank waits.
  void poll_io() {
    arch::SpinGuard g(mu_);
    pump();
  }

 private:
  enum : std::uint32_t { kEpListen = 0, kEpBoot = 1, kEpRx = 2, kEpTx = 3 };

  struct TxBuf {
    std::byte* data;
    std::uint32_t len;
    std::uint32_t off;
  };
  struct RxRec {
    std::byte* base;  // allocation to free after delivery
    std::byte* rec;   // 8-aligned record bytes
    std::uint32_t len;
  };
  struct PeerTx {
    int fd = -1;
    bool connecting = false;
    bool out_armed = false;
    bool dead = false;
    std::deque<TxBuf> q;
    std::size_t queued = 0;
  };
  // Inbound connection assembly state machine: preamble, then a stream of
  // [FrameHdr][record] with the record read straight into its own
  // allocation (16-aligned malloc keeps the u64 wire fields happy).
  struct RxConn {
    int fd = -1;
    int src = -1;
    std::byte pre[kPreambleBytes];
    std::uint32_t pre_have = 0;
    std::byte hdr[sizeof(FrameHdr)];
    std::uint32_t hdr_have = 0;
    std::byte* rec = nullptr;
    std::uint32_t rec_len = 0;
    std::uint32_t rec_have = 0;
  };

  void ep_add(int fd, std::uint32_t kind, std::uint32_t idx,
              std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = (static_cast<std::uint64_t>(kind) << 32) | idx;
    if (::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) != 0)
      die("gex: epoll_ctl(add)");
  }
  void ep_mod(int fd, std::uint32_t kind, std::uint32_t idx,
              std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = (static_cast<std::uint64_t>(kind) << 32) | idx;
    if (::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) != 0)
      die("gex: epoll_ctl(mod)");
  }

  std::uint16_t peer_port(int target) {
    if (rt_) return rt_->peer_port(target);
    // Shared arena: the peer publishes its port at transport construction,
    // which precedes the job's first world barrier — so by the time anyone
    // sends, the slot is set. The bounded spin covers engine-only tests
    // that skip the barrier.
    for (int spin = 0; spin < 30'000; ++spin) {
      const std::uint32_t p =
          arena_->port_slot(target).load(std::memory_order_acquire);
      if (p) return static_cast<std::uint16_t>(p);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::fprintf(stderr, "gex: rank %d never published a socket endpoint\n",
                 target);
    std::abort();
  }

  void connect_peer(int target, PeerTx& p) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) die("gex: socket(peer)");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(peer_port(target));
    p.fd = fd;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno != EINPROGRESS) {
        peer_lost(target, p);
        return;
      }
      p.connecting = true;
    }
    ep_add(fd, kEpTx, static_cast<std::uint32_t>(target), EPOLLOUT);
    p.out_armed = true;
    // The preamble rides the queue like any frame, so it is always the
    // first bytes written and partial-write continuation covers it too.
    auto* pre = static_cast<std::byte*>(std::malloc(kPreambleBytes));
    const std::uint32_t magic = kPreambleMagic;
    const std::uint32_t src = static_cast<std::uint32_t>(me_);
    std::memcpy(pre, &magic, 4);
    std::memcpy(pre + 4, &src, 4);
    p.q.push_back(TxBuf{pre, kPreambleBytes, 0});
    p.queued += kPreambleBytes;
  }

  void peer_lost(int target, PeerTx& p) {
    if (p.fd >= 0) {
      ::epoll_ctl(ep_, EPOLL_CTL_DEL, p.fd, nullptr);
      ::close(p.fd);
    }
    p.fd = -1;
    p.connecting = false;
    p.out_armed = false;
    p.dead = true;
    for (TxBuf& b : p.q) std::free(b.data);
    p.q.clear();
    p.queued = 0;
    note_disconnect(target);
  }

  // A connection dropped outside our own teardown. In shared-arena mode
  // the transport is the only thing watching, so it raises the job error
  // itself; an isolated rank defers to the launcher (which watches the
  // processes and broadcasts kCtlError), keeping the normal staggered
  // teardown — peers closing after the final barrier — from reading as a
  // failure.
  void note_disconnect(int rank) {
    (void)rank;
    if (!rt_) arena_->signal_error();
  }

  void flush(int target, PeerTx& p) {
    if (p.connecting) return;  // EPOLLOUT will land when the connect does
    while (!p.q.empty()) {
      bool faulted = false;
      ssize_t w;
      if (fault_on_ && short_write_pct_ &&
          xorshift64(&rng_) % 100 < short_write_pct_ &&
          p.q.front().len - p.q.front().off > 1) {
        // Fault injection falls back to the single-buffer path: a short
        // write of the head frame, continuation delayed to a later pump so
        // torn-frame handling downstream actually gets exercised.
        TxBuf& b = p.q.front();
        const std::size_t left = b.len - b.off;
        const std::size_t n =
            1 + static_cast<std::size_t>(xorshift64(&rng_) % left);
        w = ::send(p.fd, b.data + b.off, n, MSG_NOSIGNAL);
        faulted = true;
      } else {
        // Gather the queued frames into one syscall. The head entry may be
        // mid-write from an earlier short send, so it alone honors its
        // offset; everything behind it is whole.
        iovec iov[kTxIovBatch];
        std::size_t niov = 0;
        for (const TxBuf& b : p.q) {
          if (niov == kTxIovBatch) break;
          const std::uint32_t off = niov == 0 ? b.off : 0;
          iov[niov].iov_base = b.data + off;
          iov[niov].iov_len = b.len - off;
          ++niov;
        }
        msghdr mh{};
        mh.msg_iov = iov;
        mh.msg_iovlen = niov;
        w = ::sendmsg(p.fd, &mh, MSG_NOSIGNAL);
        if (w > 0 && niov >= 2)
          tx_writev_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        peer_lost(target, p);
        return;
      }
      // Retire the written bytes across however many frames they covered.
      std::size_t left = static_cast<std::size_t>(w);
      p.queued -= left;
      while (left) {
        TxBuf& b = p.q.front();
        const std::size_t take =
            std::min(left, static_cast<std::size_t>(b.len - b.off));
        b.off += static_cast<std::uint32_t>(take);
        left -= take;
        if (b.off == b.len) {
          std::free(b.data);
          p.q.pop_front();
        }
      }
      if (faulted) break;  // delay the continuation to a later pump
    }
    const bool want_out = !p.q.empty() || p.connecting;
    if (want_out != p.out_armed) {
      ep_mod(p.fd, kEpTx, static_cast<std::uint32_t>(target),
             want_out ? EPOLLOUT : 0);
      p.out_armed = want_out;
    }
  }

  void on_accept() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN (or a raced-away connection)
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto* c = new RxConn();
      c->fd = fd;
      std::uint32_t idx = static_cast<std::uint32_t>(rx_.size());
      for (std::uint32_t i = 0; i < rx_.size(); ++i)
        if (!rx_[i]) {
          idx = i;
          break;
        }
      if (idx == rx_.size())
        rx_.push_back(c);
      else
        rx_[idx] = c;
      ep_add(fd, kEpRx, idx, EPOLLIN);
    }
  }

  void rx_close(std::uint32_t idx, bool expected) {
    RxConn* c = rx_[idx];
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    const bool torn = c->hdr_have || c->rec_have || c->pre_have;
    const int src = c->src;
    std::free(c->rec);
    delete c;
    rx_[idx] = nullptr;
    if (!expected || torn) note_disconnect(src);
  }

  void on_rx_readable(std::uint32_t idx) {
    RxConn* c = rx_[idx];
    for (;;) {
      std::byte* dst;
      std::size_t want;
      if (c->pre_have < kPreambleBytes) {
        dst = c->pre + c->pre_have;
        want = kPreambleBytes - c->pre_have;
      } else if (c->hdr_have < sizeof(FrameHdr)) {
        dst = c->hdr + c->hdr_have;
        want = sizeof(FrameHdr) - c->hdr_have;
      } else {
        dst = c->rec + c->rec_have;
        want = c->rec_len - c->rec_have;
      }
      bool faulted = false;
      if (fault_on_ && short_read_pct_ &&
          xorshift64(&rng_) % 100 < short_read_pct_) {
        const std::size_t cap = 1 + static_cast<std::size_t>(
                                        xorshift64(&rng_) % 64);
        if (cap < want) want = cap;
        faulted = true;
      }
      const ssize_t r = ::read(c->fd, dst, want);
      if (r == 0) {
        rx_close(idx, /*expected=*/false);
        return;
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        rx_close(idx, /*expected=*/false);
        return;
      }
      advance_rx(c, static_cast<std::size_t>(r));
      // A short-read fault also delays: leave the rest for a later pump.
      if (faulted) return;
    }
  }

  void advance_rx(RxConn* c, std::size_t got) {
    if (c->pre_have < kPreambleBytes) {
      c->pre_have += static_cast<std::uint32_t>(got);
      if (c->pre_have < kPreambleBytes) return;
      std::uint32_t magic, src;
      std::memcpy(&magic, c->pre, 4);
      std::memcpy(&src, c->pre + 4, 4);
      if (magic != kPreambleMagic || src >= static_cast<std::uint32_t>(nranks_)) {
        std::fprintf(stderr, "gex: rank %d: bad socket preamble\n", me_);
        std::abort();
      }
      c->src = static_cast<int>(src);
      return;
    }
    if (c->hdr_have < sizeof(FrameHdr)) {
      c->hdr_have += static_cast<std::uint32_t>(got);
      if (c->hdr_have < sizeof(FrameHdr)) return;
      FrameHdr h;
      std::memcpy(&h, c->hdr, sizeof h);
      if ((h.check ^ kFrameMagic) != h.len || h.len == 0 ||
          h.len > max_rec_) {
        std::fprintf(stderr,
                     "gex: rank %d: socket framing corrupted from rank %d "
                     "(len=%u check=%08x)\n",
                     me_, c->src, h.len, h.check);
        std::abort();
      }
      c->rec_len = h.len;
      c->rec_have = 0;
      c->rec = static_cast<std::byte*>(std::malloc(h.len));
      assert(c->rec && "socket rx allocation failed");
      return;
    }
    c->rec_have += static_cast<std::uint32_t>(got);
    if (c->rec_have < c->rec_len) return;
    ready_.push_back(RxRec{c->rec, c->rec, c->rec_len});
    c->rec = nullptr;
    c->rec_len = c->rec_have = 0;
    c->hdr_have = 0;
  }

  void on_tx_writable(std::uint32_t target) {
    PeerTx& p = tx_[target];
    if (p.fd < 0) return;
    if (p.connecting) {
      int err = 0;
      socklen_t elen = sizeof err;
      ::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &elen);
      if (err != 0) {
        peer_lost(static_cast<int>(target), p);
        return;
      }
      p.connecting = false;
    }
    flush(static_cast<int>(target), p);
  }

  // One bounded pass over ready socket events. Called with mu_ held.
  void pump() {
    epoll_event evs[64];
    const int n = ::epoll_wait(ep_, evs, 64, 0);
    for (int i = 0; i < n; ++i) {
      const std::uint32_t kind =
          static_cast<std::uint32_t>(evs[i].data.u64 >> 32);
      const std::uint32_t idx = static_cast<std::uint32_t>(evs[i].data.u64);
      switch (kind) {
        case kEpListen:
          on_accept();
          break;
        case kEpBoot:
          rt_->on_ctl_readable();
          break;
        case kEpRx:
          if (rx_[idx]) on_rx_readable(idx);
          break;
        case kEpTx:
          on_tx_writable(idx);
          break;
      }
    }
  }

  // Fault-injected mid-stream death: drain the queued backlog so the torn
  // frame is the *last* thing on the wire, write roughly half of it, and
  // vanish without a BYE. Called with mu_ held; never returns.
  [[noreturn]] void die_torn(const Ticket& t, std::byte* base,
                             std::uint32_t total) {
    if (t.target != me_) {
      PeerTx& p = tx_[static_cast<std::size_t>(t.target)];
      if (p.fd < 0) connect_peer(t.target, p);
      // Spin the queue dry with blocking-style retries (EAGAIN included:
      // the peer will drain its side eventually).
      while (!p.q.empty() && !p.dead) {
        TxBuf& b = p.q.front();
        const ssize_t w =
            ::send(p.fd, b.data + b.off, b.len - b.off, MSG_NOSIGNAL);
        if (w > 0) {
          b.off += static_cast<std::uint32_t>(w);
          if (b.off == b.len) {
            std::free(b.data);
            p.q.pop_front();
          }
        } else if (w < 0 && errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          break;
        }
        if (p.connecting) {
          // Writes fail until the nonblocking connect lands; poll for it.
          pollfd pf{p.fd, POLLOUT, 0};
          ::poll(&pf, 1, 100);
          p.connecting = false;
        }
      }
      std::size_t half = total / 2, off = 0;
      while (off < half && !p.dead) {
        const ssize_t w = ::send(p.fd, base + off, half - off, MSG_NOSIGNAL);
        if (w > 0)
          off += static_cast<std::size_t>(w);
        else if (w < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK)
          break;
      }
    }
    std::fprintf(stderr,
                 "gex: rank %d fault injection: dying after record %llu\n",
                 me_, static_cast<unsigned long long>(committed_));
    std::fflush(stderr);
    ::_exit(kFaultDeathExit);
  }

  Arena* arena_;
  int me_;
  int nranks_;
  SocketRuntime* rt_;
  std::size_t max_rec_;
  int ep_ = -1;
  int listen_fd_ = -1;
  bool owns_listen_ = true;
  arch::Spinlock mu_;
  std::vector<PeerTx> tx_;
  std::vector<RxConn*> rx_;
  std::deque<RxRec> ready_;
  std::atomic<std::uint64_t> tx_writev_batches_{0};
  // Fault injection.
  bool fault_on_ = false;
  std::uint64_t rng_ = 1;
  std::uint32_t short_write_pct_ = 0;
  std::uint32_t short_read_pct_ = 0;
  bool die_here_ = false;
  std::uint64_t die_at_ = 0;
  std::uint64_t committed_ = 0;
};

Transport* make_socket_transport(Arena* arena, int me) {
  return new SocketTransport(arena, me, active_socket_runtime());
}

// ---------------------------------------------------------- SocketRuntime

SocketRuntime* SocketRuntime::create(int me, int nranks, int bootstrap_port) {
  auto* rt = new SocketRuntime();
  rt->me_ = me;
  rt->nranks_ = nranks;
  std::uint16_t port = 0;
  rt->listen_fd_ = make_listen_socket(&port);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(bootstrap_port));
  // The launcher binds before spawning ranks, so one connect should do;
  // retry briefly anyway (SYN backlog overflow under a 32-rank stampede).
  // A fresh socket per attempt: a failed connect leaves the old one dead.
  for (int attempt = 0;; ++attempt) {
    rt->boot_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (rt->boot_fd_ < 0) die("gex: socket(bootstrap)");
    if (::connect(rt->boot_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0)
      break;
    ::close(rt->boot_fd_);
    rt->boot_fd_ = -1;
    if (attempt > 100) die("gex: connect(bootstrap)");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const CtlMsg hello{kCtlHello, static_cast<std::uint32_t>(me), port};
  if (!write_full(rt->boot_fd_, &hello, sizeof hello))
    die("gex: bootstrap HELLO");
  CtlMsg eps;
  if (!read_full(rt->boot_fd_, &eps, sizeof eps) ||
      eps.type != kCtlEndpoints || eps.a != static_cast<std::uint32_t>(nranks)) {
    std::fprintf(stderr, "gex: rank %d: bad bootstrap ENDPOINTS\n", me);
    std::abort();
  }
  std::vector<std::uint32_t> ports32(static_cast<std::size_t>(nranks));
  if (!read_full(rt->boot_fd_, ports32.data(),
                 ports32.size() * sizeof(std::uint32_t)))
    die("gex: bootstrap port table");
  rt->ports_.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    rt->ports_[static_cast<std::size_t>(r)] =
        static_cast<std::uint16_t>(ports32[static_cast<std::size_t>(r)]);
  if (set_nonblock(rt->boot_fd_) != 0) die("gex: fcntl(bootstrap)");
  return rt;
}

SocketRuntime::~SocketRuntime() {
  if (boot_fd_ >= 0) ::close(boot_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketRuntime::attach(Arena* arena, SocketTransport* t) {
  arena_ = arena;
  transport_ = t;
}

void SocketRuntime::send_ctl(const CtlMsg& m) {
  if (boot_fd_ < 0) return;
  if (!write_full(boot_fd_, &m, sizeof m)) {
    // Launcher gone: the job is over; make sure local waiters unwind.
    if (arena_)
      arena_->control().error_flag.value.store(1, std::memory_order_release);
  }
}

void SocketRuntime::on_ctl(const CtlMsg& m) {
  switch (m.type) {
    case kCtlBarrierRelease:
      ++releases_seen_;
      break;
    case kCtlError:
      // Peer (or launcher) declared the job failed. Set the local flag
      // directly — echoing it back through broadcast_error would be noise.
      if (arena_)
        arena_->control().error_flag.value.store(1,
                                                 std::memory_order_release);
      break;
    default:
      break;
  }
}

void SocketRuntime::on_ctl_readable() {
  for (;;) {
    const ssize_t r = ::read(boot_fd_, ctl_buf_ + ctl_have_,
                             sizeof(CtlMsg) - ctl_have_);
    if (r == 0) {
      // Launcher died: nothing can finish cleanly anymore.
      if (arena_)
        arena_->control().error_flag.value.store(1,
                                                 std::memory_order_release);
      return;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: partial message stays buffered
    }
    ctl_have_ += static_cast<std::size_t>(r);
    if (ctl_have_ == sizeof(CtlMsg)) {
      CtlMsg m;
      std::memcpy(&m, ctl_buf_, sizeof m);
      ctl_have_ = 0;
      on_ctl(m);
    }
  }
}

void SocketRuntime::barrier() {
  if (arena_ && arena_->control().error_flag.value.load(
                    std::memory_order_acquire) != 0)
    return;
  send_ctl(CtlMsg{kCtlBarrierArrive, 0, ++barriers_entered_});
  std::uint32_t spins = 0;
  while (releases_seen_ < barriers_entered_) {
    if (arena_ && arena_->control().error_flag.value.load(
                      std::memory_order_acquire) != 0)
      return;
    if (transport_)
      transport_->poll_io();
    else
      on_ctl_readable();
    arch::cpu_relax();
    if ((++spins & 0x3FF) == 0) std::this_thread::yield();
  }
}

void SocketRuntime::broadcast_error() {
  if (error_sent_) return;
  error_sent_ = true;
  send_ctl(CtlMsg{kCtlError, 0, 0});
}

void SocketRuntime::bye(int rc) {
  send_ctl(CtlMsg{kCtlBye, static_cast<std::uint32_t>(rc), 0});
}

// -------------------------------------------------------- BootstrapServer

BootstrapServer::BootstrapServer(int nranks) : nranks_(nranks) {
  std::uint16_t port = 0;
  listen_fd_ = make_listen_socket(&port);
  port_ = port;
  fds_.assign(static_cast<std::size_t>(nranks), -1);
  rc_.assign(static_cast<std::size_t>(nranks), -1);
}

BootstrapServer::~BootstrapServer() {
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void BootstrapServer::broadcast(const CtlMsg& m) {
  for (int fd : fds_)
    if (fd >= 0) write_full(fd, &m, sizeof m);
}

void BootstrapServer::fail_job() {
  if (failed_) return;
  failed_ = true;
  broadcast(CtlMsg{kCtlError, 0, 0});
}

int BootstrapServer::serve(const std::vector<pid_t>& kids) {
  assert(kids.size() == static_cast<std::size_t>(nranks_));
  std::vector<bool> byed(static_cast<std::size_t>(nranks_), false);
  std::vector<bool> reaped(static_cast<std::size_t>(nranks_), false);
  std::vector<std::vector<std::byte>> acc(static_cast<std::size_t>(nranks_));
  std::vector<int> pending;  // accepted fds awaiting HELLO
  std::vector<std::uint32_t> ports(static_cast<std::size_t>(nranks_), 0);
  // epoch -> arrivals for the launcher-centralized world barrier.
  std::vector<std::pair<std::uint64_t, int>> arrivals;
  int connected = 0;
  bool endpoints_sent = false;
  std::uint64_t fail_deadline_ns = 0;

  // Barrier participants: ranks that have neither said BYE nor exited.
  // (A rank that exits without BYE fails the job anyway, so releases
  // computed against this count only matter on the healthy path.)
  auto alive_count = [&] {
    int n = 0;
    for (int r = 0; r < nranks_; ++r)
      if (!byed[static_cast<std::size_t>(r)] &&
          !reaped[static_cast<std::size_t>(r)])
        ++n;
    return n;
  };

  auto reap = [&] {
    for (int r = 0; r < nranks_; ++r) {
      if (reaped[static_cast<std::size_t>(r)]) continue;
      int status = 0;
      const pid_t w = ::waitpid(kids[static_cast<std::size_t>(r)], &status,
                                WNOHANG);
      if (w <= 0) continue;
      reaped[static_cast<std::size_t>(r)] = true;
      const int rc = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
      rc_[static_cast<std::size_t>(r)] = rc;
      if (!byed[static_cast<std::size_t>(r)] || rc != 0) {
        if (!byed[static_cast<std::size_t>(r)])
          std::fprintf(stderr,
                       "upcxx-run: rank %d died without BYE (status %d)\n", r,
                       rc);
        fail_job();
      }
    }
  };

  auto on_msg = [&](int r, const CtlMsg& m) {
    switch (m.type) {
      case kCtlBarrierArrive: {
        std::size_t i = 0;
        for (; i < arrivals.size(); ++i)
          if (arrivals[i].first == m.b) break;
        if (i == arrivals.size()) arrivals.push_back({m.b, 0});
        if (++arrivals[i].second >= alive_count()) {
          broadcast(CtlMsg{kCtlBarrierRelease, 0, m.b});
          arrivals.erase(arrivals.begin() + static_cast<long>(i));
        }
        break;
      }
      case kCtlError:
        fail_job();
        break;
      case kCtlBye:
        byed[static_cast<std::size_t>(r)] = true;
        rc_[static_cast<std::size_t>(r)] = static_cast<int>(m.a);
        if (m.a != 0) fail_job();
        break;
      default:
        break;
    }
  };

  while (true) {
    // Exit once every rank reached a terminal state and was reaped.
    bool all_done = true;
    for (int r = 0; r < nranks_; ++r)
      if (!reaped[static_cast<std::size_t>(r)]) all_done = false;
    if (all_done) break;

    reap();
    if (failed_) {
      const std::uint64_t now = arch::now_ns();
      if (fail_deadline_ns == 0) {
        fail_deadline_ns = now + 10'000'000'000ull;  // 10 s of grace
      } else if (now > fail_deadline_ns) {
        for (int r = 0; r < nranks_; ++r)
          if (!reaped[static_cast<std::size_t>(r)])
            ::kill(kids[static_cast<std::size_t>(r)], SIGKILL);
        fail_deadline_ns = now + 10'000'000'000ull;
      }
    }

    std::vector<pollfd> pfds;
    std::vector<int> who;  // parallel: rank, or -1 listen, -2 pending idx base
    pfds.push_back({listen_fd_, POLLIN, 0});
    who.push_back(-1);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      pfds.push_back({pending[i], POLLIN, 0});
      who.push_back(-2 - static_cast<int>(i));
    }
    for (int r = 0; r < nranks_; ++r)
      if (fds_[static_cast<std::size_t>(r)] >= 0) {
        pfds.push_back({fds_[static_cast<std::size_t>(r)], POLLIN, 0});
        who.push_back(r);
      }
    ::poll(pfds.data(), pfds.size(), 50);

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const int w = who[i];
      if (w == -1) {
        for (;;) {
          const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_CLOEXEC);
          if (fd < 0) break;
          pending.push_back(fd);
        }
        continue;
      }
      if (w <= -2) {
        // A HELLO identifies the rank; blocking read is fine (16 bytes
        // from a rank that just connected to send exactly them).
        const std::size_t pi = static_cast<std::size_t>(-2 - w);
        const int fd = pending[pi];
        CtlMsg m;
        if (!read_full(fd, &m, sizeof m) || m.type != kCtlHello ||
            m.a >= static_cast<std::uint32_t>(nranks_) ||
            fds_[m.a] != -1) {
          ::close(fd);
        } else {
          fds_[m.a] = fd;
          ports[m.a] = static_cast<std::uint32_t>(m.b);
          ++connected;
        }
        pending[pi] = -1;
        continue;
      }
      // Rank traffic.
      const int r = w;
      auto& fd = fds_[static_cast<std::size_t>(r)];
      std::byte buf[256];
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        ::close(fd);
        fd = -2;
        if (!byed[static_cast<std::size_t>(r)]) fail_job();
        continue;
      }
      auto& a = acc[static_cast<std::size_t>(r)];
      a.insert(a.end(), buf, buf + n);
      while (a.size() >= sizeof(CtlMsg)) {
        CtlMsg m;
        std::memcpy(&m, a.data(), sizeof m);
        a.erase(a.begin(), a.begin() + sizeof(CtlMsg));
        on_msg(r, m);
      }
    }
    pending.erase(std::remove(pending.begin(), pending.end(), -1),
                  pending.end());

    // Every rank checked in: release them all with the full port table.
    if (connected == nranks_ && !endpoints_sent) {
      endpoints_sent = true;
      const CtlMsg eps{kCtlEndpoints, static_cast<std::uint32_t>(nranks_), 0};
      for (int r = 0; r < nranks_; ++r) {
        const int fd = fds_[static_cast<std::size_t>(r)];
        if (fd < 0) continue;
        write_full(fd, &eps, sizeof eps);
        write_full(fd, ports.data(), ports.size() * sizeof(std::uint32_t));
      }
    }
  }

  int failures = 0;
  for (int r = 0; r < nranks_; ++r)
    if (rc_[static_cast<std::size_t>(r)] != 0) ++failures;
  if (failed_ && failures == 0) failures = 1;
  return failures;
}

}  // namespace gex
