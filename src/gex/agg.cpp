#include "gex/agg.hpp"

#include <cstring>

namespace gex {

Aggregator::Aggregator(AmEngine* eng)
    : eng_(eng), bufs_(eng->arena().nranks()) {
  const Config& cfg = eng->arena().config();
  max_bytes_ = cfg.agg_max_bytes;
  // A frame must fit one ring record whatever the ring size is.
  if (max_bytes_ > eng->max_frame_payload())
    max_bytes_ = eng->max_frame_payload();
  // Round down to the frame alignment so a maximal message's aligned
  // footprint (header + padded payload) never exceeds the staging buffer.
  max_bytes_ &= ~(kFrameAlign - 1);
  max_msgs_ = cfg.agg_max_msgs ? cfg.agg_max_msgs : 1;
  max_msg_bytes_ =
      max_bytes_ > sizeof(FrameMsgHeader) ? max_bytes_ - sizeof(FrameMsgHeader)
                                          : 0;
  enabled_ = cfg.agg_enabled && max_msg_bytes_ > 0;
}

void* Aggregator::put(int target, HandlerIdx h, std::size_t n) {
  assert(n <= max_msg_bytes_ && "payload too large for a frame slot");
  Buf& b = bufs_[target];
  const std::size_t need =
      sizeof(FrameMsgHeader) + arch::align_up(n, kFrameAlign);
  if (b.used + need > max_bytes_ || b.msgs >= max_msgs_) {
    if (flush_buf(target, b)) ++stats_.flushes_capacity;
  }
  if (!b.bytes) b.bytes = std::make_unique<std::byte[]>(max_bytes_);
  if (b.msgs == 0)
    b.handler = h;
  else if (b.handler != h)
    b.uniform = false;
  auto* mh = reinterpret_cast<FrameMsgHeader*>(b.bytes.get() + b.used);
  mh->handler = h;
  mh->flags = 0;
  mh->size = static_cast<std::uint32_t>(n);
  b.used += need;
  ++b.msgs;
  ++stats_.msgs;
  return mh + 1;
}

bool Aggregator::flush_buf(int target, Buf& b) {
  if (b.used == 0) return false;
  auto sb = eng_->prepare_frame(target, b.used, b.handler, b.uniform);
  std::memcpy(sb.data, b.bytes.get(), b.used);
  eng_->commit(sb);
  b.used = 0;
  b.msgs = 0;
  b.uniform = true;
  ++stats_.frames;
  return true;
}

bool Aggregator::flush(int target) {
  if (flush_buf(target, bufs_[target])) {
    ++stats_.flushes_explicit;
    return true;
  }
  return false;
}

int Aggregator::flush_all() {
  int sent = 0;
  for (int t = 0; t < static_cast<int>(bufs_.size()); ++t)
    if (flush_buf(t, bufs_[t])) {
      ++stats_.flushes_explicit;
      ++sent;
    }
  return sent;
}

}  // namespace gex
