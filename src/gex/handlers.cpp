#include "gex/handlers.hpp"

#include "arch/fixed_registry.hpp"

namespace gex {
namespace {

arch::FixedRegistry<AmHandler, kMaxAmHandlers>& registry() {
  static arch::FixedRegistry<AmHandler, kMaxAmHandlers> r;
  return r;
}

}  // namespace

HandlerIdx register_am_handler(AmHandler h, const char* name) {
  return static_cast<HandlerIdx>(registry().add(h, name, "gex AM handlers"));
}

AmHandler am_handler_at(HandlerIdx idx) {
  return registry().at(idx, "gex AM handlers");
}

std::size_t am_handler_count() { return registry().count(); }

const char* am_handler_name(HandlerIdx idx) { return registry().name(idx); }

}  // namespace gex
