#include "gex/shared_heap.hpp"

#include <cassert>
#include <cstring>
#include <new>

#include "arch/cacheline.hpp"

namespace gex {

namespace {
constexpr std::size_t kMinBlock = 64;  // header + smallest useful payload
}

SharedHeap* SharedHeap::create(void* region, std::size_t bytes) {
  assert(bytes > sizeof(SharedHeap) + kMinBlock);
  auto* h = ::new (region) SharedHeap();
  h->total_ = bytes;
  h->first_block_ = arch::align_up(sizeof(SharedHeap), 16);
  auto* b = h->at(h->first_block_);
  b->size = bytes - h->first_block_;
  b->next_free = kNull;
  h->free_head_ = h->first_block_;
  return h;
}

void* SharedHeap::allocate(std::size_t bytes, std::size_t align) {
  if (align < 16) align = 16;
  // Payload begins right after the header; the header is 16 bytes and blocks
  // are 16-aligned, so alignments above 16 need slack we carve off the front.
  const std::size_t want =
      arch::align_up(sizeof(Block) + bytes + (align > 16 ? align : 0), 16);
  arch::SpinGuard g(lock_);
  std::uint64_t prev = kNull;
  std::uint64_t cur = free_head_;
  while (cur != kNull) {
    Block* b = at(cur);
    if (b->size >= want) {
      // Split if the remainder is big enough to be a block.
      if (b->size - want >= kMinBlock) {
        const std::uint64_t rest_off = cur + want;
        Block* rest = at(rest_off);
        rest->size = b->size - want;
        rest->next_free = b->next_free;
        b->size = want;
        if (prev == kNull)
          free_head_ = rest_off;
        else
          at(prev)->next_free = rest_off;
      } else {
        if (prev == kNull)
          free_head_ = b->next_free;
        else
          at(prev)->next_free = b->next_free;
      }
      b->next_free = kUsed;
      std::byte* payload = base() + cur + sizeof(Block);
      if (align > 16) {
        auto up = reinterpret_cast<std::uintptr_t>(payload);
        auto aligned = arch::align_up(up, align);
        if (aligned != up) {
          // Stash the real block offset just before the aligned payload so
          // deallocate can find the header. (When aligned == up the word
          // before the payload is the header's next_free field — leave it.)
          auto* back = reinterpret_cast<std::uint64_t*>(aligned) - 1;
          *back = cur | 1ull;  // tag: low bit marks "offset redirect"
        }
        return reinterpret_cast<void*>(aligned);
      }
      return payload;
    }
    prev = cur;
    cur = b->next_free;
  }
  return nullptr;
}

void SharedHeap::deallocate(void* p) {
  if (!p) return;
  assert(contains(p));
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  std::uint64_t off;
  // Detect redirected (over-aligned) payloads: the word before carries the
  // tagged block offset. Regular payloads sit exactly sizeof(Block) past a
  // 16-aligned header, so their preceding word is the header's next_free
  // field, which is kUsed for live blocks and never has the low tag bit set.
  const std::uint64_t marker = *(reinterpret_cast<std::uint64_t*>(addr) - 1);
  if ((marker & 1ull) && marker != kUsed) {
    off = marker & ~1ull;
  } else {
    off = static_cast<std::uint64_t>(addr -
                                     reinterpret_cast<std::uintptr_t>(base())) -
          sizeof(Block);
  }
  arch::SpinGuard g(lock_);
  Block* b = at(off);
  assert(b->next_free == kUsed && "double free or invalid pointer");
  // Address-ordered insert, then coalesce with successor and predecessor.
  std::uint64_t prev = kNull;
  std::uint64_t cur = free_head_;
  while (cur != kNull && cur < off) {
    prev = cur;
    cur = at(cur)->next_free;
  }
  b->next_free = cur;
  if (prev == kNull)
    free_head_ = off;
  else
    at(prev)->next_free = off;
  // Coalesce forward.
  if (cur != kNull && off + b->size == cur) {
    b->size += at(cur)->size;
    b->next_free = at(cur)->next_free;
  }
  // Coalesce backward.
  if (prev != kNull && prev + at(prev)->size == off) {
    at(prev)->size += b->size;
    at(prev)->next_free = b->next_free;
  }
}

std::size_t SharedHeap::bytes_free() const {
  arch::SpinGuard g(lock_);
  std::size_t total = 0;
  for (std::uint64_t cur = free_head_; cur != kNull; cur = at(cur)->next_free)
    total += at(cur)->size;
  return total;
}

std::size_t SharedHeap::largest_free_block() const {
  arch::SpinGuard g(lock_);
  std::size_t best = 0;
  for (std::uint64_t cur = free_head_; cur != kNull; cur = at(cur)->next_free)
    if (at(cur)->size > best) best = at(cur)->size;
  return best;
}

}  // namespace gex
