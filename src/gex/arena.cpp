#include "gex/arena.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "arch/timer.hpp"

// Old glibc headers may lack the flag (Linux 4.17+); the raw value is ABI.
#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif

namespace gex {

Arena* Arena::create(const Config& cfg_in) {
  return create_at(cfg_in, 0);
}

Arena* Arena::create_private(const Config& cfg_in) {
  Config cfg = cfg_in;
  // An isolated rank's peers cannot read this mapping: every byte must
  // travel over the AM wire, whatever the caller's Config said.
  cfg.am_transport = AmTransport::kSocket;
  cfg.rma_wire = RmaWire::kAm;
  cfg.atomics_use_am = true;
  return create_at(cfg, cfg.socket_arena_base);
}

Arena* Arena::create_at(const Config& cfg_in, std::uint64_t fixed_base) {
  Config cfg = cfg_in;
  cfg.normalize();  // hand-built Configs get the same invariants as env ones
  const int P = cfg.ranks;
  const std::size_t ring_fp = arch::MpscByteRing::footprint(cfg.ring_bytes);

  std::size_t off = 0;
  auto reserve = [&off](std::size_t bytes) {
    std::size_t at = off;
    off += arch::align_up(bytes, arch::cacheline_size);
    return at;
  };
  const std::size_t ctrl_off = reserve(sizeof(ControlBlock));
  const std::size_t ports_off = reserve(sizeof(std::atomic<std::uint32_t>) * P);
  const std::size_t scratch_off = reserve(kScratchSlot * P);
  std::size_t ring_off0 = off;
  for (int r = 0; r < P; ++r) reserve(ring_fp);
  const std::size_t heap_off = reserve(cfg.heap_bytes);
  // Segments are page-aligned for tidy NUMA behaviour.
  off = arch::align_up(off, 4096);
  const std::size_t seg_off = off;
  off += static_cast<std::size_t>(P) * cfg.segment_bytes;

  // Shared mode: one anonymous shared mapping wherever the kernel places
  // it, created pre-fork so every rank inherits the same address. Isolated
  // mode (fixed_base != 0): a *private* per-process mapping pinned at the
  // agreed address so the layout — and with it every global_ptr raw
  // address and segment id — matches across unrelated processes.
  // MAP_NORESERVE: a 32-rank job maps 32 copies of the full layout, but
  // each rank only ever touches its own slice.
  void* want = fixed_base
                   ? reinterpret_cast<void*>(static_cast<std::uintptr_t>(
                         fixed_base))
                   : nullptr;
  const int flags =
      fixed_base ? MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE |
                       MAP_FIXED_NOREPLACE
                 : MAP_SHARED | MAP_ANONYMOUS;
  void* mem = ::mmap(want, off, PROT_READ | PROT_WRITE, flags, -1, 0);
  if (mem == MAP_FAILED || (want && mem != want)) {
    std::fprintf(stderr,
                 "gex: failed to map %zu MiB arena (ranks=%d seg=%zu MiB%s)\n",
                 off >> 20, P, cfg.segment_bytes >> 20,
                 want ? ", fixed base taken — set UPCXX_SOCKET_ARENA_BASE"
                      : "");
    std::abort();
  }

  auto* a = new Arena();
  a->cfg_ = cfg;
  a->map_base_ = mem;
  a->map_bytes_ = off;
  auto* base = static_cast<std::byte*>(mem);

  a->ctrl_ = ::new (base + ctrl_off) ControlBlock();
  a->ctrl_->nranks = static_cast<std::uint32_t>(P);
  a->ctrl_->segment_bytes = cfg.segment_bytes;
  a->ctrl_->job_pid = static_cast<std::uint32_t>(::getpid());
  a->ctrl_->job_nonce = static_cast<std::uint32_t>(arch::now_ns());

  // Endpoint slots start zero (fresh zero-filled mapping) = unpublished.
  a->ports_ = reinterpret_cast<std::atomic<std::uint32_t>*>(base + ports_off);

  a->scratch_ = base + scratch_off;

  a->rings_ = new arch::MpscByteRing*[P];
  for (int r = 0; r < P; ++r) {
    a->rings_[r] = arch::MpscByteRing::create(
        base + ring_off0 + static_cast<std::size_t>(r) *
                               arch::align_up(ring_fp, arch::cacheline_size),
        cfg.ring_bytes);
  }

  a->heap_ = SharedHeap::create(base + heap_off, cfg.heap_bytes);

  a->seg_base_ = base + seg_off;
  a->seg_heaps_ = new SharedHeap*[P];
  for (int r = 0; r < P; ++r) {
    a->seg_heaps_[r] =
        SharedHeap::create(a->segment_base(r), cfg.segment_bytes);
  }

  // Wire-address name space (gex/segment.hpp): registered before any rank
  // exists, so every rank — thread or fork — inherits one identical map
  // and segment ids agree across the wire by construction. The heap covers
  // rendezvous and bounce-pool buffers; the rank segments cover every
  // global_ptr (device segments are carved from them); the ring arena is
  // registered so no region a record could name is left out.
  a->segmap_.add(base + heap_off, cfg.heap_bytes, "heap");
  for (int r = 0; r < P; ++r)
    a->segmap_.add(a->segment_base(r), cfg.segment_bytes, "segment");
  a->segmap_.add(base + ring_off0, heap_off - ring_off0, "rings");
  return a;
}

void Arena::destroy(Arena* a) {
  if (!a) return;
  ::munmap(a->map_base_, a->map_bytes_);
  delete[] a->rings_;
  delete[] a->seg_heaps_;
  delete a;
}

void Arena::signal_error() {
  ctrl_->error_flag.value.store(1, std::memory_order_release);
  if (cp_) cp_->broadcast_error();
}

void Arena::world_barrier() {
  if (cp_) {
    cp_->barrier();
    return;
  }
  auto& arrived = ctrl_->barrier_arrived.value;
  auto& epoch = ctrl_->barrier_epoch.value;
  auto& err = ctrl_->error_flag.value;
  // A failed rank never arrives; bail out so survivors can tear down
  // instead of spinning forever (the barrier state is then meaningless, but
  // the launcher destroys the arena right after).
  if (err.load(std::memory_order_acquire) != 0) return;
  const std::uint32_t my_epoch = epoch.load(std::memory_order_acquire);
  if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      ctrl_->nranks) {
    arrived.store(0, std::memory_order_relaxed);
    epoch.store(my_epoch + 1, std::memory_order_release);
  } else {
    // Spin with periodic yields: on oversubscribed hosts (CI runners) the
    // releasing rank needs the core.
    std::uint32_t spins = 0;
    while (epoch.load(std::memory_order_acquire) == my_epoch) {
      if (err.load(std::memory_order_acquire) != 0) return;
      arch::cpu_relax();
      if ((++spins & 0x3FF) == 0) std::this_thread::yield();
    }
  }
}

}  // namespace gex
