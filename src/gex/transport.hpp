// Pluggable AM transport: where the inbox rings live.
//
// The AmEngine's wire is a per-target byte ring of records. How those
// rings are *backed* is a deployment property, not a protocol one — and
// with segment-offset wire addressing (gex/segment.hpp) no record byte
// depends on the peer's virtual-address mapping, so the rings no longer
// have to live in the one pre-fork cross-mapped arena. This interface cuts
// the engine's ring push/pop behind a virtual seam (one call per *record*,
// never per byte — the payload memcpy still goes straight into ring
// memory) with two implementations:
//
//   mmap     (default) — the per-rank MPSC rings inside the shared arena
//            mapping, exactly the pre-existing fast path. Zero new cost:
//            one virtual dispatch per reserve/commit/consume.
//   shmfile  — one ring file per (sender, receiver) pair, created and
//            opened lazily under /dev/shm (or /tmp) on first use, mapped
//            independently by each side at whatever address mmap returns.
//            Nothing about the mapping is shared up front, which is the
//            proof that the protocol genuinely carries no cross-mapped
//            pointers — and the stepping stone to a socket transport,
//            whose reserve would return a private staging buffer and whose
//            commit would write() it.
//
// Selection: UPCXX_AM_TRANSPORT=mmap|shmfile|auto (Config::am_transport;
// auto consults the environment so hand-built test configs honor the CI
// matrix, then defaults to mmap).
//
// Ordering contract (both implementations): records from one sender to
// one receiver are delivered FIFO. Cross-sender order is unspecified —
// the same per-pair guarantee a GASNet conduit gives, and the only one
// the layers above rely on (the barrier argument in rma_am.hpp is
// per-pair). Deadlock freedom is unchanged: a sender spinning on a full
// ring drains its own inbox via AmEngine::poll, whichever transport backs
// it.
//
// Bootstrap stays on the arena: the control block (world barrier, error
// flag) and the data segments are not part of the AM wire and remain in
// the shared mapping. The transport abstracts the *message* plane only.
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/ring.hpp"

namespace gex {

class Arena;

class Transport {
 public:
  // Both implementations back records with MpscByteRing, so the reserve
  // ticket is the ring's. (A socket transport would widen this into a
  // tagged handle carrying a staging buffer instead.)
  using Ticket = arch::MpscByteRing::Ticket;
  using RecordVisitor = void (*)(void* payload, std::size_t bytes, void* cx);

  virtual ~Transport() = default;

  // Reserves a record of `bytes` payload bytes addressed to `target`'s
  // inbox. Ticket.payload is null when the wire currently lacks space; the
  // caller polls its own inbox and retries (AmEngine::prepare).
  virtual Ticket try_reserve(int target, std::size_t bytes) = 0;

  // Publishes a reserved record once its payload is fully written.
  virtual void commit(const Ticket& t) = 0;

  // Consumes at most one record from this rank's inbox, invoking
  // visit(payload, bytes, cx) on it. Returns false when nothing is ready.
  virtual bool try_consume(RecordVisitor visit, void* cx) = 0;

  // Largest payload a single record may carry.
  virtual std::size_t max_record_payload() const = 0;

  // Nothing queued for this rank (teardown/idle checks; may be
  // conservative but never falsely empty). Non-const: a transport whose
  // inbox storage appears lazily may have to open it to answer.
  virtual bool rx_empty() = 0;

  virtual const char* name() const = 0;
};

// Builds the transport resolved from arena->config() (see
// resolve_am_transport) for rank `me`. Caller owns the result.
Transport* make_transport(Arena* arena, int me);

// Directory shm-file transports place their ring files in (/dev/shm when
// writable, else TMPDIR, else /tmp). Exposed for the cleanup tests.
const char* shm_transport_dir();

}  // namespace gex
