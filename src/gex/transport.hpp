// Pluggable AM transport: where the inbox rings live.
//
// The AmEngine's wire is a per-target byte ring of records. How those
// rings are *backed* is a deployment property, not a protocol one — and
// with segment-offset wire addressing (gex/segment.hpp) no record byte
// depends on the peer's virtual-address mapping, so the rings no longer
// have to live in the one pre-fork cross-mapped arena. This interface cuts
// the engine's ring push/pop behind a virtual seam (one call per *record*,
// never per byte — the payload memcpy still goes straight into ring
// memory) with two implementations:
//
//   mmap     (default) — the per-rank MPSC rings inside the shared arena
//            mapping, exactly the pre-existing fast path. Zero new cost:
//            one virtual dispatch per reserve/commit/consume.
//   shmfile  — one ring file per (sender, receiver) pair, created and
//            opened lazily under /dev/shm (or /tmp) on first use, mapped
//            independently by each side at whatever address mmap returns.
//            Nothing about the mapping is shared up front, which is the
//            proof that the protocol genuinely carries no cross-mapped
//            pointers.
//   socket   — records framed onto non-blocking loopback TCP streams
//            (gex/socket.hpp): reserve hands back a private staging
//            buffer, commit frames and write()s it through per-peer send
//            queues with partial-write continuation, and an epoll loop
//            per rank assembles inbound frames. The first transport whose
//            peers share no memory, so shared_memory() below is false and
//            every payload the layers above ship must ride inline.
//
// Selection: UPCXX_AM_TRANSPORT=mmap|shmfile|socket|auto
// (Config::am_transport; auto consults the environment so hand-built test
// configs honor the CI matrix, then defaults to mmap).
//
// Ordering contract (all implementations): records from one sender to
// one receiver are delivered FIFO. Cross-sender order is unspecified —
// the same per-pair guarantee a GASNet conduit gives, and the only one
// the layers above rely on (the barrier argument in rma_am.hpp is
// per-pair). Deadlock freedom is unchanged: a sender spinning on a full
// ring drains its own inbox via AmEngine::poll, whichever transport backs
// it.
//
// Bootstrap: on the ring transports the control block (world barrier,
// error flag) and the data segments remain in the shared arena mapping.
// Isolated socket ranks have no shared mapping — their control plane
// moves onto small records over a bootstrap socket (gex::SocketRuntime,
// installed as the arena's ControlPlane hook).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/ring.hpp"

namespace gex {

class Arena;

class Transport {
 public:
  // Opaque reserve handle. `h` is transport-private (the ring's record
  // header, or the socket transport's staging buffer); `target` is echoed
  // so a commit that must route the staged bytes knows the destination.
  struct Ticket {
    void* h = nullptr;
    void* payload = nullptr;
    int target = -1;
  };
  using RecordVisitor = void (*)(void* payload, std::size_t bytes, void* cx);

  virtual ~Transport() = default;

  // Reserves a record of `bytes` payload bytes addressed to `target`'s
  // inbox. Ticket.payload is null when the wire currently lacks space; the
  // caller polls its own inbox and retries (AmEngine::prepare).
  virtual Ticket try_reserve(int target, std::size_t bytes) = 0;

  // Publishes a reserved record once its payload is fully written.
  virtual void commit(const Ticket& t) = 0;

  // Consumes at most one record from this rank's inbox, invoking
  // visit(payload, bytes, cx) on it. Returns false when nothing is ready.
  virtual bool try_consume(RecordVisitor visit, void* cx) = 0;

  // Largest payload a single record may carry.
  virtual std::size_t max_record_payload() const = 0;

  // Nothing queued for this rank (teardown/idle checks; may be
  // conservative but never falsely empty). Non-const: a transport whose
  // inbox storage appears lazily may have to open it to answer.
  virtual bool rx_empty() = 0;

  // True when the peer can dereference this rank's shared mappings (heap
  // and segments). The AM layers consult this before shipping a payload
  // by reference: rendezvous descriptors and staged bounce/reply buffers
  // are only sound on a shared-memory transport; otherwise every byte
  // must travel inline in the record.
  virtual bool shared_memory() const { return true; }

  // Every committed record has been handed to the wire (ring transports:
  // trivially true at commit; socket: the per-peer send queues drained
  // into the kernel). run_rank drains this before the final barrier so
  // no acks are stranded in a user-space queue at teardown.
  virtual bool tx_quiesced() { return true; }

  // Sends that carried two or more queued frames in one syscall (socket
  // transport writev coalescing). Ring transports have no syscalls to
  // coalesce, so the count stays zero.
  virtual std::uint64_t tx_writev_batches() const { return 0; }

  virtual const char* name() const = 0;
};

// Builds the transport resolved from arena->config() (see
// resolve_am_transport) for rank `me`. Caller owns the result.
Transport* make_transport(Arena* arena, int me);

// Directory shm-file transports place their ring files in (/dev/shm when
// writable, else TMPDIR, else /tmp). Exposed for the cleanup tests.
const char* shm_transport_dir();

}  // namespace gex
