// First-fit free-list allocator over a raw memory region.
//
// Two uses in the runtime:
//  * the global shared heap (rendezvous buffers for large active messages),
//    where any rank may allocate and any rank may free;
//  * each rank's shared segment (upcxx::allocate), where the owner allocates
//    and frees but remote ranks RMA into the memory.
//
// All bookkeeping lives inside the managed region itself (offset-linked, no
// pointers), so the allocator works across forked processes. A single
// spinlock guards the free list; allocation is O(free blocks), which is fine
// for the rendezvous/segment use cases (few, mostly large, blocks).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/spinlock.hpp"

namespace gex {

class SharedHeap {
 public:
  // Placement-creates a heap over `region` of `bytes` bytes (which includes
  // the heap header itself). Returns the heap object, which lives at the
  // start of the region.
  static SharedHeap* create(void* region, std::size_t bytes);

  // Allocates `bytes` (rounded up to 16) with at least 16-byte alignment,
  // or returns nullptr when no block fits.
  void* allocate(std::size_t bytes, std::size_t align = 16);

  // Returns a block obtained from allocate(). Coalesces with neighbours.
  void deallocate(void* p);

  // Diagnostics.
  std::size_t bytes_free() const;
  std::size_t bytes_total() const { return total_; }
  std::size_t largest_free_block() const;
  bool contains(const void* p) const {
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(this);
    return u >= b && u < b + total_;
  }

  SharedHeap(const SharedHeap&) = delete;
  SharedHeap& operator=(const SharedHeap&) = delete;

 private:
  SharedHeap() = default;

  // Block header preceding every allocation; free blocks additionally link
  // to the next free block by offset from the heap base.
  struct Block {
    std::uint64_t size;  // bytes of the whole block including header
    std::uint64_t next_free;  // offset of next free block, or kNull; kUsed
  };
  static constexpr std::uint64_t kNull = ~0ull;
  static constexpr std::uint64_t kUsed = ~0ull - 1;

  std::byte* base() { return reinterpret_cast<std::byte*>(this); }
  const std::byte* base() const {
    return reinterpret_cast<const std::byte*>(this);
  }
  Block* at(std::uint64_t off) {
    return reinterpret_cast<Block*>(base() + off);
  }
  const Block* at(std::uint64_t off) const {
    return reinterpret_cast<const Block*>(base() + off);
  }

  mutable arch::Spinlock lock_;
  std::size_t total_ = 0;
  std::uint64_t first_block_ = 0;  // offset of the first block
  std::uint64_t free_head_ = kNull;
};

}  // namespace gex
