#include "gex/config.hpp"

#include <cstdlib>
#include <cstring>

#include "arch/cacheline.hpp"

namespace gex {
namespace {

long env_long(const char* name, long dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  char* end = nullptr;
  long r = std::strtol(v, &end, 10);
  return (end && *end == '\0') ? r : dflt;
}

}  // namespace

Config Config::from_env() {
  Config c;
  c.ranks = static_cast<int>(env_long("UPCXX_RANKS", c.ranks));
  if (c.ranks < 1) c.ranks = 1;
  if (const char* b = std::getenv("UPCXX_BACKEND")) {
    if (std::strcmp(b, "process") == 0) c.backend = Backend::kProcess;
  }
  c.segment_bytes = static_cast<std::size_t>(
                        env_long("UPCXX_SEGMENT_MB",
                                 static_cast<long>(c.segment_bytes >> 20)))
                    << 20;
  c.ring_bytes = static_cast<std::size_t>(
                     env_long("UPCXX_RING_KB",
                              static_cast<long>(c.ring_bytes >> 10)))
                 << 10;
  // The ring must be a power of two; round up if the user gave an odd size.
  std::size_t p2 = 1;
  while (p2 < c.ring_bytes) p2 <<= 1;
  c.ring_bytes = p2;
  c.eager_max = static_cast<std::size_t>(
      env_long("UPCXX_EAGER_MAX", static_cast<long>(c.eager_max)));
  c.heap_bytes = static_cast<std::size_t>(
                     env_long("UPCXX_HEAP_MB",
                              static_cast<long>(c.heap_bytes >> 20)))
                 << 20;
  c.sim_latency_ns = static_cast<std::uint64_t>(
      env_long("UPCXX_SIM_LATENCY_NS", 0));
  if (const char* a = std::getenv("UPCXX_ATOMICS")) {
    c.atomics_use_am = (std::strcmp(a, "am") == 0);
  }
  // Keep eager payloads safely inside a quarter ring (see MpscByteRing).
  if (c.eager_max > c.ring_bytes / 4 - 64) c.eager_max = c.ring_bytes / 4 - 64;
  return c;
}

}  // namespace gex
