#include "gex/config.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "arch/cacheline.hpp"

namespace gex {
namespace {

// Strict numeric env parsing: an unset/empty variable means "use the
// default", but a *set* variable must parse completely — trailing garbage
// ("64k"), non-numeric strings, and out-of-range magnitudes are rejected
// loudly instead of silently falling back (the old behavior, which made a
// typo'd knob indistinguishable from the default until a bench lied).

// Parses v as a whole decimal integer. Returns false (after warning under
// `name`) on malformed or out-of-range input.
bool parse_long(const char* name, const char* v, long& out) {
  errno = 0;
  char* end = nullptr;
  const long r = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "gex: ignoring %s=%s (not a number)\n", name, v);
    return false;
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "gex: ignoring %s=%s (out of range)\n", name, v);
    return false;
  }
  out = r;
  return true;
}

long env_long(const char* name, long dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  long r = dflt;
  parse_long(name, v, r);
  return r;
}

// Positive-valued knob: 0 or negative values are rejected (with a warning)
// rather than silently shifted into a zero-byte mapping.
long env_positive(const char* name, long dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  long r = dflt;
  if (!parse_long(name, v, r)) return dflt;
  if (r <= 0) {
    std::fprintf(stderr, "gex: ignoring %s=%ld (must be positive)\n", name,
                 r);
    return dflt;
  }
  return r;
}

// Non-negative knob (0 is meaningful: "disabled" / "no model").
long env_nonnegative(const char* name, long dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  long r = dflt;
  if (!parse_long(name, v, r)) return dflt;
  if (r < 0) {
    std::fprintf(stderr, "gex: ignoring %s=%ld (must be >= 0)\n", name, r);
    return dflt;
  }
  return r;
}

// Parses an UPCXX_RMA_WIRE value; kAuto for unknown strings (with a
// warning) so a typo degrades to the default wire instead of aborting.
RmaWire parse_rma_wire(const char* v) {
  if (std::strcmp(v, "direct") == 0) return RmaWire::kDirect;
  if (std::strcmp(v, "am") == 0) return RmaWire::kAm;
  if (std::strcmp(v, "auto") != 0)
    std::fprintf(stderr,
                 "gex: ignoring UPCXX_RMA_WIRE=%s (expected auto|direct|am)\n",
                 v);
  return RmaWire::kAuto;
}

// Same contract for UPCXX_AM_TRANSPORT.
AmTransport parse_am_transport(const char* v) {
  if (std::strcmp(v, "mmap") == 0) return AmTransport::kMmap;
  if (std::strcmp(v, "shmfile") == 0) return AmTransport::kShmFile;
  if (std::strcmp(v, "socket") == 0) return AmTransport::kSocket;
  if (std::strcmp(v, "auto") != 0)
    std::fprintf(stderr,
                 "gex: ignoring UPCXX_AM_TRANSPORT=%s (expected "
                 "auto|mmap|shmfile|socket)\n",
                 v);
  return AmTransport::kAuto;
}

}  // namespace

AmWindowSetting resolve_am_window(const Config& cfg) {
  if (cfg.am_window == kAmWindowForceAuto)
    return {true, kDefaultAmWindow};
  if (cfg.am_window != 0) return {false, cfg.am_window};
  if (const char* v = std::getenv("UPCXX_AM_WINDOW"); v && *v) {
    // `auto` is the spelled-out default; a positive integer pins the
    // window (the CI am-window-1 job). Garbage already warned in
    // from_env; degrade to adaptive, the default.
    if (std::strcmp(v, "auto") != 0) {
      long n = 0;
      if (parse_long("UPCXX_AM_WINDOW", v, n) && n > 0)
        return {false, static_cast<std::uint32_t>(n)};
    }
  }
  return {true, kDefaultAmWindow};
}

double resolve_am_rtt_envelope(const Config& cfg) {
  if (cfg.am_rtt_envelope >= 1.0 && std::isfinite(cfg.am_rtt_envelope))
    return cfg.am_rtt_envelope;
  if (const char* v = std::getenv("UPCXX_AM_RTT_ENVELOPE"); v && *v) {
    char* end = nullptr;
    const double e = std::strtod(v, &end);
    if (end != v && *end == '\0' && e >= 1.0 && std::isfinite(e)) return e;
    std::fprintf(stderr,
                 "gex: ignoring UPCXX_AM_RTT_ENVELOPE=%s (must be a finite "
                 "factor >= 1)\n",
                 v);
  }
  return kDefaultAmRttEnvelope;
}

RmaWire resolve_rma_wire(const Config& cfg) {
  RmaWire w = cfg.rma_wire;
  if (w == RmaWire::kAuto) {
    if (const char* v = std::getenv("UPCXX_RMA_WIRE"); v && *v)
      w = parse_rma_wire(v);
    // Auto under the socket transport pins the am wire: a socket peer's
    // segment must be treated as not cross-mapped (isolated ranks really
    // cannot reach it), so initiator-side memcpys are off the table.
    if (w == RmaWire::kAuto &&
        resolve_am_transport(cfg) == AmTransport::kSocket)
      return RmaWire::kAm;
  }
  // Auto: every segment on this arena is cross-mapped, so the direct wire
  // is always reachable. A backend whose targets are not cross-mapped would
  // return kAm here for those targets.
  return w == RmaWire::kAm ? RmaWire::kAm : RmaWire::kDirect;
}

AmTransport resolve_am_transport(const Config& cfg) {
  AmTransport t = cfg.am_transport;
  if (t == AmTransport::kAuto) {
    if (const char* v = std::getenv("UPCXX_AM_TRANSPORT"); v && *v)
      t = parse_am_transport(v);
  }
  return t == AmTransport::kAuto ? AmTransport::kMmap : t;
}

void Config::normalize() {
  const Config d;  // defaults
  if (ranks < 1) ranks = 1;
  if (segment_bytes == 0) segment_bytes = d.segment_bytes;
  if (heap_bytes == 0) heap_bytes = d.heap_bytes;
  // The ring must be a power of two and big enough to hold at least one
  // maximal eager record plus headroom.
  if (ring_bytes < (std::size_t{8} << 10)) ring_bytes = std::size_t{8} << 10;
  std::size_t p2 = 1;
  while (p2 < ring_bytes) p2 <<= 1;
  ring_bytes = p2;
  // A single record (eager message or aggregation frame) must fit safely
  // inside a quarter ring alongside its wire header (see
  // MpscByteRing::max_record_payload); 64 bytes covers header + alignment.
  const std::size_t record_cap = ring_bytes / 4 - 64;
  if (eager_max > record_cap) eager_max = record_cap;
  if (agg_max_bytes > record_cap) agg_max_bytes = record_cap;
  if (agg_max_bytes < 256) agg_max_bytes = 256;
  if (agg_max_msgs == 0) agg_max_msgs = 1;
  // Data-motion engine: a negative or non-finite bandwidth means "no
  // model"; chunks below 256 bytes would make per-chunk bookkeeping
  // dominate the copies.
  if (!(sim_bw_gbps > 0) || !std::isfinite(sim_bw_gbps)) sim_bw_gbps = 0;
  if (xfer_chunk_bytes < 256) xfer_chunk_bytes = 256;
  // am_window 0 means auto (resolve_am_window consults the environment),
  // so normalize leaves it alone.
  if (am_xfer_chunk_bytes < 256) am_xfer_chunk_bytes = 256;
  // A sub-1 envelope would declare every ack late; 0 stays 0 (auto).
  if (!(am_rtt_envelope >= 1.0) || !std::isfinite(am_rtt_envelope))
    am_rtt_envelope = 0;
  if (progress_threads < 1) progress_threads = 1;
  // A pool wider than the machine only adds context-switch pressure on the
  // very loops that are supposed to soak idle cores; clamp loudly so a
  // fat-fingered width is visible (hardware_concurrency may report 0 on
  // exotic hosts — no clamp then, the user knows better than we do).
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && progress_threads > static_cast<int>(hw)) {
    std::fprintf(stderr,
                 "gex: clamping progress_threads=%d to hardware "
                 "concurrency (%u)\n",
                 progress_threads, hw);
    progress_threads = static_cast<int>(hw);
  }
  if (inject_shards < 1) inject_shards = 1;
  if (inject_shards > 64) inject_shards = 64;
  if (submit_shards < 1) submit_shards = 1;
  if (submit_shards > 64) submit_shards = 64;
  // Socket knobs: a record must at least hold a maximal eager payload plus
  // headers; fault probabilities are percentages; the fixed arena base
  // must be page-aligned for MAP_FIXED_NOREPLACE.
  if (socket_max_record < (std::size_t{64} << 10))
    socket_max_record = std::size_t{64} << 10;
  if (socket_fault_short_write_pct > 100) socket_fault_short_write_pct = 100;
  if (socket_fault_short_read_pct > 100) socket_fault_short_read_pct = 100;
  socket_arena_base &= ~std::uint64_t{4095};
  if (socket_arena_base == 0) socket_arena_base = d.socket_arena_base;
}

Config Config::from_env() {
  Config c;
  c.ranks = static_cast<int>(
      env_positive("UPCXX_RANKS", static_cast<long>(c.ranks)));
  if (const char* b = std::getenv("UPCXX_BACKEND")) {
    if (std::strcmp(b, "process") == 0) c.backend = Backend::kProcess;
  }
  c.segment_bytes =
      static_cast<std::size_t>(env_positive(
          "UPCXX_SEGMENT_MB", static_cast<long>(c.segment_bytes >> 20)))
      << 20;
  c.ring_bytes = static_cast<std::size_t>(env_positive(
                     "UPCXX_RING_KB", static_cast<long>(c.ring_bytes >> 10)))
                 << 10;
  c.eager_max = static_cast<std::size_t>(
      env_positive("UPCXX_EAGER_MAX", static_cast<long>(c.eager_max)));
  c.heap_bytes = static_cast<std::size_t>(env_positive(
                     "UPCXX_HEAP_MB", static_cast<long>(c.heap_bytes >> 20)))
                 << 20;
  c.sim_latency_ns = static_cast<std::uint64_t>(
      env_nonnegative("UPCXX_SIM_LATENCY_NS", 0));
  if (const char* a = std::getenv("UPCXX_ATOMICS")) {
    c.atomics_use_am = (std::strcmp(a, "am") == 0);
  }
  if (const char* v = std::getenv("UPCXX_SIM_BW_GBPS"); v && *v) {
    char* end = nullptr;
    const double bw = std::strtod(v, &end);
    if (end != v && *end == '\0' && bw >= 0 && std::isfinite(bw)) {
      c.sim_bw_gbps = bw;
    } else {
      std::fprintf(stderr,
                   "gex: ignoring UPCXX_SIM_BW_GBPS=%s (must be a finite "
                   "non-negative number)\n",
                   v);
    }
  }
  c.xfer_chunk_bytes =
      static_cast<std::size_t>(env_positive(
          "UPCXX_XFER_CHUNK_KB", static_cast<long>(c.xfer_chunk_bytes >> 10)))
      << 10;
  // 0 is meaningful here (disable the async path), so no env_positive.
  c.rma_async_min = static_cast<std::size_t>(env_nonnegative(
      "UPCXX_RMA_ASYNC_MIN", static_cast<long>(c.rma_async_min)));
  if (const char* v = std::getenv("UPCXX_RMA_WIRE"); v && *v) {
    c.rma_wire = parse_rma_wire(v);
  }
  if (const char* v = std::getenv("UPCXX_AM_TRANSPORT"); v && *v) {
    c.am_transport = parse_am_transport(v);
  }
  // 0 (auto → adaptive) stays 0 unless the environment names a window;
  // `auto` is the spelled-out default. Resolution to the adaptive
  // controller or a pinned window happens in resolve_am_window at launch.
  if (const char* v = std::getenv("UPCXX_AM_WINDOW");
      v && *v && std::strcmp(v, "auto") != 0) {
    if (long n = env_long("UPCXX_AM_WINDOW", 0); n != 0) {
      if (n > 0) {
        c.am_window = static_cast<std::uint32_t>(n);
      } else {
        std::fprintf(stderr,
                     "gex: ignoring UPCXX_AM_WINDOW=%ld (must be positive)\n",
                     n);
      }
    }
  }
  c.am_xfer_chunk_bytes =
      static_cast<std::size_t>(env_positive(
          "UPCXX_AM_CHUNK_KB",
          static_cast<long>(c.am_xfer_chunk_bytes >> 10)))
      << 10;
  if (const char* v = std::getenv("UPCXX_AM_RTT_ENVELOPE"); v && *v) {
    char* end = nullptr;
    const double e = std::strtod(v, &end);
    if (end != v && *end == '\0' && e >= 1.0 && std::isfinite(e)) {
      c.am_rtt_envelope = e;
    } else {
      std::fprintf(stderr,
                   "gex: ignoring UPCXX_AM_RTT_ENVELOPE=%s (must be a "
                   "finite factor >= 1)\n",
                   v);
    }
  }
  c.progress_threads = static_cast<int>(env_positive(
      "UPCXX_PROGRESS_THREADS", static_cast<long>(c.progress_threads)));
  c.inject_shards = static_cast<std::uint32_t>(env_positive(
      "UPCXX_INJECT_SHARDS", static_cast<long>(c.inject_shards)));
  c.submit_shards = static_cast<std::uint32_t>(env_positive(
      "UPCXX_SUBMIT_SHARDS", static_cast<long>(c.submit_shards)));
  c.socket_max_record =
      static_cast<std::size_t>(env_positive(
          "UPCXX_SOCKET_MAX_RECORD_KB",
          static_cast<long>(c.socket_max_record >> 10)))
      << 10;
  if (const char* v = std::getenv("UPCXX_SOCKET_ARENA_BASE"); v && *v) {
    // Hex (0x...) or decimal; strtoull base 0 accepts both.
    errno = 0;
    char* end = nullptr;
    const unsigned long long b = std::strtoull(v, &end, 0);
    if (end != v && *end == '\0' && errno != ERANGE && b != 0) {
      c.socket_arena_base = b;
    } else {
      std::fprintf(stderr,
                   "gex: ignoring UPCXX_SOCKET_ARENA_BASE=%s (not a "
                   "non-zero address)\n",
                   v);
    }
  }
  c.socket_isolated = env_long("UPCXX_SOCKET_ISOLATED", 0) != 0;
  c.socket_fault_seed = static_cast<std::uint64_t>(
      env_nonnegative("UPCXX_SOCKET_FAULT_SEED", 0));
  c.socket_fault_short_write_pct = static_cast<std::uint32_t>(
      env_nonnegative("UPCXX_SOCKET_FAULT_SHORT_WRITE_PCT", 0));
  c.socket_fault_short_read_pct = static_cast<std::uint32_t>(
      env_nonnegative("UPCXX_SOCKET_FAULT_SHORT_READ_PCT", 0));
  c.socket_fault_die_rank = static_cast<int>(
      env_nonnegative("UPCXX_SOCKET_FAULT_DIE_RANK", -1));
  c.socket_fault_die_at = static_cast<std::uint64_t>(
      env_nonnegative("UPCXX_SOCKET_FAULT_DIE_AT", 0));
  c.agg_enabled = env_long("UPCXX_AGG", 1) != 0;
  c.agg_max_bytes = static_cast<std::size_t>(env_positive(
      "UPCXX_AGG_MAX_BYTES", static_cast<long>(c.agg_max_bytes)));
  c.agg_max_msgs = static_cast<std::uint32_t>(env_positive(
      "UPCXX_AGG_MAX_MSGS", static_cast<long>(c.agg_max_msgs)));
  c.normalize();
  return c;
}

}  // namespace gex
